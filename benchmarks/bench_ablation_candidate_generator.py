"""Ablation (Section 4.4.2): connection-matrix vs naive candidate generator.

The paper's stated reason for the connection-matrix search space is
that the naive generator wastes moves on invalid candidates.  This
ablation quantifies the claim: equal *move* budgets for both
generators, reporting the naive generator's invalid-move fraction and
the quality both reach.
"""

import pytest

from repro.core.annealing import AnnealingParams, anneal
from repro.core.connection_matrix import ConnectionMatrix
from repro.core.latency import RowObjective
from repro.core.naive_annealing import naive_anneal
from repro.harness.tables import render_table

from benchmarks.conftest import SEED, publish, sa_effort


@pytest.fixture(scope="module")
def ablation():
    objective = RowObjective()
    params = (
        AnnealingParams()
        if sa_effort() == "paper"
        else AnnealingParams(total_moves=2_000, moves_per_cooldown=500)
    )
    rows = []
    for n, limit in ((8, 2), (8, 4), (16, 2), (16, 4)):
        naive = naive_anneal(n, limit, objective, params, rng=SEED)
        matrix = anneal(
            ConnectionMatrix.zeros(n, limit), objective, params, rng=SEED
        )
        rows.append(
            {
                "instance": f"P~({n},{limit})",
                "matrix_energy": matrix.best_energy,
                "naive_energy": naive.best_energy,
                "invalid_frac": naive.invalid_fraction,
                "naive_evals": naive.evaluations,
                "matrix_evals": matrix.evaluations,
            }
        )
    return rows


def test_ablation_candidate_generator(benchmark, ablation, capsys):
    table = render_table(
        "Ablation 4.4.2: connection-matrix vs naive generator (equal move budget)",
        [
            "instance",
            "matrix L_D",
            "naive L_D",
            "naive invalid moves",
            "naive evals",
            "matrix evals",
        ],
        [
            [
                r["instance"],
                2 * r["matrix_energy"],
                2 * r["naive_energy"],
                f"{r['invalid_frac'] * 100:.0f}%",
                r["naive_evals"],
                r["matrix_evals"],
            ]
            for r in ablation
        ],
    )
    publish(capsys, "ablation_candidate_generator", table)

    for r in ablation:
        # The matrix generator never proposes an invalid state; the
        # naive one wastes a substantial share of its moves.
        assert r["invalid_frac"] > 0.15
        # At an equal move budget the matrix SA is never meaningfully
        # worse than the naive SA.
        assert r["matrix_energy"] <= r["naive_energy"] * 1.03

    params = AnnealingParams(total_moves=2_000, moves_per_cooldown=500)
    benchmark.pedantic(
        lambda: naive_anneal(8, 4, RowObjective(), params, rng=SEED),
        rounds=2,
        iterations=1,
    )
