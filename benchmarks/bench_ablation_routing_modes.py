"""Ablation (Section 4.2): XY vs YX vs O1TURN routing at realistic loads.

The paper justifies dimension-order routing by measuring that fancier
routing buys almost nothing at the low loads of real applications
(<1% vs adaptive).  This ablation runs the three routing modes the
simulator supports on the same topology and traffic and reports the
latency spread.
"""

import pytest

from repro.harness.designs import dc_sa_design, mesh_design
from repro.harness.tables import render_table
from repro.sim.config import SimConfig
from repro.sim.engine import Simulator
from repro.traffic.injection import SyntheticTraffic
from repro.traffic.patterns import make_pattern

from benchmarks.conftest import SEED, publish, sa_effort

N = 8
MODES = ("xy", "yx", "o1turn")


def simulate(design, mode, rate=0.02):
    cfg = SimConfig(
        flit_bits=design.point.flit_bits,
        vcs_per_port=4,
        routing_mode=mode,
        warmup_cycles=300,
        measure_cycles=1_500,
        max_cycles=40_000,
        seed=SEED,
    )
    traffic = SyntheticTraffic(make_pattern("uniform_random", N), rate=rate, rng=SEED)
    return Simulator(design.topology, cfg, traffic).run().summary.avg_network_latency


@pytest.fixture(scope="module")
def results():
    designs = (mesh_design(N), dc_sa_design(N, seed=SEED, effort=sa_effort()))
    return {
        design.name: {mode: simulate(design, mode) for mode in MODES}
        for design in designs
    }


def test_routing_mode_spread(benchmark, results, capsys):
    rows = [
        [scheme, *(vals[m] for m in MODES)] for scheme, vals in results.items()
    ]
    table = render_table(
        f"Ablation 4.2 ({N}x{N}, UR @ 0.02): routing-mode latency (cycles)",
        ["scheme", *MODES],
        rows,
    )
    publish(capsys, "ablation_routing_modes", table)

    # The paper's premise: the choice of deadlock-free routing barely
    # matters at realistic loads.
    for scheme, vals in results.items():
        spread = (max(vals.values()) - min(vals.values())) / min(vals.values())
        assert spread < 0.10, f"{scheme}: routing-mode spread {spread:.1%}"

    benchmark.pedantic(
        lambda: simulate(mesh_design(N), "xy"), rounds=2, iterations=1
    )
