"""Ablation (Table 1): sensitivity of the SA to its hyperparameters.

The paper fixes T0 = 10 cycles, 10^4 moves, cooldown /2 every 10^3.
This ablation varies the initial temperature and the cooling cadence at
a reduced move budget on P~(16, 4) and reports final quality -- showing
the schedule's robustness (the D&C seed does most of the work, so the
annealer mainly needs *some* hill-climbing ability).
"""

import pytest

from repro.core.annealing import AnnealingParams, anneal
from repro.core.connection_matrix import ConnectionMatrix
from repro.core.divide_conquer import initial_solution
from repro.core.latency import RowObjective
from repro.harness.tables import render_table

from benchmarks.conftest import SEED, publish, sa_effort

N, C = 16, 4

VARIANTS = {
    "paper (T0=10, mc=1000)": AnnealingParams(10.0, 5_000, 2.0, 1_000),
    "hot (T0=100)": AnnealingParams(100.0, 5_000, 2.0, 1_000),
    "cold (T0=1)": AnnealingParams(1.0, 5_000, 2.0, 1_000),
    "fast cooling (mc=200)": AnnealingParams(10.0, 5_000, 2.0, 200),
    "slow cooling (mc=2500)": AnnealingParams(10.0, 5_000, 2.0, 2_500),
}


@pytest.fixture(scope="module")
def study():
    objective = RowObjective()
    seed_sol = initial_solution(N, C, objective)
    matrix = ConnectionMatrix.from_placement(seed_sol.placement, C)
    results = {}
    for name, params in VARIANTS.items():
        run = anneal(matrix, objective, params, rng=SEED)
        results[name] = {
            "energy": min(run.best_energy, seed_sol.energy),
            "uphill": run.uphill_accepted,
            "accepted": run.accepted_moves,
        }
    return seed_sol, results


def test_sa_parameter_sensitivity(benchmark, study, capsys):
    seed_sol, results = study
    rows = [
        [name, r["energy"], 2 * r["energy"], r["accepted"], r["uphill"]]
        for name, r in results.items()
    ]
    table = render_table(
        f"Ablation Table 1: SA hyperparameters on P~({N},{C}) "
        f"(seed energy {seed_sol.energy:.4f})",
        ["schedule", "row L_D", "2D L_D", "accepted", "uphill accepted"],
        rows,
        digits=4,
    )
    publish(capsys, "ablation_sa_params", table)

    energies = [r["energy"] for r in results.values()]
    best, worst = min(energies), max(energies)
    # Robustness: no schedule variant loses more than 5% -- the paper's
    # specific Table 1 values are not load-bearing.
    assert (worst - best) / best < 0.05
    # All variants improve on (or match) the D&C seed.
    for r in results.values():
        assert r["energy"] <= seed_sol.energy + 1e-9
    # Hotter schedules accept more uphill moves (the knob works).
    assert results["hot (T0=100)"]["uphill"] > results["cold (T0=1)"]["uphill"]

    benchmark.pedantic(
        lambda: anneal(
            ConnectionMatrix.zeros(8, 4),
            RowObjective(),
            AnnealingParams(total_moves=1_000, moves_per_cooldown=250),
            rng=SEED,
        ),
        rounds=3,
        iterations=1,
    )
