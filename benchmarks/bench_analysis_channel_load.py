"""Analytical throughput bounds (companion to Figure 8b).

Static channel-load analysis reproduces the throughput ordering of
Figure 8(b) without simulation: the HFB's quadrant-seam links saturate
first (below half of the mesh bound), and D&C_SA recovers a large part
of the gap.  The timed kernel is the channel-load computation itself.
"""

import pytest

from repro.analysis.channel_load import (
    bisection_loads,
    channel_loads,
    load_balance_stats,
)
from repro.harness.designs import reference_designs
from repro.harness.tables import render_table
from repro.routing.tables import RoutingTables

from benchmarks.conftest import SEED, publish, sa_effort

N = 8


@pytest.fixture(scope="module")
def bounds():
    out = []
    for design in reference_designs(N, seed=SEED, effort=sa_effort()):
        tables = RoutingTables.build(design.topology)
        report = channel_loads(tables, flit_bits=design.point.flit_bits)
        stats = load_balance_stats(report)
        seam = bisection_loads(report, tables)
        out.append(
            {
                "scheme": design.name,
                "tables": tables,
                "report": report,
                "stats": stats,
                "seam_max": max(seam.values()) if seam else 0.0,
            }
        )
    return out


def test_channel_load_bounds(benchmark, bounds, capsys):
    rows = [
        [
            b["scheme"],
            b["report"].channel_bound,
            b["report"].injection_bound,
            b["report"].saturation_packets_per_cycle,
            b["stats"]["imbalance"],
            b["seam_max"],
        ]
        for b in bounds
    ]
    table = render_table(
        f"Analytical saturation bounds ({N}x{N}, UR, paper packet mix)",
        ["scheme", "channel bound", "NI bound", "binding bound", "imbalance", "worst seam load"],
        rows,
        digits=3,
    )
    publish(capsys, "analysis_channel_load", table)

    by_name = {b["scheme"]: b for b in bounds}
    mesh = by_name["Mesh"]["report"].saturation_packets_per_cycle
    hfb = by_name["HFB"]["report"].saturation_packets_per_cycle
    dc = by_name["D&C_SA"]["report"].saturation_packets_per_cycle
    # Figure 8(b) ordering, analytically: Mesh > D&C_SA > HFB, with the
    # HFB below roughly half of the mesh.  The D&C_SA is limited by NI
    # serialization (narrow flits), the HFB by its seam channels.
    assert mesh > dc > hfb
    assert hfb < 0.6 * mesh
    assert dc > 1.2 * hfb
    assert by_name["HFB"]["report"].channel_bound < by_name["HFB"]["report"].injection_bound
    assert (
        by_name["D&C_SA"]["report"].injection_bound
        < by_name["D&C_SA"]["report"].channel_bound
    )

    tables = by_name["Mesh"]["tables"]
    benchmark(lambda: channel_loads(tables, flit_bits=256))
