"""Section 4.5.2: routing-table area overhead (< 0.5% of router area)."""

import pytest

from repro.harness.area_overhead import area_overhead
from repro.power.area import max_table_overhead
from repro.sim.config import SimConfig
from repro.topology.mesh import MeshTopology

from benchmarks.conftest import SEED, publish, sa_effort


@pytest.fixture(scope="module")
def result():
    return area_overhead(8, seed=SEED, effort=sa_effort())


def test_area_overhead(benchmark, result, capsys):
    publish(capsys, "area_overhead", result.render())
    # The paper's DSENT estimate: less than 0.5% of router area.
    assert result.max_overhead < 0.005

    topo = MeshTopology.mesh(8)
    cfg = SimConfig(flit_bits=256)
    benchmark(lambda: max_table_overhead(topo, cfg))
