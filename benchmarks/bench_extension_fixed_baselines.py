"""Extension: searched placement vs the literature's fixed placements.

The paper's positioning (Sections 1-2): prior work adds express links
in *fixed* patterns -- Dally's express cubes, the (hybrid) flattened
butterfly -- which are only a few points in the placement design space.
This bench lines up every fixed baseline the library implements against
D&C_SA at each network size and verifies the searched placement wins.
"""

import pytest

from repro.core.latency import BandwidthConfig
from repro.core.optimizer import design_point
from repro.harness.designs import dc_sa_design, hfb_design, mesh_design
from repro.harness.tables import pct_change, render_table
from repro.topology.express_cube import best_express_cube_row

from benchmarks.conftest import SEED, publish, sa_effort


def cube_design(n: int, link_limit: int):
    row = best_express_cube_row(n, link_limit)
    return design_point(row, link_limit, BandwidthConfig())


@pytest.fixture(scope="module")
def comparison():
    sizes = (8, 16) if sa_effort() == "paper" else (8,)
    rows = []
    for n in sizes:
        dc = dc_sa_design(n, seed=SEED, effort=sa_effort())
        cube = cube_design(n, dc.point.link_limit)
        rows.append(
            {
                "n": n,
                "mesh": mesh_design(n).point.total_latency,
                "cube": cube.total_latency,
                "hfb": hfb_design(n).point.total_latency,
                "dc_sa": dc.point.total_latency,
            }
        )
    return rows


def test_searched_beats_fixed(benchmark, comparison, capsys):
    table = render_table(
        "Extension: total avg latency vs fixed placements (cycles)",
        ["network", "Mesh", "ExpressCube", "HFB", "D&C_SA", "vs best fixed"],
        [
            [
                f"{r['n']}x{r['n']}",
                r["mesh"],
                r["cube"],
                r["hfb"],
                r["dc_sa"],
                f"-{pct_change(r['dc_sa'], min(r['cube'], r['hfb'])):.1f}%",
            ]
            for r in comparison
        ],
    )
    publish(capsys, "extension_fixed_baselines", table)

    for r in comparison:
        # The searched placement beats every fixed scheme.
        assert r["dc_sa"] < r["mesh"]
        assert r["dc_sa"] < r["cube"]
        assert r["dc_sa"] < r["hfb"]
        # And the fixed express schemes beat the mesh (they are real
        # competitors, not strawmen).
        assert r["cube"] < r["mesh"]
        assert r["hfb"] < r["mesh"]

    benchmark(lambda: cube_design(16, 4))
