"""Figure 10: router static power breakdown (buffer / crossbar / other)."""

import pytest

from repro.harness.designs import reference_designs
from repro.harness.power_static import fig10
from repro.power.model import router_static_power
from repro.sim.config import SimConfig

from benchmarks.conftest import SEED, publish, sa_effort


@pytest.fixture(scope="module")
def result():
    return fig10(8, seed=SEED, effort=sa_effort())


def test_fig10_static_breakdown(benchmark, result, capsys):
    publish(capsys, "fig10", result.render())

    by_name = dict(zip(result.schemes, result.breakdowns))
    mesh, hfb, dc = by_name["Mesh"], by_name["HFB"], by_name["D&C_SA"]

    # Paper claims: buffer static power nearly identical (equal-buffer
    # rule); crossbar static does NOT increase with express links
    # (width shrinks by C, ports grow sub-linearly); totals similar.
    assert abs(dc.buffer_w - mesh.buffer_w) / mesh.buffer_w < 0.15
    assert dc.crossbar_w < 1.25 * mesh.crossbar_w
    assert hfb.crossbar_w < 1.25 * mesh.crossbar_w
    assert abs(dc.total_w - mesh.total_w) / mesh.total_w < 0.15
    # Buffers dominate router static power.
    for b in (mesh, hfb, dc):
        assert b.buffer_w > b.crossbar_w

    designs = reference_designs(8, seed=SEED, effort=sa_effort())
    topo = designs[2].topology
    cfg = SimConfig(flit_bits=designs[2].point.flit_bits)
    benchmark(lambda: router_static_power(topo, cfg))
