"""Figure 11: impact of bisection bandwidth (2 KGb/s vs 8 KGb/s, 8x8).

The paper's contrast: quadrupling bandwidth improves the mesh only via
serialization (~2.3%) but lets good express placement convert the
wires into links (~17.8%).  Times one design-point costing.
"""

import pytest

from repro.core.latency import BandwidthConfig
from repro.core.optimizer import design_point
from repro.harness.bandwidth import fig11
from repro.topology.row import RowPlacement

from benchmarks.conftest import SEED, publish, sa_effort


@pytest.fixture(scope="module")
def result():
    return fig11(n=8, base_flit_cases=(128, 512), seed=SEED, effort=sa_effort())


def test_fig11_bandwidth_impact(benchmark, result, capsys):
    publish(capsys, "fig11", result.render())

    # The optimizer exploits extra bandwidth far better than the mesh.
    assert result.dc_sa_gain() > 3 * max(result.mesh_gain(), 1e-9)
    assert result.dc_sa_gain() > 10.0  # paper: 17.8%
    assert result.mesh_gain() < 8.0    # paper: 2.3%
    # At every budget, D&C_SA's best point beats the mesh point.
    for case in result.cases.values():
        assert case.best_dc_sa < case.mesh_total

    bw = BandwidthConfig(base_flit_bits=512)
    placement = RowPlacement(8, frozenset({(0, 4), (4, 7), (1, 3)}))
    benchmark(lambda: design_point(placement, 4, bw))
