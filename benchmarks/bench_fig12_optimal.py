"""Figure 12: D&C_SA vs exhaustive optimal (latency + runtime ratio).

The paper's instances P(4,2), P(8,2), P(8,3), P(8,4), P(16,2).  Times
the exhaustive search on the smallest instance as the kernel.
"""

import pytest

from repro.core.branch_bound import exhaustive_matrix_search
from repro.core.latency import RowObjective
from repro.harness.optimal import PAPER_INSTANCES, fig12

from benchmarks.conftest import SEED, publish, sa_effort


@pytest.fixture(scope="module")
def result():
    instances = PAPER_INSTANCES if sa_effort() == "paper" else ((4, 2), (8, 2), (8, 3))
    return fig12(instances=instances, seed=SEED)


def test_fig12_vs_optimal(benchmark, result, capsys):
    publish(capsys, "fig12", result.render())

    for c in result.comparisons:
        # Never below the optimum; paper's worst gap is 1.3% (P(8,4)).
        assert c.dc_sa_energy >= c.optimal_energy - 1e-9
        assert c.gap_percent <= 3.0

    # The paper's scaling claim (30x at P(8,3) -> ~1000x at P(16,2) in
    # their implementation): the exhaustive/heuristic runtime ratio
    # grows steeply with the size of the search space.  Our exhaustive
    # search prunes mirror-duplicates and memoizes, so absolute ratios
    # are smaller, but the growth trend must hold and the largest
    # instance must show a decisive advantage.
    by_key = {(c.n, c.link_limit): c for c in result.comparisons}
    if (8, 4) in by_key and (8, 3) in by_key:
        assert by_key[(8, 4)].runtime_ratio > by_key[(8, 3)].runtime_ratio
        assert by_key[(8, 4)].runtime_ratio > 20.0

    # Small instances reach the exact optimum, as in the paper.
    small = {(c.n, c.link_limit): c for c in result.comparisons}
    for key in ((4, 2), (8, 2)):
        if key in small:
            assert small[key].gap_percent == pytest.approx(0.0, abs=1e-9)

    benchmark.pedantic(
        lambda: exhaustive_matrix_search(8, 2, RowObjective()),
        rounds=3,
        iterations=1,
    )
