"""Figure 12: D&C_SA vs exhaustive optimal (latency + runtime ratio).

The paper's instances P(4,2), P(8,2), P(8,3), P(8,4), P(16,2).  Times
the exhaustive search on the smallest instance as the kernel.
"""

import time

import pytest

from repro.core.branch_bound import exhaustive_matrix_search
from repro.core.latency import RowObjective
from repro.harness.optimal import PAPER_INSTANCES, fig12
from repro.harness.tables import render_table

from benchmarks.conftest import SEED, publish, sa_effort


@pytest.fixture(scope="module")
def result():
    instances = PAPER_INSTANCES if sa_effort() == "paper" else ((4, 2), (8, 2), (8, 3))
    return fig12(instances=instances, seed=SEED)


def test_fig12_vs_optimal(benchmark, result, capsys):
    record = {
        "instances": [
            {
                "n": c.n,
                "C": c.link_limit,
                "optimal_energy": c.optimal_energy,
                "dc_sa_energy": c.dc_sa_energy,
                "gap_percent": c.gap_percent,
                "runtime_ratio": c.runtime_ratio,
            }
            for c in result.comparisons
        ],
    }
    publish(capsys, "fig12", result.render(), record=record)

    for c in result.comparisons:
        # Never below the optimum; paper's worst gap is 1.3% (P(8,4)).
        assert c.dc_sa_energy >= c.optimal_energy - 1e-9
        assert c.gap_percent <= 3.0

    # The paper's scaling claim (30x at P(8,3) -> ~1000x at P(16,2) in
    # their implementation): the exhaustive/heuristic runtime ratio
    # grows steeply with the size of the search space.  Our exhaustive
    # search prunes mirror-duplicates and memoizes, so absolute ratios
    # are smaller, but the growth trend must hold and the largest
    # instance must show a decisive advantage.
    by_key = {(c.n, c.link_limit): c for c in result.comparisons}
    if (8, 4) in by_key and (8, 3) in by_key:
        assert by_key[(8, 4)].runtime_ratio > by_key[(8, 3)].runtime_ratio
        assert by_key[(8, 4)].runtime_ratio > 20.0

    # Small instances reach the exact optimum, as in the paper.
    small = {(c.n, c.link_limit): c for c in result.comparisons}
    for key in ((4, 2), (8, 2)):
        if key in small:
            assert small[key].gap_percent == pytest.approx(0.0, abs=1e-9)

    benchmark.pedantic(
        lambda: exhaustive_matrix_search(8, 2, RowObjective()),
        rounds=3,
        iterations=1,
    )


def test_fig12_batched_exhaustive(capsys):
    """Population-batched exhaustive search: byte-identical optimum,
    >= 3x evaluation throughput at the paper's largest exact instance.

    The scalar baseline (``batch_size=1``) and the batched path share
    everything but the kernel launch granularity, so the placement,
    energy, evaluation count and state count must match exactly; the
    speedup gate runs on best-of-rounds wall times to shed timing
    noise.  Quick effort checks parity only (P(8,3) is too fast to
    time reliably).
    """
    paper = sa_effort() == "paper"
    n, c = (16, 2) if paper else (8, 3)
    rounds = 3 if paper else 1

    best_scalar = best_batched = float("inf")
    scalar = batched = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        scalar = exhaustive_matrix_search(n, c, RowObjective(), batch_size=1)
        best_scalar = min(best_scalar, time.perf_counter() - t0)
        t0 = time.perf_counter()
        batched = exhaustive_matrix_search(n, c, RowObjective())
        best_batched = min(best_batched, time.perf_counter() - t0)

    assert batched.placement == scalar.placement
    assert batched.energy == scalar.energy
    assert batched.evaluations == scalar.evaluations
    assert batched.states_visited == scalar.states_visited

    speedup = best_scalar / best_batched
    evals_per_sec = batched.evaluations / best_batched
    rows = [
        ["scalar", f"{best_scalar:.3f}", f"{scalar.evaluations / best_scalar:,.0f}"],
        ["batched", f"{best_batched:.3f}", f"{evals_per_sec:,.0f}"],
        ["speedup", f"{speedup:.2f}x", ""],
    ]
    publish(
        capsys,
        "fig12_batched",
        render_table(
            f"Exhaustive search P({n},{c}), batched vs scalar "
            f"({batched.evaluations} evaluations, best of {rounds})",
            ["kernel", "wall s", "evals/sec"],
            rows,
        ),
        record={
            "n": n,
            "C": c,
            "evaluations": batched.evaluations,
            "scalar_wall_s": best_scalar,
            "batched_wall_s": best_batched,
            "speedup": speedup,
        },
    )
    if paper:
        assert speedup >= 3.0, (
            f"batched exhaustive search only {speedup:.2f}x faster"
        )
