"""Figure 2: optimal P~(8,4) placement + connection matrix.

Regenerates the paper's worked example by exhaustive search and times
the matrix decode -> evaluate kernel that dominates every search
algorithm in the library.
"""

import pytest

from repro.core.connection_matrix import ConnectionMatrix
from repro.core.latency import RowObjective
from repro.harness.fig2 import fig2

from benchmarks.conftest import publish


@pytest.fixture(scope="module")
def result():
    return fig2()


def test_fig2_decode_evaluate_kernel(benchmark, result, capsys):
    publish(capsys, "fig2", result.render())
    matrix = ConnectionMatrix.from_placement(result.placement, 4)
    objective = RowObjective()

    def kernel():
        return objective(matrix.decode())

    energy = benchmark(kernel)
    assert energy == pytest.approx(result.energy)
