"""Figure 5: average packet latency vs link limit C on 4x4/8x8/16x16.

Regenerates all three panels (D&C_SA and OnlySA curves, L_D/L_S
decomposition, Mesh and HFB design points) and the paper's headline
reductions; times one full P~(8,4) D&C_SA solve -- the unit of work the
sweep repeats per C value.
"""

import pytest

from repro.api import SearchConfig
from repro.core.optimizer import solve_row_problem
from repro.harness.designs import EFFORTS
from repro.harness.fig5 import fig5_all, render_summary

from benchmarks.conftest import SEED, publish, sa_effort


@pytest.fixture(scope="module")
def panels():
    sizes = (4, 8, 16) if sa_effort() == "paper" else (4, 8)
    return fig5_all(sizes=sizes, seed=SEED, effort=sa_effort())


def test_fig5_dc_sa_solve(benchmark, panels, capsys):
    text = "\n\n".join(p.render() for p in panels.values())
    text += "\n\n" + render_summary(panels)
    publish(capsys, "fig5", text)

    # Shape assertions mirroring the paper's Section 5.2 claims.
    if 8 in panels:
        r8 = panels[8]
        assert r8.reduction_vs_mesh() > 15.0  # paper: 23.5%
        assert r8.reduction_vs_hfb() > 3.0    # paper: 8.0%
    if 16 in panels:
        r16 = panels[16]
        assert r16.reduction_vs_mesh() > 25.0  # paper: 36.4%
        assert r16.reduction_vs_hfb() > 8.0    # paper: 20.1%
        # Savings grow with network size.
        assert r16.reduction_vs_mesh() > panels[8].reduction_vs_mesh()
    if 4 in panels:
        # Small network: modest gain vs mesh, parity with HFB.
        assert panels[4].reduction_vs_mesh() > 2.0
        assert abs(panels[4].reduction_vs_hfb()) < 12.0

    params = EFFORTS[sa_effort()]
    benchmark.pedantic(
        lambda: solve_row_problem(8, 4, method="dc_sa", params=params,
                                  config=SearchConfig(seed=SEED)),
        rounds=3 if sa_effort() == "quick" else 2,
        iterations=1,
    )
