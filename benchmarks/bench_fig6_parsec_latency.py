"""Figure 6: per-PARSEC-benchmark latency on the 8x8 network.

Runs the full cycle-accurate campaign (10 benchmarks x Mesh/HFB/D&C_SA)
and times a single representative simulation window.
"""

from repro.harness.designs import mesh_design
from repro.harness.tables import pct_change
from repro.sim.config import SimConfig
from repro.sim.engine import Simulator
from repro.traffic.parsec import parsec_traffic

from benchmarks.conftest import SEED, publish

N = 8


def test_fig6_parsec_simulation(benchmark, campaign, capsys):
    publish(capsys, "fig6", campaign.render_fig6())

    mesh = campaign.average_latency("Mesh")
    hfb = campaign.average_latency("HFB")
    dc = campaign.average_latency("D&C_SA")
    # Paper: 23.5% vs Mesh, 8.0% vs HFB on 8x8 (we assert the ordering
    # and a substantial fraction of the reduction).
    assert pct_change(dc, mesh) > 12.0
    assert dc < hfb
    # Uniform improvement across benchmarks (general-purpose claim):
    # D&C_SA beats Mesh on every single benchmark.
    for b in campaign.benchmarks:
        assert campaign.latency_of(b, "D&C_SA") < campaign.latency_of(b, "Mesh")

    def one_window():
        cfg = SimConfig(
            flit_bits=256,
            warmup_cycles=200,
            measure_cycles=600,
            max_cycles=20_000,
            seed=SEED,
        )
        traffic = parsec_traffic("canneal", N, rng=SEED)
        return Simulator(mesh_design(N).topology, cfg, traffic).run()

    benchmark.pedantic(one_window, rounds=2, iterations=1)
