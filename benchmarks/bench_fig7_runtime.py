"""Figure 7: placement quality vs normalized runtime (OnlySA vs D&C_SA).

Both schemes get equal evaluation budgets; the x axis is normalized to
the cost of the divide-and-conquer initial process I(n, 4), exactly as
in the paper.  Times Procedure I(8,4) itself, the normalization unit.

Extension beyond the paper: the multi-restart sweep engine
(``optimize(..., restarts=R, jobs=K)``) is timed serial vs ``--jobs 4``
on the 16x16 sweep.  The placements must be byte-identical either way;
wall-clock speedup is asserted only when the host actually has >= 4
CPUs (a 1-core container cannot speed anything up, and the parity is
the load-bearing claim).
"""

import os
import time

import pytest

from repro.core.divide_conquer import initial_solution
from repro.core.latency import RowObjective
from repro.api import SearchConfig
from repro.core.optimizer import optimize
from repro.harness.designs import EFFORTS
from repro.harness.runtime import fig7

from benchmarks.conftest import SEED, publish, sa_effort


@pytest.fixture(scope="module")
def curves():
    paper = sa_effort() == "paper"
    budgets = (1, 3, 10, 30, 100, 300, 1_000) if paper else (1, 10, 100)
    out = {8: fig7(8, link_limit=4, budgets=budgets, seed=SEED)}
    if paper:
        out[16] = fig7(16, link_limit=4, budgets=budgets, seed=SEED)
    return out


def test_fig7_initial_solution(benchmark, curves, capsys):
    text = "\n\n".join(c.render() for c in curves.values())
    publish(capsys, "fig7", text)

    for n, c in curves.items():
        dc_final = c.dc_sa[-1]
        only_final = c.only_sa[-1]
        # Final qualities are close; D&C_SA is never meaningfully worse.
        # (Divergence note, recorded in EXPERIMENTS.md: our OnlySA
        # shares the paper's valid-move generator *and* memoizes
        # evaluations, so unlike the paper's Figure 7 it can close most
        # of the gap at very large budgets.)
        assert dc_final <= only_final * 1.02
        # The paper's operative claim, time-to-quality: D&C_SA reaches
        # near-final quality at a budget no larger than OnlySA needs.
        assert c.budget_to_quality("dc_sa", 0.02) <= c.budget_to_quality(
            "only_sa", 0.02
        )

    benchmark.pedantic(
        lambda: initial_solution(8, 4, RowObjective()),
        rounds=5,
        iterations=1,
    )


def _timed_sweep(n, params, restarts, jobs):
    start = time.perf_counter()
    cfg = SearchConfig(seed=SEED, restarts=restarts, jobs=jobs)
    sweep = optimize(n, params=params, config=cfg).sweep
    return sweep, time.perf_counter() - start


def test_fig7_parallel_sweep_speedup(capsys):
    """Serial vs ``--jobs 4`` on the n=16 sweep: identical designs,
    and a real speedup wherever the host has the cores to show one."""
    paper = sa_effort() == "paper"
    n = 16 if paper else 8
    restarts = 4
    params = EFFORTS["quick" if paper else "smoke"]

    serial, t_serial = _timed_sweep(n, params, restarts, jobs=1)
    fanned, t_fanned = _timed_sweep(n, params, restarts, jobs=4)

    # The headline guarantee first: jobs is a wall-clock knob only.
    assert serial.best.placement == fanned.best.placement
    assert serial.best.placement.canonical_bytes() == (
        fanned.best.placement.canonical_bytes()
    )
    for c in serial.solutions:
        assert serial.solutions[c].placement == fanned.solutions[c].placement
        assert serial.solutions[c].energy == fanned.solutions[c].energy
    assert serial.restart_energies == fanned.restart_energies

    speedup = t_serial / t_fanned if t_fanned > 0 else float("inf")
    cores = os.cpu_count() or 1
    publish(
        capsys,
        "fig7_parallel",
        "\n".join(
            [
                f"parallel sweep speedup (n={n}, restarts={restarts}, "
                f"{cores} cpu core(s))",
                f"  serial (--jobs 1): {t_serial:8.2f} s",
                f"  fanned (--jobs 4): {t_fanned:8.2f} s",
                f"  speedup:           {speedup:8.2f}x",
                "  best placements byte-identical: yes",
            ]
        ),
    )
    if cores >= 4:
        assert speedup >= 3.0, (
            f"expected >= 3x speedup on {cores} cores, got {speedup:.2f}x"
        )


def _timed_incremental(n, params, incremental):
    start = time.perf_counter()
    cfg = SearchConfig(seed=SEED, incremental=incremental, resync_every=500)
    sweep = optimize(n, params=params, config=cfg).sweep
    return sweep, time.perf_counter() - start


def test_fig7_incremental_sweep_speedup(capsys):
    """Full-FW vs incremental pricing on the single-core sweep: the
    O(n^2) engine must return byte-identical designs, and the wall
    clock it saves is the second runtime extension beyond the paper
    (see ``bench_incremental_objective`` for the isolated kernel
    ratio -- here the sweep's decode/memo/bookkeeping overheads dilute
    it, so only a modest end-to-end gain is asserted)."""
    paper = sa_effort() == "paper"
    n = 16 if paper else 8
    params = EFFORTS["quick" if paper else "smoke"]

    full, t_full = _timed_incremental(n, params, incremental=False)
    incr, t_incr = _timed_incremental(n, params, incremental=True)

    assert full.best.placement == incr.best.placement
    for c in full.solutions:
        assert full.solutions[c].placement == incr.solutions[c].placement
        assert full.solutions[c].energy == incr.solutions[c].energy

    speedup = t_full / t_incr if t_incr > 0 else float("inf")
    publish(
        capsys,
        "fig7_incremental",
        "\n".join(
            [
                f"incremental objective speedup (n={n}, full C sweep)",
                f"  full FW:       {t_full:8.2f} s",
                f"  incremental:   {t_incr:8.2f} s",
                f"  speedup:       {speedup:8.2f}x",
                "  placements byte-identical: yes",
            ]
        ),
    )
    if paper:
        assert speedup >= 1.5, (
            f"incremental sweep only {speedup:.2f}x faster end-to-end"
        )


def test_fig7_batched_divide_conquer(capsys):
    """Population-batched Procedure I(n, C): byte-identical seed
    placement, >= 3x throughput at the paper's n=16 bridging step.

    The combine step prices the base and all O(n^2) bridging
    candidates in one Floyd-Warshall stack; the scalar baseline
    (``batch_size=1``) prices them one by one.  Equal placement,
    energy and evaluation count make the speedup purely a kernel-launch
    economy.  Quick effort checks parity only.
    """
    paper = sa_effort() == "paper"
    n, c = (16, 4) if paper else (8, 4)
    rounds = 5 if paper else 1
    # One I(16,4) run is a few ms -- time a burst per round so the
    # comparison sits well above timer granularity, and alternate the
    # modes (paired rounds) to cancel slow machine drift.
    reps = 10 if paper else 1

    best_scalar = best_batched = float("inf")
    scalar = batched = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        for _ in range(reps):
            scalar = initial_solution(n, c, RowObjective(), batch_size=1)
        best_scalar = min(best_scalar, (time.perf_counter() - t0) / reps)
        t0 = time.perf_counter()
        for _ in range(reps):
            batched = initial_solution(n, c, RowObjective())
        best_batched = min(best_batched, (time.perf_counter() - t0) / reps)

    assert batched.placement == scalar.placement
    assert batched.energy == scalar.energy
    assert batched.evaluations == scalar.evaluations

    speedup = best_scalar / best_batched
    publish(
        capsys,
        "fig7_batched_dc",
        "\n".join(
            [
                f"Procedure I({n},{c}), batched vs scalar combine "
                f"({batched.evaluations} evaluations, best of {rounds})",
                f"  scalar  (batch_size=1): {best_scalar:8.3f} s "
                f"({scalar.evaluations / best_scalar:,.0f} evals/sec)",
                f"  batched (default):      {best_batched:8.3f} s "
                f"({batched.evaluations / best_batched:,.0f} evals/sec)",
                f"  speedup:                {speedup:8.2f}x",
                "  seed placements byte-identical: yes",
            ]
        ),
        record={
            "n": n,
            "C": c,
            "evaluations": batched.evaluations,
            "scalar_wall_s": best_scalar,
            "batched_wall_s": best_batched,
            "speedup": speedup,
        },
    )
    if paper:
        assert speedup >= 3.0, (
            f"batched divide-and-conquer only {speedup:.2f}x faster"
        )
