"""Figure 7: placement quality vs normalized runtime (OnlySA vs D&C_SA).

Both schemes get equal evaluation budgets; the x axis is normalized to
the cost of the divide-and-conquer initial process I(n, 4), exactly as
in the paper.  Times Procedure I(8,4) itself, the normalization unit.
"""

import pytest

from repro.core.divide_conquer import initial_solution
from repro.core.latency import RowObjective
from repro.harness.runtime import fig7

from benchmarks.conftest import SEED, publish, sa_effort


@pytest.fixture(scope="module")
def curves():
    paper = sa_effort() == "paper"
    budgets = (1, 3, 10, 30, 100, 300, 1_000) if paper else (1, 10, 100)
    out = {8: fig7(8, link_limit=4, budgets=budgets, seed=SEED)}
    if paper:
        out[16] = fig7(16, link_limit=4, budgets=budgets, seed=SEED)
    return out


def test_fig7_initial_solution(benchmark, curves, capsys):
    text = "\n\n".join(c.render() for c in curves.values())
    publish(capsys, "fig7", text)

    for n, c in curves.items():
        dc_final = c.dc_sa[-1]
        only_final = c.only_sa[-1]
        # Final qualities are close; D&C_SA is never meaningfully worse.
        # (Divergence note, recorded in EXPERIMENTS.md: our OnlySA
        # shares the paper's valid-move generator *and* memoizes
        # evaluations, so unlike the paper's Figure 7 it can close most
        # of the gap at very large budgets.)
        assert dc_final <= only_final * 1.02
        # The paper's operative claim, time-to-quality: D&C_SA reaches
        # near-final quality at a budget no larger than OnlySA needs.
        assert c.budget_to_quality("dc_sa", 0.02) <= c.budget_to_quality(
            "only_sa", 0.02
        )

    benchmark.pedantic(
        lambda: initial_solution(8, 4, RowObjective()),
        rounds=5,
        iterations=1,
    )
