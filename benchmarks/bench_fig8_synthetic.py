"""Figure 8: synthetic traffic latency and saturation throughput, 8x8.

UR/TP/BR on Mesh, HFB and D&C_SA: low-load latency plus an injection
sweep to saturation.  Times one low-load simulation window.
"""

import pytest

from repro.harness.designs import mesh_design
from repro.harness.synthetic import _run_once, fig8

from benchmarks.conftest import SEED, publish, sa_effort


@pytest.fixture(scope="module")
def result():
    quick = sa_effort() != "paper"
    return fig8(
        n=8,
        patterns=("uniform_random",) if quick else ("uniform_random", "transpose", "bit_reverse"),
        seed=SEED,
        effort=sa_effort(),
        low_rate=1.0,
        warmup=300,
        measure=800 if quick else 1_200,
    )


def test_fig8_synthetic_traffic(benchmark, result, capsys):
    publish(capsys, "fig8", result.render())

    mesh_lat = result.avg_latency("Mesh")
    dc_lat = result.avg_latency("D&C_SA")
    hfb_lat = result.avg_latency("HFB")
    # Paper: 24.4% latency reduction vs Mesh, 16.9% vs HFB.
    assert dc_lat < mesh_lat
    assert dc_lat < hfb_lat

    mesh_thr = result.avg_throughput("Mesh")
    hfb_thr = result.avg_throughput("HFB")
    dc_thr = result.avg_throughput("D&C_SA")
    # Paper: Mesh throughput highest; HFB below half of Mesh; D&C_SA
    # recovers a large part (>= 3/4 of Mesh, > HFB).
    assert mesh_thr >= dc_thr * 0.95
    assert dc_thr > hfb_thr
    assert dc_thr >= 0.55 * mesh_thr

    benchmark.pedantic(
        lambda: _run_once(
            mesh_design(8), "uniform_random", 8, 1.0, SEED, warmup=200, measure=500
        ),
        rounds=2,
        iterations=1,
    )
