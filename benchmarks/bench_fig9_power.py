"""Figure 9: router power per PARSEC benchmark (static + dynamic).

Reuses the Figure 6 campaign's activity counters and times the power
model evaluation itself.
"""

from repro.harness.designs import mesh_design
from repro.harness.tables import pct_change
from repro.power.model import power_report
from repro.sim.config import SimConfig

from benchmarks.conftest import publish


def test_fig9_power_model(benchmark, campaign, capsys):
    publish(capsys, "fig9", campaign.render_fig9())

    mesh_total = campaign.total_power("Mesh")
    dc_total = campaign.total_power("D&C_SA")
    mesh_dyn = campaign.dynamic_power("Mesh")
    dc_dyn = campaign.dynamic_power("D&C_SA")

    # Paper Section 5.5: total power down ~10.4% vs Mesh, dynamic down
    # ~15.1%, static roughly equal (within 10%), static ~ 2/3 of total.
    assert dc_total < mesh_total
    assert pct_change(dc_dyn, mesh_dyn) > 8.0
    static_gap = abs(campaign.static_power("D&C_SA") - campaign.static_power("Mesh"))
    assert static_gap / campaign.static_power("Mesh") < 0.10
    assert campaign.static_power("Mesh") / mesh_total > 0.5

    # Time the power-model evaluation kernel.
    cell = campaign.cells[(campaign.benchmarks[0], "Mesh")]
    topo = mesh_design(8).topology
    cfg = SimConfig(flit_bits=256)
    activity = {
        "buffer_writes": 100_000,
        "buffer_reads": 100_000,
        "crossbar_traversals": 100_000,
        "link_flit_hops": 150_000,
    }
    benchmark(lambda: power_report(topo, cfg, activity, cycles=10_000))
    assert cell.power.total_w > 0
