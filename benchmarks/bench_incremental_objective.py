"""Incremental vs full objective pricing: the tentpole speedup claim.

One SA move prices one candidate placement.  The full path decodes the
connection matrix and runs a from-scratch directional Floyd-Warshall
(O(n^3)); the incremental engine applies the move's link diff as an
O(n^2) block rewrite.  This bench drives both over the *same* recorded
move sequence and reports moves/sec, asserting the engine's >= 3x
advantage at the paper's n = 16 scale -- with byte-identical energies,
so the speed is free.

Timing discipline: the two modes alternate in paired rounds and the
per-mode best-of-rounds is compared, which cancels the machine's slow
drift (turbo, thermal, background load) that a sequential A-then-B
layout folds into the ratio.
"""

import time
from collections import Counter

import numpy as np
import pytest

from repro.core.connection_matrix import ConnectionMatrix
from repro.core.latency import RowObjective
from repro.harness.tables import render_table

from benchmarks.conftest import SEED, publish, sa_effort

N = 16
LIMIT = 3
MOVES = 400
ROUNDS = 7


def record_walk(n, limit, moves, seed):
    """A reproducible SA-shaped walk: (matrix states, flip sites)."""
    rng = np.random.default_rng(seed)
    m = ConnectionMatrix.random(n, limit, rng=rng)
    sites = [m.random_move(rng) for _ in range(moves)]
    return m, sites


def run_full(start, sites, objective):
    """Full pricing: flip, decode, O(n^3) evaluate -- per move."""
    m = start.copy()
    energies = []
    t0 = time.perf_counter()
    for row, layer in sites:
        m.flip(row, layer)
        energies.append(objective(m.decode()))
    return time.perf_counter() - t0, energies


def run_incremental(start, sites, objective):
    """Engine pricing: flip diff -> O(n^2) block rewrite -- per move."""
    m = start.copy()
    evaluator = objective.incremental_evaluator(m.decode())
    engine = evaluator.engine
    counts = Counter(
        link
        for layer in range(m.bits.shape[1])
        for link in m.layer_links(layer)
    )
    energies = []
    t0 = time.perf_counter()
    for row, layer in sites:
        added, removed = m.flip_diff(row, layer)
        m.flip(row, layer)
        changes = []
        for link in removed:
            counts[link] -= 1
            if counts[link] == 0:
                changes.append((link[0], link[1], False))
        for link in added:
            counts[link] += 1
            if counts[link] == 1:
                changes.append((link[0], link[1], True))
        if changes:
            engine.apply_link_changes(changes)
        energies.append(evaluator.energy())
    return time.perf_counter() - t0, energies


@pytest.fixture(scope="module")
def paired_timing():
    objective = RowObjective()
    start, sites = record_walk(N, LIMIT, MOVES, SEED)
    best_full = best_incr = float("inf")
    full_energies = incr_energies = None
    for _ in range(ROUNDS):
        t, full_energies = run_full(start, sites, objective)
        best_full = min(best_full, t)
        t, incr_energies = run_incremental(start, sites, objective)
        best_incr = min(best_incr, t)
    return best_full, best_incr, full_energies, incr_energies


def test_energies_byte_identical(paired_timing):
    _, _, full_energies, incr_energies = paired_timing
    assert incr_energies == full_energies


def test_incremental_speedup(paired_timing, capsys):
    best_full, best_incr, _, _ = paired_timing
    speedup = best_full / best_incr
    rows = [
        ["full FW", f"{MOVES / best_full:,.0f}", f"{1e6 * best_full / MOVES:.1f}"],
        ["incremental", f"{MOVES / best_incr:,.0f}", f"{1e6 * best_incr / MOVES:.1f}"],
        ["speedup", f"{speedup:.2f}x", ""],
    ]
    publish(
        capsys,
        "bench_incremental_objective",
        render_table(
            f"Objective pricing, n={N}, C={LIMIT} "
            f"({MOVES} moves, best of {ROUNDS} paired rounds)",
            ["mode", "moves/sec", "us/move"],
            rows,
        ),
        record={
            "n": N,
            "C": LIMIT,
            "moves": MOVES,
            "full_wall_s": best_full,
            "incremental_wall_s": best_incr,
            "speedup": speedup,
        },
    )
    assert speedup >= 3.0, (
        f"incremental pricing only {speedup:.2f}x faster than full FW"
    )


def test_speedup_grows_with_n(capsys):
    """O(n^3) vs O(n^2): the gap must widen from n=8 to n=16."""
    if sa_effort() != "paper":
        pytest.skip("paper effort only")
    objective = RowObjective()
    ratios = {}
    for n in (8, 16):
        start, sites = record_walk(n, LIMIT, 200, SEED + n)
        best_full = best_incr = float("inf")
        for _ in range(5):
            best_full = min(best_full, run_full(start, sites, objective)[0])
            best_incr = min(
                best_incr, run_incremental(start, sites, objective)[0]
            )
        ratios[n] = best_full / best_incr
    assert ratios[16] > ratios[8]


def test_population_batched_pricing(capsys):
    """Batched ``evaluate_many`` vs a scalar pricing loop on one
    recorded population: byte-identical energies, and the measured
    throughput gain of replacing B kernel launches with one
    ``(2B, n, n)`` stack."""
    objective_scalar = RowObjective()
    objective_batched = RowObjective()
    rng = np.random.default_rng(SEED)
    population = [
        ConnectionMatrix.random(N, LIMIT, rng=rng).decode() for _ in range(MOVES)
    ]

    best_scalar = best_batched = float("inf")
    scalar_energies = batched_energies = None
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        scalar_energies = [objective_scalar(p) for p in population]
        best_scalar = min(best_scalar, time.perf_counter() - t0)
        t0 = time.perf_counter()
        batched_energies = [
            float(v) for v in objective_batched.evaluate_many(population)
        ]
        best_batched = min(best_batched, time.perf_counter() - t0)

    assert batched_energies == scalar_energies

    speedup = best_scalar / best_batched
    rows = [
        ["scalar loop", f"{MOVES / best_scalar:,.0f}", f"{1e6 * best_scalar / MOVES:.1f}"],
        ["evaluate_many", f"{MOVES / best_batched:,.0f}", f"{1e6 * best_batched / MOVES:.1f}"],
        ["speedup", f"{speedup:.2f}x", ""],
    ]
    publish(
        capsys,
        "bench_population_pricing",
        render_table(
            f"Population pricing, n={N}, C={LIMIT} "
            f"({MOVES} placements, best of {ROUNDS} paired rounds)",
            ["mode", "placements/sec", "us/placement"],
            rows,
        ),
        record={
            "n": N,
            "C": LIMIT,
            "population": MOVES,
            "scalar_wall_s": best_scalar,
            "batched_wall_s": best_batched,
            "speedup": speedup,
        },
    )
    # The gate lives on the exhaustive / D&C benches (fig12 / fig7);
    # here raw pricing has no enumeration overhead to amortize, so any
    # regression below parity is the red flag.
    assert speedup >= 1.0, f"batched pricing slower than scalar ({speedup:.2f}x)"
