"""Native vs vectorized kernel tiers: the compiled-hot-path claim.

The ``impl="native"`` tier replaces the batched NumPy Floyd-Warshall
relaxation (which materializes an ``(B, n, n)`` broadcast temporary
per ``k``) with compiled triple loops, and the incremental engine's
crossing-block rewrite with a single fused C/numba pass.  This bench
times the two tiers over identical inputs on a grid of problem scales
and asserts the headline: **>= 3x on at least one n >= 32 leg**, with
byte-identical outputs on every leg, so the speed is free.

Timing discipline mirrors ``bench_incremental_objective``: tiers
alternate in paired best-of rounds to cancel machine drift, and the
native backend is warmed up (JIT / one-time C build) *before* any
timed region, so compile time is excluded by construction -- the same
contract the runtime seam keeps via per-worker ``native.warmup()``.

Skipped wholesale when no native backend (numba or a C toolchain)
is available.
"""

import time
from collections import Counter

import numpy as np
import pytest

from repro.core.connection_matrix import ConnectionMatrix
from repro.core.latency import RowObjective
from repro.harness.tables import render_table
from repro.routing import native
from repro.routing.impls import available_impls
from repro.routing.shortest_path import (
    HopCostModel,
    batched_mean_distances,
    floyd_warshall_batch,
    floyd_warshall_distances_batch,
    weight_stack_population,
)

from benchmarks.conftest import SEED, publish, sa_effort

pytestmark = pytest.mark.skipif(
    "native" not in available_impls(),
    reason="no native backend (numba or C toolchain) available",
)

#: (n, B) legs for the Floyd-Warshall stacks; the paper-effort grid
#: covers the claim's n >= 32 scales, quick keeps CI cheap.
PAPER_GRID = [(16, 64), (16, 256), (32, 64), (32, 256), (64, 64), (64, 256)]
QUICK_GRID = [(16, 64), (32, 64)]

ROUNDS = 5
WALK_N = 32
WALK_MOVES = 200


def grid():
    return PAPER_GRID if sa_effort() == "paper" else QUICK_GRID


def rounds():
    return ROUNDS if sa_effort() == "paper" else 2


def random_stack(n, b, seed):
    """A population-shaped ``(2B, n, n)`` directional weight stack."""
    rng = np.random.default_rng(seed)
    pop = [
        ConnectionMatrix.random(n, 4, rng).decode() for _ in range(b)
    ]
    return weight_stack_population(pop, HopCostModel()), pop


def paired_best(run_native, run_vectorized):
    """Best-of paired rounds; returns (native_s, vectorized_s, outputs)."""
    best_nat = best_vec = float("inf")
    out_nat = out_vec = None
    for _ in range(rounds()):
        t0 = time.perf_counter()
        out_nat = run_native()
        best_nat = min(best_nat, time.perf_counter() - t0)
        t0 = time.perf_counter()
        out_vec = run_vectorized()
        best_vec = min(best_vec, time.perf_counter() - t0)
    return best_nat, best_vec, out_nat, out_vec


@pytest.fixture(scope="module", autouse=True)
def warm_backend():
    # JIT / one-time C build happens here, outside every timed region.
    native.warmup()


@pytest.fixture(scope="module")
def fw_legs():
    legs = []
    for n, b in grid():
        stack, _ = random_stack(n, b, SEED + n + b)
        nat_s, vec_s, d_nat, d_vec = paired_best(
            lambda: floyd_warshall_distances_batch(stack, impl="native"),
            lambda: floyd_warshall_distances_batch(stack, impl="vectorized"),
        )
        assert np.array_equal(d_nat, d_vec), f"distance mismatch n={n} B={b}"
        legs.append(("fw_dist", n, b, nat_s, vec_s))

        nat_s, vec_s, p_nat, p_vec = paired_best(
            lambda: floyd_warshall_batch(stack[:2], impl="native"),
            lambda: floyd_warshall_batch(stack[:2], impl="vectorized"),
        )
        assert np.array_equal(p_nat[0], p_vec[0])
        assert np.array_equal(p_nat[1], p_vec[1]), f"next-hop mismatch n={n}"
        legs.append(("fw_nexthop", n, 1, nat_s, vec_s))
    return legs


def walk_leg():
    """An SA-shaped incremental walk priced by each engine tier."""
    rng = np.random.default_rng(SEED)
    m = ConnectionMatrix.random(WALK_N, 4, rng=rng)
    flips = [m.random_move(rng) for _ in range(WALK_MOVES)]

    def run(impl):
        objective = RowObjective(impl=impl)
        work = m.copy()
        evaluator = objective.incremental_evaluator(work.decode())
        engine = evaluator.engine
        counts = Counter(
            link
            for layer in range(work.bits.shape[1])
            for link in work.layer_links(layer)
        )
        energies = []
        t0 = time.perf_counter()
        for row, layer in flips:
            added, removed = work.flip_diff(row, layer)
            work.flip(row, layer)
            changes = []
            for link in removed:
                counts[link] -= 1
                if counts[link] == 0:
                    changes.append((link[0], link[1], False))
            for link in added:
                counts[link] += 1
                if counts[link] == 1:
                    changes.append((link[0], link[1], True))
            if changes:
                engine.apply_link_changes(changes)
            energies.append(evaluator.energy())
        return time.perf_counter() - t0, energies

    best_nat = best_vec = float("inf")
    e_nat = e_vec = None
    for _ in range(rounds()):
        t, e_nat = run("native")
        best_nat = min(best_nat, t)
        t, e_vec = run("vectorized")
        best_vec = min(best_vec, t)
    assert e_nat == e_vec, "incremental walk energies diverge across tiers"
    return "incremental_walk", WALK_N, WALK_MOVES, best_nat, best_vec


def population_leg():
    """Whole-population pricing through ``batched_mean_distances``."""
    n, b = (32, 64) if sa_effort() == "paper" else (16, 64)
    _, pop = random_stack(n, b, SEED + 7)
    nat_s, vec_s, m_nat, m_vec = paired_best(
        lambda: batched_mean_distances(pop, impl="native"),
        lambda: batched_mean_distances(pop, impl="vectorized"),
    )
    assert np.array_equal(m_nat, m_vec), "population means diverge"
    return "population", n, b, nat_s, vec_s


def test_native_kernel_speedups(fw_legs, capsys):
    legs = list(fw_legs)
    legs.append(population_leg())
    legs.append(walk_leg())

    rows, record_legs = [], []
    for kind, n, b, nat_s, vec_s in legs:
        speedup = vec_s / nat_s
        rows.append([
            kind, str(n), str(b),
            f"{1e3 * vec_s:.2f}", f"{1e3 * nat_s:.2f}", f"{speedup:.2f}x",
        ])
        record_legs.append({
            "kind": kind, "n": n, "B": b,
            "vectorized_wall_s": vec_s, "native_wall_s": nat_s,
            "speedup": speedup,
        })

    publish(
        capsys,
        "bench_native_kernels",
        render_table(
            f"Native ({native.backend_name()}) vs vectorized kernels "
            f"(best of {rounds()} paired rounds, byte-identical outputs)",
            ["leg", "n", "B", "numpy ms", "native ms", "speedup"],
            rows,
        ),
        record={"backend": native.backend_name(), "legs": record_legs},
    )

    big = [leg for leg in record_legs if leg["n"] >= 32]
    assert big, "grid must include an n >= 32 leg"
    best = max(leg["speedup"] for leg in big)
    assert best >= 3.0, (
        f"native tier only {best:.2f}x faster at n >= 32 "
        f"(backend {native.backend_name()})"
    )


def test_outputs_identical_on_every_grid_point(capsys):
    """Identity is asserted on all legs even if timing ever regresses."""
    for n, b in grid():
        stack, _ = random_stack(n, min(b, 32), SEED - n)
        assert np.array_equal(
            floyd_warshall_distances_batch(stack, impl="native"),
            floyd_warshall_distances_batch(stack, impl="vectorized"),
        )
