"""Observability overhead: the no-sink instrumented path must be free.

Every instrumented entry point guards event construction behind
``obs.enabled`` and metrics work behind ``obs.is_null``, so a run with
no sink attached -- which is exactly what ``--ledger`` alone creates --
should cost a handful of attribute reads per move and nothing else.
This bench times the full SA loop at the paper's n = 16 scale twice
over identical move streams: once with ``obs=None`` (the stripped
baseline, the shared NULL instance) and once with a sink-less
``Instrumentation`` (metrics fill at stage boundaries, no events), and
gates the overhead at 2%.

Timing discipline matches ``bench_incremental_objective``: the two
modes alternate in paired rounds and per-mode best-of-rounds is
compared, cancelling slow machine drift.  Results are byte-identical
by construction (instrumentation never touches an RNG stream) and the
bench asserts that too -- an overhead number is only meaningful when
both sides did the same work.
"""

import time

import numpy as np
import pytest

from repro.core.annealing import AnnealingParams, anneal
from repro.core.connection_matrix import ConnectionMatrix
from repro.core.latency import RowObjective
from repro.harness.tables import render_table
from repro.obs import Instrumentation

from benchmarks.conftest import SEED, publish, sa_effort

N = 16
LIMIT = 3
ROUNDS = 7

#: Gate from the issue: sink-less instrumentation within 2% of stripped.
MAX_OVERHEAD = 0.02


def run_once(obs):
    matrix = ConnectionMatrix.random(N, LIMIT, np.random.default_rng(SEED))
    params = AnnealingParams(
        total_moves=2_000 if sa_effort() == "paper" else 500,
        moves_per_cooldown=500 if sa_effort() == "paper" else 125,
    )
    t0 = time.perf_counter()
    result = anneal(
        matrix,
        RowObjective(),
        params=params,
        rng=np.random.default_rng(SEED + 1),
        obs=obs,
    )
    return time.perf_counter() - t0, result


@pytest.fixture(scope="module")
def paired_timing():
    best_stripped = best_instrumented = float("inf")
    stripped = instrumented = None
    for _ in range(ROUNDS):
        t, stripped = run_once(obs=None)
        best_stripped = min(best_stripped, t)
        t, instrumented = run_once(obs=Instrumentation())  # no sink
        best_instrumented = min(best_instrumented, t)
    return best_stripped, best_instrumented, stripped, instrumented


def test_results_byte_identical(paired_timing):
    _, _, stripped, instrumented = paired_timing
    assert instrumented.best_energy == stripped.best_energy
    assert instrumented.best_placement == stripped.best_placement
    assert instrumented.trace == stripped.trace
    assert instrumented.accepted_moves == stripped.accepted_moves


def test_no_sink_overhead_within_gate(paired_timing, capsys):
    best_stripped, best_instrumented, _, _ = paired_timing
    overhead = best_instrumented / best_stripped - 1.0
    rows = [
        ["stripped (obs=None)", f"{best_stripped * 1e3:.2f}"],
        ["instrumented, no sink", f"{best_instrumented * 1e3:.2f}"],
        ["overhead", f"{overhead * 100:+.2f}%"],
    ]
    publish(
        capsys,
        "bench_obs_overhead",
        render_table(
            f"Observability overhead, SA n={N}, C={LIMIT} "
            f"(best of {ROUNDS} paired rounds)",
            ["mode", "wall ms"],
            rows,
        ),
        record={
            "n": N,
            "C": LIMIT,
            "stripped_wall_s": best_stripped,
            "instrumented_wall_s": best_instrumented,
            "overhead_fraction": overhead,
        },
    )
    assert overhead <= MAX_OVERHEAD, (
        f"no-sink instrumentation costs {overhead * 100:.2f}% "
        f"(gate: {MAX_OVERHEAD * 100:.0f}%)"
    )
