"""Pareto co-design fronts: size, hypervolume and pricing throughput.

Sweeps the latency/power front for the paper's 8x8 mesh across
C in {2, 3, 4} under uniform and PARSEC-modeled (blackscholes)
traffic, publishing front size and hypervolume per scenario as the
machine-readable twin -- the regression signal for the multi-objective
layer (a shrinking hypervolume at fixed seed and budget means the
search got worse).  Times the batched vector-pricing kernel.
"""

import pytest

from repro.api import SearchConfig
from repro.core.annealing import AnnealingParams
from repro.core.pareto import ParetoPricer, ParetoSpec, pareto_front
from repro.harness.tables import render_table
from repro.topology.row import RowPlacement
from repro.traffic.parsec import PARSEC_WORKLOADS, workload_gamma

from benchmarks.conftest import SEED, publish, sa_effort

LIMITS = (2, 3, 4)


@pytest.fixture(scope="module")
def fronts():
    paper = sa_effort() == "paper"
    params = (
        None if paper
        else AnnealingParams(total_moves=1_500, moves_per_cooldown=300)
    )
    config = SearchConfig(seed=SEED)
    scenarios = {}
    for traffic in ("uniform", "blackscholes"):
        gamma = (
            None if traffic == "uniform"
            else workload_gamma(PARSEC_WORKLOADS[traffic], 8)
        )
        scenarios[traffic] = {
            c: pareto_front(
                8, c, objectives=("latency", "power"), driver="epsilon",
                gamma=gamma, params=params, config=config,
                points=5 if paper else 2,
            )
            for c in LIMITS
        }
    return scenarios


def test_pareto_fronts(benchmark, fronts, capsys):
    rows = []
    record = {"n": 8, "objectives": ["latency", "power"], "scenarios": {}}
    for traffic, per_c in fronts.items():
        for c, front in sorted(per_c.items()):
            hv = front.hypervolume()
            rows.append([
                traffic, c, len(front.points), front.evaluations,
                f"{hv:.6g}",
                f"{min(p.values[0] for p in front.points):.4f}",
                f"{min(p.values[1] for p in front.points):.4f}",
            ])
            record["scenarios"].setdefault(traffic, {})[str(c)] = {
                "front_size": len(front.points),
                "evaluations": front.evaluations,
                "hypervolume": hv,
                "best_latency": min(p.values[0] for p in front.points),
                "best_power_w": min(p.values[1] for p in front.points),
            }
    text = render_table(
        "8x8 latency/power Pareto fronts (epsilon driver)",
        ["traffic", "C", "front", "priced", "hypervolume",
         "best L_D", "best W"],
        rows,
    )
    publish(capsys, "pareto_fronts", text, record)

    for per_c in fronts.values():
        for front in per_c.values():
            assert front.points
            # A real tradeoff: more than one nondominated point, and
            # the dominated volume is nonzero.
            assert len(front.points) >= 2
            assert front.hypervolume() > 0

    spec = ParetoSpec(
        n=8, link_limit=2, objectives=("latency", "power"),
    )
    population = [RowPlacement.mesh(8)] + [
        RowPlacement(8, frozenset({(0, k)})) for k in range(2, 8)
    ]

    def price_cold():
        ParetoPricer(spec).price_many(population)

    benchmark(price_cold)
