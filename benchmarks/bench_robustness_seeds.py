"""Seed-robustness study: the optimizer's spread across random seeds.

Companion to Section 5.3 ("to reduce the randomness in simulated
annealing, the figure shows the average results"): quantifies how much
randomness there is to reduce.  D&C_SA's seeding makes it markedly more
stable than OnlySA at the same budget.
"""

import pytest

from repro.core.annealing import AnnealingParams
from repro.core.branch_bound import exhaustive_matrix_search
from repro.core.latency import RowObjective
from repro.harness.robustness import seed_robustness

from benchmarks.conftest import publish, sa_effort


@pytest.fixture(scope="module")
def study():
    params = (
        AnnealingParams(total_moves=4_000, moves_per_cooldown=800)
        if sa_effort() == "paper"
        else AnnealingParams(total_moves=800, moves_per_cooldown=200)
    )
    seeds = tuple(range(10 if sa_effort() == "paper" else 5))
    return {
        (8, 4): seed_robustness(8, 4, seeds=seeds, params=params),
        (16, 4): seed_robustness(16, 4, seeds=seeds, params=params),
    }


def test_seed_robustness(benchmark, study, capsys):
    text = "\n\n".join(r.render() for r in study.values())
    publish(capsys, "robustness_seeds", text)

    # D&C_SA's worst seed stays near its best (tight spread), and its
    # mean is never worse than OnlySA's at the same budget.
    for result in study.values():
        dc = result.spreads["dc_sa"]
        only = result.spreads["only_sa"]
        assert dc.worst_gap_percent < 8.0
        assert dc.mean <= only.mean * 1.01
        assert dc.std <= only.std + 1e-9

    # On the instance with a known optimum, every D&C_SA seed lands
    # within 3% of it.
    exact = exhaustive_matrix_search(8, 4, RowObjective())
    dc84 = study[(8, 4)].spreads["dc_sa"]
    assert dc84.worst <= exact.energy * 1.03

    params = AnnealingParams(total_moves=800, moves_per_cooldown=200)
    benchmark.pedantic(
        lambda: seed_robustness(8, 4, seeds=(0, 1), params=params),
        rounds=2,
        iterations=1,
    )
