"""Section 5.6.4: application-aware placement extra reduction.

With per-benchmark traffic matrices known in advance, re-optimizing
each row/column buys an additional head-latency reduction (paper:
~18.1% on average).  Times the weighted-latency evaluation kernel.
"""

import pytest

from repro.core.annealing import AnnealingParams
from repro.core.application_aware import weighted_average_head_latency
from repro.harness.appaware import app_aware
from repro.topology.mesh import MeshTopology
from repro.topology.row import RowPlacement
from repro.traffic.parsec import PARSEC_NAMES, PARSEC_WORKLOADS, workload_gamma

from benchmarks.conftest import SEED, publish, sa_effort


@pytest.fixture(scope="module")
def result():
    paper = sa_effort() == "paper"
    return app_aware(
        n=8,
        benchmarks=PARSEC_NAMES if paper else PARSEC_NAMES[:3],
        seed=SEED,
        effort=sa_effort(),
        params=None if paper else AnnealingParams(total_moves=1_500, moves_per_cooldown=300),
    )


def test_sec564_app_aware(benchmark, result, capsys):
    publish(capsys, "sec564_app_aware", result.render())

    # Traffic knowledge must help on every benchmark and meaningfully
    # on average.  Divergence note (EXPERIMENTS.md): the paper reports
    # 18.1% extra from real full-system traffic; our synthetic PARSEC
    # matrices are less skewed, yielding single-digit extra reductions
    # -- on strongly skewed matrices the same optimizer recovers >20%
    # (tested in tests/core/test_application_aware.py).
    for row in result.rows:
        assert row.aware_head <= row.general_head + 1e-6
    assert result.average_extra_reduction > 2.5

    gamma = workload_gamma(PARSEC_WORKLOADS["dedup"], 8)
    topo = MeshTopology.uniform(RowPlacement.mesh(8))
    benchmark(lambda: weighted_average_head_latency(topo, gamma))
