"""Serving-layer cache effectiveness: cold search vs exact hit.

The design cache's pitch is that a repeated ``POST /place`` costs a
disk read instead of a full SA sweep.  This bench drives the in-process
app (no socket, so the numbers isolate the cache from HTTP framing)
through one cold request, a burst of exact hits, and one warm-started
near miss, then gates the exact-hit path at a 10x latency reduction
over the cold search.

Accounting discipline: the cache counters must classify *every* place
request (``hit + miss + warm + coalesced == requests``) -- a speedup
number is only meaningful when no request bypassed the path being
measured.  The exact hit is also asserted byte-identical to the cold
result, so the speedup is not traded against fidelity.
"""

import asyncio
import json
import time

import pytest

from repro.harness.tables import render_table
from repro.serve.server import ServeApp
from repro.serve.store import DesignStore

from benchmarks.conftest import SEED, publish, sa_effort

N = 8
HIT_ROUNDS = 25

#: Gate from the issue: a served exact hit must be >= 10x faster than
#: the cold search it replaces.
MIN_SPEEDUP = 10.0


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    store = DesignStore(str(tmp_path_factory.mktemp("designs")))
    app = ServeApp(store, default_effort=sa_effort(), default_seed=SEED)
    body = json.dumps({"n": N}).encode()
    warm_body = json.dumps({"n": N, "config": {"seed": SEED + 1}}).encode()

    async def scenario():
        timings = {}
        t0 = time.perf_counter()
        status, _, data, _ = await app.handle("POST", "/place", body)
        timings["cold_s"] = time.perf_counter() - t0
        cold = json.loads(data)
        assert status == 200 and cold["cache"] == "miss"

        best_hit = float("inf")
        for _ in range(HIT_ROUNDS):
            t0 = time.perf_counter()
            status, _, data, _ = await app.handle("POST", "/place", body)
            best_hit = min(best_hit, time.perf_counter() - t0)
        hit = json.loads(data)
        assert status == 200 and hit["cache"] == "hit"
        timings["hit_s"] = best_hit

        t0 = time.perf_counter()
        status, _, data, _ = await app.handle("POST", "/place", warm_body)
        timings["warm_s"] = time.perf_counter() - t0
        warm = json.loads(data)
        assert status == 200 and warm["cache"] == "warm"
        return timings, cold, hit, warm

    outcome = asyncio.run(scenario())
    yield app, outcome
    app.executor.shutdown(wait=True)


def test_exact_hit_is_byte_identical(served):
    _, (_, cold, hit, _) = served
    assert hit["result"] == cold["result"]
    assert hit["result_digest"] == cold["result_digest"]
    assert hit["key"] == cold["key"]


def test_counters_account_for_every_request(served):
    app, _ = served
    counters = app.metrics.snapshot()["counters"]
    classified = sum(
        counters.get(f"serve.cache.{c}", 0)
        for c in ("hit", "miss", "warm", "coalesced")
    )
    assert classified == counters["serve.request.place"]
    assert counters["serve.cache.miss"] == 1
    assert counters["serve.cache.hit"] == HIT_ROUNDS
    assert counters["serve.cache.warm"] == 1


def test_warm_start_recorded_with_provenance(served):
    app, (_, cold, _, warm) = served
    assert warm["warm_from"] == cold["key"]
    assert app.store.get(warm["key"]).warm_from == cold["key"]


def test_exact_hit_speedup_gate(served, capsys):
    app, (timings, cold, _, warm) = served
    counters = app.metrics.snapshot()["counters"]
    speedup = timings["cold_s"] / timings["hit_s"]
    warm_ratio = timings["cold_s"] / timings["warm_s"]
    rows = [
        ["cold search (miss)", f"{timings['cold_s'] * 1e3:.2f}", "1.0x"],
        [f"exact hit (best of {HIT_ROUNDS})",
         f"{timings['hit_s'] * 1e3:.2f}", f"{speedup:.0f}x"],
        ["warm-started near miss",
         f"{timings['warm_s'] * 1e3:.2f}", f"{warm_ratio:.1f}x"],
    ]
    publish(
        capsys,
        "bench_serve_cache",
        render_table(
            f"Design-cache serving latency, /place n={N} "
            f"({sa_effort()} effort)",
            ["request path", "wall ms", "vs cold"],
            rows,
        ),
        record={
            "n": N,
            "effort": sa_effort(),
            "cold_s": timings["cold_s"],
            "hit_s": timings["hit_s"],
            "warm_s": timings["warm_s"],
            "hit_speedup": speedup,
            "requests": counters["serve.request.place"],
            "hits": counters["serve.cache.hit"],
            "misses": counters["serve.cache.miss"],
            "warm": counters["serve.cache.warm"],
            "coalesced": counters.get("serve.cache.coalesced", 0),
            "cold_key": cold["key"],
            "warm_key": warm["key"],
        },
    )
    assert speedup >= MIN_SPEEDUP, (
        f"exact-hit path is only {speedup:.1f}x faster than cold "
        f"(gate: {MIN_SPEEDUP:.0f}x)"
    )
