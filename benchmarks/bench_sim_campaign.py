"""Simulation engine and campaign benchmarks.

Two runtime extensions beyond the paper are measured here:

* the active-set cycle engine vs the poll-everything reference engine
  on the same run (byte-identical ``LatencySummary`` required; the
  speedup gate is algorithmic, so it holds on any core count), and
* the parallel campaign layer (``run_campaign(grid, jobs=K)``) vs the
  serial loop (identical results required always; wall-clock speedup
  asserted only where the host has the cores to show one).

The published table also records the idle-skip counter on a sparse
trace -- the second mechanism (besides the active sets) that makes
lightly loaded runs cheap.
"""

import os
import time
from dataclasses import asdict

from repro.harness.designs import mesh_design
from repro.sim.campaign import campaign_grid, run_campaign
from repro.sim.config import SimConfig
from repro.sim.engine import Simulator
from repro.topology.mesh import MeshTopology
from repro.traffic.injection import SyntheticTraffic, TraceTraffic
from repro.traffic.patterns import make_pattern

from benchmarks.conftest import SEED, publish, sa_effort

ROUNDS = 5 if sa_effort() == "paper" else 2


def _timed_run(topo, cfg, traffic_factory, engine):
    best = float("inf")
    result = None
    for _ in range(ROUNDS):
        sim = Simulator(topo, cfg, traffic_factory(), engine=engine)
        start = time.perf_counter()
        result = sim.run()
        best = min(best, time.perf_counter() - start)
    return result, best


def test_active_engine_speedup(capsys):
    """Active-set vs reference engine, n=8 uniform random at low load:
    identical summaries, >= 2x serial speedup (measured ~4x)."""
    topo = MeshTopology.mesh(8)
    cfg = SimConfig(
        warmup_cycles=300, measure_cycles=1_000, max_cycles=8_000, seed=SEED
    )

    def traffic():
        return SyntheticTraffic(
            make_pattern("uniform_random", 8), 0.005, rng=SEED
        )

    active, t_active = _timed_run(topo, cfg, traffic, "active")
    reference, t_reference = _timed_run(topo, cfg, traffic, "reference")

    # The load-bearing claim first: same run, byte for byte.
    a, r = asdict(active), asdict(reference)
    a.pop("cycles_skipped")
    r.pop("cycles_skipped")
    assert a == r

    # Idle-skip showcase: a sparse trace where the network sleeps
    # between bursts; the skip counter covers most of the window.
    trace_cfg = SimConfig(
        warmup_cycles=0, measure_cycles=6_000, max_cycles=20_000, seed=SEED
    )
    events = [(t, 0, 63, 256) for t in (0, 2_000, 5_500)]
    skip_run, t_skip = _timed_run(
        topo, trace_cfg, lambda: TraceTraffic(events), "active"
    )
    _, t_noskip = _timed_run(
        topo, trace_cfg, lambda: TraceTraffic(events), "reference"
    )

    speedup = t_reference / t_active if t_active > 0 else float("inf")
    skip_speedup = t_noskip / t_skip if t_skip > 0 else float("inf")
    publish(
        capsys,
        "sim_engine_speedup",
        "\n".join(
            [
                "active-set engine vs reference (n=8, uniform random, "
                "0.005 packets/node/cycle)",
                f"  reference engine: {t_reference * 1e3:8.1f} ms",
                f"  active engine:    {t_active * 1e3:8.1f} ms",
                f"  speedup:          {speedup:8.2f}x",
                "  summaries byte-identical: yes",
                "",
                "idle-skip on a 3-burst trace (6000-cycle window)",
                f"  cycles skipped:   {skip_run.cycles_skipped:8d}"
                f" of {skip_run.cycles_run}",
                f"  reference engine: {t_noskip * 1e3:8.1f} ms",
                f"  active engine:    {t_skip * 1e3:8.1f} ms",
                f"  speedup:          {skip_speedup:8.2f}x",
            ]
        ),
    )
    assert speedup >= 2.0, f"active engine only {speedup:.2f}x faster"
    assert skip_run.cycles_skipped > 4_000


def test_parallel_campaign_speedup(capsys):
    """Serial vs ``jobs=2`` campaign over a design x pattern x rate
    grid: results identical always, speedup asserted only with >= 2
    cores (a 1-core container cannot speed anything up; the parity is
    the load-bearing claim)."""
    paper = sa_effort() == "paper"
    grid = campaign_grid(
        designs=[mesh_design(8)],
        patterns=["uniform_random", "transpose"],
        rates=[0.32, 0.64, 1.28] if paper else [0.32, 0.64],
        base_seed=SEED,
        seeds_per_point=2 if paper else 1,
    )

    start = time.perf_counter()
    serial = run_campaign(grid, jobs=1)
    t_serial = time.perf_counter() - start
    start = time.perf_counter()
    fanned = run_campaign(grid, jobs=2)
    t_fanned = time.perf_counter() - start

    for a, b in zip(serial.results, fanned.results):
        assert a.key == b.key
        assert asdict(a.run) == asdict(b.run)

    speedup = t_serial / t_fanned if t_fanned > 0 else float("inf")
    cores = os.cpu_count() or 1
    publish(
        capsys,
        "sim_campaign_parallel",
        "\n".join(
            [
                f"parallel campaign speedup ({len(grid)} runs, "
                f"{cores} cpu core(s))",
                f"  serial (--jobs 1): {t_serial:8.2f} s",
                f"  fanned (--jobs 2): {t_fanned:8.2f} s",
                f"  speedup:           {speedup:8.2f}x",
                "  results byte-identical: yes",
            ]
        ),
    )
    if cores >= 2:
        assert speedup >= 1.3, (
            f"expected >= 1.3x speedup on {cores} cores, got {speedup:.2f}x"
        )
