"""Table 2: maximum zero-load packet latency on 4x4/8x8/16x16."""

import pytest

from repro.core.latency import network_worst_case_latency
from repro.harness.worstcase import table2
from repro.topology.row import RowPlacement

from benchmarks.conftest import SEED, publish, sa_effort


@pytest.fixture(scope="module")
def result():
    sizes = (4, 8, 16) if sa_effort() == "paper" else (4, 8)
    return table2(sizes=sizes, seed=SEED, effort=sa_effort())


def test_table2_worst_case(benchmark, result, capsys):
    publish(capsys, "table2", result.render())

    for n in result.sizes:
        mesh = result.values[("Mesh", n)]
        hfb = result.values[("HFB", n)]
        dc = result.values[("D&C_SA", n)]
        # Express topologies always beat the mesh in the worst case.
        assert hfb < mesh
        assert dc < mesh
        # At 8x8 and larger, D&C_SA beats the HFB (paper Table 2).
        if n >= 8:
            assert dc < hfb

    benchmark(lambda: network_worst_case_latency(RowPlacement.mesh(16), 1))
