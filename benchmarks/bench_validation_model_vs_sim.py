"""Validation: analytical latency model (Eq. 1/2) vs cycle-accurate sim.

Not a paper figure, but the experiment that justifies the paper's whole
method: the optimizer minimizes the *analytical* zero-load latency, so
the analytical model must rank designs the same way the simulator does
and track its absolute numbers up to the known constants (3-cycle NI
overhead, serialization off-by-one, sub-cycle contention).
"""

import pytest

from repro.harness.calibration import NI_OVERHEAD_CYCLES, estimate_contention
from repro.harness.designs import reference_designs
from repro.harness.tables import render_table
from repro.sim.config import SimConfig
from repro.sim.engine import Simulator
from repro.traffic.injection import SyntheticTraffic
from repro.traffic.patterns import make_pattern

from benchmarks.conftest import SEED, publish, sa_effort

N = 8


@pytest.fixture(scope="module")
def validation():
    rows = []
    for design in reference_designs(N, seed=SEED, effort=sa_effort()):
        analytical = design.point.total_latency + NI_OVERHEAD_CYCLES - 1.0
        cfg = SimConfig(
            flit_bits=design.point.flit_bits,
            warmup_cycles=400,
            measure_cycles=2_000,
            max_cycles=40_000,
            seed=SEED,
        )
        traffic = SyntheticTraffic(
            make_pattern("uniform_random", N), rate=0.02, rng=SEED
        )
        summary = Simulator(design.topology, cfg, traffic).run().summary
        rows.append(
            {
                "scheme": design.name,
                "analytical": analytical,
                "simulated": summary.avg_network_latency,
                "error_pct": 100.0
                * (summary.avg_network_latency - analytical)
                / analytical,
            }
        )
    return rows


def test_model_tracks_simulator(benchmark, validation, capsys):
    table = render_table(
        f"Model validation ({N}x{N}, UR @ 0.02): Eq. 2 + NI constants vs simulator",
        ["scheme", "analytical", "simulated", "residual"],
        [
            [r["scheme"], r["analytical"], r["simulated"], f"+{r['error_pct']:.1f}%"]
            for r in validation
        ],
    )
    publish(capsys, "validation_model_vs_sim", table)

    # Absolute tracking: residual (contention + sampling) under 15%.
    for r in validation:
        assert -5.0 < r["error_pct"] < 15.0
    # Rank preservation: the analytical ordering equals the simulated
    # ordering -- the property the optimizer depends on.
    analytical_rank = sorted(validation, key=lambda r: r["analytical"])
    simulated_rank = sorted(validation, key=lambda r: r["simulated"])
    assert [r["scheme"] for r in analytical_rank] == [
        r["scheme"] for r in simulated_rank
    ]

    # The paper's contention observation: < 1 cycle per hop.
    cal = estimate_contention(n=N, rate=0.02, measure_cycles=1_000)
    assert cal.contention_per_hop < 1.0

    benchmark.pedantic(
        lambda: estimate_contention(n=4, rate=0.02, measure_cycles=500),
        rounds=2,
        iterations=1,
    )
