"""Shared benchmark infrastructure.

Every benchmark file regenerates one paper table/figure: a
module-scoped fixture computes the experiment once, ``publish`` writes
the rendered table both to the terminal (bypassing pytest capture) and
to ``benchmarks/results/<name>.txt``, and the timed function exercises
the experiment's dominant kernel.

Scale knob: set ``REPRO_BENCH_EFFORT=quick`` for a fast smoke pass
(CI), default is the paper-fidelity configuration.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: "paper" (default) or "quick".
EFFORT = os.environ.get("REPRO_BENCH_EFFORT", "paper")

#: Shared seed so cached design sweeps are reused across bench files.
SEED = 2019


def sa_effort() -> str:
    return "paper" if EFFORT == "paper" else "quick"


def git_sha() -> str:
    """Short commit hash of the benchmarked tree ("unknown" off-repo)."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def publish(capsys, name: str, text: str, record: dict | None = None) -> None:
    """Write a rendered experiment table to terminal and results files.

    Alongside the human-readable ``<name>.txt``, a machine-readable
    ``<name>.json`` is written carrying the run's provenance (effort
    knob, git sha, timestamp) plus whatever structured ``record`` the
    bench supplies -- typically the n/C grid, wall times and speedups
    -- so sweeps across commits can be diffed without re-parsing
    tables.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    payload = {
        "name": name,
        "effort": EFFORT,
        "git_sha": git_sha(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    if record:
        payload.update(record)
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    with capsys.disabled():
        print()
        print(text)


@pytest.fixture(scope="session")
def effort() -> str:
    return sa_effort()


@pytest.fixture(scope="session")
def campaign():
    """The PARSEC simulation campaign shared by Figures 6 and 9."""
    from repro.harness.parsec import parsec_campaign
    from repro.traffic.parsec import PARSEC_NAMES

    quick = sa_effort() != "paper"
    return parsec_campaign(
        n=8,
        benchmarks=PARSEC_NAMES[:4] if quick else PARSEC_NAMES,
        seed=SEED,
        effort=sa_effort(),
        warmup_cycles=300 if quick else 500,
        measure_cycles=1_000 if quick else 2_000,
    )
