"""Shared benchmark infrastructure.

Every benchmark file regenerates one paper table/figure: a
module-scoped fixture computes the experiment once, ``publish`` writes
the rendered table both to the terminal (bypassing pytest capture) and
to ``benchmarks/results/<name>.txt``, and the timed function exercises
the experiment's dominant kernel.

Scale knob: set ``REPRO_BENCH_EFFORT=quick`` for a fast smoke pass
(CI), default is the paper-fidelity configuration.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: "paper" (default) or "quick".
EFFORT = os.environ.get("REPRO_BENCH_EFFORT", "paper")

#: Shared seed so cached design sweeps are reused across bench files.
SEED = 2019


def sa_effort() -> str:
    return "paper" if EFFORT == "paper" else "quick"


def publish(capsys, name: str, text: str) -> None:
    """Write a rendered experiment table to terminal and results file."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    with capsys.disabled():
        print()
        print(text)


@pytest.fixture(scope="session")
def effort() -> str:
    return sa_effort()


@pytest.fixture(scope="session")
def campaign():
    """The PARSEC simulation campaign shared by Figures 6 and 9."""
    from repro.harness.parsec import parsec_campaign
    from repro.traffic.parsec import PARSEC_NAMES

    quick = sa_effort() != "paper"
    return parsec_campaign(
        n=8,
        benchmarks=PARSEC_NAMES[:4] if quick else PARSEC_NAMES,
        seed=SEED,
        effort=sa_effort(),
        warmup_cycles=300 if quick else 500,
        measure_cycles=1_000 if quick else 2_000,
    )
