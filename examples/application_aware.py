#!/usr/bin/env python3
"""Application-aware placement (paper Section 5.6.4).

When the traffic matrix of the target application is known, each row
and column can be optimized with traffic-weighted objectives.  This
example compares the general-purpose placement against the
application-aware one on a chosen PARSEC workload and shows the
per-dimension placements it discovers.

Usage::

    python examples/application_aware.py [--benchmark dedup] [--n 8]
"""

import argparse

from repro.core.annealing import AnnealingParams
from repro.core.application_aware import (
    optimize_application_aware,
    weighted_average_head_latency,
)
from repro.harness.designs import dc_sa_design
from repro.harness.tables import pct_change, render_table
from repro.topology.mesh import MeshTopology
from repro.traffic.parsec import PARSEC_NAMES, PARSEC_WORKLOADS, workload_gamma


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="dedup", choices=PARSEC_NAMES)
    parser.add_argument("--n", type=int, default=8)
    parser.add_argument("--seed", type=int, default=2019)
    parser.add_argument("--full", action="store_true")
    args = parser.parse_args()

    effort = "paper" if args.full else "quick"
    params = (
        AnnealingParams()
        if args.full
        else AnnealingParams(total_moves=1_000, moves_per_cooldown=250)
    )

    gamma = workload_gamma(PARSEC_WORKLOADS[args.benchmark], args.n)
    general = dc_sa_design(args.n, seed=args.seed, effort=effort)
    limit = general.point.link_limit
    general_topo = MeshTopology.uniform(general.point.placement)
    general_head = weighted_average_head_latency(general_topo, gamma)

    print(
        f"Optimizing rows and columns of the {args.n}x{args.n} network for "
        f"'{args.benchmark}' traffic at C={limit}..."
    )
    aware = optimize_application_aware(
        gamma, args.n, limit, params=params, rng=args.seed
    )

    print(
        render_table(
            f"Weighted average head latency ({args.benchmark})",
            ["design", "head latency (cycles)"],
            [
                ["general-purpose (one placement everywhere)", general_head],
                ["application-aware (per row/column)", aware.weighted_head_latency],
            ],
        )
    )
    print(
        f"additional reduction from traffic knowledge: "
        f"{pct_change(aware.weighted_head_latency, general_head):.1f}%\n"
    )

    print("Per-row placements discovered (0-based express links):")
    for y, p in enumerate(aware.topology.row_placements):
        print(f"  row {y}: {sorted(p.express_links)}")
    print("Per-column placements:")
    for x, p in enumerate(aware.topology.col_placements):
        print(f"  col {x}: {sorted(p.express_links)}")


if __name__ == "__main__":
    main()
