#!/usr/bin/env python3
"""PARSEC workload study: Mesh vs HFB vs D&C_SA (paper Figures 6 and 9).

Simulates PARSEC-style workloads on the three comparison topologies and
prints the per-benchmark latency table plus the power comparison.

Usage::

    python examples/parsec_study.py [--n 8] [--benchmarks canneal,ferret]
        [--full]
"""

import argparse

from repro.harness.parsec import parsec_campaign
from repro.traffic.parsec import PARSEC_NAMES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=8)
    parser.add_argument(
        "--benchmarks",
        type=str,
        default="blackscholes,canneal,fluidanimate,x264",
        help="comma-separated benchmark names, or 'all'",
    )
    parser.add_argument("--seed", type=int, default=2019)
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale annealing and longer simulation windows",
    )
    args = parser.parse_args()

    benchmarks = (
        PARSEC_NAMES
        if args.benchmarks == "all"
        else tuple(args.benchmarks.split(","))
    )
    campaign = parsec_campaign(
        n=args.n,
        benchmarks=benchmarks,
        seed=args.seed,
        effort="paper" if args.full else "quick",
        warmup_cycles=500 if args.full else 300,
        measure_cycles=2_000 if args.full else 1_000,
    )
    print(campaign.render_fig6())
    print()
    print(campaign.render_fig9())


if __name__ == "__main__":
    main()
