#!/usr/bin/env python3
"""Quickstart: optimize express-link placement for an 8x8 NoC.

Runs the paper's full flow on one network size:

1. sweep every feasible cross-section link limit C,
2. solve the 1D placement problem P~(n, C) with D&C-seeded simulated
   annealing for each C,
3. pick the C whose total (head + serialization) latency is lowest,
4. validate the winner in the cycle-accurate simulator against the
   plain mesh baseline.

The whole run is observed through the in-memory instrumentation sink:
the end prints how the search behaved (moves, acceptance, memo-cache
hit ratio) alongside the design-quality numbers.

Usage::

    python examples/quickstart.py [--n 8] [--quick]
"""

import argparse

from repro import (
    MeshTopology,
    SearchConfig,
    SimConfig,
    Simulator,
    SyntheticTraffic,
    make_pattern,
    optimize,
)
from repro.core.annealing import AnnealingParams
from repro.harness.tables import pct_change, render_table
from repro.obs import Instrumentation, MemorySink


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=8, help="mesh side length")
    parser.add_argument("--seed", type=int, default=2019)
    parser.add_argument(
        "--quick", action="store_true", help="smaller annealing budget"
    )
    args = parser.parse_args()

    params = (
        AnnealingParams(total_moves=1_500, moves_per_cooldown=300)
        if args.quick
        else AnnealingParams()
    )

    print(f"Optimizing express-link placement for a {args.n}x{args.n} mesh...")
    sink = MemorySink()
    obs = Instrumentation(sinks=[sink])
    result = optimize(args.n, method="dc_sa", params=params,
                      config=SearchConfig(seed=args.seed), obs=obs)
    sweep = result.sweep  # the raw engine sweep behind the public result

    rows = []
    for c, point in sorted(sweep.points.items()):
        rows.append(
            [
                c,
                point.flit_bits,
                point.latency.head,
                point.latency.serialization,
                point.total_latency,
                len(point.placement.express_links),
            ]
        )
    print(
        render_table(
            f"Design-space sweep ({args.n}x{args.n})",
            ["C", "flit bits", "L_D", "L_S", "total", "express links"],
            rows,
        )
    )

    best = sweep.best
    print(f"\nBest design: C={best.link_limit}, flit={best.flit_bits}b")
    print(f"Row placement: {best.placement}")

    # What the search did, from the instrumentation attached above: the
    # sink captured every structured event; the registry aggregated them.
    kinds = sink.kinds()
    print(
        f"\nObserved {len(sink)} events "
        f"({kinds.get('sa.stage', 0)} SA stage reports, "
        f"{kinds.get('sa.best', 0)} new-best improvements)"
    )
    print(obs.metrics_summary())

    print("\nValidating in the cycle-accurate simulator (uniform random, low load)...")

    def simulate(topology, flit_bits):
        cfg = SimConfig(
            flit_bits=flit_bits,
            warmup_cycles=500,
            measure_cycles=2_000,
            max_cycles=50_000,
            seed=args.seed,
        )
        traffic = SyntheticTraffic(
            make_pattern("uniform_random", args.n), rate=0.02, rng=args.seed
        )
        return Simulator(topology, cfg, traffic).run().summary

    mesh = simulate(MeshTopology.mesh(args.n), 256)
    express = simulate(MeshTopology.uniform(best.placement), best.flit_bits)

    print(
        render_table(
            "Simulated average packet latency (cycles)",
            ["scheme", "network latency", "head", "serialization"],
            [
                ["Mesh", mesh.avg_network_latency, mesh.avg_head_latency, mesh.avg_serialization_latency],
                ["Optimized", express.avg_network_latency, express.avg_head_latency, express.avg_serialization_latency],
            ],
        )
    )
    print(
        f"\nLatency reduction vs mesh: "
        f"{pct_change(express.avg_network_latency, mesh.avg_network_latency):.1f}%"
    )


if __name__ == "__main__":
    main()
