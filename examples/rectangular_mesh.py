#!/usr/bin/env python3
"""Rectangular meshes: a library extension beyond the paper.

The 2D -> 1D reduction (Section 4.2) only needs dimension-order
routing, not squareness, so express-link placement works on any
``width x height`` mesh: solve P~(width, C) for the rows and
P~(height, C) for the columns.  This example optimizes a wide 16x4
many-core floorplan and validates the winner in the simulator.

Usage::

    python examples/rectangular_mesh.py [--width 16] [--height 4]
"""

import argparse

from repro import MeshTopology, SimConfig, Simulator
from repro.core.annealing import AnnealingParams
from repro.core.optimizer import best_rectangular, optimize_rectangular
from repro.harness.tables import pct_change, render_table
from repro.traffic.injection import MatrixTraffic
import numpy as np


def uniform_gamma(num_nodes: int) -> np.ndarray:
    g = np.ones((num_nodes, num_nodes))
    np.fill_diagonal(g, 0.0)
    return g


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--width", type=int, default=16)
    parser.add_argument("--height", type=int, default=4)
    parser.add_argument("--seed", type=int, default=2019)
    parser.add_argument("--full", action="store_true")
    args = parser.parse_args()

    params = (
        AnnealingParams()
        if args.full
        else AnnealingParams(total_moves=1_500, moves_per_cooldown=300)
    )
    print(f"Optimizing a {args.width}x{args.height} rectangular mesh...")
    points = optimize_rectangular(
        args.width, args.height, params=params, rng=args.seed
    )
    rows = [
        [c, p.flit_bits, p.head_latency, p.serialization, p.total_latency]
        for c, p in sorted(points.items())
    ]
    print(
        render_table(
            f"{args.width}x{args.height} design sweep",
            ["C", "flit bits", "L_D", "L_S", "total"],
            rows,
        )
    )
    best = best_rectangular(points)
    print(f"\nbest C={best.link_limit}: row {sorted(best.row_placement.express_links)}")
    print(f"          col {sorted(best.col_placement.express_links)}")

    def simulate(topology, flit_bits):
        num = topology.num_nodes
        cfg = SimConfig(
            flit_bits=flit_bits,
            warmup_cycles=300,
            measure_cycles=1_500,
            max_cycles=40_000,
            seed=args.seed,
        )
        traffic = MatrixTraffic(
            uniform_gamma(num), aggregate_rate=0.02 * num, rng=args.seed
        )
        return Simulator(topology, cfg, traffic).run().summary

    mesh = simulate(MeshTopology.rect_mesh(args.width, args.height), 256)
    express = simulate(
        MeshTopology.rectangular(best.row_placement, best.col_placement),
        best.flit_bits,
    )
    print(
        render_table(
            "Simulated average packet latency (uniform random)",
            ["scheme", "network latency (cycles)"],
            [
                ["rect mesh", mesh.avg_network_latency],
                [f"optimized (C={best.link_limit})", express.avg_network_latency],
            ],
        )
    )
    print(
        f"\nreduction: {pct_change(express.avg_network_latency, mesh.avg_network_latency):.1f}%"
    )


if __name__ == "__main__":
    main()
