#!/usr/bin/env python3
"""Latency-throughput curves under synthetic traffic (paper Figure 8).

Sweeps the injection rate for a chosen traffic pattern on Mesh, HFB and
the optimized express topology using the library's load-curve API,
printing the classic latency-vs-offered-load curve for each scheme, the
measured saturation throughput, and the analytical saturation bound
from the channel-load model for comparison.

Usage::

    python examples/synthetic_saturation.py [--n 8] [--pattern transpose]
"""

import argparse

from repro.analysis.channel_load import channel_loads
from repro.harness.designs import reference_designs
from repro.harness.loadcurve import load_latency_curve
from repro.routing.tables import RoutingTables
from repro.traffic.patterns import pattern_matrix, make_pattern


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=8)
    parser.add_argument(
        "--pattern",
        type=str,
        default="uniform_random",
        choices=["uniform_random", "transpose", "bit_reverse", "tornado", "shuffle"],
    )
    parser.add_argument("--seed", type=int, default=2019)
    parser.add_argument("--full", action="store_true")
    args = parser.parse_args()

    designs = reference_designs(
        args.n, seed=args.seed, effort="paper" if args.full else "quick"
    )
    for design in designs:
        curve = load_latency_curve(
            design,
            pattern=args.pattern,
            seed=args.seed,
            warmup=300,
            measure=1_200 if args.full else 800,
        )
        print(curve.render())

        # Analytical bound for context (uniform uses the closed form;
        # other patterns use their empirical traffic matrix).
        tables = RoutingTables.build(design.topology)
        gamma = None
        if args.pattern != "uniform_random":
            gamma = pattern_matrix(
                make_pattern(args.pattern, args.n), samples_per_node=64, rng=args.seed
            )
        bound = channel_loads(
            tables, gamma=gamma, flit_bits=design.point.flit_bits
        ).saturation_packets_per_cycle
        print(
            f"measured saturation: {curve.saturation_throughput():.2f} pkt/cycle | "
            f"analytical bound: {bound:.2f} pkt/cycle\n"
        )


if __name__ == "__main__":
    main()
