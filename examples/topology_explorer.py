#!/usr/bin/env python3
"""Topology explorer: inspect a placement the way the paper's figures do.

Solves P~(n, C) (exactly for small instances, heuristically otherwise)
and prints: the express links, an ASCII drawing of the row (paper
Figure 2b style), the connection matrix (Figure 2a), cross-section
utilization, the first router's routing table (Figure 3b), and the
deadlock-freedom verdict for the full 2D network.

Usage::

    python examples/topology_explorer.py [--n 8] [--c 4] [--exact]
"""

import argparse

from repro.api import SearchConfig
from repro.core.connection_matrix import ConnectionMatrix
from repro.core.optimizer import solve_row_problem
from repro.routing.deadlock import is_deadlock_free
from repro.routing.tables import RoutingTables
from repro.topology.mesh import MeshTopology
from repro.topology.validate import audit_row
from repro.viz import render_cross_sections, render_row




def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=8)
    parser.add_argument("--c", type=int, default=4, help="cross-section link limit")
    parser.add_argument("--exact", action="store_true", help="exhaustive optimum")
    parser.add_argument("--seed", type=int, default=2019)
    args = parser.parse_args()

    method = "exact" if args.exact else "dc_sa"
    print(f"Solving P~({args.n}, {args.c}) with {method}...")
    sol = solve_row_problem(args.n, args.c, method=method,
                            config=SearchConfig(seed=args.seed))

    print(f"\nmean row head latency: {sol.energy:.4f} cycles "
          f"(2D average: {2 * sol.energy:.4f})")
    print(f"express links: {sorted(sol.placement.express_links)}\n")
    print(render_row(sol.placement))

    print("\nconnection matrix (o = connected, . = open):")
    print(ConnectionMatrix.from_placement(sol.placement, args.c))

    report = audit_row(sol.placement, args.c)
    print()
    print(render_cross_sections(sol.placement, args.c))
    print(f"bisection utilization: {report['utilization'] * 100:.0f}%")
    print(f"total wire length: {report['total_wire_length']} unit segments")

    topo = MeshTopology.uniform(sol.placement)
    tables = RoutingTables.build(topo)
    print("\nrouter 0 routing table (X dimension, next hop per destination column):")
    n = args.n
    entries = [f"{dst}->{int(tables.row_next[0][0, dst])}" for dst in range(1, n)]
    print("  " + "  ".join(entries))

    print("\nchecking deadlock freedom of the full 2D network (CDG acyclicity)...")
    print("deadlock-free:", is_deadlock_free(tables))


if __name__ == "__main__":
    main()
