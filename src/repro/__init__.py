"""repro: Express Link Placement for NoC-Based Many-Core Platforms.

A complete reproduction of Li, Zhu and Chen (ICPP 2019): the express
link placement optimizer (divide-and-conquer seeded simulated annealing
over a connection-matrix search space), the mesh/HFB baselines, a
cycle-accurate wormhole NoC simulator, synthetic and PARSEC-style
traffic models, a DSENT-style power/area model, and drivers that
regenerate every figure and table of the paper's evaluation.

Quickstart::

    from repro import SearchConfig, place_express_links, MeshTopology

    result = place_express_links(8, config=SearchConfig(seed=2019))
    print(result.link_limit, result.total_latency, result.express_links)
    topology = MeshTopology.uniform(result.placement)

The lower-level entry points remain available (``optimize`` for the raw
sweep, ``solve_row_problem`` for one ``P~(n, C)`` instance); their
execution knobs also travel in a ``SearchConfig`` -- see ``docs/api.md``.
"""

from repro.api import (
    EvalResult,
    PlacementResult,
    SearchConfig,
    evaluate_placement,
    place_express_links,
)
from repro.core import (
    AnnealingParams,
    BandwidthConfig,
    ConnectionMatrix,
    DesignPoint,
    PacketMix,
    RowObjective,
    SweepResult,
    anneal,
    branch_and_bound,
    design_point,
    exhaustive_matrix_search,
    initial_solution,
    network_average_latency,
    network_worst_case_latency,
    optimize,
    optimize_application_aware,
    optimize_rectangular,
    best_rectangular,
    naive_anneal,
    solve_row_problem,
    ParetoFront,
    ParetoPoint,
    hypervolume,
    pareto_front,
    pareto_sweep,
)
from repro.routing import HopCostModel, RoutingTables, compute_route, is_deadlock_free
from repro.sim import (
    CampaignResult,
    SimConfig,
    SimJob,
    Simulator,
    TrafficSpec,
    campaign_grid,
    run_campaign,
)
from repro.topology import (
    MeshTopology,
    RowPlacement,
    flattened_butterfly,
    hybrid_flattened_butterfly,
)
from repro.traffic import (
    MatrixTraffic,
    SyntheticTraffic,
    make_pattern,
    parsec_traffic,
)
from repro.power import power_report, router_static_power
from repro.analysis import channel_loads
from repro.io import (
    load_placement,
    load_sweep,
    load_topology,
    save_placement,
    save_sweep,
    save_topology,
)

__version__ = "1.0.0"

__all__ = [
    "EvalResult",
    "PlacementResult",
    "SearchConfig",
    "evaluate_placement",
    "place_express_links",
    "AnnealingParams",
    "BandwidthConfig",
    "ConnectionMatrix",
    "DesignPoint",
    "PacketMix",
    "RowObjective",
    "SweepResult",
    "anneal",
    "branch_and_bound",
    "design_point",
    "exhaustive_matrix_search",
    "initial_solution",
    "network_average_latency",
    "network_worst_case_latency",
    "optimize",
    "optimize_application_aware",
    "optimize_rectangular",
    "best_rectangular",
    "naive_anneal",
    "solve_row_problem",
    "ParetoFront",
    "ParetoPoint",
    "hypervolume",
    "pareto_front",
    "pareto_sweep",
    "HopCostModel",
    "RoutingTables",
    "compute_route",
    "is_deadlock_free",
    "SimConfig",
    "Simulator",
    "CampaignResult",
    "SimJob",
    "TrafficSpec",
    "campaign_grid",
    "run_campaign",
    "MeshTopology",
    "RowPlacement",
    "flattened_butterfly",
    "hybrid_flattened_butterfly",
    "MatrixTraffic",
    "SyntheticTraffic",
    "make_pattern",
    "parsec_traffic",
    "power_report",
    "router_static_power",
    "channel_loads",
    "load_placement",
    "load_sweep",
    "load_topology",
    "save_placement",
    "save_sweep",
    "save_topology",
    "__version__",
]
