"""Static network analysis: channel loads and throughput bounds."""

from repro.analysis.channel_load import (
    ChannelLoadReport,
    bisection_loads,
    channel_loads,
    load_balance_stats,
    uniform_gamma,
)

__all__ = [
    "ChannelLoadReport",
    "bisection_loads",
    "channel_loads",
    "load_balance_stats",
    "uniform_gamma",
]
