"""Static channel-load analysis and throughput bounds.

Classic interconnection-network analysis (Dally & Towles): under a
traffic matrix ``gamma`` (packets/node/cycle, normalized) and a
deterministic routing function, each directed channel ``c`` carries an
expected flit load

.. math::

    \\ell(c) = \\sum_{s,d} \\gamma_{sd} \\cdot F_{sd} \\cdot [c \\in route(s,d)]

with ``F_sd`` the expected flits per packet.  A channel saturates when
its load reaches one flit per cycle, so the network's ideal saturation
throughput is ``1 / max_c ell(c)`` (in injected packets per cycle at
the given traffic split).

This quantifies the paper's Figure 8(b) observations *analytically*:
the HFB's quadrant-seam links concentrate load (throughput below half
of the mesh), while good express placement spreads it.  The simulator's
measured saturation should land below but near this bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.latency import PacketMix
from repro.routing.dor import compute_route
from repro.routing.tables import RoutingTables
from repro.util.errors import ConfigurationError

DirectedChannel = Tuple[int, int]


@dataclass(frozen=True)
class ChannelLoadReport:
    """Per-channel expected loads and the derived throughput bounds."""

    loads: Dict[DirectedChannel, float]
    flits_per_packet: float
    #: Expected flit load of the busiest channel per injected
    #: packet/cycle of aggregate traffic.
    max_load_per_packet: float
    #: Flit load of the busiest *injection* channel per aggregate
    #: packet/cycle (each NI injects at most one flit per cycle, which
    #: is the binding constraint for narrow-flit express designs).
    max_injection_load_per_packet: float = 0.0
    #: Same for the busiest ejection channel.
    max_ejection_load_per_packet: float = 0.0

    @property
    def bottleneck(self) -> Optional[DirectedChannel]:
        """The busiest channel, or ``None`` when no route uses any.

        A report can legitimately carry an empty ``loads`` dict -- all
        traffic self-addressed (zero-hop routes) or a single-node
        topology -- so there is no bottleneck to name.
        """
        if not self.loads:
            return None
        return max(self.loads, key=self.loads.get)

    @property
    def channel_bound(self) -> float:
        """Aggregate rate at which the worst network channel saturates."""
        if self.max_load_per_packet <= 0:
            return float("inf")
        return 1.0 / self.max_load_per_packet

    @property
    def injection_bound(self) -> float:
        """Aggregate rate at which the busiest NI saturates."""
        if self.max_injection_load_per_packet <= 0:
            return float("inf")
        return 1.0 / self.max_injection_load_per_packet

    @property
    def ejection_bound(self) -> float:
        if self.max_ejection_load_per_packet <= 0:
            return float("inf")
        return 1.0 / self.max_ejection_load_per_packet

    @property
    def saturation_packets_per_cycle(self) -> float:
        """The binding bound: min of channel, injection and ejection."""
        return min(self.channel_bound, self.injection_bound, self.ejection_bound)

    def load_of(self, a: int, b: int) -> float:
        return self.loads.get((a, b), 0.0)


def uniform_gamma(num_nodes: int) -> np.ndarray:
    """The uniform-random traffic matrix (normalized to sum 1).

    A single-node network has no destinations, so its matrix is all
    zeros (rather than the ``0/0`` NaNs a blind normalization yields).
    """
    g = np.ones((num_nodes, num_nodes))
    np.fill_diagonal(g, 0.0)
    total = g.sum()
    if total <= 0:
        return g
    return g / total


def channel_loads(
    tables: RoutingTables,
    gamma: Optional[np.ndarray] = None,
    mix: PacketMix | None = None,
    flit_bits: int = 256,
) -> ChannelLoadReport:
    """Expected per-channel flit load under ``gamma``.

    ``gamma`` is normalized to sum 1; reported loads are per one
    aggregate injected packet/cycle, so multiply by the injection rate
    to get utilization, or invert the max for the saturation bound.
    """
    num = tables.topology.num_nodes
    if gamma is None:
        g = uniform_gamma(num)
    else:
        g = np.asarray(gamma, dtype=float)
        if g.shape != (num, num):
            raise ConfigurationError(f"gamma shape {g.shape} != ({num}, {num})")
        total = g.sum()
        if total <= 0:
            raise ConfigurationError("gamma must have positive sum")
        g = g / total

    mix = mix or PacketMix.paper_default()
    flits = mix.serialization_cycles(flit_bits)  # expected flits/packet

    loads: Dict[DirectedChannel, float] = {}
    for src in range(num):
        row = g[src]
        for dst in np.flatnonzero(row):
            weight = row[dst] * flits
            path = compute_route(tables, src, int(dst))
            for a, b in zip(path, path[1:]):
                loads[(a, b)] = loads.get((a, b), 0.0) + weight
    max_load = max(loads.values()) if loads else 0.0
    inj = float(g.sum(axis=1).max()) * flits
    ej = float(g.sum(axis=0).max()) * flits
    return ChannelLoadReport(
        loads=loads,
        flits_per_packet=flits,
        max_load_per_packet=max_load,
        max_injection_load_per_packet=inj,
        max_ejection_load_per_packet=ej,
    )


def bisection_loads(
    report: ChannelLoadReport,
    tables: RoutingTables,
) -> Dict[DirectedChannel, float]:
    """Loads of the channels crossing the vertical mid-line.

    For the HFB these are the Figure 4 seam links whose congestion
    causes the throughput collapse of Figure 8(b).
    """
    topo = tables.topology
    mid = topo.n / 2.0 - 0.5
    out = {}
    for (a, b), load in report.loads.items():
        ax, _ = topo.coords(a)
        bx, _ = topo.coords(b)
        if (ax - mid) * (bx - mid) < 0:
            out[(a, b)] = load
    return out


def load_balance_stats(report: ChannelLoadReport) -> Dict[str, float]:
    """Summary statistics of the load distribution.

    Defined for every report: with no loaded channels all statistics
    are zero (a perfectly idle network is trivially balanced), and a
    zero mean with a nonzero max yields ``imbalance = inf`` instead of
    a division error.
    """
    values = np.array(list(report.loads.values()), dtype=float)
    if values.size == 0:
        return {
            "channels": 0.0,
            "mean": 0.0,
            "max": 0.0,
            "p95": 0.0,
            "imbalance": 0.0,
        }
    mean = float(values.mean())
    peak = float(values.max())
    if mean > 0:
        imbalance = peak / mean
    else:
        imbalance = 0.0 if peak <= 0 else float("inf")
    return {
        "channels": float(len(values)),
        "mean": mean,
        "max": peak,
        "p95": float(np.percentile(values, 95)),
        "imbalance": imbalance,
    }
