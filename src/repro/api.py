"""Stable public facade for the express-link placement toolkit.

The solver surface grew keyword-by-keyword across iterations
(``optimize(..., rng=, restarts=, jobs=, max_evaluations=, ...)``).
This module is the deliberate redesign: one frozen
:class:`SearchConfig` carries every knob that shapes *how* a search
runs (seed, restarts, jobs, FW implementation, incremental engine,
trace settings), and two entry points return frozen result objects:

* :func:`place_express_links` -- run the full ``C`` sweep and return a
  :class:`PlacementResult`,
* :func:`evaluate_placement` -- price an existing placement into an
  :class:`EvalResult`.

The legacy keyword arguments on :func:`repro.optimize` and
:func:`repro.solve_row_problem` keep working through a deprecation shim
that warns once per process (see :func:`warn_legacy_kwargs`); migration
notes live in ``docs/api.md``.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.routing.shortest_path import IMPLEMENTATIONS
from repro.topology.row import RowPlacement
from repro.util.errors import ConfigurationError

__all__ = [
    "SEARCH_SPACES",
    "SearchConfig",
    "PlacementResult",
    "EvalResult",
    "place_express_links",
    "evaluate_placement",
    "reset_legacy_warnings",
    # Simulation campaigns (lazily re-exported from repro.sim.campaign).
    "SimJob",
    "TrafficSpec",
    "CampaignResult",
    "JobResult",
    "run_campaign",
    "run_until",
    "campaign_grid",
]

#: Campaign API names re-exported from :mod:`repro.sim.campaign`.
#: Resolved lazily (PEP 562): the campaign engine imports the core
#: parallel machinery, which imports this module for
#: :class:`SearchConfig` -- a top-level import here would be a cycle.
_CAMPAIGN_EXPORTS = frozenset({
    "SimJob", "TrafficSpec", "CampaignResult", "JobResult",
    "run_campaign", "run_until", "campaign_grid",
})


def __getattr__(name: str):
    if name in _CAMPAIGN_EXPORTS:
        from repro.sim import campaign

        return getattr(campaign, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


#: Placement search spaces: the paper's replicated row, heterogeneous
#: per-row placements, and pooled-budget 2D chords.  Defined here (not
#: in :mod:`repro.core.search_space`) so :class:`SearchConfig` can
#: validate without importing the search stack.
SEARCH_SPACES = ("row", "hetero", "grid2d")


@dataclass(frozen=True)
class SearchConfig:
    """Everything that shapes *how* a search runs (not *what* it solves).

    Problem parameters (``n``, ``C``, method, cost model, annealing
    schedule) stay explicit on the entry points; this object carries
    the execution knobs so they cannot sprawl into more keywords.

    Attributes
    ----------
    seed:
        Integer base seed, or ``None`` for fresh entropy.  Parallel
        searches (``restarts``/``jobs`` > 1) derive one independent
        stream per ``(C, restart)`` task from it.
    restarts:
        Independent SA chains per ``C``; the best chain wins.
    jobs:
        Worker processes; results are bit-identical for every value.
    chains:
        Lockstep group size for the SA restarts: each group of up to
        ``chains`` restarts runs inside one process as a population,
        pricing every move of all live chains with a single batched
        Floyd-Warshall call (:func:`repro.core.annealing.anneal_population`).
        Trajectories are byte-identical to the same restarts run
        serially, so ``chains`` is -- like ``jobs`` -- a pure
        wall-clock knob, and the two compose: groups are still fanned
        out across ``jobs`` processes.  ``chains > 1`` implies at
        least that many restarts (see :attr:`effective_restarts`) and
        is incompatible with ``incremental`` (the O(n^2) engine prices
        moves one chain at a time by construction).
    impl:
        Floyd-Warshall implementation (``"vectorized"`` or the
        pure-Python ``"reference"`` oracle).
    incremental:
        Price SA candidates with the O(n^2) dynamic APSP engine
        (:mod:`repro.routing.incremental`) instead of a full O(n^3)
        re-solve per move.  Placements are byte-identical to the full
        path for the same seed under the default integral hop costs.
    resync_every:
        Incremental-mode drift self-check period, in accepted moves
        (0 disables): re-solve with full FW, verify bit-identity, emit
        ``sa.resync`` and repair on mismatch.
    max_evaluations:
        Optional cap on unique objective evaluations per chain.
    trace_out / metrics_every / profile:
        Observability: JSONL event trace path, periodic progress event
        interval, and span-profile printing (CLI flags of the same
        names).
    ledger:
        Run-ledger root directory (``--ledger``): record the run as a
        content-addressed manifest under ``<ledger>/<run_id>/`` (see
        :mod:`repro.obs.ledger`).  ``None`` disables recording; like
        the other observability knobs it never affects results.
    space:
        Placement search space (``--space``): ``"row"`` is the paper's
        replicated-row reduction; ``"hetero"`` searches one placement
        per mesh row (each under the row budget ``C``); ``"grid2d"``
        searches arbitrary same-row chords under the pooled per-cut
        budget ``n * C`` (see :mod:`repro.core.search_space`).  The
        mesh-level spaces run through the generic SA kernels, so they
        support ``chains`` but not the row-only ``incremental`` engine
        or the multi-process ``restarts``/``jobs`` fan-out.
    """

    seed: Optional[int] = None
    restarts: int = 1
    jobs: int = 1
    chains: int = 1
    impl: str = "vectorized"
    incremental: bool = False
    resync_every: int = 1_000
    max_evaluations: Optional[int] = None
    trace_out: Optional[str] = None
    metrics_every: int = 0
    profile: bool = False
    ledger: Optional[str] = None
    space: str = "row"

    def __post_init__(self) -> None:
        if self.restarts < 1:
            raise ConfigurationError(f"restarts must be >= 1, got {self.restarts}")
        if self.jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {self.jobs}")
        if self.chains < 1:
            raise ConfigurationError(f"chains must be >= 1, got {self.chains}")
        if self.chains > 1 and self.incremental:
            raise ConfigurationError(
                "chains > 1 is incompatible with incremental=True: the "
                "lockstep population path prices all chains with one "
                "batched Floyd-Warshall call, while the incremental "
                "engine prices moves one chain at a time"
            )
        if self.impl not in IMPLEMENTATIONS:
            raise ConfigurationError(
                f"unknown impl {self.impl!r}; expected one of {IMPLEMENTATIONS}"
            )
        if self.resync_every < 0:
            raise ConfigurationError(
                f"resync_every must be >= 0, got {self.resync_every}"
            )
        if self.metrics_every < 0:
            raise ConfigurationError(
                f"metrics_every must be >= 0, got {self.metrics_every}"
            )
        if self.space not in SEARCH_SPACES:
            raise ConfigurationError(
                f"unknown search space {self.space!r}; expected one of "
                f"{SEARCH_SPACES}"
            )
        if self.space != "row":
            if self.incremental:
                raise ConfigurationError(
                    "incremental=True is row-space only: the O(n^2) "
                    "dynamic APSP engine prices single-row link changes"
                )
            if self.restarts > 1 or self.jobs > 1:
                raise ConfigurationError(
                    "multi-process restarts/jobs are row-space only; "
                    "use chains=K for population search in the "
                    f"{self.space!r} space"
                )

    @property
    def parallel(self) -> bool:
        """True when the multi-restart engine should run the search."""
        return self.restarts > 1 or self.jobs > 1 or self.chains > 1

    @property
    def effective_restarts(self) -> int:
        """The restart count the engine actually runs.

        ``chains=K`` alone means "run K lockstep chains", so the
        restart count is raised to at least ``chains``; an explicit
        larger ``restarts`` is split into consecutive groups of
        ``chains``.
        """
        return max(self.restarts, self.chains)

    @classmethod
    def from_cli(cls, args: Any) -> "SearchConfig":
        """Build a config from parsed CLI args (missing flags default)."""
        defaults = cls()
        return cls(
            seed=getattr(args, "seed", defaults.seed),
            restarts=getattr(args, "restarts", defaults.restarts),
            jobs=getattr(args, "jobs", defaults.jobs),
            chains=getattr(args, "chains", defaults.chains),
            impl=getattr(args, "impl", defaults.impl),
            incremental=getattr(args, "incremental", defaults.incremental),
            resync_every=getattr(args, "resync_every", defaults.resync_every),
            max_evaluations=getattr(
                args, "max_evaluations", defaults.max_evaluations
            ),
            trace_out=getattr(args, "trace_out", defaults.trace_out),
            metrics_every=getattr(args, "metrics_every", defaults.metrics_every),
            profile=getattr(args, "profile", defaults.profile),
            ledger=getattr(args, "ledger", defaults.ledger),
            space=getattr(args, "space", defaults.space),
        )

    def with_updates(self, **changes: Any) -> "SearchConfig":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **changes)


# ----------------------------------------------------------------------
# Legacy-keyword deprecation shim
# ----------------------------------------------------------------------

_WARNED_FUNCTIONS: set = set()


def warn_legacy_kwargs(func_name: str, keys: Iterable[str]) -> None:
    """Emit the legacy-keyword DeprecationWarning once per process.

    One warning per function name, not per call site -- paper-scale
    sweeps call the solvers thousands of times and a warning storm
    would bury real output.  Tests use :func:`reset_legacy_warnings`
    to assert the warning fires.
    """
    if func_name in _WARNED_FUNCTIONS:
        return
    _WARNED_FUNCTIONS.add(func_name)
    warnings.warn(
        f"{func_name}() search keywords {sorted(keys)} are deprecated; "
        "pass config=repro.SearchConfig(...) instead (see docs/api.md)",
        DeprecationWarning,
        stacklevel=3,
    )


def reset_legacy_warnings() -> None:
    """Forget which functions already warned (test support)."""
    _WARNED_FUNCTIONS.clear()


# ----------------------------------------------------------------------
# Result objects
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PlacementResult:
    """Outcome of :func:`place_express_links`: the chosen design.

    ``express_links`` / ``energy`` describe the winning row placement;
    the latency fields are the Eq. 2 breakdown of the winning design
    point; ``latency_curve`` is the full ``(C, total latency)`` sweep
    behind Figure 5.  ``sweep`` keeps the raw
    :class:`~repro.core.optimizer.SweepResult` for power users.
    """

    n: int
    method: str
    link_limit: int
    flit_bits: int
    placement: RowPlacement
    express_links: Tuple[Tuple[int, int], ...]
    energy: float
    head_latency: float
    serialization_latency: float
    total_latency: float
    evaluations: int
    wall_time_s: float
    latency_curve: Tuple[Tuple[int, float], ...]
    restart_energies: Tuple[Tuple[int, Tuple[float, ...]], ...]
    config: SearchConfig
    sweep: Any = field(repr=False, compare=False, default=None)


@dataclass(frozen=True)
class EvalResult:
    """Outcome of :func:`evaluate_placement`: one placement, priced.

    Head latencies are zero-load averages; the serialization and total
    fields are ``None`` when no ``link_limit`` is given (without ``C``
    there is no flit width, hence no ``L_S``).
    """

    n: int
    link_limit: Optional[int]
    row_head_latency: float
    head_latency: float
    worst_case_latency: Optional[float]
    serialization_latency: Optional[float]
    total_latency: Optional[float]
    flit_bits: Optional[int]


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

def place_express_links(
    n: int,
    method: str = "dc_sa",
    config: Optional[SearchConfig] = None,
    bandwidth=None,
    mix=None,
    cost=None,
    params=None,
    link_limits: Optional[Tuple[int, ...]] = None,
    obs=None,
) -> PlacementResult:
    """Run the paper's full flow for an ``n x n`` mesh.

    Sweeps every feasible cross-section limit ``C``, solves each
    ``P~(n, C)`` with ``method``, adds the serialization latency
    implied by the flit width, and returns the best design as a frozen
    :class:`PlacementResult`.
    """
    from repro.core.optimizer import optimize

    cfg = config or SearchConfig()
    if cfg.space != "row":
        raise ConfigurationError(
            "place_express_links is the row-space entry point; use "
            "repro.core.search_space.optimize_space (or repro.optimize "
            "with config.space set) for hetero/grid2d designs"
        )
    start = time.perf_counter()
    sweep = optimize(
        n,
        method=method,
        bandwidth=bandwidth,
        mix=mix,
        cost=cost,
        params=params,
        link_limits=link_limits,
        obs=obs,
        config=cfg,
    )
    wall = time.perf_counter() - start
    best = sweep.best
    solution = sweep.solutions[best.link_limit]
    return PlacementResult(
        n=n,
        method=method,
        link_limit=best.link_limit,
        flit_bits=best.flit_bits,
        placement=best.placement,
        express_links=tuple(sorted(best.placement.express_links)),
        energy=solution.energy,
        head_latency=best.latency.head,
        serialization_latency=best.latency.serialization,
        total_latency=best.total_latency,
        evaluations=sum(s.evaluations for s in sweep.solutions.values()),
        wall_time_s=wall,
        latency_curve=sweep.latency_curve(),
        restart_energies=tuple(sorted(sweep.restart_energies.items())),
        config=cfg,
        sweep=sweep,
    )


def evaluate_placement(
    placement: RowPlacement,
    link_limit: Optional[int] = None,
    bandwidth=None,
    mix=None,
    cost=None,
    weights=None,
    impl: str = "vectorized",
) -> EvalResult:
    """Price an existing row placement into an :class:`EvalResult`.

    Without ``link_limit`` only the head-latency terms are computed;
    with it the placement is validated against ``C`` and the full
    Eq. 2 breakdown (flit width, serialization, worst case) is filled
    in.
    """
    import numpy as np

    from repro.core.latency import (
        mean_row_head_latency,
        network_average_latency,
        network_worst_case_latency,
    )

    w = None if weights is None else np.asarray(weights, dtype=float)
    row = mean_row_head_latency(placement, cost, w, impl=impl)
    if link_limit is None:
        return EvalResult(
            n=placement.n,
            link_limit=None,
            row_head_latency=row,
            head_latency=2.0 * row,
            worst_case_latency=None,
            serialization_latency=None,
            total_latency=None,
            flit_bits=None,
        )
    from repro.core.latency import BandwidthConfig

    bw = bandwidth or BandwidthConfig()
    breakdown = network_average_latency(placement, link_limit, bw, mix, cost)
    return EvalResult(
        n=placement.n,
        link_limit=link_limit,
        row_head_latency=row,
        head_latency=breakdown.head,
        worst_case_latency=network_worst_case_latency(
            placement, link_limit, bw, mix, cost
        ),
        serialization_latency=breakdown.serialization,
        total_latency=breakdown.total,
        flit_bits=bw.flit_bits(link_limit),
    )


def resolve_search_args(
    func_name: str,
    config: Optional[SearchConfig],
    legacy: Dict[str, Any],
    allowed: Tuple[str, ...],
) -> Tuple[Optional[SearchConfig], Dict[str, Any]]:
    """Shared shim logic for entry points accepting ``config=`` + legacy.

    Rejects unknown keywords (preserving ``TypeError`` semantics for
    typos), refuses mixing ``config`` with legacy keywords, and warns
    once per process when the legacy spelling is used.  Returns the
    config (possibly ``None``) and the validated legacy dict.
    """
    unknown = set(legacy) - set(allowed)
    if unknown:
        raise TypeError(
            f"{func_name}() got unexpected keyword argument(s) "
            f"{sorted(unknown)}"
        )
    if legacy and config is not None:
        raise ConfigurationError(
            f"{func_name}() accepts either config= or the legacy keywords "
            f"{sorted(legacy)}, not both"
        )
    if legacy:
        warn_legacy_kwargs(func_name, legacy)
    return config, legacy
