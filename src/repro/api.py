"""Stable public facade for the express-link placement toolkit.

The solver surface grew keyword-by-keyword across iterations
(``optimize(..., rng=, restarts=, jobs=, max_evaluations=, ...)``).
This module is the deliberate redesign: one frozen
:class:`SearchConfig` carries every knob that shapes *how* a search
runs (seed, restarts, jobs, FW implementation, incremental engine,
trace settings), and every search entry point -- :func:`repro.optimize`,
:func:`repro.solve_row_problem`, :func:`place_express_links`, across
all search spaces -- returns one frozen result type:

* :class:`PlacementResult` -- the chosen design plus its Eq. 2 latency
  breakdown; ``.sweep`` / ``.solution`` expose the raw engine objects
  for power users,
* :class:`EvalResult` -- an existing placement, priced by
  :func:`evaluate_placement`.

Both result types and :class:`SearchConfig` round-trip through JSON
(:meth:`~PlacementResult.to_json` / :meth:`~PlacementResult.from_json`)
with float-hex energies and canonical placement bytes, so the HTTP
serving layer (:mod:`repro.serve`), the run ledger
(:mod:`repro.obs.ledger`) and the design store all share one schema.

The pre-redesign keywords (``rng=``, ``restarts=``, ...) are gone: they
now raise :class:`TypeError` with a migration hint naming the
:class:`SearchConfig` field to use instead (see ``docs/api.md``).
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.routing.impls import IMPLEMENTATIONS, resolve_impl  # noqa: F401
from repro.topology.row import RowPlacement
from repro.util.errors import ConfigurationError

__all__ = [
    "SEARCH_SPACES",
    "OBJECTIVES",
    "PARETO_DRIVERS",
    "RESULT_SCHEMA",
    "SearchConfig",
    "PlacementResult",
    "EvalResult",
    "place_express_links",
    "evaluate_placement",
    "eval_result_from_row",
    "reject_legacy_kwargs",
    # Simulation campaigns (lazily re-exported from repro.sim.campaign).
    "SimJob",
    "TrafficSpec",
    "CampaignResult",
    "JobResult",
    "run_campaign",
    "run_until",
    "campaign_grid",
    # Pareto co-design (lazily re-exported from repro.core.pareto).
    "ParetoFront",
    "ParetoPoint",
    "pareto_front",
    "hypervolume",
]

#: Campaign API names re-exported from :mod:`repro.sim.campaign`.
#: Resolved lazily (PEP 562): the campaign engine imports the core
#: parallel machinery, which imports this module for
#: :class:`SearchConfig` -- a top-level import here would be a cycle.
_CAMPAIGN_EXPORTS = frozenset({
    "SimJob", "TrafficSpec", "CampaignResult", "JobResult",
    "run_campaign", "run_until", "campaign_grid",
})

#: Pareto co-design names re-exported from :mod:`repro.core.pareto`,
#: lazily for the same reason: the front-search drivers ride the
#: search stack, which imports this module for :class:`SearchConfig`.
_PARETO_EXPORTS = frozenset({
    "ParetoFront", "ParetoPoint", "pareto_front", "hypervolume",
})


def __getattr__(name: str):
    if name in _CAMPAIGN_EXPORTS:
        from repro.sim import campaign

        return getattr(campaign, name)
    if name in _PARETO_EXPORTS:
        from repro.core import pareto

        return getattr(pareto, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


#: Placement search spaces: the paper's replicated row, heterogeneous
#: per-row placements, and pooled-budget 2D chords.  Defined here (not
#: in :mod:`repro.core.search_space`) so :class:`SearchConfig` can
#: validate without importing the search stack.
SEARCH_SPACES = ("row", "hetero", "grid2d")

#: Pareto objective axes a placement can be priced on (all minimized):
#: traffic-weighted mean row head latency, the static+dynamic power
#: proxy, total router area, and the worst-case channel-load saturation
#: bound.  Defined here (not in :mod:`repro.core.pareto`) so
#: :class:`SearchConfig` can validate without importing the front-search
#: stack.
OBJECTIVES = ("latency", "power", "area", "channel_load")

#: Front-search drivers: the ε-constraint sweep over the scalar
#: backends and the NSGA-II-style population loop.
PARETO_DRIVERS = ("epsilon", "nsga2")

#: Version stamp of the shared JSON schema (:meth:`SearchConfig.to_json`,
#: :meth:`PlacementResult.to_json`, :meth:`EvalResult.to_json`).  Bump
#: when a field changes meaning; readers reject unknown versions.
RESULT_SCHEMA = 1


def _float_hex(value: Optional[float]) -> Optional[str]:
    """Bit-exact float encoding for the JSON schema (``None`` passes)."""
    return None if value is None else float(value).hex()


def _float_unhex(value: Optional[str]) -> Optional[float]:
    return None if value is None else float.fromhex(value)


def _check_schema(data: Mapping, kind: str) -> None:
    if not isinstance(data, Mapping):
        raise ConfigurationError(f"{kind} JSON must be an object, got "
                                 f"{type(data).__name__}")
    schema = data.get("schema")
    if schema != RESULT_SCHEMA:
        raise ConfigurationError(
            f"unsupported {kind} schema {schema!r} (expected {RESULT_SCHEMA})"
        )
    if data.get("kind") != kind:
        raise ConfigurationError(
            f"expected kind {kind!r}, got {data.get('kind')!r}"
        )


@dataclass(frozen=True)
class SearchConfig:
    """Everything that shapes *how* a search runs (not *what* it solves).

    Problem parameters (``n``, ``C``, method, cost model, annealing
    schedule) stay explicit on the entry points; this object carries
    the execution knobs so they cannot sprawl into more keywords.

    Attributes
    ----------
    seed:
        Integer base seed, or ``None`` for fresh entropy.  Parallel
        searches (``restarts``/``jobs`` > 1) derive one independent
        stream per ``(C, restart)`` task from it.
    restarts:
        Independent SA chains per ``C``; the best chain wins.
    jobs:
        Worker processes; results are bit-identical for every value.
    chains:
        Lockstep group size for the SA restarts: each group of up to
        ``chains`` restarts runs inside one process as a population,
        pricing every move of all live chains with a single batched
        Floyd-Warshall call (:func:`repro.core.annealing.anneal_population`).
        Trajectories are byte-identical to the same restarts run
        serially, so ``chains`` is -- like ``jobs`` -- a pure
        wall-clock knob, and the two compose: groups are still fanned
        out across ``jobs`` processes.  ``chains > 1`` implies at
        least that many restarts (see :attr:`effective_restarts`) and
        is incompatible with ``incremental`` (the O(n^2) engine prices
        moves one chain at a time by construction).
    impl:
        Floyd-Warshall implementation: ``"vectorized"`` (NumPy,
        default), the pure-Python ``"reference"`` oracle, or the
        compiled ``"native"`` tier (optional numba / C-extension
        backends, ``pip install repro[native]``).  ``None`` resolves
        through the ``REPRO_IMPL`` environment default; all tiers are
        bit-identical by the cross-impl parity gates, so ``impl`` is a
        pure wall-clock knob and -- like ``jobs``/``chains`` -- is
        excluded from ledger run identities.
    incremental:
        Price SA candidates with the O(n^2) dynamic APSP engine
        (:mod:`repro.routing.incremental`) instead of a full O(n^3)
        re-solve per move.  Placements are byte-identical to the full
        path for the same seed under the default integral hop costs.
    resync_every:
        Incremental-mode drift self-check period, in accepted moves
        (0 disables): re-solve with full FW, verify bit-identity, emit
        ``sa.resync`` and repair on mismatch.
    max_evaluations:
        Optional cap on unique objective evaluations per chain.
    trace_out / metrics_every / profile:
        Observability: JSONL event trace path, periodic progress event
        interval, and span-profile printing (CLI flags of the same
        names).
    ledger:
        Run-ledger root directory (``--ledger``): record the run as a
        content-addressed manifest under ``<ledger>/<run_id>/`` (see
        :mod:`repro.obs.ledger`).  ``None`` disables recording; like
        the other observability knobs it never affects results.
    space:
        Placement search space (``--space``): ``"row"`` is the paper's
        replicated-row reduction; ``"hetero"`` searches one placement
        per mesh row (each under the row budget ``C``); ``"grid2d"``
        searches arbitrary same-row chords under the pooled per-cut
        budget ``n * C`` (see :mod:`repro.core.search_space`).  The
        mesh-level spaces run through the generic SA kernels, so they
        support ``chains`` but not the row-only ``incremental`` engine
        or the multi-process ``restarts``/``jobs`` fan-out.
    objectives:
        Pareto objective axes for :func:`repro.pareto_front` (subset of
        :data:`OBJECTIVES`, order defines the value-vector layout).
        Empty for scalar searches.
    pareto:
        Front-search driver (one of :data:`PARETO_DRIVERS`): the
        ε-constraint sweep or the NSGA-II-style population loop.
        Requires ``objectives`` and the row space.
    """

    seed: Optional[int] = None
    restarts: int = 1
    jobs: int = 1
    chains: int = 1
    impl: Optional[str] = None
    incremental: bool = False
    resync_every: int = 1_000
    max_evaluations: Optional[int] = None
    trace_out: Optional[str] = None
    metrics_every: int = 0
    profile: bool = False
    ledger: Optional[str] = None
    space: str = "row"
    objectives: Tuple[str, ...] = ()
    pareto: Optional[str] = None

    def __post_init__(self) -> None:
        # JSON round-trips deliver lists; normalize before validating
        # so equality with a freshly-built config holds.
        object.__setattr__(self, "objectives", tuple(self.objectives))
        if self.restarts < 1:
            raise ConfigurationError(f"restarts must be >= 1, got {self.restarts}")
        if self.jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {self.jobs}")
        if self.chains < 1:
            raise ConfigurationError(f"chains must be >= 1, got {self.chains}")
        if self.chains > 1 and self.incremental:
            raise ConfigurationError(
                "chains > 1 is incompatible with incremental=True: the "
                "lockstep population path prices all chains with one "
                "batched Floyd-Warshall call, while the incremental "
                "engine prices moves one chain at a time"
            )
        # Centralized tier resolution: validates the name, applies the
        # REPRO_IMPL environment default when impl is None, and
        # degrades an env-requested but unavailable "native" to
        # "vectorized" (an explicit "native" raises instead).
        object.__setattr__(self, "impl", resolve_impl(self.impl))
        if self.resync_every < 0:
            raise ConfigurationError(
                f"resync_every must be >= 0, got {self.resync_every}"
            )
        if self.metrics_every < 0:
            raise ConfigurationError(
                f"metrics_every must be >= 0, got {self.metrics_every}"
            )
        if self.space not in SEARCH_SPACES:
            raise ConfigurationError(
                f"unknown search space {self.space!r}; expected one of "
                f"{SEARCH_SPACES}"
            )
        unknown_axes = [o for o in self.objectives if o not in OBJECTIVES]
        if unknown_axes:
            raise ConfigurationError(
                f"unknown objective(s) {unknown_axes}; expected a subset "
                f"of {OBJECTIVES}"
            )
        if len(set(self.objectives)) != len(self.objectives):
            raise ConfigurationError(
                f"duplicate objectives in {self.objectives}"
            )
        if self.pareto is not None:
            if self.pareto not in PARETO_DRIVERS:
                raise ConfigurationError(
                    f"unknown pareto driver {self.pareto!r}; expected one "
                    f"of {PARETO_DRIVERS}"
                )
            if not self.objectives:
                raise ConfigurationError(
                    "pareto searches need at least one objective axis "
                    f"(objectives=, from {OBJECTIVES})"
                )
            if self.space != "row":
                raise ConfigurationError(
                    "pareto front search is row-space only: the mesh "
                    "axes price replicated-row designs"
                )
        if self.space != "row":
            if self.incremental:
                raise ConfigurationError(
                    "incremental=True is row-space only: the O(n^2) "
                    "dynamic APSP engine prices single-row link changes"
                )
            if self.restarts > 1 or self.jobs > 1:
                raise ConfigurationError(
                    "multi-process restarts/jobs are row-space only; "
                    "use chains=K for population search in the "
                    f"{self.space!r} space"
                )

    @property
    def parallel(self) -> bool:
        """True when the multi-restart engine should run the search."""
        return self.restarts > 1 or self.jobs > 1 or self.chains > 1

    @property
    def effective_restarts(self) -> int:
        """The restart count the engine actually runs.

        ``chains=K`` alone means "run K lockstep chains", so the
        restart count is raised to at least ``chains``; an explicit
        larger ``restarts`` is split into consecutive groups of
        ``chains``.
        """
        return max(self.restarts, self.chains)

    @classmethod
    def from_cli(cls, args: Any) -> "SearchConfig":
        """Build a config from parsed CLI args (missing flags default)."""
        defaults = cls()
        return cls(
            seed=getattr(args, "seed", defaults.seed),
            restarts=getattr(args, "restarts", defaults.restarts),
            jobs=getattr(args, "jobs", defaults.jobs),
            chains=getattr(args, "chains", defaults.chains),
            impl=getattr(args, "impl", defaults.impl),
            incremental=getattr(args, "incremental", defaults.incremental),
            resync_every=getattr(args, "resync_every", defaults.resync_every),
            max_evaluations=getattr(
                args, "max_evaluations", defaults.max_evaluations
            ),
            trace_out=getattr(args, "trace_out", defaults.trace_out),
            metrics_every=getattr(args, "metrics_every", defaults.metrics_every),
            profile=getattr(args, "profile", defaults.profile),
            ledger=getattr(args, "ledger", defaults.ledger),
            space=getattr(args, "space", defaults.space),
            objectives=tuple(getattr(args, "objectives", defaults.objectives)),
            pareto=getattr(args, "pareto", defaults.pareto),
        )

    def with_updates(self, **changes: Any) -> "SearchConfig":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **changes)

    # -- JSON schema ---------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        """This config as a plain JSON-safe dict.

        ``objectives`` serializes as a list (JSON has no tuples), so a
        dict that made a round trip through real JSON compares equal
        to a freshly-produced one; ``from_json`` re-coerces it.
        """
        data = asdict(self)
        data["objectives"] = list(data["objectives"])
        return data

    @classmethod
    def from_json(cls, data: Mapping) -> "SearchConfig":
        """Rebuild a config from :meth:`to_json` output.

        Unknown keys are rejected (a typo'd knob must not silently
        fall back to its default) and validation re-runs.
        """
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"SearchConfig JSON must be an object, got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown SearchConfig field(s) {unknown}; known fields: "
                f"{sorted(known)}"
            )
        return cls(**dict(data))


# ----------------------------------------------------------------------
# Legacy-keyword rejection
# ----------------------------------------------------------------------

#: Legacy search keyword -> the SearchConfig field that replaced it.
#: The deprecation shim (``resolve_search_args`` /
#: ``warn_legacy_kwargs``) warned for 5 PRs; the keywords now
#: hard-error with this mapping in the message.
LEGACY_KWARG_MIGRATIONS = {
    "rng": "seed",
    "restarts": "restarts",
    "jobs": "jobs",
    "chains": "chains",
    "max_evaluations": "max_evaluations",
    "progress_every": "metrics_every",
}


def reject_legacy_kwargs(func_name: str, legacy: Dict[str, Any]) -> None:
    """Raise ``TypeError`` for retired search keywords, naming the fix.

    Unknown keywords keep plain ``TypeError`` semantics (typos look
    like typos); retired ones get a migration hint naming the
    :class:`SearchConfig` field to use instead.  No-op on an empty
    dict, so entry points can simply forward their ``**kwargs``.
    """
    if not legacy:
        return
    unknown = sorted(k for k in legacy if k not in LEGACY_KWARG_MIGRATIONS)
    if unknown:
        raise TypeError(
            f"{func_name}() got unexpected keyword argument(s) {unknown}"
        )
    hints = ", ".join(
        f"{k}= -> SearchConfig({LEGACY_KWARG_MIGRATIONS[k]}=...)"
        for k in sorted(legacy)
    )
    raise TypeError(
        f"{func_name}() no longer accepts the legacy search keyword(s) "
        f"{sorted(legacy)}; pass config=repro.SearchConfig(...) instead "
        f"({hints}; see docs/api.md)"
    )


# ----------------------------------------------------------------------
# Result objects
# ----------------------------------------------------------------------

def _placement_rows(placement: Any, space: str) -> Tuple[bytes, ...]:
    """Per-row canonical bytes: the exact (unfolded) design encoding.

    Mesh placements serialize one byte string per row -- NOT
    :meth:`~repro.topology.grid.MeshRowsPlacement.canonical_bytes`,
    which mirror-folds (identifies a design with its vertical mirror)
    and therefore cannot round-trip.
    """
    if space == "row":
        return (placement.canonical_bytes(),)
    return tuple(row.canonical_bytes() for row in placement.rows)


def _placement_from_rows(space: str, n: int, rows: Tuple[bytes, ...]) -> Any:
    decoded = [RowPlacement.from_canonical_bytes(data) for data in rows]
    if space == "row":
        if len(decoded) != 1:
            raise ConfigurationError(
                f"row-space placements serialize as one row, got {len(decoded)}"
            )
        return decoded[0]
    from repro.topology.grid import Grid2DPlacement, HeteroPlacement

    cls = HeteroPlacement if space == "hetero" else Grid2DPlacement
    return cls(n=n, rows=tuple(decoded))


@dataclass(frozen=True)
class PlacementResult:
    """The unified outcome of every placement search entry point.

    Returned by :func:`repro.optimize`, :func:`repro.solve_row_problem`
    and :func:`place_express_links` in every search space.  The core
    fields (``placement``, ``energy``, ``evaluations``) are always
    filled; the latency-breakdown fields (``flit_bits``,
    ``head_latency``, ``serialization_latency``, ``total_latency``,
    ``latency_curve``) are filled by the sweeping entry points and
    ``None``/empty for single-``C`` solves, where no flit width has
    been chosen.

    ``sweep`` keeps the raw engine object
    (:class:`~repro.core.optimizer.SweepResult` or
    :class:`~repro.core.search_space.SpaceSweepResult`) and
    ``solution`` the per-instance object
    (:class:`~repro.core.optimizer.RowSolution` /
    :class:`~repro.core.search_space.SpaceSolution`) for power users;
    both are excluded from equality and from the JSON schema.
    """

    n: int
    method: str
    space: str
    link_limit: int
    placement: Any
    express_links: Tuple[Tuple[int, ...], ...]
    energy: float
    evaluations: int
    wall_time_s: float
    config: SearchConfig
    flit_bits: Optional[int] = None
    head_latency: Optional[float] = None
    serialization_latency: Optional[float] = None
    total_latency: Optional[float] = None
    latency_curve: Tuple[Tuple[int, float], ...] = ()
    restart_energies: Tuple[Tuple[int, Tuple[float, ...]], ...] = ()
    sweep: Any = field(repr=False, compare=False, default=None)
    solution: Any = field(repr=False, compare=False, default=None)

    # -- constructors --------------------------------------------------
    @classmethod
    def from_sweep(
        cls,
        sweep: Any,
        config: SearchConfig,
        wall_time_s: float,
    ) -> "PlacementResult":
        """Wrap a full ``C`` sweep (row or mesh space) as the public type."""
        best = sweep.best
        space = getattr(sweep, "space", "row")
        solution = sweep.solutions[best.link_limit]
        if space == "row":
            express = tuple(sorted(best.placement.express_links))
            head = best.latency.head
            serialization = best.latency.serialization
        else:
            express = best.placement.express_chords()
            head = best.head_latency
            serialization = best.serialization
        restart = getattr(sweep, "restart_energies", None) or {}
        return cls(
            n=sweep.n,
            method=sweep.method,
            space=space,
            link_limit=best.link_limit,
            placement=best.placement,
            express_links=express,
            energy=solution.energy,
            evaluations=sum(s.evaluations for s in sweep.solutions.values()),
            wall_time_s=wall_time_s,
            config=config,
            flit_bits=best.flit_bits,
            head_latency=head,
            serialization_latency=serialization,
            total_latency=best.total_latency,
            latency_curve=sweep.latency_curve(),
            restart_energies=tuple(sorted(restart.items())),
            sweep=sweep,
        )

    @classmethod
    def from_solution(
        cls, solution: Any, config: SearchConfig
    ) -> "PlacementResult":
        """Wrap a single ``P~(n, C)`` solve as the public type."""
        space = getattr(solution, "space", "row")
        placement = solution.placement
        if space == "row":
            express = tuple(sorted(placement.express_links))
        else:
            express = placement.express_chords()
        return cls(
            n=solution.n,
            method=solution.method,
            space=space,
            link_limit=solution.link_limit,
            placement=placement,
            express_links=express,
            energy=solution.energy,
            evaluations=solution.evaluations,
            wall_time_s=solution.wall_time_s,
            config=config,
            solution=solution,
        )

    # -- JSON schema ---------------------------------------------------
    def to_json(self) -> Dict[str, Any]:
        """The shared wire/ledger/store schema for this result.

        Energies and latencies are ``float.hex`` strings (bit-exact);
        the placement is per-row canonical bytes as hex.  ``sweep`` /
        ``solution`` are deliberately dropped: they carry engine
        internals, and equality ignores them, so
        ``from_json(to_json(r)) == r``.
        """
        return {
            "schema": RESULT_SCHEMA,
            "kind": "placement_result",
            "n": self.n,
            "method": self.method,
            "space": self.space,
            "link_limit": self.link_limit,
            "placement_rows": [
                data.hex() for data in _placement_rows(self.placement, self.space)
            ],
            "express_links": [list(link) for link in self.express_links],
            "energy": _float_hex(self.energy),
            "evaluations": self.evaluations,
            "wall_time_s": _float_hex(self.wall_time_s),
            "config": self.config.to_json(),
            "flit_bits": self.flit_bits,
            "head_latency": _float_hex(self.head_latency),
            "serialization_latency": _float_hex(self.serialization_latency),
            "total_latency": _float_hex(self.total_latency),
            "latency_curve": [
                [c, _float_hex(t)] for c, t in self.latency_curve
            ],
            "restart_energies": [
                [c, [_float_hex(e) for e in energies]]
                for c, energies in self.restart_energies
            ],
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "PlacementResult":
        """Rebuild a result from :meth:`to_json` output (bit-exact)."""
        _check_schema(data, "placement_result")
        space = data["space"]
        if space not in SEARCH_SPACES:
            raise ConfigurationError(
                f"unknown search space {space!r} in placement_result"
            )
        placement = _placement_from_rows(
            space, data["n"],
            tuple(bytes.fromhex(row) for row in data["placement_rows"]),
        )
        return cls(
            n=data["n"],
            method=data["method"],
            space=space,
            link_limit=data["link_limit"],
            placement=placement,
            express_links=tuple(
                tuple(link) for link in data["express_links"]
            ),
            energy=_float_unhex(data["energy"]),
            evaluations=data["evaluations"],
            wall_time_s=_float_unhex(data["wall_time_s"]),
            config=SearchConfig.from_json(data["config"]),
            flit_bits=data.get("flit_bits"),
            head_latency=_float_unhex(data.get("head_latency")),
            serialization_latency=_float_unhex(
                data.get("serialization_latency")
            ),
            total_latency=_float_unhex(data.get("total_latency")),
            latency_curve=tuple(
                (c, _float_unhex(t)) for c, t in data.get("latency_curve", ())
            ),
            restart_energies=tuple(
                (c, tuple(_float_unhex(e) for e in energies))
                for c, energies in data.get("restart_energies", ())
            ),
        )


@dataclass(frozen=True)
class EvalResult:
    """Outcome of :func:`evaluate_placement`: one placement, priced.

    Head latencies are zero-load averages; the serialization and total
    fields are ``None`` when no ``link_limit`` is given (without ``C``
    there is no flit width, hence no ``L_S``).
    """

    n: int
    link_limit: Optional[int]
    row_head_latency: float
    head_latency: float
    worst_case_latency: Optional[float]
    serialization_latency: Optional[float]
    total_latency: Optional[float]
    flit_bits: Optional[int]

    def to_json(self) -> Dict[str, Any]:
        """The shared wire schema for an evaluation (float-hex exact)."""
        return {
            "schema": RESULT_SCHEMA,
            "kind": "eval_result",
            "n": self.n,
            "link_limit": self.link_limit,
            "row_head_latency": _float_hex(self.row_head_latency),
            "head_latency": _float_hex(self.head_latency),
            "worst_case_latency": _float_hex(self.worst_case_latency),
            "serialization_latency": _float_hex(self.serialization_latency),
            "total_latency": _float_hex(self.total_latency),
            "flit_bits": self.flit_bits,
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "EvalResult":
        _check_schema(data, "eval_result")
        return cls(
            n=data["n"],
            link_limit=data["link_limit"],
            row_head_latency=_float_unhex(data["row_head_latency"]),
            head_latency=_float_unhex(data["head_latency"]),
            worst_case_latency=_float_unhex(data["worst_case_latency"]),
            serialization_latency=_float_unhex(data["serialization_latency"]),
            total_latency=_float_unhex(data["total_latency"]),
            flit_bits=data["flit_bits"],
        )


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

def place_express_links(
    n: int,
    method: str = "dc_sa",
    config: Optional[SearchConfig] = None,
    bandwidth=None,
    mix=None,
    cost=None,
    params=None,
    link_limits: Optional[Tuple[int, ...]] = None,
    obs=None,
    warm_start: Optional[RowPlacement] = None,
) -> PlacementResult:
    """Run the paper's full flow for an ``n x n`` mesh (any space).

    Sweeps every feasible cross-section limit ``C``, solves each
    ``P~(n, C)`` with ``method`` in ``config.space``, adds the
    serialization latency implied by the flit width, and returns the
    best design as a frozen :class:`PlacementResult`.  ``warm_start``
    (row space only) injects a known-good neighbor placement as an
    extra candidate after each solve -- see
    :func:`repro.core.optimizer.optimize`.
    """
    from repro.core.optimizer import optimize

    return optimize(
        n,
        method=method,
        bandwidth=bandwidth,
        mix=mix,
        cost=cost,
        params=params,
        link_limits=link_limits,
        obs=obs,
        config=config or SearchConfig(),
        warm_start=warm_start,
    )


def evaluate_placement(
    placement: RowPlacement,
    link_limit: Optional[int] = None,
    bandwidth=None,
    mix=None,
    cost=None,
    weights=None,
    impl: Optional[str] = None,
) -> EvalResult:
    """Price an existing row placement into an :class:`EvalResult`.

    Without ``link_limit`` only the head-latency terms are computed;
    with it the placement is validated against ``C`` and the full
    Eq. 2 breakdown (flit width, serialization, worst case) is filled
    in.  ``impl=None`` resolves through
    :func:`repro.routing.impls.resolve_impl` (``REPRO_IMPL`` honored).
    """
    import numpy as np

    from repro.core.latency import mean_row_head_latency

    impl = resolve_impl(impl)

    w = None if weights is None else np.asarray(weights, dtype=float)
    row = mean_row_head_latency(placement, cost, w, impl=impl)
    return eval_result_from_row(
        placement, row, link_limit, bandwidth=bandwidth, mix=mix, cost=cost
    )


def eval_result_from_row(
    placement: RowPlacement,
    row_head_latency: float,
    link_limit: Optional[int] = None,
    bandwidth=None,
    mix=None,
    cost=None,
) -> EvalResult:
    """Finish an evaluation from a precomputed row head latency.

    The seam the serving layer's request batcher uses: it prices many
    placements' row energies with one
    :meth:`~repro.core.latency.RowObjective.evaluate_many` call
    (bit-identical to the scalar path by the PR 5 parity contract) and
    completes each request here, so batched ``/evaluate`` responses are
    byte-identical to :func:`evaluate_placement`.
    """
    if link_limit is None:
        return EvalResult(
            n=placement.n,
            link_limit=None,
            row_head_latency=row_head_latency,
            head_latency=2.0 * row_head_latency,
            worst_case_latency=None,
            serialization_latency=None,
            total_latency=None,
            flit_bits=None,
        )
    from repro.core.latency import (
        BandwidthConfig,
        network_average_latency,
        network_worst_case_latency,
    )

    bw = bandwidth or BandwidthConfig()
    breakdown = network_average_latency(placement, link_limit, bw, mix, cost)
    return EvalResult(
        n=placement.n,
        link_limit=link_limit,
        row_head_latency=row_head_latency,
        head_latency=breakdown.head,
        worst_case_latency=network_worst_case_latency(
            placement, link_limit, bw, mix, cost
        ),
        serialization_latency=breakdown.serialization,
        total_latency=breakdown.total,
        flit_bits=bw.flit_bits(link_limit),
    )
