"""Command-line interface: ``python -m repro <command>``.

Gives downstream users the paper's flow without writing Python:

* ``optimize`` -- sweep C and print the design table for one mesh size,
* ``solve``    -- solve a single ``P~(n, C)`` instance,
* ``pareto``   -- search the multi-objective Pareto front
  (latency / power / area / channel load) per traffic scenario and C,
  via an epsilon-constraint sweep or an NSGA-II population loop,
* ``simulate`` -- run the cycle-accurate simulator on a chosen scheme,
* ``simulate-sweep`` -- run a scheme x pattern x rate campaign grid,
  fanned over ``--jobs`` worker processes (identical tables for every
  jobs value at a fixed seed),
* ``inspect``  -- show a placement's structure, matrix and audits,
* ``serve``    -- run the placement service: an HTTP/JSON server with a
  content-addressed design cache, request batching, warm-started
  near-miss searches and an idle-time cache sweeper,
* ``experiments`` -- list the paper-figure regenerators,
* ``trace-report`` -- summarize a JSONL trace written by ``--trace-out``
  (``--by-worker`` / ``--by-task`` add the correlation views),
* ``runs`` -- list / show / diff the run-ledger manifests written by
  ``--ledger``,
* ``metrics-export`` -- render a recorded run's metrics as Prometheus
  text or JSON,
* ``bench-report`` -- compare two ``benchmarks/results`` directories
  and fail on perf regressions.

Parallel search flags (``optimize`` / ``solve``): ``--restarts N`` runs
``N`` independent SA chains per ``C`` from derived seeds and keeps the
best; ``--jobs K`` fans the chains out over ``K`` worker processes;
``--chains K`` packs consecutive restarts into lockstep population
groups priced by one batched Floyd-Warshall call per move.  Results
are bit-identical for every ``--jobs`` / ``--chains`` value at a
fixed seed.  ``--space hetero|grid2d`` searches the mesh-level spaces
(per-row placements / pooled-budget 2D chords) instead of the paper's
replicated row; these support ``--chains`` but not the row-only
``--restarts`` / ``--jobs`` / ``--incremental`` knobs.

Observability flags (``optimize`` / ``solve`` / ``simulate``):
``--trace-out PATH`` streams structured events as JSON Lines,
``--metrics-every N`` sets the periodic sample interval (simulator
heartbeats, SA progress events), ``--profile`` prints the span profile
and metrics summary after the run.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from contextlib import contextmanager
from typing import List, Optional

from repro.api import SEARCH_SPACES, SearchConfig
from repro.core.connection_matrix import ConnectionMatrix
from repro.core.optimizer import optimize, solve_row_problem
from repro.harness.designs import EFFORTS, hfb_design, mesh_design
from repro.routing.impls import IMPLEMENTATIONS
from repro.harness.tables import pct_change, render_table
from repro.obs import Instrumentation, JsonlSink, report_file
from repro.obs.ledger import (
    LEDGER_ROOT,
    RunLedger,
    diff_manifests,
    optimize_params,
    render_runs_table,
    solution_digest,
    solve_params,
    sweep_digest,
)
from repro.sim.config import SimConfig
from repro.sim.engine import Simulator
from repro.topology.validate import audit_row
from repro.util.errors import ConfigurationError
from repro.traffic.injection import SyntheticTraffic
from repro.traffic.parsec import PARSEC_NAMES, parsec_traffic
from repro.traffic.patterns import PATTERNS, make_pattern


def _add_run_flags(
    p: argparse.ArgumentParser, *, obs: bool = True, search: bool = False,
    sim: bool = False,
) -> None:
    """The one shared option group for run/search/observability flags.

    Every subcommand builds its common surface here -- ``optimize`` /
    ``solve`` / ``simulate`` cannot drift apart in flag names, defaults
    or help text.  ``search=True`` adds the flags that feed
    :meth:`repro.api.SearchConfig.from_cli`; ``obs=False`` trims the
    group to seed + effort for commands that never trace.
    """
    g = p.add_argument_group("run options")
    g.add_argument("--seed", type=int, default=2019)
    g.add_argument(
        "--effort", choices=sorted(EFFORTS), default="paper", help="annealing budget"
    )
    if search:
        g.add_argument(
            "--jobs", type=int, default=1, metavar="K",
            help="worker processes for the search (results are identical "
            "for every value; default 1 = in-process)",
        )
        g.add_argument(
            "--restarts", type=int, default=1, metavar="N",
            help="independent SA chains per C (derived seeds; best chain wins)",
        )
        g.add_argument(
            "--chains", type=int, default=1, metavar="K",
            help="lockstep population size: pack consecutive restarts into "
            "groups of K priced by one batched objective call per move "
            "(results identical to --restarts; composes with --jobs)",
        )
        g.add_argument(
            "--impl", choices=IMPLEMENTATIONS, default=None,
            help="Floyd-Warshall implementation: vectorized (NumPy, the "
            "default), reference (pure-Python oracle), or native "
            "(compiled tier; pip install repro[native]).  All tiers are "
            "bit-identical.  Unset, the REPRO_IMPL environment default "
            "applies",
        )
        g.add_argument(
            "--space", choices=SEARCH_SPACES, default="row",
            help="placement search space: the paper's replicated row, "
            "heterogeneous per-row placements, or pooled-budget 2D "
            "chords (hetero/grid2d support --chains but not "
            "--restarts/--jobs/--incremental)",
        )
        g.add_argument(
            "--incremental", action="store_true",
            help="price SA moves with the O(n^2) incremental APSP engine "
            "(placements identical to the full path for the same seed)",
        )
        g.add_argument(
            "--resync-every", type=int, default=1_000, metavar="N",
            help="incremental mode: full-FW drift self-check every N "
            "accepted moves (0 disables)",
        )
    if sim:
        g.add_argument(
            "--engine", choices=("active", "reference"), default="active",
            help="cycle engine: active-set scheduling with idle skipping, "
            "or the poll-everything reference (identical results)",
        )
    if obs:
        g.add_argument(
            "--trace-out", metavar="PATH", default=None,
            help="write structured events to PATH as JSON Lines",
        )
        g.add_argument(
            "--metrics-every", type=int, default=500, metavar="N",
            help="periodic sample interval (simulator cycles / SA moves)",
        )
        g.add_argument(
            "--profile", action="store_true",
            help="time spans and print the profile + metrics summary",
        )
        g.add_argument(
            "--ledger", metavar="DIR", nargs="?", const=LEDGER_ROOT,
            default=None,
            help="record the run as a content-addressed manifest under DIR "
            f"(default {LEDGER_ROOT}; query with 'repro runs')",
        )


def _make_obs(args: argparse.Namespace) -> Optional[Instrumentation]:
    """Build the run's instrumentation from CLI flags (None if unused).

    ``--ledger`` alone creates a sink-less bundle: no events are built
    (``enabled`` stays False, results stay bit-identical) but the
    metrics registry fills so the manifest can record the run summary.
    """
    ledger = getattr(args, "ledger", None)
    if not (args.trace_out or args.profile or ledger):
        return None
    sinks = []
    if args.trace_out:
        try:  # fail fast, before the run, if the path is unwritable
            open(args.trace_out, "w", encoding="utf-8").close()
        except OSError as exc:
            print(f"error: cannot write trace to {args.trace_out}: {exc}",
                  file=sys.stderr)
            raise SystemExit(2) from exc
        sinks.append(JsonlSink(args.trace_out))
    return Instrumentation(sinks=sinks, profile=args.profile)


@contextmanager
def _obs_session(args: argparse.Namespace):
    """The run's instrumentation with guaranteed sink teardown.

    Sinks flush and close even when the command raises, so a JSONL
    trace written up to a crash stays readable by ``repro
    trace-report``; the exception still propagates.
    """
    obs = _make_obs(args)
    try:
        yield obs
    finally:
        if obs is not None:
            obs.close()


def _finish_obs(obs: Optional[Instrumentation], args: argparse.Namespace) -> None:
    """Print requested end-of-run summaries (teardown is _obs_session's)."""
    if obs is None:
        return
    obs.close()
    if args.profile:
        print()
        print(obs.profile_table())
        print(obs.metrics_summary())
    if args.trace_out:
        print(f"\ntrace written to {args.trace_out} "
              f"(summarize with: repro trace-report {args.trace_out})")


def _ledger_for(args: argparse.Namespace) -> Optional[RunLedger]:
    path = getattr(args, "ledger", None)
    return RunLedger(path) if path else None


def _record_run(
    ledger: Optional[RunLedger],
    obs: Optional[Instrumentation],
    run_id: Optional[str],
    kind: str,
    params: dict,
    config,
    seed,
    wall_time_s: float,
    results: dict,
    result_digest: str,
) -> None:
    """Write the manifest and tell the user where it went."""
    if ledger is None:
        return
    metrics_summary: dict = {}
    metrics: dict = {}
    if obs is not None:
        metrics_summary = obs.metrics.deterministic_summary()
        metrics = obs.metrics.snapshot()
    record = ledger.record(
        kind=kind, params=params, config=config, seed=seed,
        wall_time_s=wall_time_s, results=results,
        result_digest=result_digest, metrics_summary=metrics_summary,
        metrics=metrics, run_id=run_id,
    )
    print(f"\nrun recorded: {record.run_id} "
          f"({ledger.manifest_path(record.run_id)})")


def _run_result_digest(*runs) -> str:
    """Fingerprint of simulator run results (exact float hex)."""
    from repro.obs.ledger import digest_parts

    parts = []
    for run in runs:
        s = run.summary
        parts.extend([
            run.cycles_run, s.packets,
            float(s.avg_network_latency).hex(),
            float(s.avg_head_latency).hex(),
            float(s.avg_serialization_latency).hex(),
        ])
    return digest_parts(*parts)


def _cmd_optimize(args: argparse.Namespace) -> int:
    with _obs_session(args) as obs:
        cfg = SearchConfig.from_cli(args)
        mesh_space = cfg.space != "row"
        parallel = cfg.parallel and not mesh_space
        if args.save and mesh_space:
            print("error: --save stores row sweeps only (use --space row)",
                  file=sys.stderr)
            return 2
        ledger = _ledger_for(args)
        ledger_params = optimize_params(
            args.n, args.method, args.effort, cfg.space
        )
        run_id = None
        if ledger is not None:
            run_id = ledger.run_id_for(
                "optimize", ledger_params, cfg, cfg.seed
            )
            if obs is not None:
                obs.set_context(run_id=run_id)
        start = time.perf_counter()
        res = optimize(
            args.n, method=args.method, params=EFFORTS[args.effort],
            obs=obs, config=cfg,
        )
        sweep = res.sweep
        wall = time.perf_counter() - start
        if args.save:
            from repro.io import save_sweep

            save_sweep(sweep, args.save)
            print(f"sweep saved to {args.save}")
        rows = []
        for c, point in sorted(sweep.points.items()):
            if mesh_space:
                head = point.head_latency
                serialization = point.serialization
                links = point.placement.num_express_chords()
            else:
                head = point.latency.head
                serialization = point.latency.serialization
                links = len(point.placement.express_links)
            rows.append(
                [c, point.flit_bits, head, serialization,
                 point.total_latency, links]
            )
        label = f"{args.method}, space={cfg.space}" if mesh_space else args.method
        print(
            render_table(
                f"{args.n}x{args.n} design sweep ({label})",
                ["C", "flit bits", "L_D", "L_S", "total", "express links"],
                rows,
            )
        )
        best = sweep.best
        mesh = mesh_design(args.n)
        print(f"\nbest: C={best.link_limit}, flit={best.flit_bits}b, "
              f"total={best.total_latency:.2f} cycles "
              f"(-{pct_change(best.total_latency, mesh.point.total_latency):.1f}% vs mesh)")
        if mesh_space:
            print(f"chords: {list(best.placement.express_chords())}")
        else:
            print(f"row placement: {sorted(best.placement.express_links)}")
        if parallel:
            spread = sweep.restart_energies.get(best.link_limit, ())
            print(f"search: {sweep.restarts} restart(s) x {len(sweep.points)} limits "
                  f"on {sweep.jobs} job(s); best-C restart energies: "
                  f"{[round(e, 4) for e in spread]}")
        _record_run(
            ledger, obs, run_id, "optimize", ledger_params, cfg, cfg.seed,
            wall,
            results={
                "best_link_limit": best.link_limit,
                "best_flit_bits": best.flit_bits,
                "best_total_latency": best.total_latency,
                "express_links": (
                    best.placement.num_express_chords() if mesh_space
                    else len(best.placement.express_links)
                ),
            },
            result_digest=sweep_digest(sweep),
        )
        _finish_obs(obs, args)
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    with _obs_session(args) as obs:
        cfg = SearchConfig.from_cli(args)
        mesh_space = cfg.space != "row"
        ledger = _ledger_for(args)
        ledger_params = solve_params(
            args.n, args.c, args.method, args.effort, cfg.space
        )
        run_id = None
        if ledger is not None:
            run_id = ledger.run_id_for("solve", ledger_params, cfg, cfg.seed)
            if obs is not None:
                obs.set_context(run_id=run_id)
        start = time.perf_counter()
        if cfg.parallel and not mesh_space:
            from repro.core.parallel import parallel_row_search

            sol, energies = parallel_row_search(
                args.n,
                args.c,
                method=args.method,
                params=EFFORTS[args.effort],
                base_seed=cfg.seed,
                restarts=cfg.effective_restarts,
                jobs=cfg.jobs,
                chains=cfg.chains,
                impl=cfg.impl,
                incremental=cfg.incremental,
                resync_every=cfg.resync_every,
                obs=obs,
            )
        else:
            sol = solve_row_problem(
                args.n,
                args.c,
                method=args.method,
                params=EFFORTS[args.effort],
                obs=obs,
                config=cfg,
            )
            energies = None
        wall = time.perf_counter() - start
        tag = f"{args.method}, space={cfg.space}" if mesh_space else args.method
        print(f"P~({args.n},{args.c}) [{tag}]")
        # The energy line is format-identical across spaces on purpose:
        # CI diffs it between `--space row` and `--space hetero` exact
        # solves as an end-to-end reduction-parity check.
        print(f"  mean row head latency: {sol.energy:.4f} cycles (2D: {2 * sol.energy:.4f})")
        if mesh_space:
            print(f"  express chords: {list(sol.placement.express_chords())}")
        else:
            print(f"  express links: {sorted(sol.placement.express_links)}")
        print(f"  evaluations: {sol.evaluations}, wall time: {sol.wall_time_s:.2f}s")
        if energies is not None:
            print(f"  restarts: {[round(e, 4) for e in energies]} "
                  f"({cfg.effective_restarts} chains on {args.jobs} job(s))")
        _record_run(
            ledger, obs, run_id, "solve", ledger_params, cfg, cfg.seed, wall,
            results={
                "energy": sol.energy,
                "express_links": (
                    sol.placement.num_express_chords() if mesh_space
                    else len(sol.placement.express_links)
                ),
                "evaluations": sol.evaluations,
            },
            result_digest=solution_digest(sol),
        )
        _finish_obs(obs, args)
    return 0


def _cmd_pareto(args: argparse.Namespace) -> int:
    from repro.core.pareto import pareto_front
    from repro.obs.ledger import digest_parts, pareto_params
    from repro.traffic.parsec import PARSEC_WORKLOADS, workload_gamma

    # SearchConfig.from_cli reads args.objectives / args.pareto
    # verbatim: turn the CSV flag into the axis tuple and alias the
    # driver flag before the config is built (validation happens there).
    args.objectives = tuple(
        s.strip() for s in args.objectives.split(",") if s.strip()
    )
    args.pareto = args.driver
    try:
        limits = tuple(int(s) for s in str(args.c).split(",") if s.strip())
    except ValueError:
        print(f"error: bad --c list {args.c!r}", file=sys.stderr)
        return 2
    traffics = tuple(
        s.strip() for s in args.traffic.split(",") if s.strip()
    ) or ("uniform",)
    for name in traffics:
        if name != "uniform" and name not in PARSEC_WORKLOADS:
            print(
                f"error: unknown traffic {name!r}; expected 'uniform' or "
                f"one of {PARSEC_NAMES}",
                file=sys.stderr,
            )
            return 2
    with _obs_session(args) as obs:
        try:
            cfg = SearchConfig.from_cli(args)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        ledger = _ledger_for(args)
        scenarios = []
        for traffic in traffics:
            gamma = (
                None if traffic == "uniform"
                else workload_gamma(PARSEC_WORKLOADS[traffic], args.n)
            )
            for c in limits:
                ledger_params = pareto_params(
                    args.n, c, args.method, args.effort, args.driver,
                    cfg.objectives, traffic,
                )
                run_id = None
                if ledger is not None:
                    run_id = ledger.run_id_for(
                        "pareto", ledger_params, cfg, cfg.seed
                    )
                    if obs is not None:
                        obs.set_context(run_id=run_id)
                start = time.perf_counter()
                front = pareto_front(
                    args.n, c,
                    gamma=gamma,
                    method=args.method,
                    params=EFFORTS[args.effort],
                    config=cfg,
                    points=args.points,
                    population=args.population,
                    generations=args.generations,
                    obs=obs,
                )
                wall = time.perf_counter() - start
                front_json = front.to_json()
                hv = front.hypervolume()
                scenarios.append(
                    {"traffic": traffic, "c": c, "front": front_json}
                )
                rows = [
                    [i]
                    + [f"{v:.4f}" for v in point.values]
                    + [sorted(point.placement.express_links)]
                    for i, point in enumerate(front.points)
                ]
                print(
                    render_table(
                        f"{args.n}x{args.n} C={c} Pareto front "
                        f"({args.driver}, {traffic})",
                        ["#", *front.objectives, "express links"],
                        rows,
                    )
                )
                print(f"  {len(front.points)} nondominated point(s) from "
                      f"{front.evaluations} priced design(s); "
                      f"hypervolume {hv:.6g}")
                _record_run(
                    ledger, obs, run_id, "pareto", ledger_params, cfg,
                    cfg.seed, wall,
                    results={
                        "front_size": len(front.points),
                        "evaluations": front.evaluations,
                        "hypervolume": hv,
                    },
                    result_digest=digest_parts(
                        json.dumps(front_json, sort_keys=True)
                    ),
                )
        if args.out:
            payload = {
                "schema": 1,
                "kind": "pareto_fronts",
                "n": args.n,
                "driver": args.driver,
                "objectives": list(cfg.objectives),
                "scenarios": scenarios,
            }
            with open(args.out, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"\nfronts written to {args.out}")
        _finish_obs(obs, args)
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    with _obs_session(args) as obs:
        design = _design_for(args.scheme, args.n, args.seed, args.effort)
        cfg = SimConfig(
            flit_bits=design.point.flit_bits,
            warmup_cycles=args.warmup,
            measure_cycles=args.measure,
            max_cycles=max(50_000, 20 * (args.warmup + args.measure)),
            seed=args.seed,
        )
        ledger = _ledger_for(args)
        ledger_params = {
            "n": args.n, "scheme": args.scheme, "workload": args.workload,
            "rate": args.rate, "effort": args.effort, "engine": args.engine,
        }
        run_id = None
        if ledger is not None:
            run_id = ledger.run_id_for(
                "simulate", ledger_params, cfg, args.seed
            )
            if obs is not None:
                obs.set_context(run_id=run_id)
        if args.workload in PARSEC_NAMES:
            traffic = parsec_traffic(args.workload, args.n, rng=args.seed)
        else:
            traffic = SyntheticTraffic(
                make_pattern(args.workload, args.n),
                rate=args.rate,
                rng=args.seed,
            )
        start = time.perf_counter()
        result = Simulator(
            design.topology, cfg, traffic, obs=obs,
            metrics_every=args.metrics_every, engine=args.engine,
        ).run()
        wall = time.perf_counter() - start
        s = result.summary
        print(f"{design.name} on {args.n}x{args.n}, workload={args.workload}")
        print(f"  packets measured: {s.packets} (drained: {result.drained})")
        print(f"  avg network latency: {s.avg_network_latency:.2f} cycles")
        print(f"  avg head latency:    {s.avg_head_latency:.2f} cycles")
        print(f"  avg serialization:   {s.avg_serialization_latency:.2f} cycles")
        print(f"  throughput:          {s.throughput_packets_per_cycle:.3f} packets/cycle")
        _record_run(
            ledger, obs, run_id, "simulate", ledger_params, cfg, args.seed,
            wall,
            results={
                "packets": s.packets,
                "drained": result.drained,
                "cycles_run": result.cycles_run,
                "avg_network_latency": s.avg_network_latency,
                "throughput_packets_per_cycle": s.throughput_packets_per_cycle,
            },
            result_digest=_run_result_digest(result),
        )
        _finish_obs(obs, args)
    return 0


def _design_for(scheme: str, n: int, seed: int, effort: str):
    if scheme == "mesh":
        return mesh_design(n)
    if scheme == "hfb":
        return hfb_design(n)
    from repro.harness.designs import dc_sa_design

    return dc_sa_design(n, seed=seed, effort=effort)


def _cmd_simulate_sweep(args: argparse.Namespace) -> int:
    from repro.sim.campaign import campaign_grid, run_campaign

    with _obs_session(args) as obs:
        designs = [
            _design_for(s.strip(), args.n, args.seed, args.effort)
            for s in args.schemes.split(",") if s.strip()
        ]
        patterns = [p.strip() for p in args.patterns.split(",") if p.strip()]
        try:
            rates = [float(r) for r in args.rates.split(",") if r.strip()]
        except ValueError as exc:
            print(f"error: bad --rates value: {exc}", file=sys.stderr)
            return 2
        ledger = _ledger_for(args)
        ledger_params = {
            "n": args.n, "schemes": args.schemes, "patterns": args.patterns,
            "rates": args.rates, "seeds": args.seeds, "warmup": args.warmup,
            "measure": args.measure, "effort": args.effort,
            "engine": args.engine,
        }
        run_id = None
        if ledger is not None:
            run_id = ledger.run_id_for(
                "campaign", ledger_params, None, args.seed
            )
            if obs is not None:
                obs.set_context(run_id=run_id)
        grid = campaign_grid(
            designs, patterns, rates, base_seed=args.seed,
            seeds_per_point=args.seeds, warmup=args.warmup,
            measure=args.measure, engine=args.engine,
        )
        start = time.perf_counter()
        campaign = run_campaign(grid, jobs=args.jobs, obs=obs)
        wall = time.perf_counter() - start
        rows = []
        for job, res in zip(campaign.jobs, campaign.results):
            scheme, pattern, rate, seed_i = job.key
            s = res.run.summary
            rows.append([
                scheme, pattern, rate, seed_i, s.packets,
                s.avg_network_latency, s.throughput_packets_per_cycle,
                res.run.cycles_run, "yes" if res.run.drained else "NO",
            ])
        print(render_table(
            f"Simulation campaign: {args.n}x{args.n}, "
            f"{len(designs)} scheme(s) x {len(patterns)} pattern(s) x "
            f"{len(rates)} rate(s) x {args.seeds} seed(s)",
            ["scheme", "pattern", "rate", "seed", "packets", "latency",
             "thr (pkt/cyc)", "cycles", "drained"],
            rows,
            digits=6,
        ))
        print(f"\n{len(grid)} runs on {args.jobs} job(s), engine={args.engine} "
              "(results identical for every --jobs value)")
        _record_run(
            ledger, obs, run_id, "campaign", ledger_params, None, args.seed,
            wall,
            results={
                "runs": len(grid),
                "drained": all(r.run.drained for r in campaign.results),
            },
            result_digest=_run_result_digest(
                *(r.run for r in campaign.results)
            ),
        )
        _finish_obs(obs, args)
    return 0


def _cmd_trace_report(args: argparse.Namespace) -> int:
    try:
        print(report_file(
            args.trace, k=args.top,
            by_worker=args.by_worker, by_task=args.by_task,
        ))
    except (OSError, ConfigurationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    ledger = RunLedger(args.ledger or LEDGER_ROOT)
    try:
        if args.runs_action == "list":
            print(render_runs_table(ledger.list()))
        elif args.runs_action == "show":
            print(json.dumps(ledger.load(args.run_id), indent=2,
                             sort_keys=True))
        else:  # diff
            a, b = ledger.load(args.run_a), ledger.load(args.run_b)
            lines = diff_manifests(a, b)
            if lines:
                print(f"{a['run_id']} vs {b['run_id']}:")
                print("\n".join(lines))
                if any(line.startswith("  result_digest") for line in lines):
                    same = diff_manifests(
                        {k: a.get(k) for k in ("kind", "seed", "params",
                                               "config")},
                        {k: b.get(k) for k in ("kind", "seed", "params",
                                               "config")},
                    )
                    if not same:
                        print("\nWARNING: identical identities produced "
                              "different result digests -- determinism bug")
                        return 1
            else:
                print(f"{a['run_id']} and {b['run_id']} are identical in "
                      "identity and outcome")
    except (OSError, ConfigurationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_metrics_export(args: argparse.Namespace) -> int:
    from repro.obs.metrics import render_prometheus

    ledger = RunLedger(args.ledger or LEDGER_ROOT)
    try:
        manifest = ledger.load(args.run_id)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    snapshot = manifest.get("metrics") or {}
    if args.format == "json":
        text = json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    else:
        text = render_prometheus(
            snapshot, labels={"run_id": manifest["run_id"],
                              "kind": manifest.get("kind", "?")},
        )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"metrics written to {args.out} ({args.format})")
    else:
        print(text, end="")
    return 0


def _cmd_bench_report(args: argparse.Namespace) -> int:
    from repro.obs.regress import (
        compare_dirs,
        render_bench_report,
        report_to_dict,
    )

    try:
        comps, unpaired = compare_dirs(
            args.baseline, args.candidate, threshold=args.threshold
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_bench_report(
        comps, unpaired, args.threshold, args.baseline, args.candidate
    ))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report_to_dict(comps, unpaired, args.threshold), fh,
                      indent=2)
            fh.write("\n")
        print(f"\nreport written to {args.json}")
    return 1 if any(c.regressed for c in comps) else 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    sol = solve_row_problem(
        args.n, args.c, method=args.method, params=EFFORTS[args.effort],
        config=SearchConfig(seed=args.seed),
    )
    report = audit_row(sol.placement, args.c)
    print(f"P~({args.n},{args.c}) [{args.method}]: {sorted(sol.placement.express_links)}")
    print(f"cross-section counts: {report['cross_section_counts']}")
    print(f"utilization: {report['utilization'] * 100:.0f}%, "
          f"wire length: {report['total_wire_length']} units")
    print("connection matrix:")
    print(ConnectionMatrix.from_placement(sol.placement, args.c))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.channel_load import channel_loads, load_balance_stats
    from repro.routing.tables import RoutingTables

    design = _design_for(args.scheme, args.n, args.seed, args.effort)
    tables = RoutingTables.build(design.topology)
    report = channel_loads(tables, flit_bits=design.point.flit_bits)
    stats = load_balance_stats(report)
    print(f"{design.name} on {args.n}x{args.n} "
          f"(C={design.point.link_limit}, flit={design.point.flit_bits}b), "
          f"uniform traffic, paper packet mix:")
    print(f"  channel saturation bound:  {report.channel_bound:.2f} packets/cycle")
    print(f"  NI injection bound:        {report.injection_bound:.2f} packets/cycle")
    print(f"  binding bound:             {report.saturation_packets_per_cycle:.2f} packets/cycle")
    print(f"  busiest channel:           {report.bottleneck}")
    print(f"  load imbalance (max/mean): {stats['imbalance']:.2f}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import (
        DesignStore,
        HttpServer,
        ServeApp,
        Sweeper,
        sweep_grid,
    )

    store = DesignStore(args.store) if args.store else DesignStore()
    ledger = RunLedger(args.ledger) if args.ledger else None
    app = ServeApp(
        store,
        ledger=ledger,
        capacity=args.capacity,
        queue_limit=args.queue_limit,
        default_deadline_s=args.deadline,
        batch_window_s=args.batch_window,
        default_effort=args.effort,
        default_seed=args.seed,
    )

    async def _run() -> None:
        server = HttpServer(app, args.host, args.port)
        await server.start()
        host, port = server.address
        print(
            f"repro serve listening on http://{host}:{port} "
            f"(store: {store.root}, {len(store)} cached design(s))",
            flush=True,
        )
        sweep_task = None
        if args.sweep:
            try:
                sizes = [int(s) for s in args.sweep.split(",") if s.strip()]
            except ValueError as exc:
                print(f"error: bad --sweep value: {exc}", file=sys.stderr)
                await server.close()
                raise SystemExit(2) from exc
            sweeper = Sweeper(app, sweep_grid(
                sizes, effort=args.effort, seed=args.seed,
            ))
            sweep_task = asyncio.get_running_loop().create_task(
                sweeper.run()
            )
            print(f"sweeper pre-populating {len(sweeper.specs)} grid "
                  f"point(s) for n in {sizes} during idle time", flush=True)
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            if sweep_task is not None:
                sweep_task.cancel()
            await server.close()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("\nserver stopped")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    print("Paper-figure regenerators (run with pytest <file> --benchmark-only):")
    experiments = [
        ("Figure 2", "benchmarks/bench_fig2_connection_matrix.py"),
        ("Figure 5", "benchmarks/bench_fig5_latency_vs_c.py"),
        ("Figure 6", "benchmarks/bench_fig6_parsec_latency.py"),
        ("Figure 7", "benchmarks/bench_fig7_runtime.py"),
        ("Figure 8", "benchmarks/bench_fig8_synthetic.py"),
        ("Figure 9", "benchmarks/bench_fig9_power.py"),
        ("Figure 10", "benchmarks/bench_fig10_static_breakdown.py"),
        ("Figure 11", "benchmarks/bench_fig11_bandwidth.py"),
        ("Figure 12", "benchmarks/bench_fig12_optimal.py"),
        ("Table 2", "benchmarks/bench_table2_worst_case.py"),
        ("Section 5.6.4", "benchmarks/bench_sec564_app_aware.py"),
        ("Section 4.5.2", "benchmarks/bench_area_overhead.py"),
        ("Ablation 4.4.2", "benchmarks/bench_ablation_candidate_generator.py"),
        ("Ablation 4.2", "benchmarks/bench_ablation_routing_modes.py"),
        ("Model validation", "benchmarks/bench_validation_model_vs_sim.py"),
        ("Throughput bounds", "benchmarks/bench_analysis_channel_load.py"),
        ("Seed robustness", "benchmarks/bench_robustness_seeds.py"),
        ("Fixed baselines", "benchmarks/bench_extension_fixed_baselines.py"),
    ]
    for name, path in experiments:
        print(f"  {name:<18} {path}")
    return 0


def _cmd_doctor(args: argparse.Namespace) -> int:
    """Environment report: versions, kernel tiers, resolution, cores.

    The support-bundle line for serve deployments: one command that
    says which interpreter/array stack a box runs, whether the optional
    native tier loads (and through which backend), and what ``--impl``
    would resolve to there.
    """
    import os
    import platform

    import numpy as np

    from repro.routing import native
    from repro.routing.impls import (
        IMPL_ENV_VAR,
        available_impls,
        resolve_impl,
    )

    print(f"python      {platform.python_version()}  ({sys.executable})")
    print(f"platform    {platform.platform()}")
    print(f"numpy       {np.__version__}")
    try:
        import numba

        print(f"numba       {numba.__version__}")
    except ImportError:
        print("numba       not installed (pip install repro[native])")
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        tiers = available_impls()
        default = resolve_impl(None)
    for impl in IMPLEMENTATIONS:
        status = "available" if impl in tiers else "unavailable"
        if impl == "native":
            if impl in tiers:
                status = f"available (backend: {native.backend_name()})"
            elif native.unavailable_reason():
                status = f"unavailable ({native.unavailable_reason()})"
        print(f"impl        {impl:<11} {status}")
    env = os.environ.get(IMPL_ENV_VAR)
    origin = f"{IMPL_ENV_VAR}={env}" if env else "built-in default"
    print(f"default     {default}  ({origin})")
    print(f"cpus        {os.cpu_count()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Express Link Placement for NoC-Based Many-Core Platforms "
        "(ICPP 2019) -- reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("optimize", help="sweep C and pick the best design")
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--method", choices=("dc_sa", "only_sa"), default="dc_sa")
    p.add_argument("--save", metavar="FILE", help="write the sweep as JSON")
    _add_run_flags(p, search=True)
    p.set_defaults(func=_cmd_optimize)

    p = sub.add_parser(
        "analyze", help="channel-load throughput bounds for a scheme"
    )
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--scheme", choices=("mesh", "hfb", "dc_sa"), default="dc_sa")
    _add_run_flags(p, obs=False)
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser("solve", help="solve one P~(n, C) instance")
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--c", type=int, default=4)
    p.add_argument("--method", choices=("dc_sa", "only_sa", "exact"), default="dc_sa")
    _add_run_flags(p, search=True)
    p.set_defaults(func=_cmd_solve)

    p = sub.add_parser(
        "pareto",
        help="multi-objective front search over latency/power/area/load",
    )
    p.add_argument("--n", type=int, default=8)
    p.add_argument(
        "--c", default="2,3,4", metavar="LIST",
        help="comma-separated cross-section limits (default 2,3,4)",
    )
    p.add_argument(
        "--traffic", default="uniform", metavar="LIST",
        help="comma-separated traffic scenarios: 'uniform' or PARSEC "
        "workload names (one front per scenario x C)",
    )
    p.add_argument(
        "--objectives", default="latency,power", metavar="LIST",
        help="comma-separated objective axes "
        "(latency, power, area, channel_load)",
    )
    p.add_argument(
        "--driver", choices=("epsilon", "nsga2"), default="epsilon",
        help="front-search driver: epsilon-constraint sweep of scalar "
        "solves, or an NSGA-II population loop",
    )
    p.add_argument("--method", choices=("dc_sa", "only_sa", "exact"),
                   default="dc_sa")
    p.add_argument(
        "--points", type=int, default=5, metavar="K",
        help="epsilon levels per secondary axis (epsilon driver)",
    )
    p.add_argument(
        "--population", type=int, default=16, metavar="P",
        help="NSGA population size",
    )
    p.add_argument(
        "--generations", type=int, default=8, metavar="G",
        help="NSGA generations",
    )
    p.add_argument("--out", metavar="FILE",
                   help="write all fronts as one JSON document")
    _add_run_flags(p, search=True)
    p.set_defaults(func=_cmd_pareto)

    p = sub.add_parser("simulate", help="cycle-accurate simulation of a scheme")
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--scheme", choices=("mesh", "hfb", "dc_sa"), default="dc_sa")
    p.add_argument(
        "--workload",
        default="uniform_random",
        help=f"synthetic pattern ({', '.join(sorted(PATTERNS))}) or PARSEC "
        f"name ({', '.join(PARSEC_NAMES)})",
    )
    p.add_argument("--rate", type=float, default=0.02, help="packets/node/cycle")
    p.add_argument("--warmup", type=int, default=500)
    p.add_argument("--measure", type=int, default=2_000)
    _add_run_flags(p, sim=True)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser(
        "simulate-sweep",
        help="run a scheme x pattern x rate x seed campaign grid",
    )
    p.add_argument("--n", type=int, default=8)
    p.add_argument(
        "--schemes", default="mesh",
        help="comma-separated schemes (mesh, hfb, dc_sa)",
    )
    p.add_argument(
        "--patterns", default="uniform_random",
        help=f"comma-separated patterns ({', '.join(sorted(PATTERNS))})",
    )
    p.add_argument(
        "--rates", default="1.0,2.0,4.0",
        help="comma-separated aggregate rates (packets/cycle network-wide)",
    )
    p.add_argument(
        "--seeds", type=int, default=1, metavar="S",
        help="independent traffic seeds per grid point (derived streams)",
    )
    p.add_argument(
        "--jobs", type=int, default=1, metavar="K",
        help="worker processes for the campaign (results are identical "
        "for every value; default 1 = in-process)",
    )
    p.add_argument("--warmup", type=int, default=300)
    p.add_argument("--measure", type=int, default=1_000)
    _add_run_flags(p, sim=True)
    p.set_defaults(func=_cmd_simulate_sweep)

    p = sub.add_parser("inspect", help="show a placement's structure")
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--c", type=int, default=4)
    p.add_argument("--method", choices=("dc_sa", "only_sa", "exact"), default="dc_sa")
    _add_run_flags(p, obs=False)
    p.set_defaults(func=_cmd_inspect)

    p = sub.add_parser(
        "serve",
        help="run the placement service (HTTP/JSON, content-addressed "
        "design cache)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8787,
                   help="listen port (0 picks a free port)")
    p.add_argument(
        "--store", metavar="DIR", default=None,
        help="design-cache root (default .repro/designs)",
    )
    p.add_argument(
        "--capacity", type=int, default=4, metavar="K",
        help="max concurrent searches before 429 backpressure",
    )
    p.add_argument(
        "--queue-limit", type=int, default=256, metavar="K",
        help="max queued /evaluate requests before 429",
    )
    p.add_argument(
        "--deadline", type=float, default=60.0, metavar="S",
        help="default per-request deadline in seconds (overridable per "
        "request via deadline_s)",
    )
    p.add_argument(
        "--batch-window", type=float, default=0.002, metavar="S",
        help="/evaluate coalescing window in seconds",
    )
    p.add_argument(
        "--sweep", metavar="N,N,...", default=None,
        help="pre-populate the design cache for these mesh sizes during "
        "idle time (background sweeper)",
    )
    _add_run_flags(p, obs=False)
    g = p.add_argument_group("service observability")
    g.add_argument(
        "--ledger", metavar="DIR", nargs="?", const=LEDGER_ROOT,
        default=None,
        help="record every served computation as a run manifest under DIR "
        f"(default {LEDGER_ROOT}; exposed at GET /runs/<id>)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("experiments", help="list paper-figure regenerators")
    p.set_defaults(func=_cmd_experiments)

    p = sub.add_parser(
        "doctor",
        help="report python/numpy/numba versions, kernel tiers, cpu count",
    )
    p.set_defaults(func=_cmd_doctor)

    p = sub.add_parser(
        "trace-report", help="summarize a JSONL trace written by --trace-out"
    )
    p.add_argument("trace", help="path to a JSONL trace file")
    p.add_argument(
        "--top", type=int, default=5, metavar="K",
        help="entries per ranked section (spans, link utilization)",
    )
    p.add_argument(
        "--by-worker", action="store_true",
        help="add the per-worker timeline and critical-path sections "
        "(merged --jobs K traces)",
    )
    p.add_argument(
        "--by-task", action="store_true",
        help="add the per-task breakdown keyed by stamped grid coordinates",
    )
    p.set_defaults(func=_cmd_trace_report)

    p = sub.add_parser(
        "runs", help="query the run ledger written by --ledger"
    )
    p.add_argument(
        "--ledger", metavar="DIR", default=None,
        help=f"ledger root (default {LEDGER_ROOT})",
    )
    runs_sub = p.add_subparsers(dest="runs_action", required=True)
    rp = runs_sub.add_parser("list", help="list recorded runs")
    rp.set_defaults(func=_cmd_runs)
    rp = runs_sub.add_parser("show", help="print one run's manifest as JSON")
    rp.add_argument("run_id", help="run id (unique prefixes resolve)")
    rp.set_defaults(func=_cmd_runs)
    rp = runs_sub.add_parser(
        "diff", help="field-level diff of two run manifests"
    )
    rp.add_argument("run_a")
    rp.add_argument("run_b")
    rp.set_defaults(func=_cmd_runs)

    p = sub.add_parser(
        "metrics-export",
        help="render a recorded run's metrics (prometheus textfile or JSON)",
    )
    p.add_argument("run_id", help="run id from the ledger (prefix ok)")
    p.add_argument(
        "--format", choices=("prometheus", "json"), default="prometheus",
    )
    p.add_argument(
        "--ledger", metavar="DIR", default=None,
        help=f"ledger root (default {LEDGER_ROOT})",
    )
    p.add_argument("--out", metavar="PATH", default=None,
                   help="write to PATH instead of stdout")
    p.set_defaults(func=_cmd_metrics_export)

    p = sub.add_parser(
        "bench-report",
        help="compare two benchmark results directories; fail on regressions",
    )
    p.add_argument("baseline", help="baseline results dir (JSON twins)")
    p.add_argument("candidate", help="candidate results dir (JSON twins)")
    p.add_argument(
        "--threshold", type=float, default=0.25, metavar="FRAC",
        help="relative noise threshold (default 0.25 = 25%%)",
    )
    p.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the comparison as a JSON artifact",
    )
    p.set_defaults(func=_cmd_bench_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ConfigurationError as exc:
        # Misconfiguration (unknown impl, unavailable native tier,
        # invalid knob combos) is a user error, not a crash: one line
        # on stderr, exit 2, matching the pareto command's convention.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
