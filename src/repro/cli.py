"""Command-line interface: ``python -m repro <command>``.

Gives downstream users the paper's flow without writing Python:

* ``optimize`` -- sweep C and print the design table for one mesh size,
* ``solve``    -- solve a single ``P~(n, C)`` instance,
* ``simulate`` -- run the cycle-accurate simulator on a chosen scheme,
* ``simulate-sweep`` -- run a scheme x pattern x rate campaign grid,
  fanned over ``--jobs`` worker processes (identical tables for every
  jobs value at a fixed seed),
* ``inspect``  -- show a placement's structure, matrix and audits,
* ``experiments`` -- list the paper-figure regenerators,
* ``trace-report`` -- summarize a JSONL trace written by ``--trace-out``.

Parallel search flags (``optimize`` / ``solve``): ``--restarts N`` runs
``N`` independent SA chains per ``C`` from derived seeds and keeps the
best; ``--jobs K`` fans the chains out over ``K`` worker processes;
``--chains K`` packs consecutive restarts into lockstep population
groups priced by one batched Floyd-Warshall call per move.  Results
are bit-identical for every ``--jobs`` / ``--chains`` value at a
fixed seed.

Observability flags (``optimize`` / ``solve`` / ``simulate``):
``--trace-out PATH`` streams structured events as JSON Lines,
``--metrics-every N`` sets the periodic sample interval (simulator
heartbeats, SA progress events), ``--profile`` prints the span profile
and metrics summary after the run.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.api import SearchConfig
from repro.core.connection_matrix import ConnectionMatrix
from repro.core.optimizer import optimize, solve_row_problem
from repro.harness.designs import EFFORTS, hfb_design, mesh_design
from repro.routing.shortest_path import IMPLEMENTATIONS
from repro.harness.tables import pct_change, render_table
from repro.obs import Instrumentation, JsonlSink, report_file
from repro.sim.config import SimConfig
from repro.sim.engine import Simulator
from repro.topology.validate import audit_row
from repro.util.errors import ConfigurationError
from repro.traffic.injection import SyntheticTraffic
from repro.traffic.parsec import PARSEC_NAMES, parsec_traffic
from repro.traffic.patterns import PATTERNS, make_pattern


def _add_run_flags(
    p: argparse.ArgumentParser, *, obs: bool = True, search: bool = False,
    sim: bool = False,
) -> None:
    """The one shared option group for run/search/observability flags.

    Every subcommand builds its common surface here -- ``optimize`` /
    ``solve`` / ``simulate`` cannot drift apart in flag names, defaults
    or help text.  ``search=True`` adds the flags that feed
    :meth:`repro.api.SearchConfig.from_cli`; ``obs=False`` trims the
    group to seed + effort for commands that never trace.
    """
    g = p.add_argument_group("run options")
    g.add_argument("--seed", type=int, default=2019)
    g.add_argument(
        "--effort", choices=sorted(EFFORTS), default="paper", help="annealing budget"
    )
    if search:
        g.add_argument(
            "--jobs", type=int, default=1, metavar="K",
            help="worker processes for the search (results are identical "
            "for every value; default 1 = in-process)",
        )
        g.add_argument(
            "--restarts", type=int, default=1, metavar="N",
            help="independent SA chains per C (derived seeds; best chain wins)",
        )
        g.add_argument(
            "--chains", type=int, default=1, metavar="K",
            help="lockstep population size: pack consecutive restarts into "
            "groups of K priced by one batched objective call per move "
            "(results identical to --restarts; composes with --jobs)",
        )
        g.add_argument(
            "--impl", choices=IMPLEMENTATIONS, default="vectorized",
            help="Floyd-Warshall implementation (reference = pure-Python oracle)",
        )
        g.add_argument(
            "--incremental", action="store_true",
            help="price SA moves with the O(n^2) incremental APSP engine "
            "(placements identical to the full path for the same seed)",
        )
        g.add_argument(
            "--resync-every", type=int, default=1_000, metavar="N",
            help="incremental mode: full-FW drift self-check every N "
            "accepted moves (0 disables)",
        )
    if sim:
        g.add_argument(
            "--engine", choices=("active", "reference"), default="active",
            help="cycle engine: active-set scheduling with idle skipping, "
            "or the poll-everything reference (identical results)",
        )
    if obs:
        g.add_argument(
            "--trace-out", metavar="PATH", default=None,
            help="write structured events to PATH as JSON Lines",
        )
        g.add_argument(
            "--metrics-every", type=int, default=500, metavar="N",
            help="periodic sample interval (simulator cycles / SA moves)",
        )
        g.add_argument(
            "--profile", action="store_true",
            help="time spans and print the profile + metrics summary",
        )


def _make_obs(args: argparse.Namespace) -> Optional[Instrumentation]:
    """Build the run's instrumentation from CLI flags (None if unused)."""
    if not (args.trace_out or args.profile):
        return None
    sinks = []
    if args.trace_out:
        try:  # fail fast, before the run, if the path is unwritable
            open(args.trace_out, "w", encoding="utf-8").close()
        except OSError as exc:
            print(f"error: cannot write trace to {args.trace_out}: {exc}",
                  file=sys.stderr)
            raise SystemExit(2) from exc
        sinks.append(JsonlSink(args.trace_out))
    return Instrumentation(sinks=sinks, profile=args.profile)


def _finish_obs(obs: Optional[Instrumentation], args: argparse.Namespace) -> None:
    """Flush sinks and print requested end-of-run summaries."""
    if obs is None:
        return
    obs.close()
    if args.profile:
        print()
        print(obs.profile_table())
        print(obs.metrics_summary())
    if args.trace_out:
        print(f"\ntrace written to {args.trace_out} "
              f"(summarize with: repro trace-report {args.trace_out})")


def _cmd_optimize(args: argparse.Namespace) -> int:
    obs = _make_obs(args)
    cfg = SearchConfig.from_cli(args)
    parallel = cfg.parallel
    sweep = optimize(
        args.n, method=args.method, params=EFFORTS[args.effort],
        obs=obs, config=cfg,
    )
    if args.save:
        from repro.io import save_sweep

        save_sweep(sweep, args.save)
        print(f"sweep saved to {args.save}")
    rows = []
    for c, point in sorted(sweep.points.items()):
        rows.append(
            [
                c,
                point.flit_bits,
                point.latency.head,
                point.latency.serialization,
                point.total_latency,
                len(point.placement.express_links),
            ]
        )
    print(
        render_table(
            f"{args.n}x{args.n} design sweep ({args.method})",
            ["C", "flit bits", "L_D", "L_S", "total", "express links"],
            rows,
        )
    )
    best = sweep.best
    mesh = mesh_design(args.n)
    print(f"\nbest: C={best.link_limit}, flit={best.flit_bits}b, "
          f"total={best.total_latency:.2f} cycles "
          f"(-{pct_change(best.total_latency, mesh.point.total_latency):.1f}% vs mesh)")
    print(f"row placement: {sorted(best.placement.express_links)}")
    if parallel:
        spread = sweep.restart_energies.get(best.link_limit, ())
        print(f"search: {sweep.restarts} restart(s) x {len(sweep.points)} limits "
              f"on {sweep.jobs} job(s); best-C restart energies: "
              f"{[round(e, 4) for e in spread]}")
    _finish_obs(obs, args)
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    obs = _make_obs(args)
    cfg = SearchConfig.from_cli(args)
    if cfg.parallel:
        from repro.core.parallel import parallel_row_search

        sol, energies = parallel_row_search(
            args.n,
            args.c,
            method=args.method,
            params=EFFORTS[args.effort],
            base_seed=cfg.seed,
            restarts=cfg.effective_restarts,
            jobs=cfg.jobs,
            chains=cfg.chains,
            impl=cfg.impl,
            incremental=cfg.incremental,
            resync_every=cfg.resync_every,
            obs=obs,
        )
    else:
        sol = solve_row_problem(
            args.n,
            args.c,
            method=args.method,
            params=EFFORTS[args.effort],
            obs=obs,
            config=cfg,
        )
        energies = None
    print(f"P~({args.n},{args.c}) [{args.method}]")
    print(f"  mean row head latency: {sol.energy:.4f} cycles (2D: {2 * sol.energy:.4f})")
    print(f"  express links: {sorted(sol.placement.express_links)}")
    print(f"  evaluations: {sol.evaluations}, wall time: {sol.wall_time_s:.2f}s")
    if energies is not None:
        print(f"  restarts: {[round(e, 4) for e in energies]} "
              f"({cfg.effective_restarts} chains on {args.jobs} job(s))")
    _finish_obs(obs, args)
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    obs = _make_obs(args)
    design = _design_for(args.scheme, args.n, args.seed, args.effort)
    cfg = SimConfig(
        flit_bits=design.point.flit_bits,
        warmup_cycles=args.warmup,
        measure_cycles=args.measure,
        max_cycles=max(50_000, 20 * (args.warmup + args.measure)),
        seed=args.seed,
    )
    if args.workload in PARSEC_NAMES:
        traffic = parsec_traffic(args.workload, args.n, rng=args.seed)
    else:
        traffic = SyntheticTraffic(
            make_pattern(args.workload, args.n),
            rate=args.rate,
            rng=args.seed,
        )
    result = Simulator(
        design.topology, cfg, traffic, obs=obs,
        metrics_every=args.metrics_every, engine=args.engine,
    ).run()
    s = result.summary
    print(f"{design.name} on {args.n}x{args.n}, workload={args.workload}")
    print(f"  packets measured: {s.packets} (drained: {result.drained})")
    print(f"  avg network latency: {s.avg_network_latency:.2f} cycles")
    print(f"  avg head latency:    {s.avg_head_latency:.2f} cycles")
    print(f"  avg serialization:   {s.avg_serialization_latency:.2f} cycles")
    print(f"  throughput:          {s.throughput_packets_per_cycle:.3f} packets/cycle")
    _finish_obs(obs, args)
    return 0


def _design_for(scheme: str, n: int, seed: int, effort: str):
    if scheme == "mesh":
        return mesh_design(n)
    if scheme == "hfb":
        return hfb_design(n)
    from repro.harness.designs import dc_sa_design

    return dc_sa_design(n, seed=seed, effort=effort)


def _cmd_simulate_sweep(args: argparse.Namespace) -> int:
    from repro.sim.campaign import campaign_grid, run_campaign

    obs = _make_obs(args)
    designs = [
        _design_for(s.strip(), args.n, args.seed, args.effort)
        for s in args.schemes.split(",") if s.strip()
    ]
    patterns = [p.strip() for p in args.patterns.split(",") if p.strip()]
    try:
        rates = [float(r) for r in args.rates.split(",") if r.strip()]
    except ValueError as exc:
        print(f"error: bad --rates value: {exc}", file=sys.stderr)
        return 2
    grid = campaign_grid(
        designs, patterns, rates, base_seed=args.seed,
        seeds_per_point=args.seeds, warmup=args.warmup,
        measure=args.measure, engine=args.engine,
    )
    campaign = run_campaign(grid, jobs=args.jobs, obs=obs)
    rows = []
    for job, res in zip(campaign.jobs, campaign.results):
        scheme, pattern, rate, seed_i = job.key
        s = res.run.summary
        rows.append([
            scheme, pattern, rate, seed_i, s.packets,
            s.avg_network_latency, s.throughput_packets_per_cycle,
            res.run.cycles_run, "yes" if res.run.drained else "NO",
        ])
    print(render_table(
        f"Simulation campaign: {args.n}x{args.n}, "
        f"{len(designs)} scheme(s) x {len(patterns)} pattern(s) x "
        f"{len(rates)} rate(s) x {args.seeds} seed(s)",
        ["scheme", "pattern", "rate", "seed", "packets", "latency",
         "thr (pkt/cyc)", "cycles", "drained"],
        rows,
        digits=6,
    ))
    print(f"\n{len(grid)} runs on {args.jobs} job(s), engine={args.engine} "
          "(results identical for every --jobs value)")
    _finish_obs(obs, args)
    return 0


def _cmd_trace_report(args: argparse.Namespace) -> int:
    try:
        print(report_file(args.trace, k=args.top))
    except (OSError, ConfigurationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    sol = solve_row_problem(
        args.n, args.c, method=args.method, params=EFFORTS[args.effort],
        config=SearchConfig(seed=args.seed),
    )
    report = audit_row(sol.placement, args.c)
    print(f"P~({args.n},{args.c}) [{args.method}]: {sorted(sol.placement.express_links)}")
    print(f"cross-section counts: {report['cross_section_counts']}")
    print(f"utilization: {report['utilization'] * 100:.0f}%, "
          f"wire length: {report['total_wire_length']} units")
    print("connection matrix:")
    print(ConnectionMatrix.from_placement(sol.placement, args.c))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.channel_load import channel_loads, load_balance_stats
    from repro.routing.tables import RoutingTables

    design = _design_for(args.scheme, args.n, args.seed, args.effort)
    tables = RoutingTables.build(design.topology)
    report = channel_loads(tables, flit_bits=design.point.flit_bits)
    stats = load_balance_stats(report)
    print(f"{design.name} on {args.n}x{args.n} "
          f"(C={design.point.link_limit}, flit={design.point.flit_bits}b), "
          f"uniform traffic, paper packet mix:")
    print(f"  channel saturation bound:  {report.channel_bound:.2f} packets/cycle")
    print(f"  NI injection bound:        {report.injection_bound:.2f} packets/cycle")
    print(f"  binding bound:             {report.saturation_packets_per_cycle:.2f} packets/cycle")
    print(f"  busiest channel:           {report.bottleneck}")
    print(f"  load imbalance (max/mean): {stats['imbalance']:.2f}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    print("Paper-figure regenerators (run with pytest <file> --benchmark-only):")
    experiments = [
        ("Figure 2", "benchmarks/bench_fig2_connection_matrix.py"),
        ("Figure 5", "benchmarks/bench_fig5_latency_vs_c.py"),
        ("Figure 6", "benchmarks/bench_fig6_parsec_latency.py"),
        ("Figure 7", "benchmarks/bench_fig7_runtime.py"),
        ("Figure 8", "benchmarks/bench_fig8_synthetic.py"),
        ("Figure 9", "benchmarks/bench_fig9_power.py"),
        ("Figure 10", "benchmarks/bench_fig10_static_breakdown.py"),
        ("Figure 11", "benchmarks/bench_fig11_bandwidth.py"),
        ("Figure 12", "benchmarks/bench_fig12_optimal.py"),
        ("Table 2", "benchmarks/bench_table2_worst_case.py"),
        ("Section 5.6.4", "benchmarks/bench_sec564_app_aware.py"),
        ("Section 4.5.2", "benchmarks/bench_area_overhead.py"),
        ("Ablation 4.4.2", "benchmarks/bench_ablation_candidate_generator.py"),
        ("Ablation 4.2", "benchmarks/bench_ablation_routing_modes.py"),
        ("Model validation", "benchmarks/bench_validation_model_vs_sim.py"),
        ("Throughput bounds", "benchmarks/bench_analysis_channel_load.py"),
        ("Seed robustness", "benchmarks/bench_robustness_seeds.py"),
        ("Fixed baselines", "benchmarks/bench_extension_fixed_baselines.py"),
    ]
    for name, path in experiments:
        print(f"  {name:<18} {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Express Link Placement for NoC-Based Many-Core Platforms "
        "(ICPP 2019) -- reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("optimize", help="sweep C and pick the best design")
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--method", choices=("dc_sa", "only_sa"), default="dc_sa")
    p.add_argument("--save", metavar="FILE", help="write the sweep as JSON")
    _add_run_flags(p, search=True)
    p.set_defaults(func=_cmd_optimize)

    p = sub.add_parser(
        "analyze", help="channel-load throughput bounds for a scheme"
    )
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--scheme", choices=("mesh", "hfb", "dc_sa"), default="dc_sa")
    _add_run_flags(p, obs=False)
    p.set_defaults(func=_cmd_analyze)

    p = sub.add_parser("solve", help="solve one P~(n, C) instance")
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--c", type=int, default=4)
    p.add_argument("--method", choices=("dc_sa", "only_sa", "exact"), default="dc_sa")
    _add_run_flags(p, search=True)
    p.set_defaults(func=_cmd_solve)

    p = sub.add_parser("simulate", help="cycle-accurate simulation of a scheme")
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--scheme", choices=("mesh", "hfb", "dc_sa"), default="dc_sa")
    p.add_argument(
        "--workload",
        default="uniform_random",
        help=f"synthetic pattern ({', '.join(sorted(PATTERNS))}) or PARSEC "
        f"name ({', '.join(PARSEC_NAMES)})",
    )
    p.add_argument("--rate", type=float, default=0.02, help="packets/node/cycle")
    p.add_argument("--warmup", type=int, default=500)
    p.add_argument("--measure", type=int, default=2_000)
    _add_run_flags(p, sim=True)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser(
        "simulate-sweep",
        help="run a scheme x pattern x rate x seed campaign grid",
    )
    p.add_argument("--n", type=int, default=8)
    p.add_argument(
        "--schemes", default="mesh",
        help="comma-separated schemes (mesh, hfb, dc_sa)",
    )
    p.add_argument(
        "--patterns", default="uniform_random",
        help=f"comma-separated patterns ({', '.join(sorted(PATTERNS))})",
    )
    p.add_argument(
        "--rates", default="1.0,2.0,4.0",
        help="comma-separated aggregate rates (packets/cycle network-wide)",
    )
    p.add_argument(
        "--seeds", type=int, default=1, metavar="S",
        help="independent traffic seeds per grid point (derived streams)",
    )
    p.add_argument(
        "--jobs", type=int, default=1, metavar="K",
        help="worker processes for the campaign (results are identical "
        "for every value; default 1 = in-process)",
    )
    p.add_argument("--warmup", type=int, default=300)
    p.add_argument("--measure", type=int, default=1_000)
    _add_run_flags(p, sim=True)
    p.set_defaults(func=_cmd_simulate_sweep)

    p = sub.add_parser("inspect", help="show a placement's structure")
    p.add_argument("--n", type=int, default=8)
    p.add_argument("--c", type=int, default=4)
    p.add_argument("--method", choices=("dc_sa", "only_sa", "exact"), default="dc_sa")
    _add_run_flags(p, obs=False)
    p.set_defaults(func=_cmd_inspect)

    p = sub.add_parser("experiments", help="list paper-figure regenerators")
    p.set_defaults(func=_cmd_experiments)

    p = sub.add_parser(
        "trace-report", help="summarize a JSONL trace written by --trace-out"
    )
    p.add_argument("trace", help="path to a JSONL trace file")
    p.add_argument(
        "--top", type=int, default=5, metavar="K",
        help="entries per ranked section (spans, link utilization)",
    )
    p.set_defaults(func=_cmd_trace_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
