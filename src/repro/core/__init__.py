"""Core contribution: express-link placement optimization (Sections 3-4)."""

from repro.core.latency import (
    BandwidthConfig,
    LatencyBreakdown,
    PacketMix,
    RowObjective,
    full_connectivity_limit,
    mean_row_head_latency,
    mesh_average_head_latency_2d,
    network_average_latency,
    network_worst_case_latency,
    row_head_latency_matrix,
    worst_case_head_latency_2d,
)
from repro.core.connection_matrix import ConnectionMatrix, enumerate_matrices
from repro.core.annealing import (
    AnnealingParams,
    AnnealingResult,
    MemoizedObjective,
    anneal,
)
from repro.core.branch_bound import (
    ExactResult,
    branch_and_bound,
    effective_link_limit,
    exhaustive_matrix_search,
)
from repro.core.divide_conquer import InitialSolution, initial_solution
from repro.core.optimizer import (
    DesignPoint,
    METHODS,
    RectDesignPoint,
    RowSolution,
    SweepResult,
    best_rectangular,
    design_point,
    optimize,
    optimize_rectangular,
    solve_row_problem,
)
from repro.core.naive_annealing import NaiveAnnealingResult, naive_anneal
from repro.core.application_aware import (
    ApplicationAwareResult,
    col_weights,
    optimize_application_aware,
    row_weights,
    weighted_average_head_latency,
)

__all__ = [
    "BandwidthConfig",
    "LatencyBreakdown",
    "PacketMix",
    "RowObjective",
    "full_connectivity_limit",
    "mean_row_head_latency",
    "mesh_average_head_latency_2d",
    "network_average_latency",
    "network_worst_case_latency",
    "row_head_latency_matrix",
    "worst_case_head_latency_2d",
    "ConnectionMatrix",
    "enumerate_matrices",
    "AnnealingParams",
    "AnnealingResult",
    "MemoizedObjective",
    "anneal",
    "ExactResult",
    "branch_and_bound",
    "effective_link_limit",
    "exhaustive_matrix_search",
    "InitialSolution",
    "initial_solution",
    "DesignPoint",
    "METHODS",
    "RectDesignPoint",
    "best_rectangular",
    "optimize_rectangular",
    "NaiveAnnealingResult",
    "naive_anneal",
    "RowSolution",
    "SweepResult",
    "design_point",
    "optimize",
    "solve_row_problem",
    "ApplicationAwareResult",
    "col_weights",
    "optimize_application_aware",
    "row_weights",
    "weighted_average_head_latency",
]
