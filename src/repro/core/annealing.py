"""Simulated annealing over the connection-matrix space (Section 4.4).

The engine follows the paper's setup exactly (Table 1):

* exponential acceptance ``exp(-dL / T)`` for uphill moves,
* linear-in-stages cooling -- the temperature is *divided* by the
  cooldown scale ``S_c`` after every ``m_c`` moves,
* moves flip a single connection point of the matrix, which keeps every
  visited state valid and every valid placement reachable,
* default parameters ``T0 = 10`` cycles, ``m = 10^4`` total moves,
  ``S_c = 2``, ``m_c = 10^3``.

The objective is pluggable (any callable ``RowPlacement -> float``); the
paper's is the mean row head latency evaluated by directional
Floyd-Warshall, and Section 5.6.4 swaps in a traffic-weighted variant.
"""

from __future__ import annotations

import math
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.connection_matrix import ConnectionMatrix
from repro.obs.instrument import Instrumentation, ensure_obs
from repro.topology.row import RowPlacement
from repro.util.errors import ConfigurationError
from repro.util.rngtools import ensure_rng

Objective = Callable[[RowPlacement], float]


@dataclass(frozen=True)
class AnnealingParams:
    """Simulated-annealing hyperparameters (paper Table 1)."""

    initial_temperature: float = 10.0
    total_moves: int = 10_000
    cooldown_scale: float = 2.0
    moves_per_cooldown: int = 1_000

    def __post_init__(self) -> None:
        if self.initial_temperature <= 0:
            raise ValueError("initial temperature must be positive")
        if self.total_moves < 0:
            raise ValueError("total moves must be nonnegative")
        if self.cooldown_scale <= 1.0:
            raise ValueError("cooldown scale must be > 1")
        if self.moves_per_cooldown <= 0:
            raise ValueError("moves per cooldown must be positive")

    def temperature(self, move_index: int) -> float:
        """Temperature in effect at ``move_index`` (0-based)."""
        stages = move_index // self.moves_per_cooldown
        return self.initial_temperature / (self.cooldown_scale ** stages)


@dataclass
class AnnealingResult:
    """Outcome of one annealing run.

    ``trace`` records ``(evaluation_count, best_energy_so_far)`` pairs
    -- the raw data behind the paper's Figure 7 quality-vs-runtime
    curves, where runtime is measured in objective evaluations.
    """

    best_placement: RowPlacement
    best_energy: float
    initial_energy: float
    evaluations: int
    accepted_moves: int
    uphill_accepted: int
    wall_time_s: float
    trace: List[Tuple[int, float]] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        """Fractional energy reduction relative to the initial state."""
        if self.initial_energy == 0:
            return 0.0
        return (self.initial_energy - self.best_energy) / self.initial_energy


class MemoizedObjective:
    """Objective wrapper caching energies by placement.

    SA frequently revisits states (a flip and its undo decode to the
    same placement), and distinct matrices can decode identically; the
    cache turns those repeats into dictionary hits.  Also counts true
    evaluations for runtime normalization (Figure 7).

    Entries are keyed by :meth:`RowPlacement.canonical_bytes` -- the
    exact connection structure, not object identity and not the
    mirror-invariant ``canonical_key`` (which would alias a placement
    with its reversal and silently corrupt traffic-weighted
    objectives once a cache is shared across restarts).  The byte key
    maps 1:1 to placement values, so hit/miss patterns -- and therefore
    search trajectories -- are identical to placement-keyed caching.

    The cache is bounded: once it holds ``max_size`` entries it is
    cleared wholesale, so long multi-restart sweeps cannot grow memory
    without limit.  Clearing only costs recomputation -- the objective
    is deterministic, so cached and recomputed energies agree and the
    search trajectory is unaffected.
    """

    #: Default cache bound; ~10x the states a paper-sized run visits.
    DEFAULT_MAX_SIZE = 100_000

    def __init__(self, objective: Objective,
                 max_size: int = DEFAULT_MAX_SIZE) -> None:
        if max_size <= 0:
            raise ValueError("memo cache size must be positive")
        self._objective = objective
        self._cache: dict = {}
        self.max_size = max_size
        self.evaluations = 0
        self.calls = 0
        self.hits = 0
        self.misses = 0
        self.overflows = 0

    #: Sentinel returned by :meth:`lookup` on a cache miss (``None`` is
    #: reserved for in-batch placeholders inside :meth:`evaluate_many`).
    MISS = object()

    def lookup(self, placement: RowPlacement):
        """Probe the cache, accounting one call plus a hit or a miss.

        Returns the cached energy, or :data:`MISS` -- the caller must
        then compute the energy and hand it to :meth:`store`.  The
        split exists so batch engines (``evaluate_many``,
        ``anneal_population``) can collect misses across a population,
        price them with one kernel call, and still produce exactly the
        counter sequence of scalar ``__call__`` usage.
        """
        self.calls += 1
        hit = self._cache.get(placement.canonical_bytes())
        if hit is not None:
            self.hits += 1
            return hit
        self.misses += 1
        return self.MISS

    def store(self, placement: RowPlacement, value: float) -> float:
        """Insert a freshly computed energy (the second half of a miss),
        with the same bounded clear-wholesale semantics as ``__call__``."""
        if len(self._cache) >= self.max_size:
            self._cache.clear()
            self.overflows += 1
        self._cache[placement.canonical_bytes()] = value
        self.evaluations += 1
        return value

    def __call__(self, placement: RowPlacement) -> float:
        value = self.lookup(placement)
        if value is not self.MISS:
            return value
        return self.store(placement, self._objective(placement))

    def evaluate_many(
        self,
        placements: Sequence[RowPlacement],
        folded: bool = False,
    ) -> np.ndarray:
        """Batch counterpart of calling the memo on each placement in order.

        Every counter (``calls``/``hits``/``misses``/``evaluations``/
        ``overflows``) and the final cache contents match the scalar
        loop exactly: placements are walked in order, with misses
        marked by in-cache placeholders so a duplicate later in the
        batch registers as the hit it would have been.  All misses are
        then priced together -- one ``objective.evaluate_many`` call
        when the wrapped objective supports it, a scalar loop otherwise
        (a key missed twice around a wholesale clear still counts two
        evaluations but shares one kernel slice; the objective is
        deterministic, so the values agree).

        ``folded=True`` asserts the caller already reduced the batch to
        pairwise-distinct mirror-fold representatives that are also
        disjoint from everything previously priced through this memo
        (the exact enumerators' flush pattern: fresh memo, globally
        unique stream).  The memo then bulk-counts the batch as misses
        and skips both the per-placement cache probe and the store --
        the keying bytes are never computed and the values are *not*
        cached -- while the objective skips its own dedup pass.  Values
        and every counter are identical to the scalar loop under that
        contract.
        """
        placements = list(placements)
        if folded:
            count = len(placements)
            self.calls += count
            self.misses += count
            self.evaluations += count
            batched = getattr(self._objective, "evaluate_many", None)
            if batched is None:
                return np.asarray(
                    [float(self._objective(p)) for p in placements], dtype=float
                )
            return np.asarray(batched(placements, folded=True), dtype=float)
        out: List[Optional[float]] = [None] * len(placements)
        pending: dict = {}
        unresolved: List[Tuple[int, bytes]] = []
        for idx, placement in enumerate(placements):
            key = placement.canonical_bytes()
            self.calls += 1
            if key in self._cache:
                self.hits += 1
                value = self._cache[key]
                if value is None:  # placeholder from this same batch
                    unresolved.append((idx, key))
                else:
                    out[idx] = value
                continue
            self.misses += 1
            if len(self._cache) >= self.max_size:
                self._cache.clear()
                self.overflows += 1
            self._cache[key] = None
            self.evaluations += 1
            pending[key] = placement
            unresolved.append((idx, key))
        if pending:
            batched = getattr(self._objective, "evaluate_many", None)
            reps = list(pending.values())
            if batched is None:
                values = [float(self._objective(p)) for p in reps]
            else:
                values = [float(v) for v in batched(reps)]
            by_key = dict(zip(pending.keys(), values))
            for key, value in by_key.items():
                if key in self._cache and self._cache[key] is None:
                    self._cache[key] = value
            for idx, key in unresolved:
                out[idx] = by_key[key]
        return np.asarray(out, dtype=float)

    @property
    def hit_ratio(self) -> float:
        """Fraction of calls answered from the cache."""
        return self.hits / self.calls if self.calls else 0.0

    def __len__(self) -> int:
        return len(self._cache)


class _IncrementalMemo:
    """Accounting twin of :class:`MemoizedObjective` for the engine path.

    In incremental mode every candidate is priced by the APSP engine --
    never served from a cache -- but the annealer's evaluation budget,
    trace points, stage events and memo metrics are all defined by
    MemoizedObjective's counters.  This class replays that bookkeeping
    exactly (same bounded clear-wholesale cache semantics), keyed by
    the engine's link set, which maps 1:1 to ``canonical_bytes`` at
    fixed ``n`` -- so both modes agree on every counter at every move
    and the search trajectories stay comparable move for move.
    """

    def __init__(self, max_size: int = MemoizedObjective.DEFAULT_MAX_SIZE):
        self._seen: set = set()
        self.max_size = max_size
        self.evaluations = 0
        self.calls = 0
        self.hits = 0
        self.misses = 0
        self.overflows = 0

    def account(self, key: frozenset) -> None:
        self.calls += 1
        if key in self._seen:
            self.hits += 1
            return
        self.misses += 1
        if len(self._seen) >= self.max_size:
            self._seen.clear()
            self.overflows += 1
        self._seen.add(key)
        self.evaluations += 1

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.calls if self.calls else 0.0

    def __len__(self) -> int:
        return len(self._seen)


def _layer_link_counts(state: ConnectionMatrix) -> Counter:
    """Multiset of links over all layers (layers may duplicate a link;
    the decoded placement changes only when a count crosses 0 <-> 1)."""
    counts: Counter = Counter()
    for layer in range(state.bits.shape[1]):
        for link in state.layer_links(layer):
            counts[link] += 1
    return counts


def anneal(
    initial: ConnectionMatrix,
    objective: Objective,
    params: AnnealingParams | None = None,
    rng=None,
    max_evaluations: Optional[int] = None,
    trace_every: int = 1,
    obs: Optional[Instrumentation] = None,
    progress_every: int = 0,
    incremental: bool = False,
    resync_every: int = 1_000,
) -> AnnealingResult:
    """Run simulated annealing from ``initial`` and return the best state.

    Parameters
    ----------
    initial:
        Starting connection matrix (mutated in place during the run; a
        copy is taken so the caller's object is untouched).  Any state
        implementing the same move protocol works -- ``copy`` /
        ``decode`` / ``random_move`` (returning an opaque site tuple) /
        ``flip(*site)`` (its own inverse) / ``num_connection_points``
        plus ``n`` and ``link_limit`` attributes -- which is how the
        hetero and grid2d kernels in :mod:`repro.core.search_space`
        ride this engine unchanged.  The incremental path additionally
        needs ``flip_diff`` and stays row-space-only.
    objective:
        Energy function on decoded placements; lower is better.
    params:
        Schedule parameters; defaults to the paper's Table 1.
    max_evaluations:
        Optional hard cap on *unique* objective evaluations -- the
        budget knob used to compare OnlySA and D&C_SA at equal runtime
        (Section 5.3).
    trace_every:
        Record the best-so-far energy every this many moves.
    obs:
        Optional :class:`~repro.obs.Instrumentation`.  With a sink
        attached the run emits ``sa.start``, one ``sa.stage`` per
        cooling stage (acceptance / uphill rates, best energy, memo hit
        ratio), ``sa.best`` on every improvement and a final ``sa.end``.
        Instrumentation never touches the RNG stream, so results are
        identical with or without it.
    progress_every:
        With ``obs`` attached, additionally emit a ``sa.progress``
        event every this many moves (0 disables).
    incremental:
        Price candidates with the O(n^2) dynamic APSP engine
        (:mod:`repro.routing.incremental`) instead of a full
        Floyd-Warshall pass per move.  Requires an objective exposing
        ``incremental_evaluator`` (:class:`~repro.core.latency
        .RowObjective` does).  Under exactly-representable hop costs
        (the integral defaults) the trajectory -- accept/reject
        decisions, RNG stream, counters, trace -- is identical to the
        full path, so results are byte-for-byte the same.
    resync_every:
        In incremental mode, every this many accepted moves re-solve
        with full Floyd-Warshall and verify the engine state is
        bit-identical (distances and next-hops); on mismatch emit an
        ``sa.resync`` event and repair from the full solve instead of
        corrupting the run.  0 disables the self-check.
    """
    params = params or AnnealingParams()
    gen = ensure_rng(rng)
    obs = ensure_obs(obs)
    state = initial.copy()

    if incremental:
        if not hasattr(objective, "incremental_evaluator"):
            raise ConfigurationError(
                "incremental annealing needs an objective with an "
                "incremental_evaluator() (e.g. RowObjective); got "
                f"{type(objective).__name__}"
            )
        start = time.perf_counter()
        initial_placement = state.decode()
        evaluator = objective.incremental_evaluator(initial_placement)
        engine = evaluator.engine
        link_counts = _layer_link_counts(state)
        memo = _IncrementalMemo()
        current_energy = evaluator.energy()
        memo.account(frozenset(engine.links))
        best_placement = initial_placement
        incremental_evals = 0
        full_evals = 1  # the engine's initial build
        selfchecks = resyncs = 0
        accepted_since_check = 0
    else:
        evaluator = engine = link_counts = None
        memo = MemoizedObjective(objective)
        start = time.perf_counter()
        current_energy = memo(state.decode())
        best_placement = state.decode()
    initial_energy = current_energy
    best_energy = current_energy
    trace: List[Tuple[int, float]] = [(memo.evaluations, best_energy)]
    accepted = 0
    uphill = 0

    if obs.enabled:
        obs.emit(
            "sa.start",
            move=0,
            n=state.n,
            link_limit=state.link_limit,
            initial_energy=initial_energy,
            total_moves=params.total_moves,
            initial_temperature=params.initial_temperature,
            moves_per_cooldown=params.moves_per_cooldown,
        )

    if state.num_connection_points == 0:
        # C = 1 or n = 2: the mesh row is the only state.
        if obs.enabled:
            obs.emit("sa.end", move=0, best_energy=best_energy,
                     evaluations=memo.evaluations, accepted=0, uphill=0)
        return AnnealingResult(
            best_placement=best_placement,
            best_energy=best_energy,
            initial_energy=initial_energy,
            evaluations=memo.evaluations,
            accepted_moves=0,
            uphill_accepted=0,
            wall_time_s=time.perf_counter() - start,
            trace=trace,
        )

    # Per-cooling-stage accounting (reported via sa.stage events; the
    # integer bumps are cheap enough to keep unconditionally).
    stage = 0
    stage_moves = stage_accepted = stage_uphill = 0

    def _emit_stage(last_move: int) -> None:
        obs.emit(
            "sa.stage",
            move=last_move,
            stage=stage,
            temperature=params.temperature(stage * params.moves_per_cooldown),
            moves=stage_moves,
            accepted=stage_accepted,
            uphill=stage_uphill,
            best_energy=best_energy,
            current_energy=current_energy,
            memo_hit_ratio=memo.hit_ratio,
            evaluations=memo.evaluations,
        )

    move = 0
    moves_done = 0
    for move in range(params.total_moves):
        if max_evaluations is not None and memo.evaluations >= max_evaluations:
            break
        new_stage = move // params.moves_per_cooldown
        if new_stage != stage:
            if obs.enabled:
                _emit_stage(move - 1)
            stage = new_stage
            stage_moves = stage_accepted = stage_uphill = 0
        site = state.random_move(gen)
        if engine is None:
            state.flip(*site)
            candidate = state.decode()
            energy = memo(candidate)
        else:
            added_l, removed_l = state.flip_diff(*site)
            state.flip(*site)
            changes = []
            for link in removed_l:
                link_counts[link] -= 1
                if link_counts[link] == 0:
                    changes.append((link[0], link[1], False))
            for link in added_l:
                link_counts[link] += 1
                if link_counts[link] == 1:
                    changes.append((link[0], link[1], True))
            if changes:
                engine.checkpoint()
                engine.apply_link_changes(changes)
                energy = evaluator.energy()
                incremental_evals += 1
            else:
                # Layers changed but the decoded placement did not
                # (duplicate links across layers): same state, same
                # energy -- exactly what the full path's memo returns.
                energy = current_energy
            memo.account(frozenset(engine.links))
        delta = energy - current_energy
        stage_moves += 1
        moves_done += 1
        if delta <= 0 or gen.random() < math.exp(-delta / params.temperature(move)):
            current_energy = energy
            accepted += 1
            stage_accepted += 1
            if delta > 0:
                uphill += 1
                stage_uphill += 1
            if energy < best_energy:
                best_energy = energy
                if engine is None:
                    best_placement = candidate
                else:
                    best_placement = RowPlacement(
                        state.n, frozenset(engine.links)
                    )
                if obs.enabled:
                    obs.emit("sa.best", move=move, energy=best_energy,
                             evaluations=memo.evaluations)
            if engine is not None:
                if changes:
                    engine.commit()
                accepted_since_check += 1
                if resync_every and accepted_since_check >= resync_every:
                    accepted_since_check = 0
                    selfchecks += 1
                    full_evals += 1
                    if not engine.self_check():
                        resyncs += 1
                        full_evals += 1
                        engine.resync()
                        repaired = evaluator.energy()
                        if obs.enabled:
                            obs.emit("sa.resync", move=move,
                                     energy_before=current_energy,
                                     energy_after=repaired,
                                     evaluations=memo.evaluations)
                        current_energy = repaired
        else:
            if engine is not None:
                if changes:
                    engine.rollback()
                for link in added_l:
                    link_counts[link] -= 1
                for link in removed_l:
                    link_counts[link] += 1
            state.flip(*site)  # undo
        if move % trace_every == 0:
            trace.append((memo.evaluations, best_energy))
        if progress_every and obs.enabled and move % progress_every == 0:
            obs.emit("sa.progress", move=move,
                     current_energy=current_energy, best_energy=best_energy,
                     evaluations=memo.evaluations,
                     memo_hit_ratio=memo.hit_ratio)

    trace.append((memo.evaluations, best_energy))
    if obs.enabled:
        if stage_moves:
            _emit_stage(move)
        obs.emit("sa.end", move=move, best_energy=best_energy,
                 evaluations=memo.evaluations, accepted=accepted,
                 uphill=uphill, memo_hit_ratio=memo.hit_ratio,
                 wall_time_s=time.perf_counter() - start)
    if not obs.is_null:
        m = obs.metrics
        m.counter("sa.moves").inc(moves_done)
        m.counter("sa.accepted").inc(accepted)
        m.counter("sa.uphill").inc(uphill)
        m.counter("sa.evaluations").inc(memo.evaluations)
        m.counter("sa.memo_hits").inc(memo.hits)
        m.counter("sa.memo_misses").inc(memo.misses)
        m.gauge("sa.memo_hit_ratio").set(memo.hit_ratio)
        m.gauge("sa.best_energy").set(best_energy)
        # Wall-derived rate: excluded from the deterministic summary.
        m.meter("sa.move_rate").add(moves_done, time.perf_counter() - start)
        if engine is not None:
            m.counter("sa.eval.incremental").inc(incremental_evals)
            m.counter("sa.eval.full").inc(full_evals)
            m.counter("sa.selfcheck").inc(selfchecks)
            m.counter("sa.resync").inc(resyncs)
    return AnnealingResult(
        best_placement=best_placement,
        best_energy=best_energy,
        initial_energy=initial_energy,
        evaluations=memo.evaluations,
        accepted_moves=accepted,
        uphill_accepted=uphill,
        wall_time_s=time.perf_counter() - start,
        trace=trace,
    )


class _Chain:
    """Mutable per-chain state of a lockstep :func:`anneal_population` run.

    Holds exactly what one serial :func:`anneal` call keeps in local
    variables, so the population loop can interleave K chains while
    each one still walks its private trajectory: matrix state, RNG,
    memo, energies, stage accounting and trace.
    """

    def __init__(self, index: int, state: ConnectionMatrix, gen,
                 memo: MemoizedObjective) -> None:
        self.index = index
        self.state = state
        self.gen = gen
        self.memo = memo
        self.current_energy = 0.0
        self.initial_energy = 0.0
        self.best_energy = 0.0
        self.best_placement: Optional[RowPlacement] = None
        self.trace: List[Tuple[int, float]] = []
        self.accepted = 0
        self.uphill = 0
        self.moves_done = 0
        self.stage = 0
        self.stage_moves = 0
        self.stage_accepted = 0
        self.stage_uphill = 0
        self.last_move = 0
        self.done = False
        # Per-move scratch between the propose and the accept half-steps.
        self.candidate: Optional[RowPlacement] = None
        self.site: Tuple[int, ...] = (0, 0)
        self.pending_energy = 0.0


def _price_chain_candidates(
    entries: Sequence[Tuple[_Chain, RowPlacement]],
    objective: Objective,
) -> None:
    """Price one candidate per chain, batching all memo misses together.

    Each chain's private memo does its own hit/miss accounting (exactly
    as its serial run would), and the misses from every chain are
    priced with a single ``objective.evaluate_many`` call -- the one
    batched Floyd-Warshall stack per move that makes lockstep chains
    pay for one kernel launch instead of K.  Results land in each
    chain's ``pending_energy``.
    """
    missed: List[Tuple[_Chain, RowPlacement]] = []
    for chain, placement in entries:
        value = chain.memo.lookup(placement)
        if value is chain.memo.MISS:
            missed.append((chain, placement))
        else:
            chain.pending_energy = value
    if not missed:
        return
    batched = getattr(objective, "evaluate_many", None)
    if batched is None:
        values = [float(objective(p)) for _, p in missed]
    else:
        values = [float(v) for v in batched([p for _, p in missed])]
    for (chain, placement), value in zip(missed, values):
        chain.memo.store(placement, value)
        chain.pending_energy = value


def anneal_population(
    initials: Sequence[ConnectionMatrix],
    objective: Objective,
    params: AnnealingParams | None = None,
    rngs: Optional[Sequence] = None,
    max_evaluations: Optional[int] = None,
    trace_every: int = 1,
    obs: Optional[Instrumentation] = None,
) -> List[AnnealingResult]:
    """Run ``K = len(initials)`` SA chains in lockstep, batching energies.

    Trajectory-equivalent to ``K`` serial :func:`anneal` calls: chain
    ``k`` started from ``initials[k]`` with ``rngs[k]`` produces the
    byte-identical :class:`AnnealingResult` (placement, energies,
    counters, trace) it would produce alone, because each chain keeps
    its own RNG stream, memo and accept/reject bookkeeping -- the only
    thing shared is the kernel launch: every move, the candidates of
    all live chains that miss their memo are priced by one
    ``objective.evaluate_many`` batch (one ``(2B, n, n)``
    Floyd-Warshall stack) instead of one stack per chain.

    ``rngs`` supplies one seed/generator per chain (``None`` entries --
    or ``rngs=None`` altogether -- draw fresh entropy, as serial
    ``anneal(rng=None)`` would).  The multi-restart engine passes
    ``derived_rng(base_seed, C, restart)`` streams so ``chains=K``
    reproduces ``K`` serial restarts exactly.  ``params``,
    ``max_evaluations`` (a per-chain cap) and ``trace_every`` mean what
    they mean on :func:`anneal`; chains that exhaust their budget drop
    out of the lockstep individually.  The incremental engine is not
    supported here -- its per-move pricing is already O(n^2) and
    gains nothing from batching.

    With ``obs`` attached, the per-chain ``sa.*`` events carry a
    ``chain`` field; metrics are folded per chain in index order, so
    totals equal the serial runs' merged totals.
    """
    params = params or AnnealingParams()
    obs = ensure_obs(obs)
    initials = list(initials)
    if not initials:
        return []
    if rngs is None:
        rngs = [None] * len(initials)
    rngs = list(rngs)
    if len(rngs) != len(initials):
        raise ConfigurationError(
            f"anneal_population got {len(initials)} initial states but "
            f"{len(rngs)} RNG streams"
        )
    start = time.perf_counter()
    chains = [
        _Chain(k, initial.copy(), ensure_rng(rng), MemoizedObjective(objective))
        for k, (initial, rng) in enumerate(zip(initials, rngs))
    ]

    # Initial energies: one batch across all chains.
    _price_chain_candidates(
        [(c, c.state.decode()) for c in chains], objective
    )
    for c in chains:
        c.current_energy = c.initial_energy = c.best_energy = c.pending_energy
        c.best_placement = c.state.decode()
        c.trace.append((c.memo.evaluations, c.best_energy))
        if obs.enabled:
            obs.emit(
                "sa.start",
                move=0,
                chain=c.index,
                n=c.state.n,
                link_limit=c.state.link_limit,
                initial_energy=c.initial_energy,
                total_moves=params.total_moves,
                initial_temperature=params.initial_temperature,
                moves_per_cooldown=params.moves_per_cooldown,
            )
        if c.state.num_connection_points == 0:
            # C = 1 or n = 2: the mesh row is the only state.
            c.done = True
            if obs.enabled:
                obs.emit("sa.end", move=0, chain=c.index,
                         best_energy=c.best_energy,
                         evaluations=c.memo.evaluations, accepted=0, uphill=0)

    def _emit_stage(c: _Chain, last_move: int) -> None:
        obs.emit(
            "sa.stage",
            move=last_move,
            chain=c.index,
            stage=c.stage,
            temperature=params.temperature(c.stage * params.moves_per_cooldown),
            moves=c.stage_moves,
            accepted=c.stage_accepted,
            uphill=c.stage_uphill,
            best_energy=c.best_energy,
            current_energy=c.current_energy,
            memo_hit_ratio=c.memo.hit_ratio,
            evaluations=c.memo.evaluations,
        )

    for move in range(params.total_moves):
        live: List[_Chain] = []
        for c in chains:
            if c.done:
                continue
            if (max_evaluations is not None
                    and c.memo.evaluations >= max_evaluations):
                # Serial anneal breaks at the top of this move; its final
                # events carry this move index, so record it before
                # retiring the chain.
                c.last_move = move
                c.done = True
                continue
            live.append(c)
        if not live:
            break
        for c in live:
            c.last_move = move
            new_stage = move // params.moves_per_cooldown
            if new_stage != c.stage:
                if obs.enabled:
                    _emit_stage(c, move - 1)
                c.stage = new_stage
                c.stage_moves = c.stage_accepted = c.stage_uphill = 0
            c.site = c.state.random_move(c.gen)
            c.state.flip(*c.site)
            c.candidate = c.state.decode()
        _price_chain_candidates([(c, c.candidate) for c in live], objective)
        temperature = params.temperature(move)
        for c in live:
            energy = c.pending_energy
            delta = energy - c.current_energy
            c.stage_moves += 1
            c.moves_done += 1
            if delta <= 0 or c.gen.random() < math.exp(-delta / temperature):
                c.current_energy = energy
                c.accepted += 1
                c.stage_accepted += 1
                if delta > 0:
                    c.uphill += 1
                    c.stage_uphill += 1
                if energy < c.best_energy:
                    c.best_energy = energy
                    c.best_placement = c.candidate
                    if obs.enabled:
                        obs.emit("sa.best", move=move, chain=c.index,
                                 energy=c.best_energy,
                                 evaluations=c.memo.evaluations)
            else:
                c.state.flip(*c.site)  # undo
            if move % trace_every == 0:
                c.trace.append((c.memo.evaluations, c.best_energy))

    wall = time.perf_counter() - start
    results: List[AnnealingResult] = []
    for c in chains:
        finished_loop = c.state.num_connection_points > 0
        if finished_loop:
            c.trace.append((c.memo.evaluations, c.best_energy))
            if obs.enabled:
                if c.stage_moves:
                    _emit_stage(c, c.last_move)
                obs.emit("sa.end", move=c.last_move, chain=c.index,
                         best_energy=c.best_energy,
                         evaluations=c.memo.evaluations, accepted=c.accepted,
                         uphill=c.uphill, memo_hit_ratio=c.memo.hit_ratio,
                         wall_time_s=wall)
        if not obs.is_null:
            m = obs.metrics
            m.counter("sa.moves").inc(c.moves_done)
            m.counter("sa.accepted").inc(c.accepted)
            m.counter("sa.uphill").inc(c.uphill)
            m.counter("sa.evaluations").inc(c.memo.evaluations)
            m.counter("sa.memo_hits").inc(c.memo.hits)
            m.counter("sa.memo_misses").inc(c.memo.misses)
            m.gauge("sa.memo_hit_ratio").set(c.memo.hit_ratio)
            m.gauge("sa.best_energy").set(c.best_energy)
            m.meter("sa.move_rate").add(c.moves_done, wall)
        results.append(AnnealingResult(
            best_placement=c.best_placement,
            best_energy=c.best_energy,
            initial_energy=c.initial_energy,
            evaluations=c.memo.evaluations,
            accepted_moves=c.accepted,
            uphill_accepted=c.uphill,
            wall_time_s=wall,
            trace=c.trace,
        ))
    return results
