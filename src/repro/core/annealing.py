"""Simulated annealing over the connection-matrix space (Section 4.4).

The engine follows the paper's setup exactly (Table 1):

* exponential acceptance ``exp(-dL / T)`` for uphill moves,
* linear-in-stages cooling -- the temperature is *divided* by the
  cooldown scale ``S_c`` after every ``m_c`` moves,
* moves flip a single connection point of the matrix, which keeps every
  visited state valid and every valid placement reachable,
* default parameters ``T0 = 10`` cycles, ``m = 10^4`` total moves,
  ``S_c = 2``, ``m_c = 10^3``.

The objective is pluggable (any callable ``RowPlacement -> float``); the
paper's is the mean row head latency evaluated by directional
Floyd-Warshall, and Section 5.6.4 swaps in a traffic-weighted variant.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.core.connection_matrix import ConnectionMatrix
from repro.topology.row import RowPlacement
from repro.util.rngtools import ensure_rng

Objective = Callable[[RowPlacement], float]


@dataclass(frozen=True)
class AnnealingParams:
    """Simulated-annealing hyperparameters (paper Table 1)."""

    initial_temperature: float = 10.0
    total_moves: int = 10_000
    cooldown_scale: float = 2.0
    moves_per_cooldown: int = 1_000

    def __post_init__(self) -> None:
        if self.initial_temperature <= 0:
            raise ValueError("initial temperature must be positive")
        if self.total_moves < 0:
            raise ValueError("total moves must be nonnegative")
        if self.cooldown_scale <= 1.0:
            raise ValueError("cooldown scale must be > 1")
        if self.moves_per_cooldown <= 0:
            raise ValueError("moves per cooldown must be positive")

    def temperature(self, move_index: int) -> float:
        """Temperature in effect at ``move_index`` (0-based)."""
        stages = move_index // self.moves_per_cooldown
        return self.initial_temperature / (self.cooldown_scale ** stages)


@dataclass
class AnnealingResult:
    """Outcome of one annealing run.

    ``trace`` records ``(evaluation_count, best_energy_so_far)`` pairs
    -- the raw data behind the paper's Figure 7 quality-vs-runtime
    curves, where runtime is measured in objective evaluations.
    """

    best_placement: RowPlacement
    best_energy: float
    initial_energy: float
    evaluations: int
    accepted_moves: int
    uphill_accepted: int
    wall_time_s: float
    trace: List[Tuple[int, float]] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        """Fractional energy reduction relative to the initial state."""
        if self.initial_energy == 0:
            return 0.0
        return (self.initial_energy - self.best_energy) / self.initial_energy


class MemoizedObjective:
    """Objective wrapper caching energies by placement.

    SA frequently revisits states (a flip and its undo decode to the
    same placement), and distinct matrices can decode identically; the
    cache turns those repeats into dictionary hits.  Also counts true
    evaluations for runtime normalization (Figure 7).
    """

    def __init__(self, objective: Objective) -> None:
        self._objective = objective
        self._cache: dict = {}
        self.evaluations = 0
        self.calls = 0

    def __call__(self, placement: RowPlacement) -> float:
        self.calls += 1
        hit = self._cache.get(placement)
        if hit is not None:
            return hit
        value = self._objective(placement)
        self._cache[placement] = value
        self.evaluations += 1
        return value


def anneal(
    initial: ConnectionMatrix,
    objective: Objective,
    params: AnnealingParams | None = None,
    rng=None,
    max_evaluations: Optional[int] = None,
    trace_every: int = 1,
) -> AnnealingResult:
    """Run simulated annealing from ``initial`` and return the best state.

    Parameters
    ----------
    initial:
        Starting connection matrix (mutated in place during the run; a
        copy is taken so the caller's object is untouched).
    objective:
        Energy function on decoded placements; lower is better.
    params:
        Schedule parameters; defaults to the paper's Table 1.
    max_evaluations:
        Optional hard cap on *unique* objective evaluations -- the
        budget knob used to compare OnlySA and D&C_SA at equal runtime
        (Section 5.3).
    trace_every:
        Record the best-so-far energy every this many moves.
    """
    params = params or AnnealingParams()
    gen = ensure_rng(rng)
    memo = MemoizedObjective(objective)
    state = initial.copy()

    start = time.perf_counter()
    current_energy = memo(state.decode())
    initial_energy = current_energy
    best_placement = state.decode()
    best_energy = current_energy
    trace: List[Tuple[int, float]] = [(memo.evaluations, best_energy)]
    accepted = 0
    uphill = 0

    if state.num_connection_points == 0:
        # C = 1 or n = 2: the mesh row is the only state.
        return AnnealingResult(
            best_placement=best_placement,
            best_energy=best_energy,
            initial_energy=initial_energy,
            evaluations=memo.evaluations,
            accepted_moves=0,
            uphill_accepted=0,
            wall_time_s=time.perf_counter() - start,
            trace=trace,
        )

    for move in range(params.total_moves):
        if max_evaluations is not None and memo.evaluations >= max_evaluations:
            break
        row, layer = state.random_move(gen)
        state.flip(row, layer)
        candidate = state.decode()
        energy = memo(candidate)
        delta = energy - current_energy
        if delta <= 0 or gen.random() < math.exp(-delta / params.temperature(move)):
            current_energy = energy
            accepted += 1
            if delta > 0:
                uphill += 1
            if energy < best_energy:
                best_energy = energy
                best_placement = candidate
        else:
            state.flip(row, layer)  # undo
        if move % trace_every == 0:
            trace.append((memo.evaluations, best_energy))

    trace.append((memo.evaluations, best_energy))
    return AnnealingResult(
        best_placement=best_placement,
        best_energy=best_energy,
        initial_energy=initial_energy,
        evaluations=memo.evaluations,
        accepted_moves=accepted,
        uphill_accepted=uphill,
        wall_time_s=time.perf_counter() - start,
        trace=trace,
    )
