"""Application-aware express-link placement (Section 5.6.4).

When the traffic pattern of the target application is known, the head
latency objective becomes the *traffic-weighted* average

.. math::

    L_{D,avg} = \\frac{\\sum_{ij} \\gamma_{ij} L_D(i, j)}{\\sum_{ij} \\gamma_{ij}}

with :math:`\\gamma_{ij}` the communication rate from router ``i`` to
router ``j``.  The 2D -> 1D reduction still applies under XY routing --
the weighted objective splits into per-row and per-column weighted
sums -- but each row and column now carries different weights, so
``P~(n, C)`` is solved ``2n`` times (once per row, once per column)
instead of once.

The weight algebra, for a packet from source ``s = (x_s, y_s)`` to
destination ``d = (x_d, y_d)`` routed X-first:

* it traverses *row* ``y_s`` from position ``x_s`` to ``x_d``, so row
  ``r`` accumulates ``gamma[s, d]`` onto pair ``(x_s, x_d)`` for every
  ``s`` with ``y_s = r``;
* it traverses *column* ``x_d`` from ``y_s`` to ``y_d``, so column
  ``c`` accumulates ``gamma[s, d]`` onto pair ``(y_s, y_d)`` for every
  ``d`` with ``x_d = c``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.annealing import AnnealingParams
from repro.core.latency import (
    BandwidthConfig,
    PacketMix,
    RowObjective,
    mean_row_head_latency,
)
from repro.core.optimizer import RowSolution, _solve_row
from repro.routing.shortest_path import HopCostModel
from repro.topology.mesh import MeshTopology
from repro.topology.row import RowPlacement
from repro.util.errors import ConfigurationError
from repro.util.rngtools import ensure_rng


def _check_gamma(gamma: np.ndarray, n: int) -> np.ndarray:
    """Validate a traffic matrix and return it with self-traffic removed.

    A nonzero diagonal (``gamma[s, s]``) describes packets that never
    enter the network: their "routes" are zero hops, yet their weight
    would land in every ``w.sum()`` and in ``total_traffic``, silently
    deflating the weighted average.  Stripping the diagonal keeps the
    objective an average over packets that actually traverse links.
    """
    g = np.asarray(gamma, dtype=float)
    if g.shape != (n * n, n * n):
        raise ConfigurationError(f"gamma shape {g.shape} != ({n * n}, {n * n})")
    if (g < 0).any():
        raise ConfigurationError("gamma must be nonnegative")
    if np.diagonal(g).any():
        g = g.copy()
        np.fill_diagonal(g, 0.0)
    if g.sum() <= 0:
        raise ConfigurationError(
            "gamma must contain some traffic between distinct routers"
        )
    return g


def _row_weights(g: np.ndarray, n: int) -> List[np.ndarray]:
    """Row weights of an already-checked gamma (no re-validation)."""
    # g4[y_s, x_s, y_d, x_d]
    g4 = g.reshape(n, n, n, n)
    # Sum over destination rows: for each source row r, traffic from
    # (x_s, r) heading to column x_d.
    return [g4[r].sum(axis=1) for r in range(n)]


def _col_weights(g: np.ndarray, n: int) -> List[np.ndarray]:
    """Column weights of an already-checked gamma (no re-validation)."""
    g4 = g.reshape(n, n, n, n)
    # Sum over source columns: for each destination column c, traffic
    # entering column c at row y_s and leaving at row y_d.
    return [g4[:, :, :, c].sum(axis=1) for c in range(n)]


def row_weights(gamma: np.ndarray, n: int) -> List[np.ndarray]:
    """Per-row pair-weight matrices ``W_r[x_s, x_d]``."""
    return _row_weights(_check_gamma(gamma, n), n)


def col_weights(gamma: np.ndarray, n: int) -> List[np.ndarray]:
    """Per-column pair-weight matrices ``W_c[y_s, y_d]``."""
    return _col_weights(_check_gamma(gamma, n), n)


def weighted_average_head_latency(
    topology: MeshTopology,
    gamma: np.ndarray,
    cost: HopCostModel | None = None,
) -> float:
    """Traffic-weighted 2D average head latency of a topology."""
    g = _check_gamma(gamma, topology.n)
    return _weighted_average_checked(topology, g, cost or HopCostModel())


def _weighted_average_checked(
    topology: MeshTopology, g: np.ndarray, cost: HopCostModel
) -> float:
    """Weighted average of an already-checked gamma (no re-validation)."""
    n = topology.n
    rw = _row_weights(g, n)
    cw = _col_weights(g, n)
    total_traffic = g.sum()
    acc = 0.0
    for r, placement in enumerate(topology.row_placements):
        w = rw[r]
        if w.sum() > 0:
            acc += mean_row_head_latency(placement, cost, w) * w.sum()
    for c, placement in enumerate(topology.col_placements):
        w = cw[c]
        if w.sum() > 0:
            acc += mean_row_head_latency(placement, cost, w) * w.sum()
    return acc / total_traffic


@dataclass(frozen=True)
class ApplicationAwareResult:
    """Per-dimension placements plus the achieved weighted latency."""

    topology: MeshTopology
    link_limit: int
    flit_bits: int
    weighted_head_latency: float
    serialization: float
    row_solutions: Tuple[RowSolution, ...]
    col_solutions: Tuple[RowSolution, ...]

    @property
    def total_latency(self) -> float:
        return self.weighted_head_latency + self.serialization


def optimize_application_aware(
    gamma: np.ndarray,
    n: int,
    link_limit: int,
    method: str = "dc_sa",
    bandwidth: BandwidthConfig | None = None,
    mix: PacketMix | None = None,
    cost: HopCostModel | None = None,
    params: AnnealingParams | None = None,
    rng=None,
) -> ApplicationAwareResult:
    """Solve the weighted placement problem row by row and column by column.

    The divide-and-conquer seeding and the connection-matrix search
    space carry over unchanged (the paper notes both remain applicable);
    only the objective differs per dimension slice.
    """
    # Validate once; the private helpers below take the checked array,
    # so the full optimization runs a single _check_gamma pass instead
    # of three (direct + row_weights + col_weights).
    g = _check_gamma(gamma, n)
    bandwidth = bandwidth or BandwidthConfig()
    mix = mix or PacketMix.paper_default()
    cost = cost or HopCostModel()
    gen = ensure_rng(rng)

    rw = _row_weights(g, n)
    cw = _col_weights(g, n)

    def solve(weights: np.ndarray) -> RowSolution:
        if weights.sum() <= 0:
            # No traffic on this slice; any placement works -- use mesh.
            placement = RowPlacement.mesh(n)
            return RowSolution(
                n=n,
                link_limit=link_limit,
                placement=placement,
                energy=0.0,
                method=method,
                evaluations=0,
                wall_time_s=0.0,
            )
        objective = RowObjective(
            cost=cost, weights=tuple(map(tuple, weights.tolist()))
        )
        return _solve_row(
            n, link_limit, method=method, objective=objective, params=params, rng=gen
        )

    row_solutions = tuple(solve(w) for w in rw)
    col_solutions = tuple(solve(w) for w in cw)
    topology = MeshTopology.per_dimension(
        [s.placement for s in row_solutions],
        [s.placement for s in col_solutions],
    )
    head = _weighted_average_checked(topology, g, cost)
    ser = mix.serialization_cycles(bandwidth.flit_bits(link_limit))
    return ApplicationAwareResult(
        topology=topology,
        link_limit=link_limit,
        flit_bits=bandwidth.flit_bits(link_limit),
        weighted_head_latency=head,
        serialization=ser,
        row_solutions=row_solutions,
        col_solutions=col_solutions,
    )
