"""Exact solvers for small ``P~(n, C)`` instances (Section 5.6.3).

Two independent exact methods are provided:

* :func:`exhaustive_matrix_search` enumerates the complete connection
  matrix space ``2^{(n-2)(C-1)}``, de-duplicating matrices that decode
  to the same placement and folding the left-right mirror symmetry
  (the objective is reversal-invariant), so the expensive evaluation
  runs only once per equivalence class.
* :func:`branch_and_bound` searches over express-link *sets* directly
  with depth-first branching and an admissible bound: head latency is
  monotone non-increasing in the link set, so the energy of the current
  partial set with *every* still-feasible link added bounds all of its
  completions from below.  Subtrees whose bound cannot beat the
  incumbent are pruned.

The paper uses "exhaustive search algorithm with branch and bound" as
the optimality reference for ``P(4,2)``, ``P(8,2)``, ``P(8,3)``,
``P(8,4)`` and ``P(16,2)`` (Figure 12); both solvers here agree on all
of those instances (tested), and the runtime ratio against D&C_SA is
what the Figure 12 bench reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.annealing import MemoizedObjective, Objective
from repro.core.connection_matrix import ConnectionMatrix, iter_unique_placements
from repro.core.latency import full_connectivity_limit
from repro.topology.row import RowPlacement


@dataclass(frozen=True)
class ExactResult:
    """Outcome of an exact search."""

    placement: RowPlacement
    energy: float
    evaluations: int
    states_visited: int
    wall_time_s: float


def effective_link_limit(n: int, link_limit: int) -> int:
    """Clamp ``C`` to the largest useful value for a row of ``n``.

    Cross-sections of a fully connected row carry at most
    ``C_full = floor(n/2) * ceil(n/2)`` links, so larger limits admit no
    new placements.
    """
    return min(link_limit, full_connectivity_limit(n))


def validated_link_limit(n: int, link_limit: int, obs=None) -> int:
    """Validate and clamp ``C`` once, at the API boundary.

    Rejects non-positive limits and clamps oversized ones to
    ``C_full`` via :func:`effective_link_limit`, emitting a
    ``config.clamp`` warning event when instrumentation is attached --
    so a sweep over ``C > C_full`` is visible in the trace instead of
    silently solving a smaller problem per worker.  The parallel
    engines call this before building their task grids; the returned
    value is what every spawned worker sees.
    """
    if link_limit < 1:
        from repro.util.errors import ConfigurationError

        raise ConfigurationError(f"link limit must be >= 1, got {link_limit}")
    limit = effective_link_limit(n, link_limit)
    if limit != link_limit and obs is not None and obs.enabled:
        obs.emit(
            "config.clamp",
            n=n,
            requested_link_limit=link_limit,
            effective_link_limit=limit,
        )
    return limit


#: Placements priced per batched kernel call by the exact searches.
#: 128 keeps each (2B, n, n) relaxation temporary cache-resident, which
#: measured faster than larger chunks at the Figure 12 sizes.
DEFAULT_BATCH_SIZE = 128


def exhaustive_matrix_search(
    n: int,
    link_limit: int,
    objective: Objective,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> ExactResult:
    """Optimal placement by full enumeration of the matrix space.

    Enumeration proceeds in chunks of ``batch_size`` mirror-folded
    equivalence classes; each chunk is priced with a single batched
    Floyd-Warshall stack (``MemoizedObjective.evaluate_many``), which
    is bit-identical to -- and several times faster than -- the scalar
    loop.  ``batch_size=1`` forces the scalar kernel (the benchmark
    baseline).  Best-so-far updates scan each chunk in enumeration
    order with strict ``<``, so the winning placement is the same first
    minimum the sequential path finds.
    """
    limit = effective_link_limit(n, link_limit)
    memo = MemoizedObjective(objective)
    start = time.perf_counter()
    # The all-zero matrix decodes to the mesh, so the first enumerated
    # placement prices the incumbent -- no upfront scalar evaluation.
    best_placement = RowPlacement.mesh(n)
    best_energy = float("inf")
    shape = ConnectionMatrix.shape(n, limit)
    states = 1 << (shape[0] * shape[1])
    chunk: List[RowPlacement] = []

    def flush() -> None:
        nonlocal best_energy, best_placement
        energies = memo.evaluate_many(chunk, folded=True)
        for placement, energy in zip(chunk, energies):
            if energy < best_energy:
                best_energy = float(energy)
                best_placement = placement
        chunk.clear()

    for placement in iter_unique_placements(n, limit):
        if batch_size <= 1:
            energy = memo(placement)
            if energy < best_energy:
                best_energy = energy
                best_placement = placement
        else:
            chunk.append(placement)
            if len(chunk) >= batch_size:
                flush()
    if chunk:
        flush()
    return ExactResult(
        placement=best_placement,
        energy=best_energy,
        evaluations=memo.evaluations,
        states_visited=states,
        wall_time_s=time.perf_counter() - start,
    )


def _feasible_additions(
    placement: RowPlacement,
    candidates: List[Tuple[int, int]],
    limit: int,
) -> List[Tuple[int, int]]:
    """Candidates that can still be added without breaking the limit."""
    counts = list(placement.cross_section_counts())
    out = []
    for i, j in candidates:
        if all(counts[k] + 1 <= limit for k in range(i, j)):
            out.append((i, j))
    return out


def branch_and_bound(
    n: int,
    link_limit: int,
    objective: Objective,
    max_states: Optional[int] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> ExactResult:
    """Optimal placement by DFS over link sets with monotone bounding.

    Because adding a link can only shorten shortest paths, the energy
    of ``partial + all still-feasible candidates`` (constraints
    ignored) is an admissible lower bound for every completion of
    ``partial``; branches whose bound does not beat the incumbent are
    cut.  ``max_states`` optionally aborts runaway searches (used only
    by stress tests).

    Bounds stay scalar (each depends on the incumbent the previous
    branch produced), but the child frontier of every node is
    pre-priced with one batched kernel call: each child is evaluated at
    the top of its own visit anyway, so warming the memo in a batch
    changes no trajectory and no evaluation count -- it only swaps K
    kernel launches for one.  Disabled when ``max_states`` truncates
    the search (a pre-priced child the abort would have skipped would
    otherwise inflate ``evaluations``) or ``batch_size <= 1``.
    """
    limit = effective_link_limit(n, link_limit)
    memo = MemoizedObjective(objective)
    start = time.perf_counter()
    all_candidates = [(i, j) for i in range(n) for j in range(i + 2, n)]
    batch_frontiers = batch_size > 1 and max_states is None

    best: Dict[str, object] = {
        "placement": RowPlacement.mesh(n),
        "energy": memo(RowPlacement.mesh(n)),
    }
    states = {"count": 0}

    def visit(placement: RowPlacement, remaining: List[Tuple[int, int]]) -> None:
        states["count"] += 1
        if max_states is not None and states["count"] > max_states:
            return
        energy = memo(placement)
        if energy < best["energy"]:
            best["energy"] = energy
            best["placement"] = placement
        feasible = _feasible_additions(placement, remaining, limit)
        if not feasible:
            return
        # Admissible bound: all feasible links added at once.
        relaxed = RowPlacement(n, placement.express_links | set(feasible))
        if memo(relaxed) >= best["energy"]:
            return
        children = []
        for idx, link in enumerate(feasible):
            nxt = placement.with_link(*link)
            if not nxt.satisfies_limit(limit):
                continue
            # Only branch on links after `link` to avoid permutations.
            children.append((nxt, feasible[idx + 1:]))
        if batch_frontiers and len(children) > 1:
            memo.evaluate_many([child for child, _ in children])
        for child, rest in children:
            visit(child, rest)

    visit(RowPlacement.mesh(n), all_candidates)
    return ExactResult(
        placement=best["placement"],  # type: ignore[arg-type]
        energy=float(best["energy"]),  # type: ignore[arg-type]
        evaluations=memo.evaluations,
        states_visited=states["count"],
        wall_time_s=time.perf_counter() - start,
    )
