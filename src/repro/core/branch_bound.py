"""Exact solvers for small ``P~(n, C)`` instances (Section 5.6.3).

Two independent exact methods are provided:

* :func:`exhaustive_matrix_search` enumerates the complete connection
  matrix space ``2^{(n-2)(C-1)}``, de-duplicating matrices that decode
  to the same placement and folding the left-right mirror symmetry
  (the objective is reversal-invariant), so the expensive evaluation
  runs only once per equivalence class.
* :func:`branch_and_bound` searches over express-link *sets* directly
  with depth-first branching and an admissible bound: head latency is
  monotone non-increasing in the link set, so the energy of the current
  partial set with *every* still-feasible link added bounds all of its
  completions from below.  Subtrees whose bound cannot beat the
  incumbent are pruned.

The paper uses "exhaustive search algorithm with branch and bound" as
the optimality reference for ``P(4,2)``, ``P(8,2)``, ``P(8,3)``,
``P(8,4)`` and ``P(16,2)`` (Figure 12); both solvers here agree on all
of those instances (tested), and the runtime ratio against D&C_SA is
what the Figure 12 bench reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.annealing import MemoizedObjective, Objective
from repro.core.connection_matrix import enumerate_matrices
from repro.core.latency import full_connectivity_limit
from repro.topology.row import RowPlacement


@dataclass(frozen=True)
class ExactResult:
    """Outcome of an exact search."""

    placement: RowPlacement
    energy: float
    evaluations: int
    states_visited: int
    wall_time_s: float


def effective_link_limit(n: int, link_limit: int) -> int:
    """Clamp ``C`` to the largest useful value for a row of ``n``.

    Cross-sections of a fully connected row carry at most
    ``C_full = floor(n/2) * ceil(n/2)`` links, so larger limits admit no
    new placements.
    """
    return min(link_limit, full_connectivity_limit(n))


def exhaustive_matrix_search(
    n: int,
    link_limit: int,
    objective: Objective,
) -> ExactResult:
    """Optimal placement by full enumeration of the matrix space."""
    limit = effective_link_limit(n, link_limit)
    memo = MemoizedObjective(objective)
    start = time.perf_counter()
    best_placement = RowPlacement.mesh(n)
    best_energy = memo(best_placement)
    states = 0
    seen: Dict = {}
    for matrix in enumerate_matrices(n, limit):
        states += 1
        placement = matrix.decode()
        key = placement.canonical_key()
        if key in seen:
            continue
        seen[key] = True
        energy = memo(placement)
        if energy < best_energy:
            best_energy = energy
            best_placement = placement
    return ExactResult(
        placement=best_placement,
        energy=best_energy,
        evaluations=memo.evaluations,
        states_visited=states,
        wall_time_s=time.perf_counter() - start,
    )


def _feasible_additions(
    placement: RowPlacement,
    candidates: List[Tuple[int, int]],
    limit: int,
) -> List[Tuple[int, int]]:
    """Candidates that can still be added without breaking the limit."""
    counts = list(placement.cross_section_counts())
    out = []
    for i, j in candidates:
        if all(counts[k] + 1 <= limit for k in range(i, j)):
            out.append((i, j))
    return out


def branch_and_bound(
    n: int,
    link_limit: int,
    objective: Objective,
    max_states: Optional[int] = None,
) -> ExactResult:
    """Optimal placement by DFS over link sets with monotone bounding.

    Because adding a link can only shorten shortest paths, the energy
    of ``partial + all still-feasible candidates`` (constraints
    ignored) is an admissible lower bound for every completion of
    ``partial``; branches whose bound does not beat the incumbent are
    cut.  ``max_states`` optionally aborts runaway searches (used only
    by stress tests).
    """
    limit = effective_link_limit(n, link_limit)
    memo = MemoizedObjective(objective)
    start = time.perf_counter()
    all_candidates = [(i, j) for i in range(n) for j in range(i + 2, n)]

    best: Dict[str, object] = {
        "placement": RowPlacement.mesh(n),
        "energy": memo(RowPlacement.mesh(n)),
    }
    states = {"count": 0}

    def visit(placement: RowPlacement, remaining: List[Tuple[int, int]]) -> None:
        states["count"] += 1
        if max_states is not None and states["count"] > max_states:
            return
        energy = memo(placement)
        if energy < best["energy"]:
            best["energy"] = energy
            best["placement"] = placement
        feasible = _feasible_additions(placement, remaining, limit)
        if not feasible:
            return
        # Admissible bound: all feasible links added at once.
        relaxed = RowPlacement(n, placement.express_links | set(feasible))
        if memo(relaxed) >= best["energy"]:
            return
        for idx, link in enumerate(feasible):
            nxt = placement.with_link(*link)
            if not nxt.satisfies_limit(limit):
                continue
            # Only branch on links after `link` to avoid permutations.
            visit(nxt, feasible[idx + 1 :])

    visit(RowPlacement.mesh(n), all_candidates)
    return ExactResult(
        placement=best["placement"],  # type: ignore[arg-type]
        energy=float(best["energy"]),  # type: ignore[arg-type]
        evaluations=memo.evaluations,
        states_visited=states["count"],
        wall_time_s=time.perf_counter() - start,
    )
