"""The connection-matrix search space (Section 4.4.2, Figure 2).

A naive simulated-annealing move (add / delete / stretch a random link)
usually produces an *invalid* placement -- missing local links or a
cross-section over the limit.  The paper instead searches a binary
matrix ``M`` of shape ``(n - 2) x (C - 1)``:

* one *layer* (column of ``M``) per express wire track -- ``C - 1`` of
  them, because one track per cross-section is reserved for the local
  links;
* one row of ``M`` per *interior* router ``1 .. n-2`` (0-based); the
  bit says whether the two track segments meeting at that router are
  fused into one longer link.

Decoding a layer splits the row at every 0-bit: each maximal fused run
becomes one express link.  Runs of length one would duplicate the local
link, so they are dropped from the topology (this is why the paper's
best P~(8,4) leaves some cross-sections under-utilized, Section 5.4).
Every matrix decodes to a valid placement -- each layer adds at most
one link to any cross-section, so the count is at most
``1 + (C - 1) = C`` -- and every valid placement is reachable because
it can be encoded (interval-graph coloring) and the move set (single
bit flips) connects the whole hypercube of matrices.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.topology.row import Link, RowPlacement
from repro.util.errors import ConfigurationError, InvalidPlacementError
from repro.util.rngtools import ensure_rng


@dataclass
class ConnectionMatrix:
    """A point in the SA search space for ``P~(n, C)``.

    Attributes
    ----------
    n:
        Row length (number of routers).
    link_limit:
        The cross-section limit ``C``; the matrix has ``C - 1`` layers.
    bits:
        Boolean array of shape ``(n - 2, C - 1)``; ``bits[r, l]`` is the
        connection point of interior router ``r + 1`` on layer ``l``.
    """

    n: int
    link_limit: int
    bits: np.ndarray

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ConfigurationError(f"row needs >= 2 routers, got {self.n}")
        if self.link_limit < 1:
            raise ConfigurationError(f"link limit must be >= 1, got {self.link_limit}")
        expected = self.shape(self.n, self.link_limit)
        bits = np.asarray(self.bits, dtype=bool)
        if bits.shape != expected:
            raise ConfigurationError(f"bits shape {bits.shape} != expected {expected}")
        self.bits = bits

    # ------------------------------------------------------------------
    @staticmethod
    def shape(n: int, link_limit: int) -> Tuple[int, int]:
        """Matrix shape for a given problem: ``(n - 2, C - 1)``."""
        return (max(n - 2, 0), max(link_limit - 1, 0))

    @classmethod
    def zeros(cls, n: int, link_limit: int) -> "ConnectionMatrix":
        """The all-disconnected matrix (decodes to the plain mesh row)."""
        return cls(n, link_limit, np.zeros(cls.shape(n, link_limit), dtype=bool))

    @classmethod
    def random(cls, n: int, link_limit: int, rng=None) -> "ConnectionMatrix":
        """A uniformly random matrix (OnlySA's initial state)."""
        gen = ensure_rng(rng)
        shape = cls.shape(n, link_limit)
        return cls(n, link_limit, gen.random(shape) < 0.5)

    @classmethod
    def from_placement(
        cls, placement: RowPlacement, link_limit: int
    ) -> "ConnectionMatrix":
        """Encode a valid placement into the matrix space.

        Express links are packed into the ``C - 1`` layers by greedy
        interval partitioning (sort by left endpoint, reuse the layer
        whose last link ended earliest).  Links that merely touch at a
        shared router may share a layer; the 0-bit at the shared router
        keeps them separate links.  Raises
        :class:`InvalidPlacementError` if the placement needs more than
        ``C - 1`` layers, i.e. violates the cross-section limit.
        """
        placement.validate(link_limit)
        n, layers = placement.n, max(link_limit - 1, 0)
        bits = np.zeros(cls.shape(n, link_limit), dtype=bool)
        links = sorted(placement.express_links)
        # Min-heap of (last_right_endpoint, layer_index) over layers in use.
        free: List[int] = list(range(layers))
        heapq.heapify(free)
        busy: List[Tuple[int, int]] = []
        for i, j in links:
            while busy and busy[0][0] <= i:
                _, layer = heapq.heappop(busy)
                heapq.heappush(free, layer)
            if not free:
                raise InvalidPlacementError(
                    f"placement needs more than {layers} express layers "
                    f"(cross-section limit {link_limit} exceeded)"
                )
            layer = heapq.heappop(free)
            heapq.heappush(busy, (j, layer))
            for r in range(i + 1, j):
                bits[r - 1, layer] = True
        return cls(n, link_limit, bits)

    # ------------------------------------------------------------------
    def decode(self) -> RowPlacement:
        """Decode the matrix into its :class:`RowPlacement`."""
        links: set = set()
        n = self.n
        # One bulk conversion to Python bools: per-element numpy
        # indexing dominates the exact searches' enumeration loop.
        for column in self.bits.T.tolist():
            start = 0
            for r in range(1, n):
                # Interior routers are 1 .. n-2; column[r-1] covers them.
                if not (r <= n - 2 and column[r - 1]):
                    if r - start >= 2:
                        links.add((start, r))
                    start = r
        return RowPlacement(n, frozenset(links))

    def layer_links(self, layer: int) -> Tuple[Link, ...]:
        """The express links contributed by one layer (for display)."""
        links = []
        start = 0
        for r in range(1, self.n):
            interior = 1 <= r <= self.n - 2
            connected = interior and self.bits[r - 1, layer]
            if not connected:
                if r - start >= 2:
                    links.append((start, r))
                start = r
        return tuple(links)

    # ------------------------------------------------------------------
    # Moves
    # ------------------------------------------------------------------
    @property
    def num_connection_points(self) -> int:
        return int(self.bits.size)

    def flip(self, row: int, layer: int) -> None:
        """Flip one connection point in place (the SA move)."""
        self.bits[row, layer] = not self.bits[row, layer]

    def flip_diff(
        self, row: int, layer: int
    ) -> Tuple[List[Link], List[Link]]:
        """Layer-link ``(added, removed)`` lists for flipping ``(row,
        layer)`` -- call *before* :meth:`flip`.

        A flip only merges or splits the fused run containing router
        ``row + 1``, so the diff is found by scanning that run's two
        ends instead of re-decoding the layer: O(run length), and the
        basis of the incremental annealing path.
        """
        col = self.bits[:, layer]
        p = row + 1  # router index of the flipped connection point
        s = p - 1
        while s >= 1 and col[s - 1]:
            s -= 1
        e = p + 1
        while e <= self.n - 2 and col[e - 1]:
            e += 1
        inner = []
        if p - s >= 2:
            inner.append((s, p))
        if e - p >= 2:
            inner.append((p, e))
        if col[row]:  # splitting [s, e] at p
            return inner, [(s, e)]
        return [(s, e)], inner  # fusing [s, p] + [p, e]

    def random_move(self, rng=None) -> Tuple[int, int]:
        """Pick a uniformly random connection point to flip."""
        gen = ensure_rng(rng)
        if self.bits.size == 0:
            raise ConfigurationError("matrix has no connection points to flip")
        flat = int(gen.integers(self.bits.size))
        return flat // self.bits.shape[1], flat % self.bits.shape[1]

    def copy(self) -> "ConnectionMatrix":
        return ConnectionMatrix(self.n, self.link_limit, self.bits.copy())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConnectionMatrix):
            return NotImplemented
        return (
            self.n == other.n
            and self.link_limit == other.link_limit
            and bool(np.array_equal(self.bits, other.bits))
        )

    def __str__(self) -> str:
        rows = []
        for layer in range(self.bits.shape[1]):
            marks = "".join("o" if b else "." for b in self.bits[:, layer])
            rows.append(f"layer {layer}: |{marks}|")
        return "\n".join(rows) if rows else "(empty matrix)"


def enumerate_matrices(n: int, link_limit: int) -> Iterator[ConnectionMatrix]:
    """Yield every matrix in the space (exhaustive search support).

    The space has ``2 ** ((n - 2)(C - 1))`` points; callers are expected
    to keep ``n`` and ``C`` small (Section 5.6.3 uses up to
    ``P(8, 4)`` and ``P(16, 2)``).
    """
    shape = ConnectionMatrix.shape(n, link_limit)
    size = shape[0] * shape[1]
    if size > 24:
        raise ConfigurationError(
            f"refusing to enumerate 2^{size} matrices; use the heuristics"
        )
    for code in range(1 << size):
        bits = np.array(
            [(code >> k) & 1 for k in range(size)], dtype=bool
        ).reshape(shape)
        yield ConnectionMatrix(n, link_limit, bits)


def iter_unique_placements(
    n: int,
    link_limit: int,
    block_size: int = 1 << 16,
) -> Iterator[RowPlacement]:
    """Mirror-folded unique placements of the matrix space, in code order.

    The bulk equivalent of ``decode()`` + mirror-fold dedup over
    :func:`enumerate_matrices`: codes are unpacked into bit blocks and
    each layer's fused runs are extracted with vectorized boundary
    detection (a run of 1-bits over interior routers ``a .. b`` is the
    express link ``(a, b + 2)``), so the per-matrix Python work drops
    to the dedup dictionary probe.  Folding uses the same
    lexicographic-minimum rule as
    :meth:`repro.topology.row.RowPlacement.mirror_min_links`, so the
    first matrix of each equivalence class (in enumeration order)
    supplies the representative -- exactly the placements the scalar
    ``decode()`` loop would have kept.  Blocks bound peak memory for
    the largest admissible spaces.
    """
    shape = ConnectionMatrix.shape(n, link_limit)
    size = shape[0] * shape[1]
    if size > 24:
        raise ConfigurationError(
            f"refusing to enumerate 2^{size} matrices; use the heuristics"
        )
    rows, layers = shape
    shifts = np.arange(size, dtype=np.int64)
    last = n - 1
    seen = set()
    for lo in range(0, 1 << size, block_size):
        codes = np.arange(lo, min(lo + block_size, 1 << size), dtype=np.int64)
        count = len(codes)
        bits = ((codes[:, None] >> shifts) & 1).astype(bool).reshape(
            count, rows, layers
        )
        # Encoded links per matrix; (i, j) packs to i * n + j, which
        # preserves lexicographic pair order for the mirror fold below.
        links_of: list = [[] for _ in range(count)]
        padded = np.zeros((count, rows + 2), dtype=bool)
        for layer in range(layers):
            padded[:, 1:-1] = bits[:, :, layer]
            edges = padded[:, 1:].view(np.int8) - padded[:, :-1].view(np.int8)
            # A run starting at bit a and ending at bit b decodes to the
            # link (a, b + 2); starts and ends pair up in row-major order.
            rows_idx, start_bits = np.nonzero(edges == 1)
            end_bits = np.nonzero(edges == -1)[1]
            enc = start_bits * n + (end_bits + 1)
            for row, link in zip(rows_idx.tolist(), enc.tolist()):
                links_of[row].append(link)
        for links in links_of:
            if links:
                # A single layer yields links already sorted (runs are
                # extracted left to right) and duplicate-free; only
                # multi-layer matrices can repeat a link across layers.
                fwd = tuple(links) if layers == 1 else tuple(sorted(set(links)))
                rev = tuple(
                    sorted((last - e % n) * n + (last - e // n) for e in fwd)
                )
                key = min(fwd, rev)
            else:
                key = ()
            if key in seen:
                continue
            seen.add(key)
            # Decoded runs are normalized by construction (i < j,
            # j - i >= 2), so validation can be skipped.
            yield RowPlacement.from_normalized(
                n, frozenset((e // n, e % n) for e in links)
            )
