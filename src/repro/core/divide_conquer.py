"""Divide-and-conquer initial solution -- Procedure ``I(n, C)`` (Sec. 4.4.1).

The initial state handed to simulated annealing matters enormously for
search efficiency (the paper's Figure 7 shows OnlySA needing far more
runtime to reach comparable quality).  Procedure ``I(n, C)``:

1. If the row is small (``n <= 4`` by default), solve exactly by
   enumeration (branch and bound).
2. Otherwise recursively solve the two half-rows with limit ``C - 1``
   (the reserved budget unit pays for step 3's bridging link), then
3. try adding one express link between every left-half/right-half
   router pair, evaluate each combination, and keep the best.

The combination step evaluates ``O(n^2)`` placements, each with the
``O(n^3)`` Floyd-Warshall evaluator, giving the paper's overall
``O(n^5) = O(N^2.5)`` by the master theorem.

Traffic-weighted objectives (Section 5.6.4) are supported: if the
objective exposes ``for_slice(lo, hi)`` the recursion judges each
sub-row by its own slice of the traffic matrix; size-independent
objectives (the default all-pairs one) are reused as-is.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.annealing import MemoizedObjective, Objective
from repro.core.branch_bound import effective_link_limit, exhaustive_matrix_search
from repro.topology.row import RowPlacement


@dataclass(frozen=True)
class InitialSolution:
    """Result of Procedure ``I(n, C)``.

    ``evaluations`` counts unique objective evaluations across the
    whole recursion; the paper's Figure 7 normalizes annealing runtime
    to the evaluation count of ``I(8, 4)`` / ``I(16, 4)``.
    """

    placement: RowPlacement
    energy: float
    evaluations: int
    wall_time_s: float


def _slice_objective(objective: Objective, lo: int, hi: int) -> Objective:
    """Restrict ``objective`` to a sub-row when it supports slicing."""
    for_slice = getattr(objective, "for_slice", None)
    if for_slice is None:
        return objective
    return for_slice(lo, hi)


def initial_solution(
    n: int,
    link_limit: int,
    objective: Objective,
    base_size: int = 4,
) -> InitialSolution:
    """Run Procedure ``I(n, C)`` and return the seed placement."""
    start = time.perf_counter()
    counter = {"evaluations": 0}
    placement = _solve(0, n, effective_link_limit(n, link_limit), objective, base_size, counter)
    limit = effective_link_limit(n, link_limit)
    placement.validate(limit)
    memo = MemoizedObjective(_slice_objective(objective, 0, n))
    energy = memo(placement)
    return InitialSolution(
        placement=placement,
        energy=energy,
        evaluations=counter["evaluations"],
        wall_time_s=time.perf_counter() - start,
    )


def _solve(
    lo: int,
    hi: int,
    link_limit: int,
    objective: Objective,
    base_size: int,
    counter: dict,
) -> RowPlacement:
    """Solve the slice ``[lo, hi)`` of the full row; 0-indexed result."""
    n = hi - lo
    link_limit = effective_link_limit(n, link_limit)
    if link_limit <= 1 or n < 3:
        return RowPlacement.mesh(n)

    memo = MemoizedObjective(_slice_objective(objective, lo, hi))
    try:
        if n <= base_size:
            # Base case: exact enumeration (branch and bound per the paper).
            return exhaustive_matrix_search(n, link_limit, memo).placement

        left_n = (n + 1) // 2
        left = _solve(lo, lo + left_n, link_limit - 1, objective, base_size, counter)
        right = _solve(lo + left_n, hi, link_limit - 1, objective, base_size, counter)
        base = RowPlacement(
            n,
            left.shifted(0, n).express_links
            | right.shifted(left_n, n).express_links,
        )

        best = base  # the bridging local link (left_n - 1, left_n) always exists
        best_energy = memo(base)
        for i in range(left_n):
            for j in range(left_n, n):
                if j - i < 2:
                    continue  # adjacent pair: the local link already bridges
                candidate = base.with_link(i, j)
                if not candidate.satisfies_limit(link_limit):
                    continue
                energy = memo(candidate)
                if energy < best_energy:
                    best_energy = energy
                    best = candidate
        return best
    finally:
        counter["evaluations"] += memo.evaluations
