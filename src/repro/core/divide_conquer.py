"""Divide-and-conquer initial solution -- Procedure ``I(n, C)`` (Sec. 4.4.1).

The initial state handed to simulated annealing matters enormously for
search efficiency (the paper's Figure 7 shows OnlySA needing far more
runtime to reach comparable quality).  Procedure ``I(n, C)``:

1. If the row is small (``n <= 4`` by default), solve exactly by
   enumeration (branch and bound).
2. Otherwise recursively solve the two half-rows with limit ``C - 1``
   (the reserved budget unit pays for step 3's bridging link), then
3. try adding one express link between every left-half/right-half
   router pair, evaluate each combination, and keep the best.

The combination step evaluates ``O(n^2)`` placements, each with the
``O(n^3)`` Floyd-Warshall evaluator, giving the paper's overall
``O(n^5) = O(N^2.5)`` by the master theorem.

Traffic-weighted objectives (Section 5.6.4) are supported: if the
objective exposes ``for_slice(lo, hi)`` the recursion judges each
sub-row by its own slice of the traffic matrix; size-independent
objectives (the default all-pairs one) are reused as-is.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.core.annealing import MemoizedObjective, Objective
from repro.core.branch_bound import (
    DEFAULT_BATCH_SIZE,
    effective_link_limit,
    exhaustive_matrix_search,
)
from repro.obs.instrument import Instrumentation, ensure_obs
from repro.topology.row import RowPlacement

#: Upper bounds for the recursion-depth histogram.
DC_DEPTH_BUCKETS = (1, 2, 3, 4, 6, 8)


@dataclass(frozen=True)
class InitialSolution:
    """Result of Procedure ``I(n, C)``.

    ``evaluations`` counts unique objective evaluations across the
    whole recursion; the paper's Figure 7 normalizes annealing runtime
    to the evaluation count of ``I(8, 4)`` / ``I(16, 4)``.
    """

    placement: RowPlacement
    energy: float
    evaluations: int
    wall_time_s: float


def _slice_objective(objective: Objective, lo: int, hi: int) -> Objective:
    """Restrict ``objective`` to a sub-row when it supports slicing."""
    for_slice = getattr(objective, "for_slice", None)
    if for_slice is None:
        return objective
    return for_slice(lo, hi)


def initial_solution(
    n: int,
    link_limit: int,
    objective: Objective,
    base_size: int = 4,
    obs: Optional[Instrumentation] = None,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> InitialSolution:
    """Run Procedure ``I(n, C)`` and return the seed placement.

    With ``obs`` attached, each recursion node is timed under the
    ``dc.solve`` span and emits a ``dc.node`` event carrying its slice
    and depth; depths also feed a ``dc.depth`` histogram.

    ``batch_size`` controls population batching in the base-case
    enumeration and the combine step (all ``O(n^2)`` bridging
    candidates priced by one Floyd-Warshall stack); ``batch_size=1``
    forces the scalar kernels.  Results are bit-identical either way.
    """
    start = time.perf_counter()
    obs = ensure_obs(obs)
    counter = {"evaluations": 0}
    with obs.span("dc.initial_solution"):
        placement = _solve(
            0, n, effective_link_limit(n, link_limit), objective, base_size,
            counter, obs, depth=0, batch_size=batch_size,
        )
        limit = effective_link_limit(n, link_limit)
        placement.validate(limit)
        memo = MemoizedObjective(_slice_objective(objective, 0, n))
        energy = memo(placement)
    if obs.enabled:
        obs.emit("dc.done", n=n, link_limit=link_limit, energy=energy,
                 evaluations=counter["evaluations"],
                 wall_time_s=time.perf_counter() - start)
    return InitialSolution(
        placement=placement,
        energy=energy,
        evaluations=counter["evaluations"],
        wall_time_s=time.perf_counter() - start,
    )


def _solve(
    lo: int,
    hi: int,
    link_limit: int,
    objective: Objective,
    base_size: int,
    counter: dict,
    obs: Instrumentation,
    depth: int,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> RowPlacement:
    """Solve the slice ``[lo, hi)`` of the full row; 0-indexed result."""
    n = hi - lo
    link_limit = effective_link_limit(n, link_limit)
    if link_limit <= 1 or n < 3:
        return RowPlacement.mesh(n)

    if obs.enabled:
        obs.emit("dc.node", lo=lo, hi=hi, depth=depth, link_limit=link_limit)
    if not obs.is_null:
        obs.metrics.histogram("dc.depth", DC_DEPTH_BUCKETS).observe(depth)

    memo = MemoizedObjective(_slice_objective(objective, lo, hi))
    try:
        if n <= base_size:
            # Base case: exact enumeration (branch and bound per the paper).
            with obs.span("dc.base_case"):
                return exhaustive_matrix_search(
                    n, link_limit, memo, batch_size=batch_size
                ).placement

        left_n = (n + 1) // 2
        left = _solve(lo, lo + left_n, link_limit - 1, objective,
                      base_size, counter, obs, depth + 1, batch_size)
        right = _solve(lo + left_n, hi, link_limit - 1, objective,
                       base_size, counter, obs, depth + 1, batch_size)
        base = RowPlacement(
            n,
            left.shifted(0, n).express_links
            | right.shifted(left_n, n).express_links,
        )

        with obs.span("dc.combine"):
            best = base  # the bridging local link (left_n - 1, left_n) always exists
            candidates = []
            # Adding (i, j) raises cross-sections i .. j-1 by one, so
            # feasibility is arithmetic on the base's counts -- no
            # per-candidate placement rebuild.  (Both halves were
            # solved with limit - 1, so every candidate passes; the
            # check guards the invariant, not the common case.)
            counts = base.cross_section_counts()
            tight = [k for k, c in enumerate(counts) if c + 1 > link_limit]
            for i in range(left_n):
                for j in range(left_n, n):
                    if j - i < 2:
                        continue  # adjacent pair: the local link already bridges
                    if tight and any(i <= k < j for k in tight):
                        continue
                    # (i, j) is normalized by the loop structure and the
                    # base's links are already validated.
                    candidates.append(
                        RowPlacement.from_normalized(
                            n, base.express_links | {(i, j)}
                        )
                    )
            # The base and all O(n^2) bridging candidates share one
            # Floyd-Warshall stack; pricing the base as element 0 and
            # scanning candidates in the original (i, j) order with
            # strict < keeps both the memo's call sequence and the
            # winner identical to the scalar loop.  The batch members
            # differ pairwise by their bridging link, so the
            # objective-level mirror-fold pass is skipped
            # (``folded=True``) -- it could only map a placement to a
            # sibling with the identical energy.
            if batch_size > 1 and candidates:
                batch = memo.evaluate_many([base] + candidates, folded=True)
                best_energy = float(batch[0])
                energies = batch[1:]
            else:
                best_energy = memo(base)
                energies = [memo(candidate) for candidate in candidates]
            for candidate, energy in zip(candidates, energies):
                if energy < best_energy:
                    best_energy = float(energy)
                    best = candidate
        return best
    finally:
        counter["evaluations"] += memo.evaluations
