"""Analytical latency model (Eqs. 1, 2 and 5 of the paper).

The on-chip latency of a packet is

.. math::

    L = L_D + L_S = (H T_r + D_M T_l + H T_c) + S / b

where ``H`` is the hop count, ``T_r`` the router pipeline delay,
``D_M`` the Manhattan distance in unit links (express links are
repeater-segmented, so their delay is proportional to length), ``T_c``
the average per-hop contention, ``S`` the packet size and ``b`` the
link (flit) width.  Under dimension-order routing the average 2D head
latency is exactly twice the 1D row average (Eq. 5), which is what lets
the optimizer work on a single row.

This module provides:

* :class:`PacketMix` -- the multi-size packet population and its
  average serialization latency,
* :class:`BandwidthConfig` -- the bisection-bandwidth budget that ties
  the link limit ``C`` to the flit width ``b = b_base / C`` (Eq. 3),
* :class:`RowObjective` -- the function the search algorithms minimize,
* whole-network summaries (average / worst-case zero-load latency).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.routing.impls import check_impl
from repro.routing.shortest_path import (
    HopCostModel,
    batched_mean_distances,
    directional_distances,
)
from repro.topology.row import RowPlacement
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class PacketMix:
    """A population of packet types ``(size_bits, fraction)``.

    The paper (after [19]) uses long 512-bit packets (read replies /
    write requests) and short 128-bit packets (read requests / write
    acks) in a 1:4 ratio, i.e. fractions 0.2 / 0.8.
    """

    types: Tuple[Tuple[int, float], ...] = ((512, 0.2), (128, 0.8))

    def __post_init__(self) -> None:
        total = sum(frac for _, frac in self.types)
        if not math.isclose(total, 1.0, rel_tol=1e-9):
            raise ConfigurationError(f"packet fractions must sum to 1, got {total}")
        for size, frac in self.types:
            if size <= 0 or frac < 0:
                raise ConfigurationError(f"bad packet type ({size}, {frac})")

    @classmethod
    def paper_default(cls) -> "PacketMix":
        """Long 512b : short 128b at 1:4 (Section 5.1)."""
        return cls()

    @classmethod
    def single(cls, size_bits: int) -> "PacketMix":
        """A degenerate mix with one packet size (useful in tests)."""
        return cls(types=((size_bits, 1.0),))

    def serialization_cycles(self, flit_bits: int) -> float:
        """Average ``L_S`` in cycles for flit width ``flit_bits``.

        A packet of ``S`` bits occupies ``ceil(S / b)`` flits; the tail
        flit arrives ``ceil(S / b)`` cycles after the head starts
        transmitting, so the average serialization latency is the
        mix-weighted flit count.
        """
        if flit_bits <= 0:
            raise ConfigurationError(f"flit width must be positive, got {flit_bits}")
        return sum(frac * math.ceil(size / flit_bits) for size, frac in self.types)

    def flits_per_packet(self, flit_bits: int) -> Dict[int, int]:
        """Map packet size -> flit count at the given width."""
        return {size: math.ceil(size / flit_bits) for size, _ in self.types}

    def average_size_bits(self) -> float:
        """Mix-weighted mean packet size."""
        return sum(size * frac for size, frac in self.types)

    def sizes(self) -> Tuple[int, ...]:
        return tuple(size for size, _ in self.types)

    def fractions(self) -> Tuple[float, ...]:
        return tuple(frac for _, frac in self.types)


@dataclass(frozen=True)
class BandwidthConfig:
    """Bisection-bandwidth budget and the resulting flit widths (Eq. 3).

    ``base_flit_bits`` is the link width when ``C = 1`` (the plain
    mesh); with ``C`` links per cross-section each link narrows to
    ``base_flit_bits / C`` so that ``b * C * n`` stays within the
    budget.  The paper's default is a 256-bit baseline flit.
    """

    base_flit_bits: int = 256

    def __post_init__(self) -> None:
        b = self.base_flit_bits
        if b <= 0 or (b & (b - 1)) != 0:
            raise ConfigurationError(
                f"base flit width must be a positive power of two, got {b}"
            )

    @classmethod
    def from_bisection(cls, bits_per_cycle: int, n: int) -> "BandwidthConfig":
        """Budget given as total bisection bits/cycle for an ``n x n`` mesh.

        The bisection cut crosses ``n`` bidirectional links, i.e.
        ``2 n`` unidirectional channels, so ``b_base = B / (2 n)``.
        At 1 GHz, bits/cycle equals Gb/s: the paper's 2 KGb/s and
        8 KGb/s cases for the 8x8 network are 128-bit and 512-bit
        baseline flits.
        """
        base = bits_per_cycle // (2 * n)
        return cls(base_flit_bits=base)

    def flit_bits(self, link_limit: int) -> int:
        """Flit width ``b`` at cross-section link limit ``C``."""
        if link_limit <= 0:
            raise ConfigurationError(f"link limit must be positive, got {link_limit}")
        if self.base_flit_bits % link_limit != 0:
            raise ConfigurationError(
                f"link limit {link_limit} does not divide base flit "
                f"width {self.base_flit_bits}"
            )
        return self.base_flit_bits // link_limit

    def valid_link_limits(self, n: int) -> Tuple[int, ...]:
        """All feasible ``C`` values for an ``n x n`` mesh (Section 4.1).

        Powers of two from 1 up to ``C_full = n^2 / 4`` (full row
        connectivity) that still leave at least a 1-bit flit.
        """
        c_full = full_connectivity_limit(n)
        limits = []
        c = 1
        while c <= c_full and self.base_flit_bits % c == 0 and self.base_flit_bits // c >= 1:
            limits.append(c)
            c *= 2
        return tuple(limits)


def full_connectivity_limit(n: int) -> int:
    """``C_full = (n/2) * (n/2)`` -- Eq. 4, the largest useful ``C``.

    A fully-connected row needs ``floor(n/2) * ceil(n/2)`` links at its
    middle cross-section (every router on one side connects to every
    router on the other side).
    """
    return (n // 2) * ((n + 1) // 2)


# ----------------------------------------------------------------------
# Row-level head-latency evaluation
# ----------------------------------------------------------------------

def row_head_latency_matrix(
    placement: RowPlacement,
    cost: HopCostModel | None = None,
    impl: str = "vectorized",
) -> np.ndarray:
    """All-pairs zero-load head latency within one row.

    ``impl`` forwards to
    :func:`~repro.routing.shortest_path.directional_distances`
    (``"vectorized"`` or the pure-Python ``"reference"`` oracle).
    """
    return directional_distances(placement, cost, impl=impl)


def mean_row_head_latency(
    placement: RowPlacement,
    cost: HopCostModel | None = None,
    weights: np.ndarray | None = None,
    impl: str = "vectorized",
) -> float:
    """Average row head latency ``L_D,r`` of Eq. 5.

    Averaged over all ``n * n`` ordered pairs including ``i == j``
    (which contribute zero), matching the normalization of Eq. 2.  With
    ``weights`` (an ``n x n`` nonnegative matrix) the average is
    traffic-weighted as in Section 5.6.4.
    """
    dist = row_head_latency_matrix(placement, cost, impl=impl)
    if weights is None:
        return float(dist.mean())
    w = np.asarray(weights, dtype=float)
    if w.shape != dist.shape:
        raise ConfigurationError(f"weights shape {w.shape} != {dist.shape}")
    total = w.sum()
    if total <= 0:
        raise ConfigurationError("weights must have positive sum")
    return float((dist * w).sum() / total)


def mesh_average_head_latency_2d(
    placement: RowPlacement,
    cost: HopCostModel | None = None,
) -> float:
    """Average 2D head latency when ``placement`` fills rows and columns.

    By Eq. 5 with identical rows and columns this is exactly twice the
    1D row average.
    """
    return 2.0 * mean_row_head_latency(placement, cost)


def worst_case_head_latency_2d(
    placement: RowPlacement,
    cost: HopCostModel | None = None,
) -> float:
    """Maximum zero-load head latency between any 2D router pair.

    The X and Y path components are independent under DOR, so the 2D
    maximum is the sum of the row maximum and the column maximum
    (identical placements => twice the row maximum).  Used for Table 2.
    """
    dist = row_head_latency_matrix(placement, cost)
    return 2.0 * float(dist.max())


@dataclass(frozen=True)
class RowObjective:
    """The quantity minimized when solving ``P~(n, C)``.

    For a fixed link limit the serialization term is constant, so the
    objective is the (optionally traffic-weighted) mean row head
    latency.  Instances are cheap, immutable, and safe to share between
    search algorithms.

    ``obs`` (excluded from equality/hash) attaches an
    :class:`~repro.obs.Instrumentation`: every evaluation is then timed
    under the ``latency.floyd_warshall`` span, which is how a profiled
    run attributes optimizer wall time to the O(n^3) evaluator.

    ``impl`` picks the Floyd-Warshall implementation (``"vectorized"``
    default, ``"reference"`` for the pure-Python oracle, ``"native"``
    for the compiled tier of :mod:`repro.routing.native`); the
    cross-impl parity suite guarantees all tiers produce the same
    energies, so searches are trajectory-identical under any of them.
    Constructing a ``"native"`` objective warms the backend up
    immediately (JIT compile / shared-object load, once per process)
    so the cost lands *outside* the ``latency.floyd_warshall`` span --
    reported instead through the ``kernel.compile`` obs event.
    """

    cost: HopCostModel = HopCostModel()
    weights: Tuple[Tuple[float, ...], ...] | None = None
    impl: str = "vectorized"
    obs: Optional[object] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        check_impl(self.impl)
        if self.impl == "native":
            from repro.routing import native

            native.warmup(self.obs)

    def __call__(self, placement: RowPlacement) -> float:
        if self.obs is None:
            return self._evaluate(placement)
        with self.obs.span("latency.floyd_warshall"):
            return self._evaluate(placement)

    def _evaluate(self, placement: RowPlacement) -> float:
        w = None if self.weights is None else np.asarray(self.weights, dtype=float)
        if w is not None and w.sum() <= 0:
            # A slice with no traffic: fall back to the unweighted mean
            # so searches on it remain well defined.
            w = None
        return mean_row_head_latency(placement, self.cost, w, impl=self.impl)

    def evaluate_many(self, placements, folded: bool = False) -> np.ndarray:
        """Price a whole population in one batched Floyd-Warshall pass.

        Returns ``energies`` with ``energies[i] == self(placements[i])``
        bit for bit.  Duplicate placements (by ``canonical_bytes``) are
        priced once; when the objective is mirror-invariant
        (unweighted) *and* the hop-cost parameters are integral -- so
        distances are exact integers and the reversed relaxation order
        cannot shift a single bit -- a placement and its mirror image
        also share one kernel slice (mirror-fold dedup).
        ``folded=True`` asserts the batch already consists of
        pairwise-distinct mirror-fold representatives (the exact
        enumerators guarantee this) and skips the dedup pass -- the
        fold would map every placement to itself, so the energies are
        unchanged.  Under ``impl="reference"`` the population is priced
        by the pure-Python oracle one placement at a time, preserving
        the oracle contract at scalar speed.
        """
        placements = list(placements)
        if not placements:
            return np.empty(0, dtype=float)
        if self.obs is None:
            return self._evaluate_many(placements, folded)
        with self.obs.span("latency.floyd_warshall"):
            return self._evaluate_many(placements, folded)

    def _mirror_fold_safe(self) -> bool:
        c = self.cost
        return (
            float(c.router_delay).is_integer()
            and float(c.unit_link_delay).is_integer()
            and float(c.contention_delay).is_integer()
        )

    def _evaluate_many(self, placements, folded: bool = False) -> np.ndarray:
        if self.impl == "reference":
            return np.asarray([self._evaluate(p) for p in placements], dtype=float)
        w = None if self.weights is None else np.asarray(self.weights, dtype=float)
        if w is not None and w.sum() <= 0:
            w = None
        if folded:
            return batched_mean_distances(placements, self.cost, w, impl=self.impl)
        fold = w is None and self._mirror_fold_safe()
        keys = [
            p.mirror_fold_bytes() if fold else p.canonical_bytes()
            for p in placements
        ]
        representatives: dict = {}
        for placement, key in zip(placements, keys):
            if key not in representatives:
                representatives[key] = placement
        energies = batched_mean_distances(
            list(representatives.values()), self.cost, w, impl=self.impl
        )
        by_key = dict(zip(representatives.keys(), energies.tolist()))
        return np.asarray([by_key[key] for key in keys], dtype=float)

    def for_slice(self, lo: int, hi: int) -> "RowObjective":
        """The objective restricted to routers ``lo .. hi - 1``.

        Used by the divide-and-conquer recursion: a sub-row's quality
        is judged by the traffic between its own routers (the boundary
        -crossing traffic is handled by the combine step's bridging
        link).  For the unweighted objective this is the objective
        itself, which is size-independent.
        """
        if self.weights is None:
            return self
        w = np.asarray(self.weights, dtype=float)[lo:hi, lo:hi]
        return RowObjective(
            cost=self.cost,
            weights=tuple(map(tuple, w.tolist())),
            impl=self.impl,
            obs=self.obs,
        )

    def incremental_evaluator(
        self, placement: RowPlacement
    ) -> "IncrementalRowEvaluator":
        """An engine-backed evaluator seeded at ``placement``.

        The returned evaluator prices single-link changes in O(n^2)
        (see :mod:`repro.routing.incremental`) and produces energies
        equal to ``self(placement)``; under exactly-representable hop
        costs (the integral defaults) they are bitwise-identical, which
        is what the annealer's drift self-check asserts.
        """
        return IncrementalRowEvaluator(self, placement)


class IncrementalRowEvaluator:
    """Incremental counterpart of :class:`RowObjective`.

    Wraps an :class:`~repro.routing.incremental.IncrementalApspEngine`
    (exposed as ``.engine`` for checkpoint/apply/rollback) and mirrors
    the objective's energy formula -- including the weighted variant
    and its zero-traffic fallback -- term for term, so the two paths
    agree bit-for-bit whenever the engine's distances match the full
    solver's.
    """

    def __init__(self, objective: RowObjective, placement: RowPlacement):
        from repro.routing.incremental import IncrementalApspEngine

        self.objective = objective
        self.engine = IncrementalApspEngine(
            placement, objective.cost, impl=objective.impl
        )
        w = (
            None
            if objective.weights is None
            else np.asarray(objective.weights, dtype=float)
        )
        if w is not None and w.sum() <= 0:
            w = None
        if w is not None and w.shape != (placement.n, placement.n):
            raise ConfigurationError(
                f"weights shape {w.shape} != {(placement.n, placement.n)}"
            )
        self._w = w
        self._total = None if w is None else w.sum()

    def energy(self) -> float:
        if self._w is None:
            return self.engine.mean_distance()
        dist = self.engine.distances()
        return float((dist * self._w).sum() / self._total)


# ----------------------------------------------------------------------
# Whole-network latency summaries
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class LatencyBreakdown:
    """Average latency split into its Eq. 2 components."""

    head: float
    serialization: float

    @property
    def total(self) -> float:
        return self.head + self.serialization


def network_average_latency(
    placement: RowPlacement,
    link_limit: int,
    bandwidth: BandwidthConfig | None = None,
    mix: PacketMix | None = None,
    cost: HopCostModel | None = None,
) -> LatencyBreakdown:
    """Average 2D packet latency ``L_avg = L_D,avg + L_S,avg`` (Eq. 2).

    ``placement`` must satisfy ``link_limit``; the flit width is derived
    from the bandwidth budget.
    """
    bandwidth = bandwidth or BandwidthConfig()
    mix = mix or PacketMix.paper_default()
    placement.validate(link_limit)
    head = mesh_average_head_latency_2d(placement, cost)
    ser = mix.serialization_cycles(bandwidth.flit_bits(link_limit))
    return LatencyBreakdown(head=head, serialization=ser)


def network_worst_case_latency(
    placement: RowPlacement,
    link_limit: int,
    bandwidth: BandwidthConfig | None = None,
    mix: PacketMix | None = None,
    cost: HopCostModel | None = None,
) -> float:
    """Maximum zero-load packet latency (Table 2): worst pair + longest packet."""
    bandwidth = bandwidth or BandwidthConfig()
    mix = mix or PacketMix.paper_default()
    b = bandwidth.flit_bits(link_limit)
    worst_ser = max(math.ceil(size / b) for size in mix.sizes())
    return worst_case_head_latency_2d(placement, cost) + worst_ser
