"""The naive SA candidate generator the paper argues against (Sec. 4.4.2).

    "A naive generator adds, deletes, stretches, or shortens a randomly
    selected link in each move.  However, a new candidate solution
    generated this way is highly likely to fall out of the feasible
    solution space."

This module implements exactly that baseline so the claim can be
measured: moves operate on the express-link set directly, and any move
that violates the cross-section limit is *rejected* (wasting the
attempt, as in the paper's argument).  The ablation benchmark compares
its progress per move against the connection-matrix SA, which never
generates an invalid candidate.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.annealing import AnnealingParams, MemoizedObjective, Objective
from repro.topology.row import RowPlacement
from repro.util.rngtools import ensure_rng


@dataclass
class NaiveAnnealingResult:
    """Outcome of a naive-move annealing run."""

    best_placement: RowPlacement
    best_energy: float
    initial_energy: float
    evaluations: int
    proposed_moves: int
    invalid_moves: int
    accepted_moves: int
    wall_time_s: float
    trace: List[Tuple[int, float]] = field(default_factory=list)

    @property
    def invalid_fraction(self) -> float:
        """Share of proposed moves that violated the constraints."""
        if self.proposed_moves == 0:
            return 0.0
        return self.invalid_moves / self.proposed_moves


def _propose(placement: RowPlacement, limit: int, rng) -> Optional[RowPlacement]:
    """One naive move: add, delete, stretch, or shorten a random link.

    Returns the candidate placement, or ``None`` when the move is
    invalid (constraint violation or structurally impossible) -- the
    paper's wasted attempt.
    """
    n = placement.n
    kind = int(rng.integers(4))
    links = sorted(placement.express_links)

    if kind == 0:  # add a random link
        i = int(rng.integers(n))
        j = int(rng.integers(n))
        if abs(i - j) < 2:
            return None
        candidate = placement.with_link(i, j)
    elif kind == 1:  # delete a random link
        if not links:
            return None
        i, j = links[int(rng.integers(len(links)))]
        candidate = placement.without_link(i, j)
    else:  # stretch or shorten one endpoint of a random link
        if not links:
            return None
        i, j = links[int(rng.integers(len(links)))]
        delta = 1 if kind == 2 else -1
        if int(rng.integers(2)):  # move the right endpoint
            new = (i, j + delta)
        else:
            new = (i - delta, j)
        a, b = min(new), max(new)
        if a < 0 or b >= n or b - a < 2:
            return None
        candidate = placement.without_link(i, j).with_link(a, b)

    if not candidate.satisfies_limit(limit):
        return None
    return candidate


def naive_anneal(
    n: int,
    link_limit: int,
    objective: Objective,
    params: AnnealingParams | None = None,
    rng=None,
    initial: RowPlacement | None = None,
    max_evaluations: Optional[int] = None,
    trace_every: int = 1,
) -> NaiveAnnealingResult:
    """Simulated annealing with the naive link-move generator.

    Identical schedule and acceptance rule to :func:`repro.core.
    annealing.anneal`; only the move generator differs.  Invalid
    proposals consume a move (they are real wasted work in the naive
    scheme) but no objective evaluation.
    """
    params = params or AnnealingParams()
    gen = ensure_rng(rng)
    memo = MemoizedObjective(objective)
    start = time.perf_counter()

    current = initial if initial is not None else RowPlacement.mesh(n)
    current.validate(link_limit)
    current_energy = memo(current)
    best, best_energy = current, current_energy
    initial_energy = current_energy
    trace: List[Tuple[int, float]] = [(memo.evaluations, best_energy)]
    invalid = accepted = 0

    for move in range(params.total_moves):
        if max_evaluations is not None and memo.evaluations >= max_evaluations:
            break
        candidate = _propose(current, link_limit, gen)
        if candidate is None:
            invalid += 1
            continue
        energy = memo(candidate)
        delta = energy - current_energy
        if delta <= 0 or gen.random() < math.exp(-delta / params.temperature(move)):
            current, current_energy = candidate, energy
            accepted += 1
            if energy < best_energy:
                best, best_energy = candidate, energy
        if move % trace_every == 0:
            trace.append((memo.evaluations, best_energy))

    trace.append((memo.evaluations, best_energy))
    return NaiveAnnealingResult(
        best_placement=best,
        best_energy=best_energy,
        initial_energy=initial_energy,
        evaluations=memo.evaluations,
        proposed_moves=params.total_moves if max_evaluations is None else move + 1,
        invalid_moves=invalid,
        accepted_moves=accepted,
        wall_time_s=time.perf_counter() - start,
        trace=trace,
    )
