"""Top-level express-link placement optimizer (Section 4 entry point).

The overall flow of the paper: for every feasible cross-section limit
``C`` (Section 4.1), solve the one-dimensional placement problem
``P~(n, C)`` that minimizes average head latency, add the serialization
latency implied by the flit width ``b = b_base / C``, and keep the
``C`` whose total is lowest.

Three solving methods are exposed:

* ``"dc_sa"``   -- the paper's proposal: divide-and-conquer initial
  solution + simulated annealing (D&C_SA),
* ``"only_sa"`` -- simulated annealing from a random matrix (OnlySA),
* ``"exact"``   -- exhaustive optimal (small instances only).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from repro.api import PlacementResult, SearchConfig, reject_legacy_kwargs
from repro.core.annealing import (
    AnnealingParams,
    AnnealingResult,
    Objective,
    anneal,
)
from repro.core.branch_bound import (
    ExactResult,
    effective_link_limit,
    exhaustive_matrix_search,
)
from repro.core.connection_matrix import ConnectionMatrix
from repro.core.divide_conquer import InitialSolution, initial_solution
from repro.core.latency import (
    BandwidthConfig,
    LatencyBreakdown,
    PacketMix,
    RowObjective,
    network_average_latency,
)
from repro.obs.instrument import Instrumentation, ensure_obs
from repro.routing.shortest_path import HopCostModel
from repro.topology.row import RowPlacement
from repro.util.errors import ConfigurationError
from repro.util.rngtools import ensure_rng

#: Recognized solver names.
METHODS = ("dc_sa", "only_sa", "exact")


@dataclass(frozen=True)
class RowSolution:
    """Solution of one ``P~(n, C)`` instance."""

    n: int
    link_limit: int
    placement: RowPlacement
    energy: float
    method: str
    evaluations: int
    wall_time_s: float
    annealing: Optional[AnnealingResult] = None
    seed_solution: Optional[InitialSolution] = None
    exact: Optional[ExactResult] = None


@dataclass(frozen=True)
class DesignPoint:
    """A fully-costed design: placement + latency breakdown (Eq. 2)."""

    n: int
    link_limit: int
    flit_bits: int
    placement: RowPlacement
    latency: LatencyBreakdown

    @property
    def total_latency(self) -> float:
        return self.latency.total


@dataclass
class SweepResult:
    """Outcome of the full ``C`` sweep for one network size.

    ``restarts`` / ``jobs`` / ``chains`` record how the sweep was
    executed (all 1 for the legacy sequential path); ``restart_energies``
    maps each ``C`` to the per-restart final energies, in restart
    order, when the multi-restart engine ran.
    """

    n: int
    method: str
    points: Dict[int, DesignPoint] = field(default_factory=dict)
    solutions: Dict[int, RowSolution] = field(default_factory=dict)
    restarts: int = 1
    jobs: int = 1
    chains: int = 1
    restart_energies: Dict[int, Tuple[float, ...]] = field(default_factory=dict)

    @property
    def best(self) -> DesignPoint:
        """The design point with the lowest total average latency."""
        return min(self.points.values(), key=lambda p: p.total_latency)

    def latency_curve(self) -> Tuple[Tuple[int, float], ...]:
        """``(C, total latency)`` pairs sorted by ``C`` (Figure 5 series)."""
        return tuple(sorted((c, p.total_latency) for c, p in self.points.items()))


def solve_row_problem(
    n: int,
    link_limit: int,
    method: str = "dc_sa",
    objective: Objective | None = None,
    params: AnnealingParams | None = None,
    obs: Optional[Instrumentation] = None,
    config: Optional[SearchConfig] = None,
    warm_start: Optional[RowPlacement] = None,
    **legacy,
) -> PlacementResult:
    """Solve ``P~(n, C)`` and return a :class:`~repro.api.PlacementResult`.

    Execution knobs arrive in ``config`` (a
    :class:`~repro.api.SearchConfig`); with ``restarts``/``jobs`` > 1
    the solve routes to the multi-restart engine and returns its
    winning chain; with ``config.space`` set to a mesh space it routes
    to :func:`~repro.core.search_space.solve_space`.  The raw engine
    object stays reachable as ``result.solution``.

    ``warm_start`` (row space only) is the design cache's neighbor
    seam: the placement is clipped to the requested limit
    (:meth:`~repro.topology.row.RowPlacement.clipped_to_limit`),
    priced once *after* the cold solve, and kept only if strictly
    better.  The cold trajectory is untouched, so a warm-started solve
    is never worse than the cold one at the same seed and budget.

    ``obs`` flows into the D&C seeder, the annealer and (when no
    explicit ``objective`` is given) the Floyd-Warshall evaluator, so a
    single :class:`~repro.obs.Instrumentation` observes the whole
    solve.
    """
    reject_legacy_kwargs("solve_row_problem", legacy)
    config = config or SearchConfig()
    if config.space != "row":
        from repro.core.search_space import solve_space

        if warm_start is not None:
            raise ConfigurationError(
                "warm_start is row-space only; mesh-space solves take "
                "no neighbor candidate"
            )
        # objective, if given, must be a MeshObjective in these spaces;
        # None builds one from the config like the row path does.
        return PlacementResult.from_solution(solve_space(
            n, link_limit, config.space, method=method,
            objective=objective, params=params, obs=obs, config=config,
        ), config)
    if config.parallel:
        from repro.core.parallel import parallel_row_search

        # Workers rebuild the objective from picklable parts; arbitrary
        # callables cannot cross the pool boundary.
        cost = weights = None
        impl = config.impl
        if isinstance(objective, RowObjective):
            cost, weights, impl = objective.cost, objective.weights, objective.impl
        elif objective is not None:
            raise ConfigurationError(
                "parallel solve_row_problem supports RowObjective (or None); "
                f"got {type(objective).__name__}"
            )
        solution, _ = parallel_row_search(
            n, link_limit, method=method, params=params,
            cost=cost, weights=weights, impl=impl,
            base_seed=config.seed,
            max_evaluations=config.max_evaluations,
            restarts=config.effective_restarts, jobs=config.jobs,
            chains=config.chains,
            incremental=config.incremental,
            resync_every=config.resync_every, obs=obs,
        )
        if warm_start is not None:
            kwargs = {} if cost is None else {"cost": cost}
            if weights is not None:
                kwargs["weights"] = weights
            solution = inject_warm_candidate(
                solution, warm_start, RowObjective(impl=impl, **kwargs)
            )
        return PlacementResult.from_solution(solution, config)
    solution = _solve_row(
        n, link_limit, method=method, objective=objective,
        params=params, rng=config.seed,
        max_evaluations=config.max_evaluations, obs=obs,
        progress_every=config.metrics_every, impl=config.impl,
        incremental=config.incremental,
        resync_every=config.resync_every,
    )
    if warm_start is not None:
        pricing = objective if objective is not None else RowObjective(impl=config.impl)
        solution = inject_warm_candidate(solution, warm_start, pricing)
    return PlacementResult.from_solution(solution, config)


def inject_warm_candidate(
    solution: RowSolution,
    warm_start: RowPlacement,
    objective: Objective,
) -> RowSolution:
    """Post-solve candidate injection: the warm-start guarantee.

    Clips ``warm_start`` to the solution's effective limit, prices it
    once, and returns a solution with the candidate swapped in iff it
    is strictly better.  Composing with an unchanged cold solve gives
    ``energy_warm == min(energy_cold, energy_candidate) <=
    energy_cold`` -- the "never worse than cold at the same seed and
    budget" property the cache-semantics suite pins, deterministic
    rather than statistical because the SA trajectory and its RNG
    stream are untouched.
    """
    if warm_start.n != solution.n:
        raise ConfigurationError(
            f"warm_start is for n={warm_start.n}, solve is n={solution.n}"
        )
    limit = effective_link_limit(solution.n, solution.link_limit)
    candidate = warm_start.clipped_to_limit(limit)
    energy = objective(candidate)
    evaluations = solution.evaluations + 1
    if energy < solution.energy:
        return replace(
            solution, placement=candidate, energy=energy,
            evaluations=evaluations,
        )
    return replace(solution, evaluations=evaluations)


def _solve_row(
    n: int,
    link_limit: int,
    *,
    method: str = "dc_sa",
    objective: Objective | None = None,
    params: AnnealingParams | None = None,
    rng=None,
    max_evaluations: Optional[int] = None,
    obs: Optional[Instrumentation] = None,
    progress_every: int = 0,
    impl: str = "vectorized",
    incremental: bool = False,
    resync_every: int = 1_000,
) -> RowSolution:
    """Single-chain ``P~(n, C)`` solve (internal: no shim, ``rng`` may
    be a shared generator)."""
    if method not in METHODS:
        raise ConfigurationError(f"unknown method {method!r}; expected one of {METHODS}")
    obs = ensure_obs(obs)
    if objective is None:
        objective = RowObjective(impl=impl, obs=None if obs.is_null else obs)
    params = params or AnnealingParams()
    gen = ensure_rng(rng)
    limit = effective_link_limit(n, link_limit)
    start = time.perf_counter()
    if obs.enabled:
        obs.emit("solve.start", n=n, link_limit=link_limit, method=method)

    if method == "exact":
        with obs.span("solve.exact"):
            exact = exhaustive_matrix_search(n, limit, objective)
        return RowSolution(
            n=n,
            link_limit=link_limit,
            placement=exact.placement,
            energy=exact.energy,
            method=method,
            evaluations=exact.evaluations,
            wall_time_s=time.perf_counter() - start,
            exact=exact,
        )

    seed: Optional[InitialSolution] = None
    if method == "dc_sa":
        seed = initial_solution(n, limit, objective, obs=obs)
        matrix = ConnectionMatrix.from_placement(seed.placement, limit)
    else:  # only_sa
        matrix = ConnectionMatrix.random(n, limit, gen)

    with obs.span("solve.anneal"):
        sa = anneal(
            matrix,
            objective,
            params=params,
            rng=gen,
            max_evaluations=max_evaluations,
            obs=obs,
            progress_every=progress_every,
            incremental=incremental,
            resync_every=resync_every,
        )
    placement, energy = sa.best_placement, sa.best_energy
    if seed is not None and seed.energy < energy:
        placement, energy = seed.placement, seed.energy
    evaluations = sa.evaluations + (seed.evaluations if seed else 0)
    return RowSolution(
        n=n,
        link_limit=link_limit,
        placement=placement,
        energy=energy,
        method=method,
        evaluations=evaluations,
        wall_time_s=time.perf_counter() - start,
        annealing=sa,
        seed_solution=seed,
    )


def design_point(
    placement: RowPlacement,
    link_limit: int,
    bandwidth: BandwidthConfig | None = None,
    mix: PacketMix | None = None,
    cost: HopCostModel | None = None,
) -> DesignPoint:
    """Cost a placement at a given link limit into a :class:`DesignPoint`."""
    bandwidth = bandwidth or BandwidthConfig()
    mix = mix or PacketMix.paper_default()
    breakdown = network_average_latency(placement, link_limit, bandwidth, mix, cost)
    return DesignPoint(
        n=placement.n,
        link_limit=link_limit,
        flit_bits=bandwidth.flit_bits(link_limit),
        placement=placement,
        latency=breakdown,
    )


@dataclass(frozen=True)
class RectDesignPoint:
    """A costed rectangular design (library extension beyond the paper).

    The 2D -> 1D reduction holds for any ``width x height`` mesh under
    XY routing; with identical rows and identical columns the average
    head latency is the row average plus the column average (the square
    case's ``2x`` is the special case ``width == height``).
    """

    width: int
    height: int
    link_limit: int
    flit_bits: int
    row_placement: RowPlacement
    col_placement: RowPlacement
    head_latency: float
    serialization: float

    @property
    def total_latency(self) -> float:
        return self.head_latency + self.serialization


def optimize_rectangular(
    width: int,
    height: int,
    method: str = "dc_sa",
    bandwidth: BandwidthConfig | None = None,
    mix: PacketMix | None = None,
    cost: HopCostModel | None = None,
    params: AnnealingParams | None = None,
    rng=None,
    link_limits: Optional[Tuple[int, ...]] = None,
) -> Dict[int, RectDesignPoint]:
    """Sweep ``C`` on a rectangular mesh; one 1D solve per dimension.

    Returns a map ``C -> RectDesignPoint``; the caller picks the best
    by ``total_latency`` (see :func:`best_rectangular`).
    """
    from repro.core.latency import mean_row_head_latency

    bandwidth = bandwidth or BandwidthConfig()
    mix = mix or PacketMix.paper_default()
    cost = cost or HopCostModel()
    gen = ensure_rng(rng)
    # Limits beyond the smaller dimension's full connectivity are
    # clamped inside each solve, so sweeping up to the larger
    # dimension's C_full covers every distinct design.
    limits = tuple(link_limits or bandwidth.valid_link_limits(max(width, height)))

    objective = RowObjective(cost=cost)
    points: Dict[int, RectDesignPoint] = {}
    for limit in limits:
        solved: Dict[int, RowPlacement] = {}
        for dim in {width, height}:
            if limit == 1 or dim < 3:
                solved[dim] = RowPlacement.mesh(dim)
            else:
                solved[dim] = _solve_row(
                    dim, limit, method=method, objective=objective,
                    params=params, rng=gen,
                ).placement
        row, col = solved[width], solved[height]
        head = mean_row_head_latency(row, cost) + mean_row_head_latency(col, cost)
        points[limit] = RectDesignPoint(
            width=width,
            height=height,
            link_limit=limit,
            flit_bits=bandwidth.flit_bits(limit),
            row_placement=row,
            col_placement=col,
            head_latency=head,
            serialization=mix.serialization_cycles(bandwidth.flit_bits(limit)),
        )
    return points


def best_rectangular(points: Dict[int, "RectDesignPoint"]) -> "RectDesignPoint":
    """The rectangular design point with the lowest total latency."""
    return min(points.values(), key=lambda p: p.total_latency)


def optimize(
    n: int,
    method: str = "dc_sa",
    bandwidth: BandwidthConfig | None = None,
    mix: PacketMix | None = None,
    cost: HopCostModel | None = None,
    params: AnnealingParams | None = None,
    link_limits: Optional[Tuple[int, ...]] = None,
    obs: Optional[Instrumentation] = None,
    config: Optional[SearchConfig] = None,
    warm_start: Optional[RowPlacement] = None,
    **legacy,
) -> PlacementResult:
    """Full optimization: sweep ``C``, solve each ``P~(n, C)``, cost them.

    Returns the winning design as a frozen
    :class:`~repro.api.PlacementResult` -- the paper's final answer for
    this network; the raw sweep with every design point (the Figure 5
    curves) stays reachable as ``result.sweep``.  ``obs`` observes
    every per-``C`` solve through one instrumentation context.

    Execution knobs arrive in ``config`` (a
    :class:`~repro.api.SearchConfig`).  With ``restarts``/``jobs`` > 1
    the sweep routes to the multi-restart engine
    (:mod:`repro.core.parallel`): independent SA chains per ``C`` with
    per-``(C, restart)`` derived seeds, best chain kept, results
    bit-identical across all ``jobs`` values for a fixed seed.
    Otherwise the sequential path runs: one chain per ``C``, all fed
    from a single shared stream seeded by ``config.seed``.  With
    ``config.space`` set to a mesh space the sweep routes to
    :func:`~repro.core.search_space.optimize_space`.

    ``warm_start`` (row space only) injects a cached neighbor design as
    a post-solve candidate at every ``C``
    (:func:`inject_warm_candidate`): trajectories are untouched, so the
    result is never worse than the cold sweep at the same seed.

    The pre-redesign keywords (``rng``, ``restarts``, ``jobs``, ...)
    now raise :class:`TypeError` with migration hints; see
    ``docs/api.md``.
    """
    reject_legacy_kwargs("optimize", legacy)
    config = config or SearchConfig()
    start = time.perf_counter()
    if config.space != "row":
        from repro.core.search_space import optimize_space

        if warm_start is not None:
            raise ConfigurationError(
                "warm_start is row-space only; mesh-space sweeps take "
                "no neighbor candidate"
            )
        sweep = optimize_space(
            n, config.space, method=method, bandwidth=bandwidth, mix=mix,
            cost=cost, params=params, link_limits=link_limits, obs=obs,
            config=config,
        )
        return PlacementResult.from_sweep(
            sweep, config, time.perf_counter() - start
        )
    if config.parallel:
        from repro.core.parallel import parallel_sweep

        sweep = parallel_sweep(
            n,
            method=method,
            bandwidth=bandwidth,
            mix=mix,
            cost=cost,
            params=params,
            base_seed=config.seed,
            link_limits=link_limits,
            max_evaluations=config.max_evaluations,
            restarts=config.effective_restarts,
            jobs=config.jobs,
            chains=config.chains,
            impl=config.impl,
            incremental=config.incremental,
            resync_every=config.resync_every,
            obs=obs,
        )
        if warm_start is not None:
            _inject_warm_into_sweep(sweep, warm_start, config.impl,
                                    bandwidth, mix, cost)
        return PlacementResult.from_sweep(
            sweep, config, time.perf_counter() - start
        )
    bandwidth = bandwidth or BandwidthConfig()
    mix = mix or PacketMix.paper_default()
    cost = cost or HopCostModel()
    gen = ensure_rng(config.seed)
    obs = ensure_obs(obs)
    limits = link_limits or bandwidth.valid_link_limits(n)
    objective = RowObjective(
        cost=cost, impl=config.impl, obs=None if obs.is_null else obs
    )

    result = SweepResult(n=n, method=method)
    for limit in limits:
        if limit == 1:
            solution = RowSolution(
                n=n,
                link_limit=1,
                placement=RowPlacement.mesh(n),
                energy=objective(RowPlacement.mesh(n)),
                method=method,
                evaluations=1,
                wall_time_s=0.0,
            )
        else:
            solution = _solve_row(
                n,
                limit,
                method=method,
                objective=objective,
                params=params,
                rng=gen,
                max_evaluations=config.max_evaluations,
                obs=obs,
                incremental=config.incremental,
                resync_every=config.resync_every,
            )
        result.solutions[limit] = solution
        result.points[limit] = design_point(
            solution.placement, limit, bandwidth, mix, cost
        )
    if warm_start is not None:
        _inject_warm_into_sweep(result, warm_start, config.impl,
                                bandwidth, mix, cost)
    return PlacementResult.from_sweep(
        result, config, time.perf_counter() - start
    )


def _inject_warm_into_sweep(
    sweep: SweepResult,
    warm_start: RowPlacement,
    impl: str,
    bandwidth: BandwidthConfig | None,
    mix: PacketMix | None,
    cost: HopCostModel | None,
) -> None:
    """Inject the warm candidate at every swept ``C`` (in place).

    ``C = 1`` is skipped: the clip degenerates to the plain mesh the
    sweep already priced.  Improved solutions get their design point
    re-costed so ``best`` reflects the injected placement.
    """
    pricing = RowObjective(cost=cost or HopCostModel(), impl=impl)
    for limit, solution in sweep.solutions.items():
        if limit == 1:
            continue
        injected = inject_warm_candidate(solution, warm_start, pricing)
        sweep.solutions[limit] = injected
        if injected.placement != solution.placement:
            sweep.points[limit] = design_point(
                injected.placement, limit, bandwidth, mix, cost
            )
