"""Parallel multi-restart search engine for the ``C`` sweep.

The paper's optimizer solves ``P~(n, C)`` independently for every
feasible cross-section limit ``C``, and simulated annealing is
restart-friendly: independent chains from independent streams, keep the
best.  Both axes are embarrassingly parallel, so this module fans the
``(C, restart)`` task grid out over a ``multiprocessing`` pool and
reduces deterministically.

Design rules that make ``--jobs K`` a pure wall-clock knob:

* **Derived seeds.**  Every task draws its generator from
  :func:`repro.util.rngtools.derived_rng` ``(base_seed, C, restart)``
  -- a pure function of the task key, independent of scheduling.  A
  task computes the same chain whether it runs inline, first, last, or
  on any worker.
* **Deterministic reduction.**  Per ``C``, the winner is the minimum by
  ``(energy, restart index)`` -- ties cannot depend on completion
  order.
* **Ordered obs merging.**  Each worker records events into its own
  :class:`~repro.obs.sinks.MemorySink` and metrics into its own
  registry; the parent replays events and merges metric snapshots in
  task order, so ``--trace-out`` traces and ``--profile`` totals are
  reproducible run to run.

The headline guarantee -- enforced by the parity suite -- is that for a
fixed base seed the best design is bit-identical for every ``jobs``
value, including the fully serial ``jobs=1`` path (which runs the exact
same task functions in the same order, just inline).
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.annealing import AnnealingParams, anneal_population
from repro.core.branch_bound import effective_link_limit, validated_link_limit
from repro.core.connection_matrix import ConnectionMatrix
from repro.core.divide_conquer import initial_solution
from repro.core.latency import BandwidthConfig, PacketMix, RowObjective
from repro.core.optimizer import (
    METHODS,
    RowSolution,
    SweepResult,
    _solve_row,
    design_point,
)
from repro.obs.instrument import Instrumentation, ensure_obs
from repro.obs.sinks import MemorySink
from repro.routing.shortest_path import HopCostModel
from repro.topology.row import RowPlacement
from repro.util.errors import ConfigurationError
from repro.util.rngtools import derived_rng, ensure_rng, fresh_entropy


@dataclass(frozen=True)
class SearchTask:
    """One worker unit: a group of SA restarts for one ``P~(n, C)``.

    Tasks are frozen, picklable value objects -- everything a worker
    needs and nothing it could share, which is what makes the fork/spawn
    boundary safe and the result a pure function of the task.
    ``restarts`` holds the restart indices of the group: a singleton
    runs the plain serial chain, a longer tuple runs the group in
    lockstep (:func:`repro.core.annealing.anneal_population`) -- one
    batched objective call per move across the group, byte-identical
    trajectories either way.
    """

    n: int
    link_limit: int
    restarts: Tuple[int, ...]
    method: str
    params: AnnealingParams
    cost: HopCostModel
    weights: Optional[Tuple[Tuple[float, ...], ...]]
    impl: str
    base_seed: int
    max_evaluations: Optional[int]
    capture_events: bool
    incremental: bool = False
    resync_every: int = 1_000


@dataclass
class TaskResult:
    """One restart's complete output: solution plus captured observability."""

    link_limit: int
    restart: int
    solution: RowSolution
    events: List[dict]
    metrics: dict

    @property
    def obs_key(self) -> Tuple:
        """Grid coordinate used as the deterministic gauge-merge key."""
        return (self.link_limit, self.restart)


def _chain_groups(restarts: int, chains: int) -> List[Tuple[int, ...]]:
    """Split restart indices into consecutive lockstep groups.

    ``chains=1`` (the default) keeps every restart its own task;
    ``chains=K`` packs restarts ``0..K-1`` into one group, ``K..2K-1``
    into the next, and so on (the last group may be smaller).  Grouping
    never changes which restarts run or their derived seeds -- only how
    many share a process and a batched kernel call.
    """
    step = max(1, chains)
    return [
        tuple(range(lo, min(lo + step, restarts)))
        for lo in range(0, restarts, step)
    ]


def _run_single(task: SearchTask, restart: int) -> TaskResult:
    """Execute one restart of a task through the serial solve path."""
    # NB: an empty MemorySink is falsy (it has __len__), so the guards
    # here must compare against None explicitly.
    sink = MemorySink() if task.capture_events else None
    obs = Instrumentation(sinks=[] if sink is None else [sink])
    obs.set_context(task=[task.link_limit, restart])
    # Under impl="native", constructing the objective warms the
    # compiled backend up (JIT / shared-object load, once per worker
    # process) before any solve span opens; the cost is reported as a
    # kernel.compile event on this worker's sink instead of polluting
    # the latency.floyd_warshall span.
    objective = RowObjective(
        cost=task.cost,
        weights=task.weights,
        impl=task.impl,
        obs=None if obs.is_null else obs,
    )
    solution = _solve_row(
        task.n,
        task.link_limit,
        method=task.method,
        objective=objective,
        params=task.params,
        rng=derived_rng(task.base_seed, task.link_limit, restart),
        max_evaluations=task.max_evaluations,
        obs=obs,
        incremental=task.incremental,
        resync_every=task.resync_every,
    )
    return TaskResult(
        link_limit=task.link_limit,
        restart=restart,
        solution=solution,
        events=[] if sink is None else [e.to_dict() for e in sink.events],
        metrics=obs.metrics.snapshot(),
    )


def _run_population(task: SearchTask) -> List[TaskResult]:
    """Execute a whole restart group in lockstep.

    Mirrors the serial ``_solve_row`` SA flow per chain exactly: the
    deterministic D&C seed is computed once (every serial restart
    would recompute the identical solution), each chain draws its
    matrix and stream from ``derived_rng(base_seed, C, restart)`` just
    as its serial run would, and :func:`anneal_population` interleaves
    the chains with one batched objective call per move.  The group
    shares one event sink; its events and metrics ride on the first
    restart's :class:`TaskResult` so the parent-side merge sees them
    exactly once.
    """
    sink = MemorySink() if task.capture_events else None
    obs = Instrumentation(sinks=[] if sink is None else [sink])
    obs.set_context(task=[task.link_limit, list(task.restarts)])
    # Native warm-up once per worker process, outside all solve spans
    # (see _run_single).
    objective = RowObjective(
        cost=task.cost,
        weights=task.weights,
        impl=task.impl,
        obs=None if obs.is_null else obs,
    )
    limit = effective_link_limit(task.n, task.link_limit)
    start = time.perf_counter()
    if obs.enabled:
        obs.emit("solve.start", n=task.n, link_limit=task.link_limit,
                 method=task.method, chains=list(task.restarts))

    seed = None
    initials, rngs = [], []
    if task.method == "dc_sa":
        seed = initial_solution(task.n, limit, objective, obs=obs)
        for restart in task.restarts:
            initials.append(ConnectionMatrix.from_placement(seed.placement, limit))
            rngs.append(
                ensure_rng(derived_rng(task.base_seed, task.link_limit, restart))
            )
    else:  # only_sa: the matrix draw and the SA stream share one generator
        for restart in task.restarts:
            gen = ensure_rng(derived_rng(task.base_seed, task.link_limit, restart))
            initials.append(ConnectionMatrix.random(task.n, limit, gen))
            rngs.append(gen)

    sas = anneal_population(
        initials,
        objective,
        params=task.params,
        rngs=rngs,
        max_evaluations=task.max_evaluations,
        obs=obs,
    )
    wall = time.perf_counter() - start

    results = []
    for idx, (restart, sa) in enumerate(zip(task.restarts, sas)):
        placement, energy = sa.best_placement, sa.best_energy
        if seed is not None and seed.energy < energy:
            placement, energy = seed.placement, seed.energy
        evaluations = sa.evaluations + (seed.evaluations if seed else 0)
        solution = RowSolution(
            n=task.n,
            link_limit=task.link_limit,
            placement=placement,
            energy=energy,
            method=task.method,
            evaluations=evaluations,
            wall_time_s=wall,
            annealing=sa,
            seed_solution=seed,
        )
        results.append(TaskResult(
            link_limit=task.link_limit,
            restart=restart,
            solution=solution,
            events=(
                [e.to_dict() for e in sink.events]
                if sink is not None and idx == 0 else []
            ),
            metrics=obs.metrics.snapshot() if idx == 0 else {},
        ))
    return results


def _run_task(task: SearchTask) -> List[TaskResult]:
    """Execute one task (module-level so it pickles for pool workers).

    Returns one :class:`TaskResult` per restart in the group, in
    restart order.  Groups of one, exact solves (no SA to interleave)
    and incremental-engine runs (per-move O(n^2) pricing, nothing to
    batch) take the serial per-restart path; everything else runs the
    lockstep population path -- the results are byte-identical, only
    the kernel-launch count differs.
    """
    if len(task.restarts) == 1 or task.method == "exact" or task.incremental:
        return [_run_single(task, restart) for restart in task.restarts]
    return _run_population(task)


def parallel_map(fn, items: Sequence, jobs: int) -> List:
    """Order-preserving map, inline (``jobs <= 1``) or on a process pool.

    The workhorse behind every parallel engine in the repo (the search
    grid here, the simulation campaigns in :mod:`repro.sim.campaign`).
    ``fn`` must be a module-level callable and every item picklable;
    ``pool.map`` returns results in item order regardless of which
    worker finished first, so downstream reduction sees the same
    sequence either way.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    methods = mp.get_all_start_methods()
    ctx = mp.get_context("fork" if "fork" in methods else "spawn")
    with ctx.Pool(processes=min(jobs, len(items))) as pool:
        return pool.map(fn, items, chunksize=1)


def run_tasks(tasks: Sequence[SearchTask], jobs: int) -> List[TaskResult]:
    """Run search tasks inline or on a process pool, in task order.

    Each task yields one result per restart in its group; the flattened
    list is in ``(task, restart)`` order, which -- with consecutive
    chain groups -- is plain ``(C, restart)`` order.
    """
    return [
        result
        for group in parallel_map(_run_task, tasks, jobs)
        for result in group
    ]


def best_of(results: Sequence[TaskResult]) -> TaskResult:
    """Deterministic reduction: lowest energy, then lowest restart index."""
    if not results:
        raise ConfigurationError("cannot reduce an empty result set")
    return min(results, key=lambda r: (r.solution.energy, r.restart))


def _check_grid(restarts: int, jobs: int, chains: int, incremental: bool) -> int:
    """Validate the execution grid; returns the effective restart count.

    ``chains=K`` alone means "run K lockstep chains", so the restart
    count is raised to at least ``chains`` -- mirroring
    :attr:`repro.api.SearchConfig.effective_restarts`.
    """
    if restarts < 1:
        raise ConfigurationError(f"restarts must be >= 1, got {restarts}")
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    if chains < 1:
        raise ConfigurationError(f"chains must be >= 1, got {chains}")
    if chains > 1 and incremental:
        raise ConfigurationError(
            "chains > 1 is incompatible with the incremental engine "
            "(per-move O(n^2) pricing has nothing to batch)"
        )
    return max(restarts, chains)


def _require_base_seed(base_seed) -> int:
    """Coerce the parallel engine's seed; generators are rejected.

    A shared :class:`numpy.random.Generator` is inherently sequential
    -- its state would depend on task execution order -- so parallel
    searches demand an integer seed (or ``None`` for fresh entropy,
    still an int so the run can be replayed from logs).
    """
    if base_seed is None:
        return fresh_entropy()
    if isinstance(base_seed, (int, np.integer)):
        return int(base_seed)
    raise ConfigurationError(
        "parallel search requires an integer base seed (or None); "
        f"got {type(base_seed).__name__} -- a shared generator cannot be "
        "split deterministically across workers"
    )


def _merge_observability(
    obs: Instrumentation, results: Sequence[TaskResult]
) -> None:
    """Fold worker events/metrics into the parent, in task order.

    Gauge conflicts resolve by each result's grid coordinate
    (``obs_key``), not arrival order, so the merged registry is a pure
    function of the result *set* -- permuting worker completion (or
    even the merge order itself) cannot change the summary.
    """
    if obs.is_null:
        return
    for worker, res in enumerate(results):
        if obs.enabled and res.events:
            obs.replay(res.events, worker=worker)
        obs.metrics.merge(res.metrics, key=getattr(res, "obs_key", None) or (worker,))


def _build_tasks(
    n: int,
    limits: Sequence[int],
    restarts: int,
    method: str,
    params: AnnealingParams,
    cost: HopCostModel,
    weights,
    impl: str,
    base_seed: int,
    max_evaluations: Optional[int],
    capture_events: bool,
    incremental: bool = False,
    resync_every: int = 1_000,
    chains: int = 1,
) -> List[SearchTask]:
    return [
        SearchTask(
            n=n,
            link_limit=limit,
            restarts=group,
            method=method,
            params=params,
            cost=cost,
            weights=weights,
            impl=impl,
            base_seed=base_seed,
            max_evaluations=max_evaluations,
            capture_events=capture_events,
            incremental=incremental,
            resync_every=resync_every,
        )
        for limit in limits
        for group in _chain_groups(restarts, chains)
    ]


def parallel_row_search(
    n: int,
    link_limit: int,
    method: str = "dc_sa",
    params: AnnealingParams | None = None,
    cost: HopCostModel | None = None,
    weights=None,
    impl: str = "vectorized",
    base_seed=None,
    max_evaluations: Optional[int] = None,
    restarts: int = 1,
    jobs: int = 1,
    chains: int = 1,
    incremental: bool = False,
    resync_every: int = 1_000,
    obs: Optional[Instrumentation] = None,
) -> Tuple[RowSolution, Tuple[float, ...]]:
    """Multi-restart solve of one ``P~(n, C)`` instance.

    Returns the winning :class:`RowSolution` plus the per-restart final
    energies (restart order), so callers can report the spread.
    ``chains=K`` packs consecutive restarts into lockstep groups of
    ``K`` (one batched objective call per move per group) without
    changing any result byte; it composes freely with ``jobs``.
    """
    if method not in METHODS:
        raise ConfigurationError(f"unknown method {method!r}; expected one of {METHODS}")
    restarts = _check_grid(restarts, jobs, chains, incremental)
    obs = ensure_obs(obs)
    seed = _require_base_seed(base_seed)
    limit = validated_link_limit(n, link_limit, obs)
    tasks = _build_tasks(
        n, [limit], restarts, method, params or AnnealingParams(),
        cost or HopCostModel(), weights, impl, seed, max_evaluations,
        capture_events=obs.enabled, incremental=incremental,
        resync_every=resync_every, chains=chains,
    )
    if obs.enabled:
        obs.emit("parallel.start", n=n, link_limit=limit, method=method,
                 restarts=restarts, jobs=jobs, chains=chains,
                 tasks=len(tasks), base_seed=seed)
    with obs.span("parallel.row_search"):
        results = run_tasks(tasks, jobs)
    _merge_observability(obs, results)
    best = best_of(results)
    energies = tuple(r.solution.energy for r in results)
    if not obs.is_null:
        obs.metrics.counter("parallel.tasks").inc(len(tasks))
        obs.metrics.gauge("parallel.jobs").set(jobs)
    if obs.enabled:
        obs.emit("parallel.end", n=n, link_limit=link_limit,
                 best_energy=best.solution.energy, best_restart=best.restart)
    return best.solution, energies


def parallel_sweep(
    n: int,
    method: str = "dc_sa",
    bandwidth: BandwidthConfig | None = None,
    mix: PacketMix | None = None,
    cost: HopCostModel | None = None,
    params: AnnealingParams | None = None,
    base_seed=None,
    link_limits: Optional[Tuple[int, ...]] = None,
    max_evaluations: Optional[int] = None,
    restarts: int = 1,
    jobs: int = 1,
    chains: int = 1,
    weights=None,
    impl: str = "vectorized",
    incremental: bool = False,
    resync_every: int = 1_000,
    obs: Optional[Instrumentation] = None,
) -> SweepResult:
    """Full ``C`` sweep with ``restarts`` SA chains per limit.

    The parallel counterpart of :func:`repro.core.optimizer.optimize`:
    the ``(C, restart)`` grid runs on up to ``jobs`` processes, and for
    a fixed ``base_seed`` the returned :class:`SweepResult` carries
    bit-identical placements for every ``jobs`` value.  ``chains=K``
    additionally packs consecutive restarts into lockstep population
    groups -- same placements, fewer kernel launches.  Every requested
    ``C`` is validated once here (:func:`validated_link_limit`):
    oversized limits are clamped to ``C_full`` with a ``config.clamp``
    event before any worker spawns.
    """
    if method not in METHODS:
        raise ConfigurationError(f"unknown method {method!r}; expected one of {METHODS}")
    restarts = _check_grid(restarts, jobs, chains, incremental)
    bandwidth = bandwidth or BandwidthConfig()
    mix = mix or PacketMix.paper_default()
    cost = cost or HopCostModel()
    params = params or AnnealingParams()
    obs = ensure_obs(obs)
    seed = _require_base_seed(base_seed)
    limits = tuple(dict.fromkeys(
        validated_link_limit(n, c, obs)
        for c in (link_limits or bandwidth.valid_link_limits(n))
    ))

    searched = [c for c in limits if c > 1]
    tasks = _build_tasks(
        n, searched, restarts, method, params, cost, weights, impl, seed,
        max_evaluations, capture_events=obs.enabled,
        incremental=incremental, resync_every=resync_every, chains=chains,
    )
    if obs.enabled:
        obs.emit("parallel.start", n=n, method=method, restarts=restarts,
                 jobs=jobs, chains=chains, tasks=len(tasks), base_seed=seed,
                 link_limits=list(limits))
    with obs.span("parallel.sweep"):
        results = run_tasks(tasks, jobs)
    _merge_observability(obs, results)

    by_limit: Dict[int, List[TaskResult]] = {}
    for res in results:
        by_limit.setdefault(res.link_limit, []).append(res)

    sweep = SweepResult(n=n, method=method, restarts=restarts, jobs=jobs,
                        chains=chains)
    objective = RowObjective(cost=cost, weights=weights, impl=impl)
    for limit in limits:
        if limit == 1:
            mesh = RowPlacement.mesh(n)
            solution = RowSolution(
                n=n,
                link_limit=1,
                placement=mesh,
                energy=objective(mesh),
                method=method,
                evaluations=1,
                wall_time_s=0.0,
            )
            sweep.restart_energies[1] = (solution.energy,)
        else:
            group = by_limit[limit]
            solution = best_of(group).solution
            sweep.restart_energies[limit] = tuple(
                r.solution.energy for r in group
            )
        sweep.solutions[limit] = solution
        sweep.points[limit] = design_point(
            solution.placement, limit, bandwidth, mix, cost
        )
    if not obs.is_null:
        obs.metrics.counter("parallel.tasks").inc(len(tasks))
        obs.metrics.gauge("parallel.jobs").set(jobs)
    if obs.enabled:
        best = sweep.best
        obs.emit("parallel.end", n=n, best_link_limit=best.link_limit,
                 best_total_latency=best.total_latency)
    return sweep
