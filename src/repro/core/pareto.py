"""Multi-objective Pareto co-design over row placements.

ROADMAP item 5: turn the scalar placement search into a traffic-aware
co-design tool.  A candidate row placement (replicated into the paper's
uniform mesh) is priced on up to four axes, all minimized:

* ``latency`` -- (optionally traffic-weighted) mean row head latency,
  the exact energy the scalar optimizer minimizes.  With a traffic
  matrix ``gamma`` the weight matrix aggregates the per-row and
  per-column weights of :mod:`repro.core.application_aware`, so for a
  replicated-row design ``2 * latency`` equals
  :func:`~repro.core.application_aware.weighted_average_head_latency`
  of the full mesh (pinned by a parity test).
* ``power`` -- router static power plus a dynamic proxy: the expected
  buffer/crossbar/link event rates at one injected packet per cycle,
  integrated through :func:`repro.power.model.dynamic_power`.
* ``area`` -- total router area of the replicated design
  (:func:`repro.power.area.router_area` summed over routers).
* ``channel_load`` -- the worst expected per-channel flit load per
  injected packet (:mod:`repro.analysis.channel_load`); minimizing it
  maximizes the ideal saturation throughput ``1 / load``.

Two front-search drivers build the nondominated set:

* ``"epsilon"`` -- an ε-constraint sweep: per-axis endpoint solves
  bound each secondary axis, then the primary axis is minimized under
  a penalty for exceeding each ε level.  Every constraint point is an
  independent scalar search (reusing the annealer/exhaustive backends)
  with its own PR 2 derived seed stream, fanned across ``config.jobs``
  worker processes by :func:`repro.core.parallel.parallel_map`.
* ``"nsga2"`` -- an NSGA-II-style population loop over
  :class:`~repro.core.connection_matrix.ConnectionMatrix` genotypes
  (any bit state decodes to a valid placement, so uniform bitwise
  crossover never leaves the feasible set), with fast nondominated
  sorting, crowding-distance selection, batched
  :meth:`~repro.core.latency.RowObjective.evaluate_many` pricing of the
  latency/power components and ``parallel_map`` fan-out of the mesh
  axes.

Determinism contract (the repo-wide convention): every random decision
happens in the parent from seed streams derived with
:func:`repro.util.rngtools.derived_rng`, worker processes compute pure
functions of their task, and the archive/front assembly sorts
canonically -- so fronts are byte-identical for every ``config.jobs``
value, and a single-objective ``latency`` front reduces bitwise to the
scalar :func:`repro.core.optimizer.solve_row_problem` result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.api import (
    OBJECTIVES,
    PARETO_DRIVERS,
    RESULT_SCHEMA,
    SearchConfig,
    _check_schema,
    _float_hex,
    _float_unhex,
)
from repro.analysis.channel_load import channel_loads
from repro.core.annealing import AnnealingParams
from repro.core.application_aware import _check_gamma, _col_weights, _row_weights
from repro.core.branch_bound import effective_link_limit
from repro.core.connection_matrix import ConnectionMatrix
from repro.core.latency import BandwidthConfig, PacketMix, RowObjective
from repro.core.optimizer import METHODS, _solve_row
from repro.core.parallel import parallel_map
from repro.obs.instrument import Instrumentation, ensure_obs
from repro.power.area import router_area
from repro.power.model import dynamic_power, router_static_power
from repro.routing.shortest_path import HopCostModel
from repro.routing.tables import RoutingTables
from repro.sim.config import SimConfig
from repro.topology.mesh import MeshTopology
from repro.topology.row import RowPlacement
from repro.util.errors import ConfigurationError, InvalidPlacementError
from repro.util.rngtools import derived_rng, ensure_rng, fresh_entropy

__all__ = [
    "ParetoFront",
    "ParetoPoint",
    "ParetoPricer",
    "ParetoSpec",
    "aggregate_weights",
    "dominates",
    "hypervolume",
    "nondominated",
    "pareto_front",
    "pareto_sweep",
]

#: Derived-seed stream tags (one namespace per driver stage, so adding
#: a stage never perturbs another stage's streams).
_ENDPOINT_KEY = 101
_EPSILON_KEY = 202
_NSGA_KEY = 303

#: ε-penalty stiffness, in units of the primary axis range per unit of
#: normalized constraint violation.
_PENALTY_STIFFNESS = 8.0


# ----------------------------------------------------------------------
# Dominance, fronts, hypervolume
# ----------------------------------------------------------------------

def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` is at least as good everywhere and better somewhere."""
    better = False
    for x, y in zip(a, b):
        if x > y:
            return False
        if x < y:
            better = True
    return better


def nondominated(
    entries: Iterable[Tuple[Tuple[float, ...], bytes]],
) -> List[Tuple[Tuple[float, ...], bytes]]:
    """The nondominated subset, canonically ordered.

    ``entries`` are ``(values, canonical_bytes)`` pairs.  Duplicate
    value vectors keep only their lexicographically-smallest placement
    (one representative per front point), and the result is sorted by
    ``(values, bytes)`` -- the order the front serializes in, which is
    what makes front JSON byte-identical across ``--jobs`` values.

    A dominating point sorts lexicographically before every point it
    dominates (componentwise ``<=`` implies lex ``<=``), so a single
    pass that checks each entry against the kept set suffices:
    ``O(total * front_size)`` instead of ``O(total^2)``.
    """
    ordered = sorted(set(entries))
    kept: List[Tuple[Tuple[float, ...], bytes]] = []
    for values, key in ordered:
        duplicate_or_dominated = any(
            kv == values or dominates(kv, values) for kv, _ in kept
        )
        if not duplicate_or_dominated:
            kept.append((values, key))
    return kept


def hypervolume(
    points: Iterable[Sequence[float]], reference: Sequence[float]
) -> float:
    """Exact hypervolume dominated by ``points`` w.r.t. ``reference``.

    Minimization convention: the measure of the region dominated by at
    least one point and bounded above by ``reference``.  Points not
    strictly below the reference on every axis contribute nothing.
    Recursive slab decomposition -- exponential in the axis count, fine
    for the <=4-axis fronts this module produces.
    """
    reference = tuple(float(r) for r in reference)
    pts = [
        tuple(float(v) for v in p)
        for p in points
        if all(v < r for v, r in zip(p, reference))
    ]
    if not pts:
        return 0.0
    if any(len(p) != len(reference) for p in pts):
        raise ConfigurationError(
            "hypervolume points and reference must share one dimension"
        )
    return _hv(pts, reference)


def _hv(pts: List[Tuple[float, ...]], reference: Tuple[float, ...]) -> float:
    if len(reference) == 1:
        return reference[0] - min(p[0] for p in pts)
    total = 0.0
    cuts = sorted({p[0] for p in pts})
    for i, x in enumerate(cuts):
        upper = cuts[i + 1] if i + 1 < len(cuts) else reference[0]
        width = upper - x
        if width <= 0:
            continue
        sub = [p[1:] for p in pts if p[0] <= x]
        front = [v for v, _ in nondominated((s, b"") for s in sub)]
        total += width * _hv(front, reference[1:])
    return total


# ----------------------------------------------------------------------
# Pricing
# ----------------------------------------------------------------------

def aggregate_weights(gamma: np.ndarray, n: int) -> Tuple[Tuple[float, ...], ...]:
    """The replicated-row pair-weight matrix ``W`` of a traffic matrix.

    Summing the per-row and per-column weight matrices of the
    application-aware reduction gives one ``n x n`` matrix whose
    weighted row energy prices every row *and* column of a
    replicated-row design at once:
    ``weighted_average_head_latency(MeshTopology.uniform(p), gamma)
    == 2 * mean_row_head_latency(p, weights=W)`` (up to floating-point
    accumulation order).
    """
    g = _check_gamma(gamma, n)
    w = np.zeros((n, n))
    for part in _row_weights(g, n):
        w += part
    for part in _col_weights(g, n):
        w += part
    return tuple(map(tuple, w.tolist()))


@dataclass(frozen=True, eq=False)
class ParetoSpec:
    """Everything needed to price one placement on every axis.

    Picklable and process-independent: a worker holding the spec prices
    bit-identically to the parent, which is what lets the drivers fan
    pricing out over ``jobs`` processes without touching results.
    """

    n: int
    link_limit: int
    objectives: Tuple[str, ...]
    #: Aggregated traffic weight matrix (None = uniform traffic).
    weights: Optional[Tuple[Tuple[float, ...], ...]] = None
    #: Full ``n^2 x n^2`` traffic matrix for the channel-load axis
    #: (None = uniform); diagonal-stripped by the caller.
    gamma: Optional[np.ndarray] = field(default=None, repr=False)
    cost: HopCostModel = HopCostModel()
    base_flit_bits: int = 256
    mix: PacketMix = PacketMix.paper_default()
    impl: str = "vectorized"

    def __post_init__(self) -> None:
        unknown = [o for o in self.objectives if o not in OBJECTIVES]
        if unknown:
            raise ConfigurationError(
                f"unknown objective(s) {unknown}; expected a subset of "
                f"{OBJECTIVES}"
            )
        if not self.objectives:
            raise ConfigurationError("need at least one objective axis")
        if len(set(self.objectives)) != len(self.objectives):
            raise ConfigurationError(
                f"duplicate objectives in {self.objectives}"
            )

    @property
    def flit_bits(self) -> int:
        """Flit width at the spec's cross-section limit.

        Non-divisor limits (e.g. ``C = 3`` against a 256-bit baseline)
        fall back to the floored width ``max(1, base // C)`` -- the
        pareto grid sweeps every integer ``C``, not just the scalar
        sweep's power-of-two divisors.
        """
        c = self.link_limit
        if c <= 0:
            raise ConfigurationError(f"link limit must be positive, got {c}")
        if self.base_flit_bits % c == 0:
            return self.base_flit_bits // c
        return max(1, self.base_flit_bits // c)

    def latency_objective(self) -> RowObjective:
        """The latency axis as the scalar optimizer's own objective."""
        return RowObjective(cost=self.cost, weights=self.weights, impl=self.impl)


def _mesh_axis_values(
    spec: ParetoSpec, placement: RowPlacement
) -> Tuple[float, float, float]:
    """(static power W, total router area um^2, worst channel load).

    Prices the replicated ``n x n`` design; axes outside
    ``spec.objectives`` are skipped (returned as 0.0) so the hot loop
    never builds routing tables it does not need.
    """
    objectives = spec.objectives
    topology = MeshTopology.uniform(placement)
    config = SimConfig(flit_bits=spec.flit_bits)
    static_w = area_um2 = channel = 0.0
    if "power" in objectives:
        static_w = router_static_power(topology, config).total_w
    if "area" in objectives:
        area_um2 = sum(
            router_area(topology, node, config).total_um2
            for node in range(topology.num_nodes)
        )
    if "channel_load" in objectives:
        tables = RoutingTables.build(topology)
        report = channel_loads(
            tables, spec.gamma, mix=spec.mix, flit_bits=spec.flit_bits
        )
        channel = report.max_load_per_packet
    return (static_w, area_um2, channel)


def _price_mesh_axes(task) -> Tuple[float, float, float]:
    """``parallel_map`` worker: mesh-axis values from canonical bytes."""
    spec, data = task
    return _mesh_axis_values(spec, RowPlacement.from_canonical_bytes(data))


class ParetoPricer:
    """Memoizing objective-vector evaluator for one :class:`ParetoSpec`.

    The memo (canonical placement bytes -> value tuple) doubles as the
    search archive: every candidate any driver ever priced is a front
    candidate, so the final nondominated filter runs over everything
    evaluated, not just per-stage winners.
    """

    def __init__(self, spec: ParetoSpec) -> None:
        self.spec = spec
        self._memo: Dict[bytes, Tuple[float, ...]] = {}
        self._latency = spec.latency_objective()
        # Integral unit costs: mean hop count and mean wire length per
        # row traversal, both mirror-fold safe in evaluate_many.
        self._hops = RowObjective(
            cost=HopCostModel(1.0, 0.0, 0.0), weights=spec.weights,
            impl=spec.impl,
        )
        self._wire = RowObjective(
            cost=HopCostModel(0.0, 1.0, 0.0), weights=spec.weights,
            impl=spec.impl,
        )

    @property
    def evaluations(self) -> int:
        """Unique placements priced on the full vector so far."""
        return len(self._memo)

    @property
    def archive(self) -> Dict[bytes, Tuple[float, ...]]:
        return self._memo

    def merge(self, memo: Mapping[bytes, Tuple[float, ...]]) -> None:
        """Fold a worker's memo into the archive (same spec, same bits)."""
        for key, values in memo.items():
            self._memo[key] = tuple(values)

    def price(self, placement: RowPlacement) -> Tuple[float, ...]:
        return self.price_many([placement])[0]

    def price_many(
        self, placements: Sequence[RowPlacement], jobs: int = 1
    ) -> List[Tuple[float, ...]]:
        """Objective vectors for a population, in input order.

        Fresh placements are priced in one batch: the latency / hop /
        wire components through a single
        :meth:`~repro.core.latency.RowObjective.evaluate_many` kernel
        call each, the mesh axes fanned over ``jobs`` processes.
        """
        placements = list(placements)
        keys = [p.canonical_bytes() for p in placements]
        fresh: List[Tuple[bytes, RowPlacement]] = []
        seen = set()
        for key, placement in zip(keys, placements):
            if key not in self._memo and key not in seen:
                seen.add(key)
                fresh.append((key, placement))
        if fresh:
            self._price_fresh(fresh, jobs)
        return [self._memo[key] for key in keys]

    def _price_fresh(
        self, fresh: List[Tuple[bytes, RowPlacement]], jobs: int
    ) -> None:
        spec = self.spec
        population = [p for _, p in fresh]
        columns: Dict[str, Sequence[float]] = {}
        if "latency" in spec.objectives:
            columns["latency"] = self._latency.evaluate_many(population)
        mesh_axes = [
            o for o in spec.objectives
            if o in ("power", "area", "channel_load")
        ]
        if mesh_axes:
            rows = parallel_map(
                _price_mesh_axes, [(spec, key) for key, _ in fresh], jobs
            )
            if "power" in spec.objectives:
                hops = self._hops.evaluate_many(population)
                wire = self._wire.evaluate_many(population)
                columns["power"] = [
                    rows[i][0] + self._dynamic_proxy_w(hops[i], wire[i])
                    for i in range(len(population))
                ]
            if "area" in spec.objectives:
                columns["area"] = [row[1] for row in rows]
            if "channel_load" in spec.objectives:
                columns["channel_load"] = [row[2] for row in rows]
        for i, (key, _) in enumerate(fresh):
            self._memo[key] = tuple(
                float(columns[axis][i]) for axis in spec.objectives
            )

    def _dynamic_proxy_w(self, row_hops: float, row_wire: float) -> float:
        """Dynamic power at one injected packet/cycle of aggregate traffic.

        ``row_hops`` / ``row_wire`` are mean row hop count and wire
        length; the 2D means are twice that (Eq. 5).  Expected per-cycle
        events: every flit of a packet is written, read and switched at
        each of its ``H + 1`` routers and traverses ``D`` wire units.
        """
        spec = self.spec
        flits = spec.mix.serialization_cycles(spec.flit_bits)
        hops_2d = 2.0 * float(row_hops)
        wire_2d = 2.0 * float(row_wire)
        activity = {
            "buffer_writes": flits * (hops_2d + 1.0),
            "buffer_reads": flits * (hops_2d + 1.0),
            "crossbar_traversals": flits * (hops_2d + 1.0),
            "link_flit_hops": flits * wire_2d,
        }
        return sum(
            dynamic_power(activity, 1, spec.flit_bits).values()
        )


class _VectorObjective:
    """Scalar view of the vector pricer for the SA/exhaustive backends.

    ``value = values[axis] + sum(scale * max(0, values[j] - bound))``
    over the ε-constraints.  Every evaluation lands in the pricer's
    memo, so a constraint solve feeds the archive as a side effect.
    Generic (not sliceable): backends use it through
    :class:`~repro.core.annealing.MemoizedObjective`'s scalar fallback.
    """

    def __init__(
        self,
        pricer: ParetoPricer,
        axis: int,
        constraints: Tuple[Tuple[int, float, float], ...] = (),
    ) -> None:
        self.pricer = pricer
        self.axis = axis
        self.constraints = tuple(constraints)

    def __call__(self, placement: RowPlacement) -> float:
        values = self.pricer.price(placement)
        total = values[self.axis]
        for axis_j, bound, scale in self.constraints:
            total += scale * max(0.0, values[axis_j] - bound)
        return total


# ----------------------------------------------------------------------
# Result type
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ParetoPoint:
    """One nondominated design: a placement and its objective vector."""

    placement: RowPlacement
    values: Tuple[float, ...]


@dataclass(frozen=True)
class ParetoFront:
    """The nondominated set of one ``(n, C)`` pareto search.

    Points are canonically ordered by ``(values, placement bytes)``
    and the JSON schema is bit-exact (float-hex values, canonical
    placement bytes), so serialized fronts diff byte-identically across
    ``--jobs`` values.  Wall time is deliberately *not* a field: it
    would be the only nondeterministic bit.
    """

    n: int
    link_limit: int
    objectives: Tuple[str, ...]
    driver: str
    method: str
    points: Tuple[ParetoPoint, ...]
    evaluations: int
    seed: Optional[int] = None

    def values_matrix(self) -> np.ndarray:
        return np.array([p.values for p in self.points], dtype=float)

    def default_reference(self) -> Tuple[float, ...]:
        """The hypervolume reference: 10 % beyond the nadir per axis."""
        if not self.points:
            raise ConfigurationError("empty front has no reference point")
        values = self.values_matrix()
        low = values.min(axis=0)
        high = values.max(axis=0)
        span = high - low
        pad = np.where(span > 0, 0.1 * span, 1.0)
        return tuple(float(v) for v in high + pad)

    def hypervolume(
        self, reference: Optional[Sequence[float]] = None
    ) -> float:
        """Dominated hypervolume (see :func:`hypervolume`)."""
        reference = (
            self.default_reference() if reference is None else reference
        )
        return hypervolume([p.values for p in self.points], reference)

    # -- JSON schema ---------------------------------------------------
    def to_json(self) -> Dict:
        """The shared wire/ledger schema for a front (bit-exact)."""
        return {
            "schema": RESULT_SCHEMA,
            "kind": "pareto_front",
            "n": self.n,
            "link_limit": self.link_limit,
            "objectives": list(self.objectives),
            "driver": self.driver,
            "method": self.method,
            "evaluations": self.evaluations,
            "seed": self.seed,
            "points": [
                {
                    "placement": p.placement.canonical_bytes().hex(),
                    "values": [_float_hex(v) for v in p.values],
                }
                for p in self.points
            ],
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "ParetoFront":
        """Rebuild a front from :meth:`to_json` output (bit-exact)."""
        _check_schema(data, "pareto_front")
        objectives = tuple(data["objectives"])
        unknown = [o for o in objectives if o not in OBJECTIVES]
        if unknown:
            raise ConfigurationError(
                f"unknown objective(s) {unknown} in pareto_front"
            )
        if data["driver"] not in PARETO_DRIVERS:
            raise ConfigurationError(
                f"unknown pareto driver {data['driver']!r} in pareto_front"
            )
        points = tuple(
            ParetoPoint(
                placement=RowPlacement.from_canonical_bytes(
                    bytes.fromhex(p["placement"])
                ),
                values=tuple(_float_unhex(v) for v in p["values"]),
            )
            for p in data["points"]
        )
        return cls(
            n=data["n"],
            link_limit=data["link_limit"],
            objectives=objectives,
            driver=data["driver"],
            method=data["method"],
            points=points,
            evaluations=data["evaluations"],
            seed=data.get("seed"),
        )


# ----------------------------------------------------------------------
# Scalar solve tasks (endpoints + ε-constraint points)
# ----------------------------------------------------------------------

@dataclass(frozen=True, eq=False)
class _FrontTask:
    """One scalar solve a driver fans out (picklable)."""

    spec: ParetoSpec
    axis: int
    method: str
    params: AnnealingParams
    base_seed: int
    key: Tuple[int, ...]
    constraints: Tuple[Tuple[int, float, float], ...] = ()
    max_evaluations: Optional[int] = None


@dataclass(frozen=True, eq=False)
class _TaskOutcome:
    """A task's winner plus everything it priced along the way."""

    placement_bytes: bytes
    energy: float
    evaluations: int
    memo: Dict[bytes, Tuple[float, ...]]


def _run_front_task(task: _FrontTask) -> _TaskOutcome:
    """``parallel_map`` worker: one endpoint or ε-constraint solve."""
    spec = task.spec
    pricer = ParetoPricer(spec)
    rng = derived_rng(task.base_seed, *task.key)
    axis_name = spec.objectives[task.axis]
    if axis_name == "latency" and not task.constraints:
        # The latency axis is the scalar optimizer's own objective:
        # sliceable, batchable, dc_sa-compatible.
        objective = spec.latency_objective()
        method = task.method
    else:
        # Generic vector axes cannot be sliced for the D&C seeding;
        # anneal from a random matrix instead (exact stays exact).
        objective = _VectorObjective(pricer, task.axis, task.constraints)
        method = task.method if task.method == "exact" else "only_sa"
    solution = _solve_row(
        spec.n,
        spec.link_limit,
        method=method,
        objective=objective,
        params=task.params,
        rng=rng,
        max_evaluations=task.max_evaluations,
        impl=spec.impl,
    )
    values = pricer.price_many([solution.placement])[0]
    return _TaskOutcome(
        placement_bytes=solution.placement.canonical_bytes(),
        energy=values[task.axis],
        evaluations=solution.evaluations,
        memo=dict(pricer.archive),
    )


def _endpoint_tasks(
    spec: ParetoSpec,
    method: str,
    params: AnnealingParams,
    base_seed: int,
    max_evaluations: Optional[int],
) -> List[_FrontTask]:
    return [
        _FrontTask(
            spec=spec,
            axis=axis,
            method=method,
            params=params,
            base_seed=base_seed,
            key=(_ENDPOINT_KEY, axis),
            max_evaluations=max_evaluations,
        )
        for axis in range(len(spec.objectives))
    ]


def _epsilon_tasks(
    spec: ParetoSpec,
    endpoint_values: Sequence[Tuple[float, ...]],
    method: str,
    params: AnnealingParams,
    base_seed: int,
    points: int,
    max_evaluations: Optional[int],
) -> List[_FrontTask]:
    """Interior ε levels per secondary axis, bounded by the endpoints."""
    values = np.array(endpoint_values, dtype=float)
    primary_span = float(values[:, 0].max() - values[:, 0].min())
    tasks: List[_FrontTask] = []
    for axis_j in range(1, len(spec.objectives)):
        low = float(values[:, axis_j].min())
        high = float(values[:, axis_j].max())
        span = high - low
        if span <= 0:
            continue
        scale = (
            (primary_span if primary_span > 0 else 1.0) / span
        ) * _PENALTY_STIFFNESS
        for t in range(points):
            eps = low + span * (t + 1) / (points + 1)
            tasks.append(
                _FrontTask(
                    spec=spec,
                    axis=0,
                    method=method,
                    params=params,
                    base_seed=base_seed,
                    key=(_EPSILON_KEY, axis_j, t),
                    constraints=((axis_j, float(eps), float(scale)),),
                    max_evaluations=max_evaluations,
                )
            )
    return tasks


# ----------------------------------------------------------------------
# NSGA-II driver
# ----------------------------------------------------------------------

def _rank_and_crowd(
    values: Sequence[Tuple[float, ...]],
) -> Tuple[List[int], List[float]]:
    """Fast nondominated sort ranks + crowding distances (NSGA-II)."""
    m = len(values)
    dominated_by = [0] * m
    dominates_idx: List[List[int]] = [[] for _ in range(m)]
    for i in range(m):
        for j in range(i + 1, m):
            if dominates(values[i], values[j]):
                dominates_idx[i].append(j)
                dominated_by[j] += 1
            elif dominates(values[j], values[i]):
                dominates_idx[j].append(i)
                dominated_by[i] += 1
    ranks = [0] * m
    current = [i for i in range(m) if dominated_by[i] == 0]
    rank = 0
    while current:
        nxt: List[int] = []
        for i in current:
            ranks[i] = rank
            for j in dominates_idx[i]:
                dominated_by[j] -= 1
                if dominated_by[j] == 0:
                    nxt.append(j)
        current = nxt
        rank += 1

    crowd = [0.0] * m
    fronts: Dict[int, List[int]] = {}
    for i, r in enumerate(ranks):
        fronts.setdefault(r, []).append(i)
    k = len(values[0]) if m else 0
    for members in fronts.values():
        for axis in range(k):
            members.sort(key=lambda i: values[i][axis])
            low = values[members[0]][axis]
            high = values[members[-1]][axis]
            crowd[members[0]] = crowd[members[-1]] = float("inf")
            span = high - low
            if span <= 0:
                continue
            for pos in range(1, len(members) - 1):
                gap = (
                    values[members[pos + 1]][axis]
                    - values[members[pos - 1]][axis]
                )
                crowd[members[pos]] += gap / span
    return ranks, crowd


def _nsga_front(
    spec: ParetoSpec,
    pricer: ParetoPricer,
    seed_placements: Sequence[RowPlacement],
    *,
    jobs: int,
    base_seed: int,
    population: int,
    generations: int,
    obs: Instrumentation,
) -> None:
    """Run the population loop; results accumulate in the pricer archive.

    All randomness is drawn in the parent from one derived stream;
    workers only price, so fronts are byte-identical for every ``jobs``.
    """
    limit = effective_link_limit(spec.n, spec.link_limit)
    rng = derived_rng(base_seed, _NSGA_KEY)
    genotypes: List[ConnectionMatrix] = []
    for placement in seed_placements:
        try:
            genotypes.append(ConnectionMatrix.from_placement(placement, limit))
        except InvalidPlacementError:  # pragma: no cover - seeds are valid
            continue
    while len(genotypes) < population:
        genotypes.append(ConnectionMatrix.random(spec.n, limit, rng))
    genotypes = genotypes[:population]

    def evaluate(matrices: List[ConnectionMatrix]):
        decoded = [m.decode() for m in matrices]
        priced = pricer.price_many(decoded, jobs)
        return [
            (m, d.canonical_bytes(), v)
            for m, d, v in zip(matrices, decoded, priced)
        ]

    pop = evaluate(genotypes)
    for _ in range(generations):
        values = [entry[2] for entry in pop]
        ranks, crowd = _rank_and_crowd(values)

        def better(i: int, j: int) -> int:
            if (ranks[i], -crowd[i]) <= (ranks[j], -crowd[j]):
                return i
            return j

        children: List[ConnectionMatrix] = []
        for _ in range(population):
            a = better(int(rng.integers(len(pop))), int(rng.integers(len(pop))))
            b = better(int(rng.integers(len(pop))), int(rng.integers(len(pop))))
            bits_a = pop[a][0].bits
            bits_b = pop[b][0].bits
            if bits_a.size:
                mask = rng.random(bits_a.shape) < 0.5
                child = np.where(mask, bits_a, bits_b)
                flip = rng.random(child.shape) < (1.0 / child.size)
                child = child ^ flip
            else:
                child = bits_a.copy()
            children.append(ConnectionMatrix(spec.n, limit, child))
        combined = pop + evaluate(children)
        values = [entry[2] for entry in combined]
        ranks, crowd = _rank_and_crowd(values)
        order = sorted(
            range(len(combined)),
            key=lambda i: (ranks[i], -crowd[i], combined[i][1]),
        )
        pop = [combined[i] for i in order[:population]]
        if obs.enabled:
            obs.emit(
                "pareto.generation",
                population=len(pop),
                archive=pricer.evaluations,
            )


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

def pareto_front(
    n: int,
    link_limit: int,
    objectives: Optional[Sequence[str]] = None,
    driver: Optional[str] = None,
    gamma: Optional[np.ndarray] = None,
    method: str = "dc_sa",
    params: Optional[AnnealingParams] = None,
    config: Optional[SearchConfig] = None,
    points: int = 5,
    population: int = 16,
    generations: int = 8,
    bandwidth: Optional[BandwidthConfig] = None,
    mix: Optional[PacketMix] = None,
    cost: Optional[HopCostModel] = None,
    obs: Optional[Instrumentation] = None,
) -> ParetoFront:
    """Search the Pareto front of ``P~(n, C)`` on the chosen axes.

    ``objectives`` / ``driver`` default to ``config.objectives`` /
    ``config.pareto`` (then ``("latency", "power")`` / ``"epsilon"``).
    ``gamma`` weights the latency axis and drives the channel-load
    axis; ``None`` means uniform traffic.  ``points`` sets the ε levels
    per secondary axis; ``population`` / ``generations`` size the NSGA
    loop.  A single-objective ``latency`` call degenerates to the exact
    scalar solve -- bitwise-identical to
    :func:`repro.core.optimizer.solve_row_problem` at the same seed.
    """
    config = config or SearchConfig()
    chosen = tuple(
        objectives
        if objectives is not None
        else (config.objectives or ("latency", "power"))
    )
    chosen_driver = driver or config.pareto or "epsilon"
    # Reuse SearchConfig's validation for axes/driver/space coherence.
    config = config.with_updates(objectives=chosen, pareto=chosen_driver)
    if method not in METHODS:
        raise ConfigurationError(
            f"unknown method {method!r}; expected one of {METHODS}"
        )
    if points < 1:
        raise ConfigurationError(f"points must be >= 1, got {points}")
    if population < 2:
        raise ConfigurationError(f"population must be >= 2, got {population}")
    if generations < 0:
        raise ConfigurationError(
            f"generations must be >= 0, got {generations}"
        )
    params = params or AnnealingParams()
    obs = ensure_obs(obs)
    bandwidth = bandwidth or BandwidthConfig()
    mix = mix or PacketMix.paper_default()
    cost = cost or HopCostModel()

    weights = None
    checked_gamma = None
    if gamma is not None:
        checked_gamma = _check_gamma(gamma, n)
        weights = aggregate_weights(checked_gamma, n)
    spec = ParetoSpec(
        n=n,
        link_limit=link_limit,
        objectives=chosen,
        weights=weights,
        gamma=checked_gamma,
        cost=cost,
        base_flit_bits=bandwidth.base_flit_bits,
        mix=mix,
        impl=config.impl,
    )
    base_seed = config.seed if config.seed is not None else fresh_entropy()
    pricer = ParetoPricer(spec)
    if obs.enabled:
        obs.emit(
            "pareto.start",
            n=n,
            link_limit=link_limit,
            driver=chosen_driver,
            objectives=",".join(chosen),
        )

    if len(chosen) == 1:
        # Degenerate single-axis front: the scalar solve itself.  The
        # rng stream matches solve_row_problem's exactly, which is the
        # bitwise endpoint-agreement contract both drivers share.
        rng = ensure_rng(config.seed)
        if chosen[0] == "latency":
            solution = _solve_row(
                n,
                link_limit,
                method=method,
                objective=spec.latency_objective(),
                params=params,
                rng=rng,
                max_evaluations=config.max_evaluations,
                impl=config.impl,
            )
        else:
            solution = _solve_row(
                n,
                link_limit,
                method=method if method == "exact" else "only_sa",
                objective=_VectorObjective(pricer, 0),
                params=params,
                rng=rng,
                max_evaluations=config.max_evaluations,
                impl=config.impl,
            )
        pricer.price_many([solution.placement], config.jobs)
    else:
        endpoint_outcomes = parallel_map(
            _run_front_task,
            _endpoint_tasks(
                spec, method, params, base_seed, config.max_evaluations
            ),
            config.jobs,
        )
        for outcome in endpoint_outcomes:
            pricer.merge(outcome.memo)
        endpoint_placements = [
            RowPlacement.from_canonical_bytes(o.placement_bytes)
            for o in endpoint_outcomes
        ]
        endpoint_values = pricer.price_many(endpoint_placements, config.jobs)
        if chosen_driver == "epsilon":
            tasks = _epsilon_tasks(
                spec, endpoint_values, method, params, base_seed, points,
                config.max_evaluations,
            )
            for outcome in parallel_map(_run_front_task, tasks, config.jobs):
                pricer.merge(outcome.memo)
        else:
            _nsga_front(
                spec,
                pricer,
                endpoint_placements,
                jobs=config.jobs,
                base_seed=base_seed,
                population=population,
                generations=generations,
                obs=obs,
            )

    front_entries = nondominated(
        (values, key) for key, values in pricer.archive.items()
    )
    front_points = tuple(
        ParetoPoint(
            placement=RowPlacement.from_canonical_bytes(key),
            values=values,
        )
        for values, key in front_entries
    )
    front = ParetoFront(
        n=n,
        link_limit=link_limit,
        objectives=chosen,
        driver=chosen_driver,
        method=method,
        points=front_points,
        evaluations=pricer.evaluations,
        seed=config.seed,
    )
    if not obs.is_null:
        obs.metrics.counter("pareto_points").inc(len(front_points))
        obs.metrics.counter("pareto_evaluations").inc(front.evaluations)
    if obs.enabled:
        obs.emit(
            "pareto.front",
            n=n,
            link_limit=link_limit,
            size=len(front_points),
            evaluations=front.evaluations,
        )
    return front


def pareto_sweep(
    n: int,
    link_limits: Optional[Sequence[int]] = None,
    **kwargs,
) -> Dict[int, ParetoFront]:
    """One front per cross-section limit (default ``C in {2, 3, 4}``).

    Keyword arguments forward to :func:`pareto_front`; each front is an
    independent search (shared base seed, disjoint derived streams by
    construction since the spec differs only in ``link_limit``).
    """
    limits = tuple(link_limits) if link_limits is not None else (2, 3, 4)
    return {c: pareto_front(n, c, **kwargs) for c in limits}
