"""Search spaces beyond the replicated row (ROADMAP item 4).

The paper's optimizer searches one :class:`~repro.topology.row
.RowPlacement` and replicates it across the mesh.  This module
generalizes the whole search stack to two mesh-level spaces built on
:mod:`repro.topology.grid`:

* ``"hetero"`` -- independent per-row placements, each under the row
  budget ``C`` (:class:`~repro.topology.grid.HeteroPlacement`),
* ``"grid2d"`` -- arbitrary same-row horizontal chords under the pooled
  per-cut budget (:class:`~repro.topology.grid.Grid2DPlacement`).

It provides the mesh objective (:class:`MeshObjective`), SA move
kernels implementing the same state protocol as
:class:`~repro.core.connection_matrix.ConnectionMatrix` (so
:func:`~repro.core.annealing.anneal` and ``anneal_population`` run
unchanged), exhaustive searches at small ``n``, and the
:func:`solve_space` / :func:`optimize_space` entry points the CLI's
``--space`` flag routes to.

Reduction-parity contract
-------------------------
The load-bearing correctness property: an all-rows-equal design prices
**bit-identically** to the replicated-1D ``RowObjective`` path.
:class:`MeshObjective` groups equal rows (by ``canonical_bytes``) and
combines group energies as ``sum((count_g / R) * e_g)``; with a single
group that sum is exactly ``0.0 + 1.0 * e == e``, the batched row
energy -- which :meth:`RowObjective.evaluate_many` guarantees equals
the scalar ``RowObjective(p)`` bit for bit.  A naive mean of ``R``
identical floats would *not* be bit-exact for non-power-of-two ``R``
(e.g. ``n = 6``); the group combine is what turns every existing
golden row value into a free oracle for the new spaces.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.api import SEARCH_SPACES, SearchConfig
from repro.core.annealing import (
    AnnealingParams,
    AnnealingResult,
    anneal,
    anneal_population,
)
from repro.core.branch_bound import effective_link_limit, exhaustive_matrix_search
from repro.core.connection_matrix import ConnectionMatrix
from repro.core.divide_conquer import initial_solution
from repro.core.latency import (
    BandwidthConfig,
    PacketMix,
    RowObjective,
    row_head_latency_matrix,
)
from repro.core.optimizer import METHODS
from repro.obs.instrument import Instrumentation, ensure_obs
from repro.routing.impls import check_impl
from repro.routing.shortest_path import (
    INF,
    HopCostModel,
    floyd_warshall_distances_batch,
)
from repro.topology.grid import Grid2DPlacement, HeteroPlacement, MeshRowsPlacement
from repro.topology.row import RowPlacement
from repro.util.errors import ConfigurationError, InvalidPlacementError
from repro.util.rngtools import derived_rng, ensure_rng, fresh_entropy

#: The mesh-level spaces this module searches (``"row"`` is the
#: classic path in :mod:`repro.core.optimizer`).
MESH_SPACES = tuple(s for s in SEARCH_SPACES if s != "row")


def _check_space(space: str) -> None:
    if space not in MESH_SPACES:
        raise ConfigurationError(
            f"unknown mesh search space {space!r}; expected one of {MESH_SPACES}"
        )


def _space_class(space: str):
    _check_space(space)
    return HeteroPlacement if space == "hetero" else Grid2DPlacement


def placement_space(placement: MeshRowsPlacement) -> str:
    """The space name of a mesh placement instance."""
    if isinstance(placement, Grid2DPlacement):
        return "grid2d"
    if isinstance(placement, HeteroPlacement):
        return "hetero"
    raise ConfigurationError(
        f"not a mesh-space placement: {type(placement).__name__}"
    )


# ----------------------------------------------------------------------
# Mesh objective
# ----------------------------------------------------------------------

def _group_rows(rows: Sequence[RowPlacement]):
    """Group rows by ``canonical_bytes`` in first-occurrence order.

    Returns ``(reps, counts, keys)``; the combine rule walks groups in
    this order, so scalar and batched evaluation share one float
    operation sequence per design.
    """
    reps: List[RowPlacement] = []
    counts: List[int] = []
    keys: List[bytes] = []
    index: Dict[bytes, int] = {}
    for row in rows:
        key = row.canonical_bytes()
        pos = index.get(key)
        if pos is None:
            index[key] = len(reps)
            reps.append(row)
            counts.append(1)
            keys.append(key)
        else:
            counts[pos] += 1
    return reps, counts, keys


@dataclass(frozen=True)
class MeshObjective:
    """Mean row head latency of a whole mesh design.

    The mesh energy is the row-count-weighted mean of the distinct row
    energies: ``sum over groups of (count_g / R) * e_g`` where rows are
    grouped by ``canonical_bytes`` in first-occurrence order and each
    ``e_g`` comes from the same batched Floyd-Warshall path
    :class:`~repro.core.latency.RowObjective` uses.  A single group
    reduces to exactly ``1.0 * e``, which is the reduction-parity
    guarantee (see module docstring).

    ``weights`` is either a shared ``(n, n)`` traffic matrix applied to
    every row, or a per-row ``(R, n, n)`` stack -- the latter is what
    makes heterogeneous placements strictly win (with shared weights
    the objective separates across rows, so the exhaustive hetero
    optimum is the replicated row optimum).  ``impl`` and ``obs``
    forward to the underlying :class:`RowObjective`.
    """

    cost: HopCostModel = HopCostModel()
    weights: tuple | None = None
    impl: str = "vectorized"
    obs: Optional[object] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        check_impl(self.impl)
        if self.weights is None:
            return
        w = np.asarray(self.weights, dtype=float)
        if w.ndim == 2:
            frozen = tuple(map(tuple, w.tolist()))
        elif w.ndim == 3:
            frozen = tuple(tuple(map(tuple, m)) for m in w.tolist())
        else:
            raise ConfigurationError(
                f"weights must be (n, n) shared or (R, n, n) per-row; "
                f"got shape {w.shape}"
            )
        object.__setattr__(self, "weights", frozen)

    @property
    def per_row_weights(self) -> bool:
        """True when ``weights`` is a per-row ``(R, n, n)`` stack."""
        return (
            self.weights is not None
            and isinstance(self.weights[0][0], tuple)
        )

    def row_objective(self, row_index: Optional[int] = None) -> RowObjective:
        """The :class:`RowObjective` pricing one row of a design."""
        if self.weights is None:
            w = None
        elif self.per_row_weights:
            if row_index is None:
                raise ConfigurationError(
                    "per-row weights need an explicit row index"
                )
            w = self.weights[row_index]
        else:
            w = self.weights
        return RowObjective(cost=self.cost, weights=w, impl=self.impl, obs=self.obs)

    def _check_design(self, design: MeshRowsPlacement) -> None:
        if self.per_row_weights and len(self.weights) != len(design.rows):
            raise ConfigurationError(
                f"per-row weights cover {len(self.weights)} rows, design "
                f"has {len(design.rows)}"
            )

    def __call__(self, design: MeshRowsPlacement) -> float:
        self._check_design(design)
        if self.per_row_weights:
            vals = [
                self.row_objective(r)(row) for r, row in enumerate(design.rows)
            ]
            return float(sum(vals) / len(vals))
        reps, counts, _ = _group_rows(design.rows)
        energies = self.row_objective().evaluate_many(reps)
        if len(reps) == 1:
            # Exactly the batched row energy: the reduction-parity case.
            return float(energies[0])
        R = len(design.rows)
        return float(sum(
            (c / R) * e for c, e in zip(counts, energies.tolist())
        ))

    def evaluate_many(self, designs, folded: bool = False) -> np.ndarray:
        """Price a population of whole designs, batching all distinct rows.

        Returns ``energies[i] == self(designs[i])`` bit for bit: every
        distinct row across the whole population is priced once by one
        ``RowObjective.evaluate_many`` stack, and per-row energies from
        the batched kernel are batch-composition-independent (each
        Floyd-Warshall slice is relaxed elementwise), so the per-design
        group combine sees the same floats as the scalar path.

        ``folded`` is accepted for :class:`~repro.core.annealing
        .MemoizedObjective` compatibility; mesh designs are already
        keyed by their own canonical bytes, so the flag only asserts
        the batch is pairwise distinct and never changes values.
        """
        designs = list(designs)
        if not designs:
            return np.empty(0, dtype=float)
        if self.per_row_weights:
            return np.asarray([self(d) for d in designs], dtype=float)
        grouped = []
        reps_by_key: Dict[bytes, RowPlacement] = {}
        for design in designs:
            self._check_design(design)
            reps, counts, keys = _group_rows(design.rows)
            grouped.append((len(design.rows), counts, keys))
            for rep, key in zip(reps, keys):
                if key not in reps_by_key:
                    reps_by_key[key] = rep
        energies = self.row_objective().evaluate_many(list(reps_by_key.values()))
        by_key = dict(zip(reps_by_key.keys(), energies.tolist()))
        out = []
        for R, counts, keys in grouped:
            if len(keys) == 1:
                out.append(by_key[keys[0]])
            else:
                out.append(float(sum(
                    (c / R) * by_key[k] for c, k in zip(counts, keys)
                )))
        return np.asarray(out, dtype=float)


# ----------------------------------------------------------------------
# Distance stacks over whole designs
# ----------------------------------------------------------------------

def mesh_head_distance_stack(
    design: MeshRowsPlacement,
    cost: HopCostModel | None = None,
    impl: str = "vectorized",
) -> np.ndarray:
    """Per-row all-pairs head latencies, stacked as ``(R, n, n)``.

    Slice ``r`` is bitwise :func:`~repro.core.latency
    .row_head_latency_matrix` of ``design.rows[r]`` -- the distance
    half of the reduction-parity contract.
    """
    return np.stack([
        row_head_latency_matrix(row, cost, impl=impl) for row in design.rows
    ])


def grid2d_weight_stack(
    design: MeshRowsPlacement,
    cost: HopCostModel | None = None,
) -> np.ndarray:
    """Directional weight stack of the full ``n^2``-node X-subgraph.

    Shape ``(2, n^2, n^2)``: slice 0 holds the left-to-right one-hop
    costs of every in-row horizontal link (locals and chords), slice 1
    the right-to-left ones; there are no inter-row edges (the Y leg is
    handled separately under dimension-order routing).  The matrix is
    block-diagonal by row, so a batched Floyd-Warshall over it relaxes
    each row's block with exactly the per-row kernel's operations --
    off-row intermediates only ever contribute ``inf``, and
    ``min(x, inf)`` returns ``x`` unchanged -- making each block
    bitwise equal to the ``(2, n, n)`` row solve.
    """
    cost = cost or HopCostModel()
    n = design.n
    size = n * n
    w = np.full((2, size, size), INF)
    idx = np.arange(size)
    w[:, idx, idx] = 0.0
    for r, row in enumerate(design.rows):
        base = r * n
        for i, j in row.all_links():  # i < j by construction
            c = cost.hop_cost(j - i)
            w[0, base + i, base + j] = c
            w[1, base + j, base + i] = c
    return w


def grid2d_head_distances(
    design: MeshRowsPlacement,
    cost: HopCostModel | None = None,
) -> np.ndarray:
    """All-pairs zero-load head latency on the full 2D mesh.

    XY routing with the design's horizontal chords and plain mesh
    columns: the latency from ``(r1, c1)`` to ``(r2, c2)`` is the X leg
    within row ``r1`` plus the plain-column Y leg between rows.  Node
    ``(r, c)`` has index ``r * n + c``.  The mean of this matrix equals
    the X-objective energy plus the plain-mesh column mean -- a
    cross-check the parity suite pins.
    """
    cost = cost or HopCostModel()
    n = design.n
    stack = floyd_warshall_distances_batch(grid2d_weight_stack(design, cost))
    upper = np.triu(np.ones((n, n), dtype=bool), k=1)
    dx = np.empty((n, n, n))
    for r in range(n):
        lo, hi = r * n, (r + 1) * n
        block = np.where(upper, stack[0, lo:hi, lo:hi], stack[1, lo:hi, lo:hi])
        np.fill_diagonal(block, 0.0)
        dx[r] = block
    dy = row_head_latency_matrix(RowPlacement.mesh(n), cost)
    full = dx[:, :, None, :] + dy[:, None, :, None]
    return full.reshape(n * n, n * n)


# ----------------------------------------------------------------------
# SA move kernels (ConnectionMatrix state protocol)
# ----------------------------------------------------------------------

class HeteroMatrix:
    """SA state over :class:`HeteroPlacement`: stacked per-row bits.

    ``bits[r]`` is row ``r``'s :class:`~repro.core.connection_matrix
    .ConnectionMatrix` bit plane, so every reachable state decodes to a
    valid hetero placement (each plane decodes valid at budget ``C``)
    and every valid placement is reachable.  Implements the same state
    protocol as ``ConnectionMatrix`` (``copy`` / ``decode`` / ``flip``
    / ``random_move`` / ``num_connection_points`` / ``n`` /
    ``link_limit``), so :func:`~repro.core.annealing.anneal` and
    ``anneal_population`` drive it unchanged; a move flips one bit of
    one row and consumes exactly one RNG draw, like the row kernel.
    """

    def __init__(self, n: int, link_limit: int, bits: np.ndarray) -> None:
        expected = (n,) + ConnectionMatrix.shape(n, link_limit)
        bits = np.asarray(bits, dtype=bool)
        if bits.shape != expected:
            raise ConfigurationError(
                f"hetero bits shape {bits.shape} != {expected} for "
                f"n={n}, C={link_limit}"
            )
        self.n = n
        self.link_limit = link_limit
        self.bits = bits

    @classmethod
    def zeros(cls, n: int, link_limit: int) -> "HeteroMatrix":
        shape = (n,) + ConnectionMatrix.shape(n, link_limit)
        return cls(n, link_limit, np.zeros(shape, dtype=bool))

    @classmethod
    def random(cls, n: int, link_limit: int, rng=None) -> "HeteroMatrix":
        gen = ensure_rng(rng)
        shape = (n,) + ConnectionMatrix.shape(n, link_limit)
        return cls(n, link_limit, gen.random(shape) < 0.5)

    @classmethod
    def from_placement(
        cls, placement: MeshRowsPlacement, link_limit: int
    ) -> "HeteroMatrix":
        planes = [
            ConnectionMatrix.from_placement(row, link_limit).bits
            for row in placement.rows
        ]
        return cls(placement.n, link_limit, np.stack(planes))

    @property
    def num_connection_points(self) -> int:
        return self.bits.size

    def random_move(self, rng) -> Tuple[int, int, int]:
        gen = ensure_rng(rng)
        size = self.bits.size
        if size == 0:
            raise ConfigurationError(
                f"no connection points for n={self.n}, C={self.link_limit}"
            )
        flat = int(gen.integers(size))
        plane = self.bits.shape[1] * self.bits.shape[2]
        r, rem = divmod(flat, plane)
        row, layer = divmod(rem, self.bits.shape[2])
        return (r, row, layer)

    def flip(self, r: int, row: int, layer: int) -> None:
        self.bits[r, row, layer] = not self.bits[r, row, layer]

    def copy(self) -> "HeteroMatrix":
        return HeteroMatrix(self.n, self.link_limit, self.bits.copy())

    def decode(self) -> HeteroPlacement:
        rows = tuple(
            ConnectionMatrix(self.n, self.link_limit, self.bits[r]).decode()
            for r in range(self.n)
        )
        return HeteroPlacement(n=self.n, rows=rows)


class Grid2DChords:
    """SA state over :class:`Grid2DPlacement`: a gated chord set.

    The state is the set of present chords ``(r, i, j)`` plus the
    per-cut express totals.  A move toggles one chord: removes are
    always feasible, and an add that would exceed the pooled budget is
    a *no-op* -- the candidate then equals the current state, prices
    identically (a guaranteed memo hit), has delta 0 and is always
    accepted, so the annealer's undo path never needs to reverse a
    gated move asymmetrically.  Every reachable state is feasible and
    every feasible chord set is reachable (add chords one at a time;
    any feasible set stays feasible prefix-wise when added in any
    order, since constraints are monotone).
    """

    def __init__(self, n: int, link_limit: int, chords=()) -> None:
        if n < 2:
            raise ConfigurationError(f"need n >= 2, got {n}")
        if link_limit < 1:
            raise ConfigurationError(f"need C >= 1, got {link_limit}")
        self.n = n
        self.link_limit = link_limit
        self.sites: Tuple[Tuple[int, int, int], ...] = tuple(
            (r, i, j)
            for r in range(n)
            for i in range(n)
            for j in range(i + 2, n)
        )
        #: Pooled express tracks per vertical cut: ``n * (C - 1)``.
        self.express_budget = n * (link_limit - 1)
        self._chords: set = set()
        self._totals = np.zeros(max(n - 1, 0), dtype=np.int64)
        for r, i, j in sorted(chords):
            if not (0 <= r < n and 0 <= i and i + 2 <= j < n):
                raise InvalidPlacementError(
                    f"bad chord {(r, i, j)} for n={n}"
                )
            if (r, i, j) in self._chords:
                continue
            if np.any(self._totals[i:j] + 1 > self.express_budget):
                raise InvalidPlacementError(
                    f"initial chords violate the pooled budget "
                    f"{self.express_budget} at C={link_limit}"
                )
            self._chords.add((r, i, j))
            self._totals[i:j] += 1

    @classmethod
    def from_placement(
        cls, placement: MeshRowsPlacement, link_limit: int
    ) -> "Grid2DChords":
        return cls(placement.n, link_limit, placement.express_chords())

    @classmethod
    def random(cls, n: int, link_limit: int, rng=None) -> "Grid2DChords":
        """A random feasible state: one gated toggle walk over the sites.

        Performs ``len(sites)`` random toggles from the empty state --
        a feasibility-preserving random walk whose endpoint plays the
        role ``ConnectionMatrix.random`` plays for the row space.
        """
        gen = ensure_rng(rng)
        state = cls(n, link_limit)
        for _ in range(state.num_connection_points):
            state.flip(*state.random_move(gen))
        return state

    @property
    def num_connection_points(self) -> int:
        # With C = 1 the pooled budget is zero: no chord can ever be
        # added, so the annealer's empty-space early return applies.
        if self.express_budget == 0:
            return 0
        return len(self.sites)

    @property
    def chords(self) -> Tuple[Tuple[int, int, int], ...]:
        return tuple(sorted(self._chords))

    def express_totals(self) -> Tuple[int, ...]:
        """Express links per vertical cut (bookkeeping view)."""
        return tuple(int(t) for t in self._totals)

    def random_move(self, rng) -> Tuple[int, int, int]:
        gen = ensure_rng(rng)
        if self.num_connection_points == 0:
            raise ConfigurationError(
                f"no chord sites for n={self.n}, C={self.link_limit}"
            )
        return self.sites[int(gen.integers(len(self.sites)))]

    def flip(self, r: int, i: int, j: int) -> None:
        site = (r, i, j)
        if site in self._chords:
            self._chords.remove(site)
            self._totals[i:j] -= 1
            return
        if np.any(self._totals[i:j] + 1 > self.express_budget):
            return  # gated: infeasible add is a no-op
        self._chords.add(site)
        self._totals[i:j] += 1

    def copy(self) -> "Grid2DChords":
        return Grid2DChords(self.n, self.link_limit, self._chords)

    def decode(self) -> Grid2DPlacement:
        return Grid2DPlacement.from_chords(self.n, self._chords)


def _state_from_placement(space: str, placement: MeshRowsPlacement, limit: int):
    if space == "hetero":
        return HeteroMatrix.from_placement(placement, limit)
    return Grid2DChords.from_placement(placement, limit)


def _random_state(space: str, n: int, limit: int, gen):
    if space == "hetero":
        return HeteroMatrix.random(n, limit, gen)
    return Grid2DChords.random(n, limit, gen)


# ----------------------------------------------------------------------
# Exhaustive search at small n
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SpaceExactResult:
    """Optimal mesh design found by exhaustive search."""

    placement: MeshRowsPlacement
    energy: float
    evaluations: int
    states_visited: int
    wall_time_s: float


def exhaustive_hetero_search(
    n: int,
    link_limit: int,
    objective: MeshObjective | None = None,
) -> SpaceExactResult:
    """Exhaustive hetero optimum, exploiting row separability.

    The hetero objective is a (count-weighted) mean of independent
    per-row energies and the feasibility rule is per-row, so the space
    separates: each row's optimum can be found independently.  With
    shared weights every row faces the identical subproblem, so one
    replicated :func:`exhaustive_matrix_search` winner is the hetero
    optimum and -- by reduction parity -- ``E(hetero) == E(row)``
    bitwise.  Per-row weights solve one exhaustive search per row and
    can beat the best replicated design strictly.
    """
    objective = objective or MeshObjective()
    limit = effective_link_limit(n, link_limit)
    start = time.perf_counter()
    if not objective.per_row_weights:
        exact = exhaustive_matrix_search(n, limit, objective.row_objective())
        placement = HeteroPlacement.replicate(exact.placement)
        return SpaceExactResult(
            placement=placement,
            energy=objective(placement),
            evaluations=exact.evaluations,
            states_visited=exact.states_visited,
            wall_time_s=time.perf_counter() - start,
        )
    rows: List[RowPlacement] = []
    evaluations = states = 0
    for r in range(n):
        exact = exhaustive_matrix_search(n, limit, objective.row_objective(r))
        rows.append(exact.placement)
        evaluations += exact.evaluations
        states += exact.states_visited
    placement = HeteroPlacement(n=n, rows=tuple(rows))
    return SpaceExactResult(
        placement=placement,
        energy=objective(placement),
        evaluations=evaluations,
        states_visited=states,
        wall_time_s=time.perf_counter() - start,
    )


#: Largest row bit count :func:`exhaustive_replicated_search` enumerates.
_REPLICATED_ENUM_MAX_BITS = 16


def exhaustive_replicated_search(
    n: int,
    link_limit: int,
    objective: MeshObjective,
    space: str = "hetero",
) -> SpaceExactResult:
    """Row-space exhaustive optimum under a :class:`MeshObjective`.

    The oracle for "the best *replicated* design" when the objective
    cannot be expressed as a single :class:`RowObjective` (per-row
    weights): enumerates every distinct row placement without mirror
    folding -- a replicated design and its mirror price differently
    under asymmetric traffic -- and prices each replicated embedding
    with the mesh objective.  First strict minimum wins, matching the
    row-space exact search's tie-breaking.
    """
    cls = _space_class(space)
    limit = effective_link_limit(n, link_limit)
    start = time.perf_counter()
    rows, layers = ConnectionMatrix.shape(n, limit)
    bits = rows * layers
    if bits > _REPLICATED_ENUM_MAX_BITS:
        raise ConfigurationError(
            f"replicated enumeration needs {bits} bits > "
            f"{_REPLICATED_ENUM_MAX_BITS}; use a smaller instance"
        )
    seen: Dict[bytes, RowPlacement] = {}
    for code in range(1 << bits):
        plane = np.array(
            [(code >> b) & 1 for b in range(bits)], dtype=bool
        ).reshape(rows, layers)
        p = ConnectionMatrix(n, limit, plane).decode()
        seen.setdefault(p.canonical_bytes(), p)
    candidates = [cls.replicate(p) for p in seen.values()]
    energies = objective.evaluate_many(candidates)
    best = 0
    for k in range(1, len(candidates)):
        if energies[k] < energies[best]:
            best = k
    return SpaceExactResult(
        placement=candidates[best],
        energy=float(energies[best]),
        evaluations=len(candidates),
        states_visited=1 << bits,
        wall_time_s=time.perf_counter() - start,
    )


#: Largest mesh size the grid2d exhaustive search accepts (the per-row
#: chord count is (n-1)(n-2)/2, so n = 6 means 2^10 row candidates).
GRID2D_EXACT_MAX_N = 6

#: Bound-pruning slack: ``(R - r) * e`` can round above the sequential
#: float sum by ulps, so prune only when the bound clears best by this.
_BOUND_EPS = 1e-9


def exhaustive_grid2d_search(
    n: int,
    link_limit: int,
    objective: MeshObjective | None = None,
) -> SpaceExactResult:
    """Exhaustive grid2d optimum via Pareto-pruned DFS over row designs.

    Enumerates every per-row chord subset feasible on its own, prices
    all candidates with one batched Floyd-Warshall population stack,
    prunes candidates dominated in (energy, per-cut express vector),
    then assigns one candidate per row by depth-first search with
    running pooled cut budgets.  Rows are exchangeable under shared
    weights, so the DFS only visits non-decreasing candidate sequences;
    the admissible bound ``partial + rows_left * e_next`` (with an ulp
    slack) cuts the rest.  The replicated row-space optimum is also
    priced, and wins ties -- which pins ``E(grid2d) <= E(row)``
    bitwise whenever pooling does not strictly help.

    Per-row weights are not supported here (rows stop being
    exchangeable and the search space is better served by the hetero
    separable solve); shared ``(n, n)`` weights are fine.
    """
    objective = objective or MeshObjective()
    if objective.per_row_weights:
        raise ConfigurationError(
            "grid2d exhaustive search supports shared weights only"
        )
    if n > GRID2D_EXACT_MAX_N:
        raise ConfigurationError(
            f"grid2d exhaustive search supports n <= {GRID2D_EXACT_MAX_N}, "
            f"got n={n}"
        )
    limit = effective_link_limit(n, link_limit)
    start = time.perf_counter()

    chords = [(i, j) for i in range(n) for j in range(i + 2, n)]
    m = len(chords)
    budget = n * (limit - 1)
    codes = np.arange(1 << m, dtype=np.int64)
    bitmat = (codes[:, None] >> np.arange(m)[None, :]) & 1  # (2^m, m)
    inc = np.zeros((m, max(n - 1, 1)), dtype=np.int64)
    for a, (i, j) in enumerate(chords):
        inc[a, i:j] = 1
    cuts = bitmat @ inc  # express count per cut, per candidate row
    feasible = (cuts <= budget).all(axis=1)
    cand_bits = bitmat[feasible]
    cand_cuts = cuts[feasible]

    placements = [
        RowPlacement(n, frozenset(
            chords[a] for a in range(m) if row_bits[a]
        ))
        for row_bits in cand_bits
    ]
    energies = objective.row_objective().evaluate_many(placements)

    # Sort by energy (stable on the enumeration index), then keep only
    # the Pareto frontier: a candidate is dominated when an earlier
    # kept one is no worse in energy AND no hungrier on every cut.
    order = sorted(range(len(placements)), key=lambda k: (energies[k], k))
    kept: List[int] = []
    kept_cuts: List[np.ndarray] = []
    for k in order:
        cv = cand_cuts[k]
        if any((kc <= cv).all() for kc in kept_cuts):
            continue
        kept.append(k)
        kept_cuts.append(cv)
    e_kept = [float(energies[k]) for k in kept]
    cuts_kept = [tuple(int(x) for x in cand_cuts[k]) for k in kept]
    num_kept = len(kept)
    num_cuts = len(cuts_kept[0]) if cuts_kept else 0

    best_energy = math.inf
    best_rows: Optional[List[int]] = None
    states = 0

    def dfs(r: int, floor: int, budget_left: Tuple[int, ...],
            partial: float, chosen: List[int]) -> None:
        nonlocal best_energy, best_rows, states
        states += 1
        if r == n:
            if partial < best_energy:
                best_energy = partial
                best_rows = list(chosen)
            return
        for idx in range(floor, num_kept):
            e = e_kept[idx]
            if partial + (n - r) * e > best_energy + _BOUND_EPS:
                break  # energies ascend: nothing later can improve
            cv = cuts_kept[idx]
            ok = True
            for t in range(num_cuts):
                if cv[t] > budget_left[t]:
                    ok = False
                    break
            if not ok:
                continue
            chosen.append(idx)
            dfs(r + 1, idx,
                tuple(b - c for b, c in zip(budget_left, cv)),
                partial + e, chosen)
            chosen.pop()

    dfs(0, 0, (budget,) * num_cuts, 0.0, [])
    assert best_rows is not None  # the all-mesh assignment is always feasible
    placement = Grid2DPlacement(n=n, rows=tuple(
        placements[kept[idx]] for idx in best_rows
    ))
    energy = objective(placement)

    # Tie-break toward the replicated row optimum: when pooling does
    # not strictly help, the result then prices bit-identically to the
    # row-space golden value (reduction parity made actionable).
    row_exact = exhaustive_matrix_search(n, limit, objective.row_objective())
    replicated = Grid2DPlacement.replicate(row_exact.placement)
    rep_energy = objective(replicated)
    if rep_energy <= energy:
        placement, energy = replicated, rep_energy
    return SpaceExactResult(
        placement=placement,
        energy=energy,
        evaluations=len(placements) + row_exact.evaluations,
        states_visited=states + row_exact.states_visited,
        wall_time_s=time.perf_counter() - start,
    )


def exhaustive_space_search(
    n: int,
    link_limit: int,
    space: str,
    objective: MeshObjective | None = None,
) -> SpaceExactResult:
    """Dispatch to the per-space exhaustive search."""
    _check_space(space)
    if space == "hetero":
        return exhaustive_hetero_search(n, link_limit, objective)
    return exhaustive_grid2d_search(n, link_limit, objective)


# ----------------------------------------------------------------------
# Solve / optimize entry points
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SpaceSolution:
    """Solution of one ``P~(n, C)`` instance in a mesh-level space."""

    n: int
    link_limit: int
    space: str
    placement: MeshRowsPlacement
    energy: float
    method: str
    evaluations: int
    wall_time_s: float
    annealing: Optional[AnnealingResult] = None
    exact: Optional[SpaceExactResult] = None


def solve_space(
    n: int,
    link_limit: int,
    space: str,
    method: str = "dc_sa",
    objective: MeshObjective | None = None,
    params: AnnealingParams | None = None,
    obs: Optional[Instrumentation] = None,
    config: Optional[SearchConfig] = None,
) -> SpaceSolution:
    """Solve ``P~(n, C)`` in a mesh-level space.

    The mesh twin of :func:`repro.core.optimizer.solve_row_problem`:
    ``"exact"`` runs the per-space exhaustive search, ``"dc_sa"`` seeds
    simulated annealing with the replicated D&C row solution (the same
    warm start the row space gets, embedded in the larger space) and
    ``"only_sa"`` starts from a random feasible state.  ``config.chains
    > 1`` runs a lockstep :func:`~repro.core.annealing
    .anneal_population` with one derived RNG stream per chain
    (``derived_rng(seed, C, chain)``); the best chain wins, ties to the
    lowest index.  Multi-process ``restarts``/``jobs`` and the
    incremental engine stay row-space-only (``SearchConfig`` enforces
    this).
    """
    _check_space(space)
    if method not in METHODS:
        raise ConfigurationError(
            f"unknown method {method!r}; expected one of {METHODS}"
        )
    config = config or SearchConfig()
    obs = ensure_obs(obs)
    if objective is None:
        objective = MeshObjective(
            impl=config.impl, obs=None if obs.is_null else obs
        )
    elif not isinstance(objective, MeshObjective):
        raise ConfigurationError(
            f"mesh-space solves need a MeshObjective (or None); got "
            f"{type(objective).__name__}"
        )
    params = params or AnnealingParams()
    limit = effective_link_limit(n, link_limit)
    start = time.perf_counter()
    if obs.enabled:
        obs.emit("solve.start", n=n, link_limit=link_limit,
                 method=method, space=space)

    if method == "exact":
        with obs.span("solve.exact"):
            exact = exhaustive_space_search(n, limit, space, objective)
        return SpaceSolution(
            n=n, link_limit=link_limit, space=space,
            placement=exact.placement, energy=exact.energy, method=method,
            evaluations=exact.evaluations,
            wall_time_s=time.perf_counter() - start, exact=exact,
        )

    cls = _space_class(space)
    seed_placement = None
    seed_energy: Optional[float] = None
    seed_evaluations = 0
    state0 = None
    if method == "dc_sa":
        if objective.per_row_weights:
            rows: List[RowPlacement] = []
            for r in range(n):
                s = initial_solution(n, limit, objective.row_objective(r), obs=obs)
                rows.append(s.placement)
                seed_evaluations += s.evaluations
            seed_placement = cls(n=n, rows=tuple(rows))
        else:
            s = initial_solution(n, limit, objective.row_objective(), obs=obs)
            seed_placement = cls.replicate(s.placement)
            seed_evaluations = s.evaluations
        seed_energy = objective(seed_placement)
        state0 = _state_from_placement(space, seed_placement, limit)

    chains = config.chains
    if chains > 1:
        base_seed = fresh_entropy() if config.seed is None else config.seed
        rngs = [derived_rng(base_seed, limit, k) for k in range(chains)]
        if state0 is not None:
            initials = [state0 for _ in range(chains)]
        else:
            initials = [
                _random_state(space, n, limit, gen) for gen in rngs
            ]
        with obs.span("solve.anneal"):
            results = anneal_population(
                initials, objective, params=params, rngs=rngs,
                max_evaluations=config.max_evaluations, obs=obs,
            )
        best = min(range(chains), key=lambda k: (results[k].best_energy, k))
        sa = results[best]
        sa_evaluations = sum(r.evaluations for r in results)
    else:
        gen = ensure_rng(config.seed)
        if state0 is None:
            state0 = _random_state(space, n, limit, gen)
        with obs.span("solve.anneal"):
            sa = anneal(
                state0, objective, params=params, rng=gen,
                max_evaluations=config.max_evaluations, obs=obs,
                progress_every=config.metrics_every,
            )
        sa_evaluations = sa.evaluations
    placement, energy = sa.best_placement, sa.best_energy
    if seed_energy is not None and seed_energy < energy:
        placement, energy = seed_placement, seed_energy
    return SpaceSolution(
        n=n, link_limit=link_limit, space=space, placement=placement,
        energy=energy, method=method,
        evaluations=sa_evaluations + seed_evaluations,
        wall_time_s=time.perf_counter() - start, annealing=sa,
    )


@dataclass(frozen=True)
class SpaceDesignPoint:
    """A fully-costed mesh design: placement + Eq. 2 breakdown.

    ``energy`` is the X-dimension objective (mean row head latency over
    rows); ``head_latency`` is ``2 * energy`` because the winning
    solution is reused per dimension (see
    :meth:`~repro.topology.grid.MeshRowsPlacement.mesh_topology`), the
    same Eq. 5 rule the replicated design uses -- which keeps total
    latencies comparable across all three spaces.
    """

    n: int
    space: str
    link_limit: int
    flit_bits: int
    placement: MeshRowsPlacement
    energy: float
    head_latency: float
    serialization: float

    @property
    def total_latency(self) -> float:
        return self.head_latency + self.serialization


def space_design_point(
    placement: MeshRowsPlacement,
    link_limit: int,
    bandwidth: BandwidthConfig | None = None,
    mix: PacketMix | None = None,
    cost: HopCostModel | None = None,
) -> SpaceDesignPoint:
    """Cost a mesh placement at a link limit into a :class:`SpaceDesignPoint`."""
    bandwidth = bandwidth or BandwidthConfig()
    mix = mix or PacketMix.paper_default()
    placement.validate(link_limit)
    energy = MeshObjective(cost=cost or HopCostModel())(placement)
    return SpaceDesignPoint(
        n=placement.n,
        space=placement_space(placement),
        link_limit=link_limit,
        flit_bits=bandwidth.flit_bits(link_limit),
        placement=placement,
        energy=energy,
        head_latency=2.0 * energy,
        serialization=mix.serialization_cycles(bandwidth.flit_bits(link_limit)),
    )


@dataclass
class SpaceSweepResult:
    """Outcome of the full ``C`` sweep in one mesh-level space.

    Duck-typed like :class:`~repro.core.optimizer.SweepResult` (``best``
    / ``latency_curve`` / ``points`` / ``solutions``), so reporting and
    ledger digests work on either.
    """

    n: int
    space: str
    method: str
    points: Dict[int, SpaceDesignPoint] = field(default_factory=dict)
    solutions: Dict[int, SpaceSolution] = field(default_factory=dict)
    chains: int = 1

    @property
    def best(self) -> SpaceDesignPoint:
        return min(self.points.values(), key=lambda p: p.total_latency)

    def latency_curve(self) -> Tuple[Tuple[int, float], ...]:
        return tuple(sorted((c, p.total_latency) for c, p in self.points.items()))


def optimize_space(
    n: int,
    space: str,
    method: str = "dc_sa",
    bandwidth: BandwidthConfig | None = None,
    mix: PacketMix | None = None,
    cost: HopCostModel | None = None,
    params: AnnealingParams | None = None,
    link_limits: Optional[Tuple[int, ...]] = None,
    obs: Optional[Instrumentation] = None,
    config: Optional[SearchConfig] = None,
) -> SpaceSweepResult:
    """Full optimization in a mesh-level space: sweep ``C``, cost designs.

    The mesh twin of :func:`repro.core.optimizer.optimize`, which
    routes here when ``config.space`` is ``"hetero"`` or ``"grid2d"``.
    ``C = 1`` short-circuits to the plain mesh, exactly as the row
    sweep does.
    """
    _check_space(space)
    config = config or SearchConfig()
    bandwidth = bandwidth or BandwidthConfig()
    mix = mix or PacketMix.paper_default()
    cost = cost or HopCostModel()
    obs = ensure_obs(obs)
    limits = link_limits or bandwidth.valid_link_limits(n)
    objective = MeshObjective(
        cost=cost, impl=config.impl, obs=None if obs.is_null else obs
    )
    result = SpaceSweepResult(n=n, space=space, method=method,
                              chains=config.chains)
    for limit in limits:
        if limit == 1:
            placement = _space_class(space).mesh(n)
            solution = SpaceSolution(
                n=n, link_limit=1, space=space, placement=placement,
                energy=objective(placement), method=method,
                evaluations=1, wall_time_s=0.0,
            )
        else:
            solution = solve_space(
                n, limit, space, method=method, objective=objective,
                params=params, obs=obs, config=config,
            )
        result.solutions[limit] = solution
        result.points[limit] = space_design_point(
            solution.placement, limit, bandwidth, mix, cost
        )
    return result
