"""Experiment harness: one driver per paper figure/table."""

from repro.harness.tables import fmt, pct_change, render_series, render_table
from repro.harness.designs import (
    EFFORTS,
    SCHEMES,
    SchemeDesign,
    dc_sa_design,
    hfb_design,
    mesh_design,
    only_sa_design,
    optimized_sweep,
    reference_designs,
)
from repro.harness.calibration import (
    NI_OVERHEAD_CYCLES,
    SERIALIZATION_OFFSET,
    Calibration,
    estimate_contention,
)
from repro.harness.fig2 import Fig2Result, fig2
from repro.harness.fig5 import Fig5Result, fig5, fig5_all, render_summary
from repro.harness.parsec import CampaignCell, CampaignResult, parsec_campaign
from repro.harness.runtime import RuntimeCurves, fig7
from repro.harness.synthetic import Fig8Result, SyntheticCell, fig8
from repro.harness.power_static import Fig10Result, fig10
from repro.harness.bandwidth import BandwidthCase, Fig11Result, fig11
from repro.harness.optimal import (
    Fig12Result,
    OptimalComparison,
    PAPER_INSTANCES,
    fig12,
)
from repro.harness.worstcase import Table2Result, table2
from repro.harness.appaware import AppAwareResult, AppAwareRow, app_aware
from repro.harness.area_overhead import AreaOverheadResult, area_overhead
from repro.harness.experiments import EXPERIMENT_IDS, run_all
from repro.harness.loadcurve import LoadCurve, LoadPoint, load_latency_curve
from repro.harness.robustness import RobustnessResult, SeedSpread, seed_robustness

__all__ = [
    "fmt",
    "pct_change",
    "render_series",
    "render_table",
    "EFFORTS",
    "SCHEMES",
    "SchemeDesign",
    "dc_sa_design",
    "hfb_design",
    "mesh_design",
    "only_sa_design",
    "optimized_sweep",
    "reference_designs",
    "NI_OVERHEAD_CYCLES",
    "SERIALIZATION_OFFSET",
    "Calibration",
    "estimate_contention",
    "Fig2Result",
    "fig2",
    "Fig5Result",
    "fig5",
    "fig5_all",
    "render_summary",
    "CampaignCell",
    "CampaignResult",
    "parsec_campaign",
    "RuntimeCurves",
    "fig7",
    "Fig8Result",
    "SyntheticCell",
    "fig8",
    "Fig10Result",
    "fig10",
    "BandwidthCase",
    "Fig11Result",
    "fig11",
    "Fig12Result",
    "OptimalComparison",
    "PAPER_INSTANCES",
    "fig12",
    "Table2Result",
    "table2",
    "AppAwareResult",
    "AppAwareRow",
    "app_aware",
    "AreaOverheadResult",
    "area_overhead",
    "EXPERIMENT_IDS",
    "run_all",
    "LoadCurve",
    "LoadPoint",
    "load_latency_curve",
    "RobustnessResult",
    "SeedSpread",
    "seed_robustness",
]
