"""Section 5.6.4: application-aware placement gains.

With the traffic matrix of a benchmark known in advance, the weighted
objective re-optimizes each row and column individually.  The paper
reports an additional ~18% average head-latency reduction over the
traffic-oblivious placement; this experiment measures the same delta
with our synthetic PARSEC traffic matrices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.annealing import AnnealingParams
from repro.core.application_aware import (
    optimize_application_aware,
    weighted_average_head_latency,
)
from repro.harness.designs import dc_sa_design
from repro.harness.tables import pct_change, render_table
from repro.topology.mesh import MeshTopology
from repro.traffic.parsec import PARSEC_NAMES, workload_gamma


@dataclass
class AppAwareRow:
    benchmark: str
    general_head: float
    aware_head: float

    @property
    def extra_reduction_percent(self) -> float:
        return pct_change(self.aware_head, self.general_head)


@dataclass
class AppAwareResult:
    n: int
    link_limit: int
    rows: Tuple[AppAwareRow, ...]

    @property
    def average_extra_reduction(self) -> float:
        return sum(r.extra_reduction_percent for r in self.rows) / len(self.rows)

    def render(self) -> str:
        table = render_table(
            f"Section 5.6.4 ({self.n}x{self.n}, C={self.link_limit}): "
            "application-aware weighted head latency (cycles)",
            ["benchmark", "general-purpose", "app-aware", "extra reduction"],
            [
                [r.benchmark, r.general_head, r.aware_head, f"-{r.extra_reduction_percent:.1f}%"]
                for r in self.rows
            ],
        )
        return table + f"\naverage additional reduction: {self.average_extra_reduction:.1f}%"


def app_aware(
    n: int = 8,
    benchmarks: Optional[Sequence[str]] = None,
    seed: int = 2019,
    effort: str = "paper",
    params: AnnealingParams | None = None,
    method: str = "dc_sa",
) -> AppAwareResult:
    """Compare traffic-oblivious vs traffic-aware placements per benchmark."""
    benchmarks = tuple(benchmarks or PARSEC_NAMES)
    general = dc_sa_design(n, seed=seed, effort=effort)
    limit = general.point.link_limit
    general_topo = MeshTopology.uniform(general.point.placement)

    rows = []
    for i, bench in enumerate(benchmarks):
        gamma = workload_gamma_matrix(bench, n)
        general_head = weighted_average_head_latency(general_topo, gamma)
        aware = optimize_application_aware(
            gamma, n, limit, method=method, params=params, rng=seed + i
        )
        rows.append(
            AppAwareRow(
                benchmark=bench,
                general_head=general_head,
                aware_head=aware.weighted_head_latency,
            )
        )
    return AppAwareResult(n=n, link_limit=limit, rows=tuple(rows))


def workload_gamma_matrix(benchmark: str, n: int):
    """The exact synthetic traffic matrix used for one benchmark."""
    return workload_gamma_from_name(benchmark, n)


def workload_gamma_from_name(benchmark: str, n: int):
    from repro.traffic.parsec import PARSEC_WORKLOADS

    return workload_gamma(PARSEC_WORKLOADS[benchmark], n)
