"""Section 4.5.2: routing-table hardware overhead (< 0.5 % of router area)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.harness.designs import SchemeDesign, reference_designs
from repro.harness.tables import render_table
from repro.power.area import max_table_overhead
from repro.sim.config import SimConfig


@dataclass
class AreaOverheadResult:
    n: int
    schemes: Tuple[str, ...]
    overheads: Tuple[float, ...]

    def render(self) -> str:
        rows = [
            [s, f"{o * 100:.3f}%"] for s, o in zip(self.schemes, self.overheads)
        ]
        table = render_table(
            f"Routing-table area overhead ({self.n}x{self.n}); paper bound: < 0.5%",
            ["scheme", "worst router overhead"],
            rows,
        )
        return table

    @property
    def max_overhead(self) -> float:
        return max(self.overheads)


def area_overhead(
    n: int = 8,
    designs: Optional[Sequence[SchemeDesign]] = None,
    seed: int = 2019,
    effort: str = "paper",
) -> AreaOverheadResult:
    designs = tuple(designs or reference_designs(n, seed=seed, effort=effort))
    overheads = []
    for design in designs:
        config = SimConfig(flit_bits=design.point.flit_bits)
        overheads.append(max_table_overhead(design.topology, config))
    return AreaOverheadResult(
        n=n,
        schemes=tuple(d.name for d in designs),
        overheads=tuple(overheads),
    )
