"""Figure 11: impact of the bisection-bandwidth budget (Section 5.6.2).

The 8x8 network at 1 GHz with bisection bandwidth 2 KGb/s vs 8 KGb/s
(baseline flit 128 vs 512 bits).  The mesh can only spend extra
bandwidth on wider flits (serialization shrinks slightly); good express
placement converts it into more, narrower links and much larger latency
reductions -- the paper's 2.3% vs 17.8% contrast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.latency import BandwidthConfig
from repro.harness.designs import hfb_design, mesh_design, optimized_sweep
from repro.harness.tables import pct_change, render_series


@dataclass
class BandwidthCase:
    """One panel: latency-vs-C curves at a fixed bisection budget."""

    base_flit_bits: int
    limits: Tuple[int, ...]
    dc_sa_total: List[float]
    mesh_total: float
    hfb_total: float
    hfb_limit: int

    @property
    def best_dc_sa(self) -> float:
        return min(self.dc_sa_total)


@dataclass
class Fig11Result:
    n: int
    cases: Dict[int, BandwidthCase]

    def mesh_gain(self) -> float:
        """Mesh latency reduction from the bandwidth increase (percent)."""
        flits = sorted(self.cases)
        return pct_change(self.cases[flits[-1]].mesh_total, self.cases[flits[0]].mesh_total)

    def dc_sa_gain(self) -> float:
        """D&C_SA latency reduction from the bandwidth increase (percent)."""
        flits = sorted(self.cases)
        return pct_change(self.cases[flits[-1]].best_dc_sa, self.cases[flits[0]].best_dc_sa)

    def render(self) -> str:
        blocks = []
        for base, case in sorted(self.cases.items()):
            gbps = 2 * base * self.n  # bits/cycle across the bisection, = Gb/s at 1 GHz
            blocks.append(
                render_series(
                    f"Figure 11 ({self.n}x{self.n}): bisection {gbps / 1000:.0f} KGb/s "
                    f"(base flit {base}b)",
                    "C",
                    list(case.limits),
                    {
                        "D&C_SA": case.dc_sa_total,
                        "Mesh(C=1)": [case.mesh_total if c == 1 else None for c in case.limits],
                        f"HFB(C={case.hfb_limit})": [
                            case.hfb_total if c == case.hfb_limit else None
                            for c in case.limits
                        ],
                    },
                )
            )
        summary = (
            f"bandwidth x4: Mesh improves {self.mesh_gain():.1f}%, "
            f"D&C_SA improves {self.dc_sa_gain():.1f}%"
        )
        return "\n".join(blocks) + "\n" + summary


def fig11(
    n: int = 8,
    base_flit_cases: Tuple[int, ...] = (128, 512),
    seed: int = 2019,
    effort: str = "paper",
) -> Fig11Result:
    cases = {}
    for base in base_flit_cases:
        bw = BandwidthConfig(base_flit_bits=base)
        sweep = optimized_sweep(n, "dc_sa", seed, effort, base)
        limits = tuple(sorted(sweep.points))
        hfb = hfb_design(n, bw)
        cases[base] = BandwidthCase(
            base_flit_bits=base,
            limits=limits,
            dc_sa_total=[sweep.points[c].total_latency for c in limits],
            mesh_total=mesh_design(n, bw).point.total_latency,
            hfb_total=hfb.point.total_latency,
            hfb_limit=hfb.point.link_limit,
        )
    return Fig11Result(n=n, cases=cases)
