"""Simulator-vs-model calibration utilities.

The cycle-accurate simulator carries a constant network-interface
overhead relative to the analytical Eq. 1 (one cycle of injection
serialization plus two cycles of ejection), and a load-dependent
contention term ``Tc``.  Experiments that mix analytical and simulated
numbers (the 16x16 sweeps, where full simulation is expensive) use the
constants estimated here; the calibration itself is measured, not
assumed, by running short simulations and regressing the residual.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.latency import mesh_average_head_latency_2d
from repro.routing.shortest_path import HopCostModel
from repro.sim.config import SimConfig
from repro.sim.engine import Simulator
from repro.topology.mesh import MeshTopology
from repro.topology.row import RowPlacement
from repro.traffic.injection import SyntheticTraffic
from repro.traffic.patterns import make_pattern

#: Constant NI pipeline overhead of the simulator (cycles): one cycle
#: for the injection link plus two for ejection through the router.
NI_OVERHEAD_CYCLES = 3.0

#: Measured serialization is ``flits - 1`` while the model counts
#: ``flits`` (tail-after-head vs. full transmission time).
SERIALIZATION_OFFSET = -1.0


@dataclass(frozen=True)
class Calibration:
    """Estimated per-hop contention and residual NI offset."""

    contention_per_hop: float
    ni_overhead: float
    measured_head: float
    analytical_head: float
    avg_hops: float


def estimate_contention(
    n: int = 8,
    rate: float = 0.02,
    seed: int = 11,
    measure_cycles: int = 2_000,
) -> Calibration:
    """Measure average per-hop contention on a plain mesh.

    Runs uniform-random traffic at a PARSEC-like load and attributes
    the head-latency residual (beyond zero-load + NI overhead) evenly
    to hops.  The paper reports this is almost always below one cycle
    per hop; the returned value feeds the analytical mode of the large
    network experiments.
    """
    topo = MeshTopology.mesh(n)
    cfg = SimConfig(
        flit_bits=256,
        warmup_cycles=500,
        measure_cycles=measure_cycles,
        max_cycles=50 * measure_cycles,
        seed=seed,
    )
    traffic = SyntheticTraffic(make_pattern("uniform_random", n), rate=rate, rng=seed)
    result = Simulator(topo, cfg, traffic).run()
    measured = result.summary.avg_head_latency
    analytical = mesh_average_head_latency_2d(RowPlacement.mesh(n), HopCostModel())
    # Mean hop count of uniform traffic on the mesh (pairs incl. self,
    # matching the analytical normalization is close enough at n >= 8;
    # use the exact expected Manhattan distance over distinct pairs).
    avg_hops = 2.0 * (n * n - 1) / (3.0 * n) * (n * n) / (n * n - 1)
    residual = measured - analytical - NI_OVERHEAD_CYCLES
    return Calibration(
        contention_per_hop=max(residual, 0.0) / avg_hops,
        ni_overhead=NI_OVERHEAD_CYCLES,
        measured_head=measured,
        analytical_head=analytical,
        avg_hops=avg_hops,
    )
