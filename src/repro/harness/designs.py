"""Reference design points: Mesh, HFB, OnlySA, D&C_SA.

Central place where the comparison schemes of Section 5 are
instantiated, so every experiment uses identical placements.  Solved
placements are cached per (n, method, seed, effort) within the process
-- the optimizer is deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Tuple

from repro.core.annealing import AnnealingParams
from repro.core.latency import BandwidthConfig, PacketMix
from repro.api import SearchConfig
from repro.core.optimizer import DesignPoint, SweepResult, design_point, optimize
from repro.routing.shortest_path import HopCostModel
from repro.topology.flattened_butterfly import (
    hybrid_flattened_butterfly_row,
    required_link_limit,
)
from repro.topology.mesh import MeshTopology
from repro.topology.row import RowPlacement

#: Scheme labels in paper order.
SCHEMES = ("Mesh", "HFB", "OnlySA", "D&C_SA")

#: Annealing efforts: "paper" is Table 1; "quick" for fast CI runs.
EFFORTS: Dict[str, AnnealingParams] = {
    "paper": AnnealingParams(),
    "quick": AnnealingParams(total_moves=1_500, moves_per_cooldown=300),
    "smoke": AnnealingParams(total_moves=200, moves_per_cooldown=50),
}


@dataclass(frozen=True)
class SchemeDesign:
    """A named comparison scheme with its topology and flit width."""

    name: str
    point: DesignPoint

    @property
    def topology(self) -> MeshTopology:
        return MeshTopology.uniform(self.point.placement)


def mesh_design(n: int, bandwidth: BandwidthConfig | None = None) -> SchemeDesign:
    """The mesh baseline: C = 1, full-width flits."""
    bw = bandwidth or BandwidthConfig()
    return SchemeDesign("Mesh", design_point(RowPlacement.mesh(n), 1, bw))


def hfb_design(n: int, bandwidth: BandwidthConfig | None = None) -> SchemeDesign:
    """The hybrid flattened butterfly at the link limit it requires."""
    bw = bandwidth or BandwidthConfig()
    row = hybrid_flattened_butterfly_row(n)
    return SchemeDesign("HFB", design_point(row, required_link_limit(row), bw))


@lru_cache(maxsize=None)
def _sweep(n: int, method: str, seed: int, effort: str, base_flit: int) -> SweepResult:
    return optimize(
        n,
        method=method,
        bandwidth=BandwidthConfig(base_flit_bits=base_flit),
        mix=PacketMix.paper_default(),
        cost=HopCostModel(),
        params=EFFORTS[effort],
        config=SearchConfig(seed=seed),
    ).sweep


def optimized_sweep(
    n: int,
    method: str = "dc_sa",
    seed: int = 2019,
    effort: str = "paper",
    base_flit_bits: int = 256,
) -> SweepResult:
    """The full C-sweep for one method (cached)."""
    return _sweep(n, method, seed, effort, base_flit_bits)


def dc_sa_design(
    n: int,
    seed: int = 2019,
    effort: str = "paper",
    base_flit_bits: int = 256,
) -> SchemeDesign:
    """The paper's proposal: best design point over the C sweep."""
    return SchemeDesign("D&C_SA", optimized_sweep(n, "dc_sa", seed, effort, base_flit_bits).best)


def only_sa_design(
    n: int,
    seed: int = 2019,
    effort: str = "paper",
    base_flit_bits: int = 256,
) -> SchemeDesign:
    """The ablation: same annealing from a random initial matrix."""
    return SchemeDesign("OnlySA", optimized_sweep(n, "only_sa", seed, effort, base_flit_bits).best)


def reference_designs(
    n: int,
    seed: int = 2019,
    effort: str = "paper",
    include_only_sa: bool = False,
) -> Tuple[SchemeDesign, ...]:
    """Mesh, HFB and D&C_SA (plus optionally OnlySA) for one network size."""
    designs = [mesh_design(n), hfb_design(n), dc_sa_design(n, seed, effort)]
    if include_only_sa:
        designs.insert(2, only_sa_design(n, seed, effort))
    return tuple(designs)
