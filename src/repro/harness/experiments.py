"""One-call regeneration of every paper experiment.

``run_all`` executes each figure/table driver at the requested effort
and returns the rendered tables keyed by experiment id -- the
programmatic equivalent of running the whole ``benchmarks/`` suite.
Heavy experiments accept reduced scope via ``quick=True`` (the same
scaling the benchmark suite uses under ``REPRO_BENCH_EFFORT=quick``).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro.harness.appaware import app_aware
from repro.harness.area_overhead import area_overhead
from repro.harness.bandwidth import fig11
from repro.harness.fig2 import fig2
from repro.harness.fig5 import fig5_all, render_summary
from repro.harness.optimal import PAPER_INSTANCES, fig12
from repro.harness.parsec import parsec_campaign
from repro.harness.power_static import fig10
from repro.harness.runtime import fig7
from repro.harness.synthetic import fig8
from repro.harness.worstcase import table2
from repro.traffic.parsec import PARSEC_NAMES

#: Experiment ids in paper order.
EXPERIMENT_IDS = (
    "fig2",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "table2",
    "sec564",
    "area",
)


def run_all(
    seed: int = 2019,
    quick: bool = True,
    only: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, str]:
    """Run the selected experiments and return rendered tables.

    ``quick=True`` (default) scales simulation windows and annealing
    budgets down for interactive use; ``quick=False`` reproduces the
    benchmark suite's paper-effort configuration.
    """
    effort = "quick" if quick else "paper"
    wanted = set(only or EXPERIMENT_IDS)
    unknown = wanted - set(EXPERIMENT_IDS)
    if unknown:
        raise ValueError(f"unknown experiment ids: {sorted(unknown)}")
    out: Dict[str, str] = {}

    def note(name: str) -> None:
        if progress is not None:
            progress(name)

    if "fig2" in wanted:
        note("fig2")
        out["fig2"] = fig2().render()
    if "fig5" in wanted:
        note("fig5")
        sizes = (4, 8) if quick else (4, 8, 16)
        panels = fig5_all(sizes=sizes, seed=seed, effort=effort)
        out["fig5"] = (
            "\n\n".join(p.render() for p in panels.values())
            + "\n\n"
            + render_summary(panels)
        )
    campaign = None
    if wanted & {"fig6", "fig9"}:
        note("parsec campaign")
        campaign = parsec_campaign(
            n=8,
            benchmarks=PARSEC_NAMES[:4] if quick else PARSEC_NAMES,
            seed=seed,
            effort=effort,
            warmup_cycles=300 if quick else 500,
            measure_cycles=1_000 if quick else 2_000,
        )
    if "fig6" in wanted and campaign is not None:
        out["fig6"] = campaign.render_fig6()
    if "fig9" in wanted and campaign is not None:
        out["fig9"] = campaign.render_fig9()
    if "fig7" in wanted:
        note("fig7")
        budgets = (1, 10, 100) if quick else (1, 3, 10, 30, 100, 300, 1_000)
        out["fig7"] = fig7(8, link_limit=4, budgets=budgets, seed=seed).render()
    if "fig8" in wanted:
        note("fig8")
        out["fig8"] = fig8(
            n=8,
            patterns=("uniform_random",) if quick else ("uniform_random", "transpose", "bit_reverse"),
            seed=seed,
            effort=effort,
            warmup=300,
            measure=800 if quick else 1_200,
        ).render()
    if "fig10" in wanted:
        note("fig10")
        out["fig10"] = fig10(8, seed=seed, effort=effort).render()
    if "fig11" in wanted:
        note("fig11")
        out["fig11"] = fig11(n=8, seed=seed, effort=effort).render()
    if "fig12" in wanted:
        note("fig12")
        instances = ((4, 2), (8, 2), (8, 3)) if quick else PAPER_INSTANCES
        out["fig12"] = fig12(instances=instances, seed=seed).render()
    if "table2" in wanted:
        note("table2")
        sizes = (4, 8) if quick else (4, 8, 16)
        out["table2"] = table2(sizes=sizes, seed=seed, effort=effort).render()
    if "sec564" in wanted:
        note("sec564")
        from repro.core.annealing import AnnealingParams

        out["sec564"] = app_aware(
            n=8,
            benchmarks=PARSEC_NAMES[:2] if quick else PARSEC_NAMES,
            seed=seed,
            effort=effort,
            params=AnnealingParams(total_moves=1_000, moves_per_cooldown=250)
            if quick
            else None,
        ).render()
    if "area" in wanted:
        note("area")
        out["area"] = area_overhead(8, seed=seed, effort=effort).render()
    return out
