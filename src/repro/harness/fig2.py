"""Figure 2: the optimal P~(8,4) placement and its connection matrix.

Regenerates the paper's worked example: solve ``P~(8, 4)`` to
optimality, print the connection-matrix layers and the resulting
express links (the paper's blue/green/red tracks).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.branch_bound import exhaustive_matrix_search
from repro.core.connection_matrix import ConnectionMatrix
from repro.core.latency import RowObjective
from repro.topology.row import RowPlacement


@dataclass
class Fig2Result:
    placement: RowPlacement
    matrix: ConnectionMatrix
    energy: float
    evaluations: int

    def render(self) -> str:
        lines = [
            "== Figure 2: optimal P~(8,4) placement ==",
            f"express links (0-based): {sorted(self.placement.express_links)}",
            f"cross-section counts:   {self.placement.cross_section_counts()}",
            f"mean row head latency:  {self.energy:.4f} cycles "
            f"(2D average: {2 * self.energy:.4f})",
            "connection matrix (o = connected, . = open):",
            str(self.matrix),
        ]
        return "\n".join(lines)


def fig2() -> Fig2Result:
    """Solve P~(8,4) exactly and encode the optimum as a matrix."""
    objective = RowObjective()
    exact = exhaustive_matrix_search(8, 4, objective)
    matrix = ConnectionMatrix.from_placement(exact.placement, 4)
    return Fig2Result(
        placement=exact.placement,
        matrix=matrix,
        energy=exact.energy,
        evaluations=exact.evaluations,
    )
