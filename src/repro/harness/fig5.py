"""Figure 5: average packet latency as a function of link limit C.

For each network size the experiment sweeps every feasible ``C``,
solves ``P~(n, C)`` with both D&C_SA and OnlySA, and reports the total
average latency curve together with its head (``L_D``) and
serialization (``L_S``) components; Mesh and HFB appear as the fixed
design points they are.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.latency import BandwidthConfig
from repro.harness.designs import hfb_design, mesh_design, optimized_sweep
from repro.harness.tables import pct_change, render_series, render_table


@dataclass
class Fig5Result:
    """One panel of Figure 5 (one network size)."""

    n: int
    limits: Tuple[int, ...]
    dc_sa_total: List[float]
    dc_sa_head: List[float]
    dc_sa_serialization: List[float]
    only_sa_total: List[float]
    mesh_total: float
    hfb_total: float
    hfb_limit: int

    @property
    def best_dc_sa(self) -> float:
        return min(self.dc_sa_total)

    @property
    def best_limit(self) -> int:
        return self.limits[self.dc_sa_total.index(self.best_dc_sa)]

    def reduction_vs_mesh(self) -> float:
        return pct_change(self.best_dc_sa, self.mesh_total)

    def reduction_vs_hfb(self) -> float:
        return pct_change(self.best_dc_sa, self.hfb_total)

    def only_sa_gap(self) -> float:
        """How much worse OnlySA's best point is than D&C_SA's (percent)."""
        return -pct_change(min(self.only_sa_total), self.best_dc_sa)

    def render(self) -> str:
        series = {
            "D&C_SA": self.dc_sa_total,
            "OnlySA": self.only_sa_total,
            "L_D": self.dc_sa_head,
            "L_S": self.dc_sa_serialization,
            "Mesh(C=1)": [self.mesh_total if c == 1 else None for c in self.limits],
            f"HFB(C={self.hfb_limit})": [
                self.hfb_total if c == self.hfb_limit else None for c in self.limits
            ],
        }
        body = render_series(
            f"Figure 5 ({self.n}x{self.n}): avg packet latency vs link limit C",
            "C",
            list(self.limits),
            series,
        )
        summary = (
            f"best D&C_SA: {self.best_dc_sa:.2f} cycles at C={self.best_limit} | "
            f"vs Mesh: -{self.reduction_vs_mesh():.1f}% | "
            f"vs HFB: -{self.reduction_vs_hfb():.1f}% | "
            f"OnlySA best is +{self.only_sa_gap():.1f}% above D&C_SA"
        )
        return body + "\n" + summary


def fig5(
    n: int,
    seed: int = 2019,
    effort: str = "paper",
    base_flit_bits: int = 256,
) -> Fig5Result:
    """Compute one Figure 5 panel."""
    bw = BandwidthConfig(base_flit_bits=base_flit_bits)
    dc = optimized_sweep(n, "dc_sa", seed, effort, base_flit_bits)
    only = optimized_sweep(n, "only_sa", seed, effort, base_flit_bits)
    limits = tuple(sorted(dc.points))
    mesh = mesh_design(n, bw)
    hfb = hfb_design(n, bw)
    return Fig5Result(
        n=n,
        limits=limits,
        dc_sa_total=[dc.points[c].total_latency for c in limits],
        dc_sa_head=[dc.points[c].latency.head for c in limits],
        dc_sa_serialization=[dc.points[c].latency.serialization for c in limits],
        only_sa_total=[only.points[c].total_latency for c in limits],
        mesh_total=mesh.point.total_latency,
        hfb_total=hfb.point.total_latency,
        hfb_limit=hfb.point.link_limit,
    )


def fig5_all(
    sizes: Tuple[int, ...] = (4, 8, 16),
    seed: int = 2019,
    effort: str = "paper",
) -> Dict[int, Fig5Result]:
    """All three panels (4x4, 8x8, 16x16)."""
    return {n: fig5(n, seed, effort) for n in sizes}


def render_summary(results: Dict[int, Fig5Result]) -> str:
    """The paper's headline reductions, side by side."""
    rows = []
    for n, r in sorted(results.items()):
        rows.append(
            (
                f"{n}x{n}",
                r.best_limit,
                r.best_dc_sa,
                r.mesh_total,
                r.hfb_total,
                f"-{r.reduction_vs_mesh():.1f}%",
                f"-{r.reduction_vs_hfb():.1f}%",
                f"+{r.only_sa_gap():.1f}%",
            )
        )
    return render_table(
        "Figure 5 summary: D&C_SA vs Mesh / HFB / OnlySA",
        ["network", "best C", "D&C_SA", "Mesh", "HFB", "vs Mesh", "vs HFB", "OnlySA gap"],
        rows,
    )
