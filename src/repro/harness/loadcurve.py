"""Load-latency curves: the standard NoC characterization sweep.

Sweeps offered load for one design and traffic pattern, recording
accepted throughput and average latency at each point -- the raw data
behind Figure 8 and behind any saturation claim.  Exposed as a library
API so users can characterize their own placements.

Runs on the campaign engine (:mod:`repro.sim.campaign`): the rate
sweep becomes a job list executed in speculative waves of ``jobs``
simulations, with the early-stop predicate applied in rate order -- so
``jobs=K`` returns the identical curve to the serial sweep, just
faster.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.harness.designs import SchemeDesign
from repro.harness.tables import render_table
from repro.sim.campaign import JobResult, SimJob, TrafficSpec, run_until
from repro.sim.config import SimConfig


@dataclass(frozen=True)
class LoadPoint:
    """One point of a load-latency curve."""

    offered_packets_per_cycle: float
    accepted_packets_per_cycle: float
    avg_latency: float
    drained: bool

    @property
    def saturated(self) -> bool:
        return not self.drained


@dataclass
class LoadCurve:
    """A full sweep for one (design, pattern) pair."""

    scheme: str
    pattern: str
    n: int
    points: Tuple[LoadPoint, ...]

    @property
    def zero_load_latency(self) -> float:
        return self.points[0].avg_latency

    def saturation_throughput(self, latency_factor: float = 3.0) -> float:
        """Largest accepted throughput before latency blows up."""
        best = 0.0
        for p in self.points:
            if p.saturated or p.avg_latency > latency_factor * self.zero_load_latency:
                break
            best = max(best, p.accepted_packets_per_cycle)
        return best

    def render(self) -> str:
        rows = [
            [
                p.offered_packets_per_cycle,
                p.accepted_packets_per_cycle,
                p.avg_latency,
                "saturated" if p.saturated else "",
            ]
            for p in self.points
        ]
        return render_table(
            f"Load-latency curve: {self.scheme}, {self.pattern} ({self.n}x{self.n})",
            ["offered (pkt/cyc)", "accepted", "latency", ""],
            rows,
            digits=3,
        )


def _point_latency(res: JobResult) -> float:
    s = res.run.summary
    return s.avg_network_latency if s.packets else float("inf")


def load_latency_curve(
    design: SchemeDesign,
    pattern: str = "uniform_random",
    rates: Optional[Sequence[float]] = None,
    seed: int = 2019,
    warmup: int = 300,
    measure: int = 1_000,
    stop_after_saturation: bool = True,
    latency_factor: float = 3.0,
    jobs: int = 1,
    engine: str = "active",
) -> LoadCurve:
    """Sweep offered load (aggregate packets/cycle) for one design.

    Every rate reuses the same traffic seed (paired-sample sweeps: the
    injection *pattern* stays fixed while only the rate moves), and
    with ``stop_after_saturation`` the sweep stops at the first
    saturated point -- applied in rate order, so ``jobs > 1`` is a pure
    wall-clock knob.
    """
    n = design.point.n
    if rates is None:
        rates = [0.5 * (1.5 ** k) for k in range(10)]
    cfg = SimConfig(
        flit_bits=design.point.flit_bits,
        warmup_cycles=warmup,
        measure_cycles=measure,
        max_cycles=warmup + measure + 6_000,
        seed=seed,
    )
    grid: List[SimJob] = []
    for rate in rates:
        if rate / (n * n) > 1.0:
            break
        grid.append(SimJob(
            design=design,
            traffic=TrafficSpec(kind="synthetic", pattern=pattern, rate=rate),
            config=cfg,
            seed=seed,
            key=(pattern, rate),
            engine=engine,
        ))

    zero_load: List[float] = []

    def stop(res: JobResult) -> bool:
        latency = _point_latency(res)
        if not zero_load:
            zero_load.append(latency)
        if not stop_after_saturation:
            return False
        return (not res.run.drained) or latency > latency_factor * zero_load[0]

    campaign = run_until(grid, stop, jobs=jobs)
    points = [
        LoadPoint(
            offered_packets_per_cycle=job.traffic.rate,
            accepted_packets_per_cycle=res.run.summary.throughput_packets_per_cycle,
            avg_latency=_point_latency(res),
            drained=res.run.drained,
        )
        for job, res in zip(campaign.jobs, campaign.results)
    ]
    return LoadCurve(
        scheme=design.name,
        pattern=pattern,
        n=n,
        points=tuple(points),
    )
