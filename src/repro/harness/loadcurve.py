"""Load-latency curves: the standard NoC characterization sweep.

Sweeps offered load for one design and traffic pattern, recording
accepted throughput and average latency at each point -- the raw data
behind Figure 8 and behind any saturation claim.  Exposed as a library
API so users can characterize their own placements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.harness.designs import SchemeDesign
from repro.harness.tables import render_table
from repro.sim.config import SimConfig
from repro.sim.engine import Simulator
from repro.traffic.injection import SyntheticTraffic
from repro.traffic.patterns import make_pattern


@dataclass(frozen=True)
class LoadPoint:
    """One point of a load-latency curve."""

    offered_packets_per_cycle: float
    accepted_packets_per_cycle: float
    avg_latency: float
    drained: bool

    @property
    def saturated(self) -> bool:
        return not self.drained


@dataclass
class LoadCurve:
    """A full sweep for one (design, pattern) pair."""

    scheme: str
    pattern: str
    n: int
    points: Tuple[LoadPoint, ...]

    @property
    def zero_load_latency(self) -> float:
        return self.points[0].avg_latency

    def saturation_throughput(self, latency_factor: float = 3.0) -> float:
        """Largest accepted throughput before latency blows up."""
        best = 0.0
        for p in self.points:
            if p.saturated or p.avg_latency > latency_factor * self.zero_load_latency:
                break
            best = max(best, p.accepted_packets_per_cycle)
        return best

    def render(self) -> str:
        rows = [
            [
                p.offered_packets_per_cycle,
                p.accepted_packets_per_cycle,
                p.avg_latency,
                "saturated" if p.saturated else "",
            ]
            for p in self.points
        ]
        return render_table(
            f"Load-latency curve: {self.scheme}, {self.pattern} ({self.n}x{self.n})",
            ["offered (pkt/cyc)", "accepted", "latency", ""],
            rows,
            digits=3,
        )


def load_latency_curve(
    design: SchemeDesign,
    pattern: str = "uniform_random",
    rates: Optional[Sequence[float]] = None,
    seed: int = 2019,
    warmup: int = 300,
    measure: int = 1_000,
    stop_after_saturation: bool = True,
    latency_factor: float = 3.0,
) -> LoadCurve:
    """Sweep offered load (aggregate packets/cycle) for one design."""
    n = design.point.n
    if rates is None:
        rates = [0.5 * (1.5 ** k) for k in range(10)]
    points = []
    zero_load = None
    for rate in rates:
        per_node = rate / (n * n)
        if per_node > 1.0:
            break
        cfg = SimConfig(
            flit_bits=design.point.flit_bits,
            warmup_cycles=warmup,
            measure_cycles=measure,
            max_cycles=warmup + measure + 6_000,
            seed=seed,
        )
        traffic = SyntheticTraffic(make_pattern(pattern, n), rate=per_node, rng=seed)
        result = Simulator(design.topology, cfg, traffic).run()
        s = result.summary
        latency = s.avg_network_latency if s.packets else float("inf")
        point = LoadPoint(
            offered_packets_per_cycle=rate,
            accepted_packets_per_cycle=s.throughput_packets_per_cycle,
            avg_latency=latency,
            drained=result.drained,
        )
        points.append(point)
        if zero_load is None:
            zero_load = latency
        if stop_after_saturation and (
            point.saturated or latency > latency_factor * zero_load
        ):
            break
    return LoadCurve(
        scheme=design.name,
        pattern=pattern,
        n=n,
        points=tuple(points),
    )
