"""Figure 12: D&C_SA vs exhaustive-optimal latency and runtime ratio.

For the small instances where exhaustive search (with pruning) is
feasible -- P(4,2), P(8,2), P(8,3), P(8,4), P(16,2) -- compare the
latency of the D&C_SA placement against the true optimum and report
how many times longer the exact search runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.core.annealing import AnnealingParams
from repro.core.branch_bound import exhaustive_matrix_search
from repro.core.latency import RowObjective
from repro.api import SearchConfig
from repro.core.optimizer import solve_row_problem
from repro.harness.tables import render_table

#: The paper's Figure 12 instances as (n, C) pairs.
PAPER_INSTANCES: Tuple[Tuple[int, int], ...] = ((4, 2), (8, 2), (8, 3), (8, 4), (16, 2))


@dataclass
class OptimalComparison:
    n: int
    link_limit: int
    optimal_energy: float
    dc_sa_energy: float
    optimal_evaluations: int
    dc_sa_evaluations: int
    optimal_time_s: float
    dc_sa_time_s: float

    @property
    def gap_percent(self) -> float:
        """D&C_SA's excess latency over the optimum (percent)."""
        if self.optimal_energy == 0:
            return 0.0
        return 100.0 * (self.dc_sa_energy - self.optimal_energy) / self.optimal_energy

    @property
    def runtime_ratio(self) -> float:
        """Exhaustive states visited / D&C_SA evaluations to solution.

        ``dc_sa_evaluations`` counts the work until D&C_SA *first
        reached* the solution it returned (seed cost + annealing trace),
        the honest time-to-solution comparison the paper's 30x / 1000x
        ratios express.
        """
        return self.optimal_evaluations / max(self.dc_sa_evaluations, 1)


@dataclass
class Fig12Result:
    comparisons: Tuple[OptimalComparison, ...]

    def render(self) -> str:
        rows = []
        for c in self.comparisons:
            rows.append(
                [
                    f"P({c.n},{c.link_limit})",
                    2 * c.optimal_energy,  # 2D head latency, the figure's y axis
                    2 * c.dc_sa_energy,
                    f"+{c.gap_percent:.2f}%",
                    f"{c.runtime_ratio:.0f}x",
                ]
            )
        return render_table(
            "Figure 12: D&C_SA vs exhaustive optimal",
            ["instance", "optimal L_D", "D&C_SA L_D", "gap", "exhaustive runtime"],
            rows,
        )


def fig12(
    instances: Sequence[Tuple[int, int]] = PAPER_INSTANCES,
    seed: int = 2019,
    params: AnnealingParams | None = None,
) -> Fig12Result:
    objective = RowObjective()
    out = []
    for n, limit in instances:
        exact = exhaustive_matrix_search(n, limit, objective)
        dc = solve_row_problem(
            n, limit, method="dc_sa", objective=objective, params=params,
            config=SearchConfig(seed=seed),
        )
        out.append(
            OptimalComparison(
                n=n,
                link_limit=limit,
                optimal_energy=exact.energy,
                dc_sa_energy=dc.energy,
                optimal_evaluations=exact.states_visited,
                dc_sa_evaluations=_evaluations_to_solution(dc.solution),
                optimal_time_s=exact.wall_time_s,
                dc_sa_time_s=dc.wall_time_s,
            )
        )
    return Fig12Result(comparisons=tuple(out))


def _evaluations_to_solution(solution) -> int:
    """Evaluations D&C_SA spent until it first reached its final answer."""
    seed_cost = solution.seed_solution.evaluations if solution.seed_solution else 0
    if solution.annealing is None:
        return max(seed_cost, 1)
    target = solution.energy + 1e-12
    first = min(
        (evals for evals, energy in solution.annealing.trace if energy <= target),
        default=solution.annealing.evaluations,
    )
    return seed_cost + first
