"""Figures 6 and 9: the PARSEC campaign (latency + power per benchmark).

One cycle-accurate simulation per (benchmark, scheme) pair; the same
runs feed both the latency comparison (Figure 6) and the power
comparison (Figure 9), so the campaign executes once and both tables
render from its result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.harness.designs import SchemeDesign, reference_designs
from repro.harness.tables import pct_change, render_table
from repro.power.model import PowerReport, power_report
from repro.sim.campaign import SimJob, TrafficSpec, run_campaign
from repro.sim.config import SimConfig
from repro.sim.stats import LatencySummary
from repro.traffic.parsec import PARSEC_NAMES


@dataclass
class CampaignCell:
    """Result of one (benchmark, scheme) simulation."""

    benchmark: str
    scheme: str
    latency: LatencySummary
    power: PowerReport
    cycles: int
    drained: bool


@dataclass
class CampaignResult:
    """All cells of the PARSEC campaign for one network size."""

    n: int
    benchmarks: Tuple[str, ...]
    schemes: Tuple[str, ...]
    cells: Dict[Tuple[str, str], CampaignCell] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def latency_of(self, benchmark: str, scheme: str) -> float:
        return self.cells[(benchmark, scheme)].latency.avg_network_latency

    def average_latency(self, scheme: str) -> float:
        vals = [self.latency_of(b, scheme) for b in self.benchmarks]
        return sum(vals) / len(vals)

    def total_power(self, scheme: str) -> float:
        vals = [self.cells[(b, scheme)].power.total_w for b in self.benchmarks]
        return sum(vals) / len(vals)

    def dynamic_power(self, scheme: str) -> float:
        vals = [self.cells[(b, scheme)].power.dynamic_w for b in self.benchmarks]
        return sum(vals) / len(vals)

    def static_power(self, scheme: str) -> float:
        vals = [self.cells[(b, scheme)].power.static.total_w for b in self.benchmarks]
        return sum(vals) / len(vals)

    # ------------------------------------------------------------------
    def render_fig6(self) -> str:
        rows = []
        for b in self.benchmarks + ("average",):
            if b == "average":
                vals = [self.average_latency(s) for s in self.schemes]
            else:
                vals = [self.latency_of(b, s) for s in self.schemes]
            rows.append([b, *vals])
        table = render_table(
            f"Figure 6 ({self.n}x{self.n}): avg packet latency per PARSEC benchmark (cycles)",
            ["benchmark", *self.schemes],
            rows,
        )
        base = self.average_latency("Mesh")
        hfb = self.average_latency("HFB") if "HFB" in self.schemes else None
        dc = self.average_latency("D&C_SA")
        extra = f"D&C_SA vs Mesh: -{pct_change(dc, base):.1f}%"
        if hfb is not None:
            extra += f" | vs HFB: -{pct_change(dc, hfb):.1f}%"
        return table + "\n" + extra

    def render_fig9(self) -> str:
        rows = []
        base = self.total_power("Mesh")
        for b in self.benchmarks + ("average",):
            row: list = [b]
            for s in self.schemes:
                if b == "average":
                    stat, dyn = self.static_power(s), self.dynamic_power(s)
                else:
                    cell = self.cells[(b, s)]
                    stat, dyn = cell.power.static.total_w, cell.power.dynamic_w
                row.extend([stat / base, dyn / base])
            rows.append(row)
        headers = ["benchmark"]
        for s in self.schemes:
            headers.extend([f"{s}(s)", f"{s}(d)"])
        table = render_table(
            f"Figure 9 ({self.n}x{self.n}): router power, normalized to Mesh total",
            headers,
            rows,
            digits=3,
        )
        dc_total = self.total_power("D&C_SA")
        dc_dyn = self.dynamic_power("D&C_SA")
        lines = [
            f"total power D&C_SA vs Mesh: -{pct_change(dc_total, base):.1f}%",
            f"dynamic power D&C_SA vs Mesh: -{pct_change(dc_dyn, self.dynamic_power('Mesh')):.1f}%",
            f"static share of total (Mesh): {self.static_power('Mesh') / base * 100:.0f}%",
        ]
        if "HFB" in self.schemes:
            lines.insert(1, f"total power D&C_SA vs HFB: -{pct_change(dc_total, self.total_power('HFB')):.1f}%")
        return table + "\n" + " | ".join(lines)


def parsec_campaign(
    n: int = 8,
    benchmarks: Optional[Sequence[str]] = None,
    designs: Optional[Sequence[SchemeDesign]] = None,
    seed: int = 2019,
    effort: str = "paper",
    warmup_cycles: int = 500,
    measure_cycles: int = 2_000,
    rate_scale: float = 1.0,
    jobs: int = 1,
    engine: str = "active",
) -> CampaignResult:
    """Run the full campaign and return all cells.

    The (design, benchmark) grid is fully static, so it fans straight
    out over ``jobs`` processes via the campaign engine; cells are
    identical for every ``jobs`` value (each cell's traffic seed is
    ``seed + benchmark_index``, a pure function of the grid
    coordinates).
    """
    benchmarks = tuple(benchmarks or PARSEC_NAMES)
    designs = tuple(designs or reference_designs(n, seed=seed, effort=effort))
    result = CampaignResult(
        n=n, benchmarks=benchmarks, schemes=tuple(d.name for d in designs)
    )
    grid = []
    for design in designs:
        config = SimConfig(
            flit_bits=design.point.flit_bits,
            warmup_cycles=warmup_cycles,
            measure_cycles=measure_cycles,
            max_cycles=max(50_000, 20 * (warmup_cycles + measure_cycles)),
            seed=seed,
        )
        for bench_i, bench in enumerate(benchmarks):
            grid.append(SimJob(
                design=design,
                traffic=TrafficSpec(
                    kind="parsec", workload=bench, rate=rate_scale
                ),
                config=config,
                seed=seed + bench_i,
                key=(bench, design.name),
                engine=engine,
            ))
    campaign = run_campaign(grid, jobs=jobs)
    for job, res in zip(campaign.jobs, campaign.results):
        bench, scheme = job.key
        run = res.run
        result.cells[(bench, scheme)] = CampaignCell(
            benchmark=bench,
            scheme=scheme,
            latency=run.summary,
            power=power_report(
                job.design.topology, job.config, run.activity, run.cycles_run
            ),
            cycles=run.cycles_run,
            drained=run.drained,
        )
    return result
