"""Figure 10: router static power breakdown (buffer / crossbar / other).

Static power needs no simulation -- it depends only on topology radix,
flit width and the equal-buffer rule -- so this experiment is purely
analytical and fast.  The paper's claims to reproduce: buffer static
power is nearly identical across schemes (equal total buffer bits) and
crossbar static power does *not* grow when express links are added,
because the width shrinks by ``C`` while ports grow sub-linearly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.harness.designs import SchemeDesign, reference_designs
from repro.harness.tables import render_table
from repro.power.model import RouterStaticBreakdown, router_static_power
from repro.power.params import TechParams
from repro.sim.config import SimConfig


@dataclass
class Fig10Result:
    n: int
    schemes: Tuple[str, ...]
    breakdowns: Tuple[RouterStaticBreakdown, ...]
    avg_ports: Tuple[float, ...]

    def render(self) -> str:
        rows = []
        for name, b, ports in zip(self.schemes, self.breakdowns, self.avg_ports):
            rows.append([name, b.buffer_w, b.crossbar_w, b.other_w, b.total_w, ports])
        return render_table(
            f"Figure 10 ({self.n}x{self.n}): router static power breakdown (W)",
            ["scheme", "buffer", "crossbar", "others", "total", "avg ports"],
            rows,
            digits=3,
        )


def fig10(
    n: int = 8,
    designs: Optional[Sequence[SchemeDesign]] = None,
    seed: int = 2019,
    effort: str = "paper",
    tech: TechParams | None = None,
) -> Fig10Result:
    designs = tuple(designs or reference_designs(n, seed=seed, effort=effort))
    breakdowns, ports = [], []
    for design in designs:
        topo = design.topology
        config = SimConfig(flit_bits=design.point.flit_bits)
        breakdowns.append(router_static_power(topo, config, tech))
        ports.append(topo.average_radix() + 1)
    return Fig10Result(
        n=n,
        schemes=tuple(d.name for d in designs),
        breakdowns=tuple(breakdowns),
        avg_ports=tuple(ports),
    )
