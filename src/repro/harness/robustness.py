"""Seed robustness of the stochastic optimizer.

Simulated annealing is randomized; the paper reduces randomness by
averaging results (Section 5.3).  This harness quantifies the spread
directly: run D&C_SA (and optionally OnlySA) across many seeds and
report the distribution of achieved energies, plus the gap of the
worst seed to the best-known value.  A well-behaved optimizer has a
tiny spread -- which is what makes single-seed paper experiments
reproducible at all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.core.annealing import AnnealingParams
from repro.core.latency import RowObjective
from repro.api import SearchConfig
from repro.core.optimizer import solve_row_problem
from repro.harness.tables import render_table


@dataclass(frozen=True)
class SeedSpread:
    """Distribution of energies for one (method, n, C) cell."""

    method: str
    n: int
    link_limit: int
    energies: Tuple[float, ...]

    @property
    def best(self) -> float:
        return min(self.energies)

    @property
    def worst(self) -> float:
        return max(self.energies)

    @property
    def mean(self) -> float:
        return sum(self.energies) / len(self.energies)

    @property
    def std(self) -> float:
        mu = self.mean
        return math.sqrt(sum((e - mu) ** 2 for e in self.energies) / len(self.energies))

    @property
    def worst_gap_percent(self) -> float:
        """Worst seed's excess over the best seed (percent)."""
        return 100.0 * (self.worst - self.best) / self.best


@dataclass
class RobustnessResult:
    n: int
    link_limit: int
    seeds: Tuple[int, ...]
    spreads: Dict[str, SeedSpread]

    def render(self) -> str:
        rows = []
        for method, s in self.spreads.items():
            rows.append(
                [
                    method,
                    s.best,
                    s.mean,
                    s.worst,
                    s.std,
                    f"+{s.worst_gap_percent:.2f}%",
                ]
            )
        return render_table(
            f"Seed robustness P~({self.n},{self.link_limit}) over {len(self.seeds)} seeds "
            "(mean row head latency)",
            ["method", "best", "mean", "worst", "std", "worst gap"],
            rows,
            digits=4,
        )


def seed_robustness(
    n: int,
    link_limit: int,
    seeds: Sequence[int] = tuple(range(10)),
    methods: Sequence[str] = ("dc_sa", "only_sa"),
    params: Optional[AnnealingParams] = None,
) -> RobustnessResult:
    """Measure the energy spread across seeds for each method."""
    objective = RowObjective()
    spreads: Dict[str, SeedSpread] = {}
    for method in methods:
        energies = tuple(
            solve_row_problem(
                n, link_limit, method=method, objective=objective,
                params=params, config=SearchConfig(seed=seed),
            ).energy
            for seed in seeds
        )
        spreads[method] = SeedSpread(
            method=method, n=n, link_limit=link_limit, energies=energies
        )
    return RobustnessResult(
        n=n, link_limit=link_limit, seeds=tuple(seeds), spreads=spreads
    )
