"""Figure 7: placement quality vs (normalized) runtime, OnlySA vs D&C_SA.

Runtime is measured in unique objective evaluations and normalized to
the cost of the divide-and-conquer initial process ``I(n, 4)``, exactly
as the paper normalizes its x-axis.  Both schemes run once with a
generous move budget while tracing best-so-far energy; the curves are
then sampled at the requested budget points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.annealing import AnnealingParams, anneal
from repro.core.connection_matrix import ConnectionMatrix
from repro.core.latency import RowObjective
from repro.core.divide_conquer import initial_solution
from repro.harness.tables import render_series
from repro.util.rngtools import ensure_rng


@dataclass
class RuntimeCurves:
    """Best-energy-so-far of both schemes at shared budget points."""

    n: int
    link_limit: int
    unit_evaluations: int
    budgets: Tuple[float, ...]
    dc_sa: List[float]
    only_sa: List[float]

    def render(self) -> str:
        # Report total (2x row) head latency like the figure's y axis.
        return render_series(
            f"Figure 7 ({self.n}x{self.n}): avg head latency vs normalized runtime "
            f"(1 unit = I({self.n},{self.link_limit}) = {self.unit_evaluations} evals)",
            "runtime",
            [f"{b:g}" for b in self.budgets],
            {
                "D&C_SA": [2 * e for e in self.dc_sa],
                "OnlySA": [2 * e for e in self.only_sa],
            },
        )

    def final_gap_percent(self) -> float:
        """OnlySA's excess latency at the largest budget (percent)."""
        return 100.0 * (self.only_sa[-1] - self.dc_sa[-1]) / self.dc_sa[-1]

    def budget_to_quality(self, scheme: str, tolerance: float = 0.01) -> float:
        """Smallest budget at which ``scheme`` is within ``tolerance``
        of the best final energy either scheme achieved.

        This is the time-to-quality view of Figure 7: the paper's point
        is that D&C_SA reaches good placements with far less runtime.
        Returns ``inf`` if the scheme never gets there.
        """
        import math

        curve = {"dc_sa": self.dc_sa, "only_sa": self.only_sa}[scheme]
        best = min(self.dc_sa[-1], self.only_sa[-1])
        threshold = best * (1.0 + tolerance)
        for budget, value in zip(self.budgets, curve):
            if not math.isnan(value) and value <= threshold:
                return budget
        return float("inf")


def _sample_trace(
    trace: Sequence[Tuple[int, float]],
    eval_points: Sequence[int],
    offset: int = 0,
) -> List[float]:
    """Best energy achieved by each evaluation budget (step function)."""
    out: List[float] = []
    best = trace[0][1]
    idx = 0
    for budget in eval_points:
        while idx < len(trace) and trace[idx][0] + offset <= budget:
            best = min(best, trace[idx][1])
            idx += 1
        out.append(best)
    return out


def fig7(
    n: int,
    link_limit: int = 4,
    budgets: Sequence[float] = (1, 3, 10, 30, 100, 300, 1_000),
    seed: int = 2019,
    rng=None,
) -> RuntimeCurves:
    """Compute the two quality-vs-runtime curves for one network size."""
    gen = ensure_rng(rng if rng is not None else seed)
    objective = RowObjective()

    seedsol = initial_solution(n, link_limit, objective)
    unit = max(seedsol.evaluations, 1)
    max_evals = int(max(budgets) * unit) + 1

    params = AnnealingParams(
        total_moves=max(10_000, 4 * max_evals),
        moves_per_cooldown=1_000,
    )

    dc_matrix = ConnectionMatrix.from_placement(seedsol.placement, link_limit)
    dc_run = anneal(dc_matrix, objective, params, rng=gen, max_evaluations=max_evals)

    only_matrix = ConnectionMatrix.random(n, link_limit, gen)
    only_run = anneal(only_matrix, objective, params, rng=gen, max_evaluations=max_evals)

    eval_points = [int(b * unit) for b in budgets]
    # D&C_SA already spent `unit` evaluations on the seed; shift its
    # trace right by that cost so the comparison is runtime-fair.
    dc_curve = _sample_trace(dc_run.trace, eval_points, offset=unit)
    # Budgets smaller than the seed cost: D&C_SA has only the seed's
    # ancestors; report the seed energy once the budget covers it.
    for i, b in enumerate(eval_points):
        if b < unit:
            dc_curve[i] = float("nan")
    only_curve = _sample_trace(only_run.trace, eval_points)
    return RuntimeCurves(
        n=n,
        link_limit=link_limit,
        unit_evaluations=unit,
        budgets=tuple(float(b) for b in budgets),
        dc_sa=dc_curve,
        only_sa=only_curve,
    )
