"""Figure 8: synthetic-traffic latency and saturation throughput.

Panel (a): average packet latency at a representative low load for
uniform random (UR), transpose (TP) and bit-reverse (BR).

Panel (b): saturation throughput, measured by sweeping the injection
rate geometrically until the network saturates -- average latency
exceeding ``saturation_factor`` times the low-load latency, or the
measurement window failing to drain -- and reporting the largest
*accepted* throughput (packets/cycle network-wide) before that point.
The paper's qualitative result: Mesh highest, HFB less than half of
Mesh (quadrant-seam bottleneck), D&C_SA recovering most of the gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.designs import SchemeDesign, reference_designs
from repro.harness.tables import pct_change, render_table
from repro.sim.campaign import JobResult, SimJob, TrafficSpec, run_until
from repro.sim.config import SimConfig
from repro.traffic.patterns import PAPER_PATTERNS

PATTERN_LABELS = {"uniform_random": "UR", "transpose": "TP", "bit_reverse": "BR"}


@dataclass
class SyntheticCell:
    latency: float
    saturation_throughput: float
    sweep: Tuple[Tuple[float, float, float], ...]  # (rate, accepted, latency)


@dataclass
class Fig8Result:
    n: int
    patterns: Tuple[str, ...]
    schemes: Tuple[str, ...]
    cells: Dict[Tuple[str, str], SyntheticCell] = field(default_factory=dict)

    def avg_latency(self, scheme: str) -> float:
        vals = [self.cells[(p, scheme)].latency for p in self.patterns]
        return sum(vals) / len(vals)

    def avg_throughput(self, scheme: str) -> float:
        vals = [self.cells[(p, scheme)].saturation_throughput for p in self.patterns]
        return sum(vals) / len(vals)

    def render(self) -> str:
        lat_rows, thr_rows = [], []
        for p in self.patterns + ("Avg",):
            label = PATTERN_LABELS.get(p, p)
            if p == "Avg":
                lat_rows.append([label, *(self.avg_latency(s) for s in self.schemes)])
                thr_rows.append([label, *(self.avg_throughput(s) for s in self.schemes)])
            else:
                lat_rows.append([label, *(self.cells[(p, s)].latency for s in self.schemes)])
                thr_rows.append(
                    [label, *(self.cells[(p, s)].saturation_throughput for s in self.schemes)]
                )
        a = render_table(
            f"Figure 8a ({self.n}x{self.n}): avg packet latency (cycles)",
            ["pattern", *self.schemes],
            lat_rows,
        )
        b = render_table(
            f"Figure 8b ({self.n}x{self.n}): saturation throughput (packets/cycle)",
            ["pattern", *self.schemes],
            thr_rows,
            digits=3,
        )
        mesh_t = self.avg_throughput("Mesh")
        dc_t = self.avg_throughput("D&C_SA")
        lines = [
            f"latency D&C_SA vs Mesh: -{pct_change(self.avg_latency('D&C_SA'), self.avg_latency('Mesh')):.1f}%",
            f"D&C_SA throughput / Mesh: {dc_t / mesh_t:.2f}",
        ]
        if "HFB" in self.schemes:
            hfb_t = self.avg_throughput("HFB")
            lines.insert(
                1,
                f"latency D&C_SA vs HFB: -{pct_change(self.avg_latency('D&C_SA'), self.avg_latency('HFB')):.1f}%",
            )
            lines.append(f"D&C_SA throughput / HFB: {dc_t / max(hfb_t, 1e-12):.2f}")
        return a + "\n" + b + "\n" + " | ".join(lines)


def _cell_latency(res: JobResult) -> float:
    s = res.run.summary
    return s.avg_network_latency if s.packets else float("inf")


def _sweep_rates(n: int, low_rate: float, rate_step: float) -> List[float]:
    """Geometric rate ladder, capped at 0.75 packets/node/cycle."""
    rates = [low_rate]
    rate = low_rate
    while True:
        rate *= rate_step
        if rate / (n * n) > 0.75:
            return rates
        rates.append(rate)


def fig8(
    n: int = 8,
    patterns: Sequence[str] = PAPER_PATTERNS,
    designs: Optional[Sequence[SchemeDesign]] = None,
    seed: int = 2019,
    effort: str = "paper",
    low_rate: float = 1.0,
    saturation_factor: float = 3.0,
    rate_step: float = 1.4,
    warmup: int = 300,
    measure: int = 1_500,
    jobs: int = 1,
    engine: str = "active",
) -> Fig8Result:
    """Run the synthetic campaign.

    ``low_rate`` is the aggregate packets/cycle for panel (a); the
    throughput sweep starts there and multiplies by ``rate_step`` until
    saturation.  Each (design, pattern) sweep runs on the campaign
    engine in speculative waves of ``jobs`` simulations with the
    saturation stop applied in rate order, so ``jobs > 1`` changes wall
    clock only, never the tables.
    """
    designs = tuple(designs or reference_designs(n, seed=seed, effort=effort))
    result = Fig8Result(
        n=n, patterns=tuple(patterns), schemes=tuple(d.name for d in designs)
    )
    rates = _sweep_rates(n, low_rate, rate_step)
    for design in designs:
        config = SimConfig(
            flit_bits=design.point.flit_bits,
            warmup_cycles=warmup,
            measure_cycles=measure,
            max_cycles=warmup + measure + 6_000,
            seed=seed,
        )
        for p in patterns:
            grid = [
                SimJob(
                    design=design,
                    traffic=TrafficSpec(
                        kind="synthetic", pattern=p, rate=min(rate, float(n * n))
                    ),
                    config=config,
                    seed=seed,
                    key=(p, rate),
                    engine=engine,
                )
                for rate in rates
            ]

            base: List[float] = []

            def stop(res: JobResult) -> bool:
                latency = _cell_latency(res)
                if not base:
                    # The low-load anchor point never stops the sweep;
                    # it only sets the saturation reference.
                    base.append(latency)
                    return False
                return (
                    not res.run.drained
                    or latency > saturation_factor * base[0]
                )

            campaign = run_until(grid, stop, jobs=jobs)
            sweep = [
                (job.key[1], res.run.summary.throughput_packets_per_cycle,
                 _cell_latency(res))
                for job, res in zip(campaign.jobs, campaign.results)
            ]
            first = campaign.results[0]
            best_thr = (
                first.run.summary.throughput_packets_per_cycle
                if first.run.drained else 0.0
            )
            for _, thr, _lat in sweep[1:]:
                if thr > best_thr:
                    best_thr = thr
            result.cells[(p, design.name)] = SyntheticCell(
                latency=base[0],
                saturation_throughput=best_thr,
                sweep=tuple(sweep),
            )
    return result
