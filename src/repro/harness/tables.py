"""ASCII rendering for experiment results.

Every benchmark regenerates its paper table/figure as text: a title,
column headers, and rows -- the same rows/series the paper reports, so
paper-vs-measured comparison is a side-by-side read.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def fmt(value, digits: int = 2) -> str:
    """Format one cell: floats with fixed digits, everything else str()."""
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    digits: int = 2,
) -> str:
    """Render a boxed monospace table."""
    str_rows: List[List[str]] = [[fmt(c, digits) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.rjust(w) for c, w in zip(cells, widths)) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out = [f"== {title} ==", sep, line(list(headers)), sep]
    out.extend(line(r) for r in str_rows)
    out.append(sep)
    return "\n".join(out)


def render_series(title: str, x_label: str, xs: Sequence, series: dict, digits: int = 2) -> str:
    """Render named y-series against a shared x axis (figure curves)."""
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(xs):
        row: List[object] = [x]
        for name in series:
            ys = series[name]
            row.append(ys[i] if i < len(ys) and ys[i] is not None else "-")
        rows.append(row)
    return render_table(title, headers, rows, digits)


def pct_change(new: float, base: float) -> float:
    """Percentage reduction of ``new`` relative to ``base`` (positive = better)."""
    if base == 0:
        return 0.0
    return 100.0 * (base - new) / base
