"""Table 2: maximum zero-load packet latency (Section 5.6.1).

The worst source-destination pair, at zero load, including the
serialization of the longest packet type.  Purely analytical (zero
load), so it covers all three network sizes cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.core.latency import network_worst_case_latency
from repro.harness.designs import reference_designs
from repro.harness.tables import render_table


@dataclass
class Table2Result:
    sizes: Tuple[int, ...]
    schemes: Tuple[str, ...]
    values: Dict[Tuple[str, int], float]

    def render(self) -> str:
        rows = []
        for scheme in self.schemes:
            rows.append([scheme, *(self.values[(scheme, n)] for n in self.sizes)])
        return render_table(
            "Table 2: maximum zero-load packet latency (cycles)",
            ["topology", *(f"{n}x{n}" for n in self.sizes)],
            rows,
            digits=1,
        )


def table2(
    sizes: Sequence[int] = (4, 8, 16),
    seed: int = 2019,
    effort: str = "paper",
) -> Table2Result:
    values: Dict[Tuple[str, int], float] = {}
    schemes: Tuple[str, ...] = ()
    for n in sizes:
        designs = reference_designs(n, seed=seed, effort=effort)
        schemes = tuple(d.name for d in designs)
        for design in designs:
            values[(design.name, n)] = network_worst_case_latency(
                design.point.placement, design.point.link_limit
            )
    return Table2Result(sizes=tuple(sizes), schemes=schemes, values=values)
