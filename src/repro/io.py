"""JSON persistence for placements, design points, and sweep results.

Optimization runs are the expensive artifact of this library; these
helpers let users save a solved design and reload it later (or ship it
to a collaborator) without re-running the annealer.  The format is
plain JSON with a schema version, stable across releases.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.core.latency import LatencyBreakdown
from repro.core.optimizer import DesignPoint, SweepResult
from repro.topology.mesh import MeshTopology
from repro.topology.row import RowPlacement
from repro.util.errors import ConfigurationError

SCHEMA_VERSION = 1

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# Row placements
# ----------------------------------------------------------------------

def placement_to_dict(placement: RowPlacement) -> Dict:
    """JSON-ready representation of a row placement."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "row_placement",
        "n": placement.n,
        "express_links": sorted(list(link) for link in placement.express_links),
    }


def placement_from_dict(data: Dict) -> RowPlacement:
    """Inverse of :func:`placement_to_dict` (validates structure)."""
    if data.get("kind") != "row_placement":
        raise ConfigurationError(f"not a row placement: kind={data.get('kind')!r}")
    return RowPlacement(
        int(data["n"]),
        frozenset(tuple(link) for link in data["express_links"]),
    )


def save_placement(placement: RowPlacement, path: PathLike) -> None:
    Path(path).write_text(json.dumps(placement_to_dict(placement), indent=2))


def load_placement(path: PathLike) -> RowPlacement:
    return placement_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# Design points and sweeps
# ----------------------------------------------------------------------

def design_point_to_dict(point: DesignPoint) -> Dict:
    return {
        "schema": SCHEMA_VERSION,
        "kind": "design_point",
        "n": point.n,
        "link_limit": point.link_limit,
        "flit_bits": point.flit_bits,
        "placement": placement_to_dict(point.placement),
        "head_latency": point.latency.head,
        "serialization_latency": point.latency.serialization,
    }


def design_point_from_dict(data: Dict) -> DesignPoint:
    if data.get("kind") != "design_point":
        raise ConfigurationError(f"not a design point: kind={data.get('kind')!r}")
    return DesignPoint(
        n=int(data["n"]),
        link_limit=int(data["link_limit"]),
        flit_bits=int(data["flit_bits"]),
        placement=placement_from_dict(data["placement"]),
        latency=LatencyBreakdown(
            head=float(data["head_latency"]),
            serialization=float(data["serialization_latency"]),
        ),
    )


def sweep_to_dict(sweep: SweepResult) -> Dict:
    return {
        "schema": SCHEMA_VERSION,
        "kind": "sweep_result",
        "n": sweep.n,
        "method": sweep.method,
        "points": {str(c): design_point_to_dict(p) for c, p in sweep.points.items()},
    }


def sweep_from_dict(data: Dict) -> SweepResult:
    if data.get("kind") != "sweep_result":
        raise ConfigurationError(f"not a sweep result: kind={data.get('kind')!r}")
    sweep = SweepResult(n=int(data["n"]), method=str(data["method"]))
    for c, point in data["points"].items():
        sweep.points[int(c)] = design_point_from_dict(point)
    return sweep


def save_sweep(sweep: SweepResult, path: PathLike) -> None:
    Path(path).write_text(json.dumps(sweep_to_dict(sweep), indent=2))


def load_sweep(path: PathLike) -> SweepResult:
    return sweep_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# Topologies
# ----------------------------------------------------------------------

def topology_to_dict(topology: MeshTopology) -> Dict:
    return {
        "schema": SCHEMA_VERSION,
        "kind": "mesh_topology",
        "width": topology.n,
        "height": topology.height,
        "rows": [placement_to_dict(p) for p in topology.row_placements],
        "cols": [placement_to_dict(p) for p in topology.col_placements],
    }


def topology_from_dict(data: Dict) -> MeshTopology:
    if data.get("kind") != "mesh_topology":
        raise ConfigurationError(f"not a topology: kind={data.get('kind')!r}")
    return MeshTopology(
        n=int(data["width"]),
        row_placements=tuple(placement_from_dict(p) for p in data["rows"]),
        col_placements=tuple(placement_from_dict(p) for p in data["cols"]),
        height=int(data["height"]),
    )


def save_topology(topology: MeshTopology, path: PathLike) -> None:
    Path(path).write_text(json.dumps(topology_to_dict(topology), indent=2))


def load_topology(path: PathLike) -> MeshTopology:
    return topology_from_dict(json.loads(Path(path).read_text()))
