"""Unified instrumentation: structured events, metrics, timing spans.

Usage::

    from repro.obs import Instrumentation, MemorySink

    obs = Instrumentation(sinks=[MemorySink()], profile=True)
    result = optimize(8, config=SearchConfig(seed=2019), obs=obs)
    print(obs.metrics_summary())
    print(obs.profile_table())

With no sink attached (or ``obs=None``, the default everywhere) the
instrumented code paths reduce to one boolean check and results are
bit-identical to the uninstrumented library.

Three further pillars build on this core:

* the run ledger (:mod:`repro.obs.ledger`) -- content-addressed
  manifests under ``.repro/runs/``, queryable via ``repro runs``,
* cross-process trace correlation -- ``run_id`` / ``worker`` / ``task``
  stamps plus span ids, rendered by ``repro trace-report --by-worker``
  / ``--by-task``,
* perf-regression telemetry (:mod:`repro.obs.regress`) -- ``repro
  bench-report`` compares benchmark JSON twins; ``repro
  metrics-export`` renders recorded metrics as Prometheus text.
"""

from repro.obs.events import Event, EventBus
from repro.obs.instrument import NULL, Instrumentation, ensure_obs
from repro.obs.ledger import RunLedger, RunRecord, compute_run_id, digest_parts
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Quantile,
    RateMeter,
    render_prometheus,
)
from repro.obs.regress import compare_dirs, render_bench_report
from repro.obs.sinks import JsonlSink, MemorySink, StderrSummarySink
from repro.obs.spans import SpanRecorder, SpanStats, render_profile
from repro.obs.trace_report import (
    load_events,
    render_report,
    report_file,
)

__all__ = [
    "Event",
    "EventBus",
    "Instrumentation",
    "NULL",
    "ensure_obs",
    "Counter",
    "Gauge",
    "Histogram",
    "Quantile",
    "RateMeter",
    "MetricsRegistry",
    "render_prometheus",
    "RunLedger",
    "RunRecord",
    "compute_run_id",
    "digest_parts",
    "compare_dirs",
    "render_bench_report",
    "JsonlSink",
    "MemorySink",
    "StderrSummarySink",
    "SpanRecorder",
    "SpanStats",
    "render_profile",
    "load_events",
    "render_report",
    "report_file",
]
