"""Unified instrumentation: structured events, metrics, timing spans.

Usage::

    from repro.obs import Instrumentation, MemorySink

    obs = Instrumentation(sinks=[MemorySink()], profile=True)
    sweep = optimize(8, config=SearchConfig(seed=2019), obs=obs)
    print(obs.metrics_summary())
    print(obs.profile_table())

With no sink attached (or ``obs=None``, the default everywhere) the
instrumented code paths reduce to one boolean check and results are
bit-identical to the uninstrumented library.
"""

from repro.obs.events import Event, EventBus
from repro.obs.instrument import NULL, Instrumentation, ensure_obs
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.sinks import JsonlSink, MemorySink, StderrSummarySink
from repro.obs.spans import SpanRecorder, SpanStats, render_profile
from repro.obs.trace_report import (
    load_events,
    render_report,
    report_file,
)

__all__ = [
    "Event",
    "EventBus",
    "Instrumentation",
    "NULL",
    "ensure_obs",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "JsonlSink",
    "MemorySink",
    "StderrSummarySink",
    "SpanRecorder",
    "SpanStats",
    "render_profile",
    "load_events",
    "render_report",
    "report_file",
]
