"""Structured events and the bus that distributes them to sinks.

An :class:`Event` is one observation: a ``kind`` string, an optional
logical stamp (the optimizer's ``move`` index or the simulator's
``cycle``), a wall-clock offset, and a free-form ``payload`` dict.
Producers emit through an :class:`EventBus`; attached sinks (see
:mod:`repro.obs.sinks`) receive every event in emission order.

The bus is designed to disappear when unused: ``enabled`` is a plain
attribute flipped by attach/detach, so hot loops can guard with
``if bus.enabled:`` and pay one attribute read when nothing listens.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class Event:
    """One structured observation.

    ``seq`` is a bus-assigned monotone sequence number; ``move`` /
    ``cycle`` are the producer's logical clocks (optimizer move index,
    simulator cycle) and stay ``None`` for events outside those
    domains.  ``wall_time`` is seconds since the bus was created.
    """

    kind: str
    seq: int
    wall_time: float
    move: Optional[int] = None
    cycle: Optional[int] = None
    payload: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        """JSON-ready representation (``None`` stamps omitted)."""
        out: Dict = {"seq": self.seq, "kind": self.kind,
                     "wall_time": round(self.wall_time, 6)}
        if self.move is not None:
            out["move"] = self.move
        if self.cycle is not None:
            out["cycle"] = self.cycle
        out["payload"] = self.payload
        return out


class EventBus:
    """Fans events out to zero or more sinks, in order.

    ``context`` holds correlation stamps (``run_id``, ``worker``, the
    task grid coordinates) folded into every emitted payload.  Stamps
    never overwrite keys the producer set explicitly, so replayed
    worker events keep their worker-side coordinates while gaining the
    parent's ``run_id``.
    """

    __slots__ = ("sinks", "enabled", "_seq", "_t0", "context")

    def __init__(self) -> None:
        self.sinks: List = []
        #: True iff at least one sink is attached.  Read this before
        #: building payloads in hot loops.
        self.enabled = False
        self._seq = 0
        self._t0 = time.perf_counter()
        #: Correlation stamps merged into every payload (see class doc).
        self.context: Dict = {}

    def attach(self, sink) -> None:
        """Register ``sink`` (any object with ``handle(event)``)."""
        self.sinks.append(sink)
        self.enabled = True

    def detach(self, sink) -> None:
        self.sinks.remove(sink)
        self.enabled = bool(self.sinks)

    def emit(self, kind: str, move: Optional[int] = None,
             cycle: Optional[int] = None, **payload) -> None:
        """Deliver one event to every sink; no-op with no sinks."""
        if not self.enabled:
            return
        if self.context:
            payload = {**self.context, **payload}
        event = Event(
            kind=kind,
            seq=self._seq,
            wall_time=time.perf_counter() - self._t0,
            move=move,
            cycle=cycle,
            payload=payload,
        )
        self._seq += 1
        for sink in self.sinks:
            sink.handle(event)

    def close(self) -> None:
        """Close every sink that supports it (flush files, print summaries)."""
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()
