"""The bundle the rest of the library talks to.

:class:`Instrumentation` groups one event bus, one metrics registry and
one span recorder behind a tiny surface:

* ``obs.enabled`` -- True iff a sink is attached; hot loops guard event
  construction behind it,
* ``obs.emit(kind, ...)`` -- forward to the bus,
* ``obs.span(name)`` -- a timing context manager, or a shared no-op
  object when neither profiling nor a sink is active,
* ``obs.metrics`` -- the registry.

Every instrumented entry point (``anneal``, ``Simulator``,
``initial_solution``, ...) takes ``obs=None`` and substitutes the
module-level :data:`NULL` instance, whose ``enabled`` is permanently
False -- instrumentation then costs one attribute read per guard and
cannot perturb results (it never touches any RNG stream).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.obs.events import EventBus
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import NULL_SPAN, SpanRecorder, render_profile


class Instrumentation:
    """One run's observability context."""

    def __init__(self, sinks: Iterable = (), profile: bool = False) -> None:
        self.bus = EventBus()
        for sink in sinks:
            self.bus.attach(sink)
        self.metrics = MetricsRegistry()
        self.spans = SpanRecorder(bus=self.bus)
        self.profiling = bool(profile)
        #: True for the shared do-nothing instance only.
        self.is_null = False

    # -- events --------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """A sink is listening; build and emit events."""
        return self.bus.enabled

    def attach(self, sink) -> None:
        self.bus.attach(sink)

    def set_context(self, **stamps) -> None:
        """Stamp correlation fields onto every subsequent event.

        ``run_id``, ``worker`` and ``task`` (the grid coordinates of a
        worker's unit of work) are the conventional keys; a ``None``
        value removes the stamp.  Stamps never overwrite keys a
        producer passes explicitly, so replayed worker events keep
        their worker-side coordinates while gaining the parent's
        ``run_id``.
        """
        for key, value in stamps.items():
            if value is None:
                self.bus.context.pop(key, None)
            else:
                self.bus.context[key] = value

    def emit(self, kind: str, move: Optional[int] = None,
             cycle: Optional[int] = None, **payload) -> None:
        self.bus.emit(kind, move=move, cycle=cycle, **payload)

    def replay(self, events: Iterable[dict], worker: Optional[int] = None) -> None:
        """Re-emit serialized worker events (``Event.to_dict`` form).

        The parallel engine captures each worker's events in a
        :class:`~repro.obs.sinks.MemorySink`, ships them back as dicts
        and replays them here in deterministic task order, tagging each
        payload with its ``worker`` index.  Replayed events get fresh
        ``seq`` / ``wall_time`` stamps from this bus, so a merged trace
        stays monotone and ``trace-report`` keeps working under
        ``--jobs K``.  Worker-side stamps (the ``task`` coordinates,
        ``span_id`` links) ride inside the payloads untouched, which is
        what keeps span parent/child relationships attributable after
        the merge.
        """
        if not self.enabled:
            return
        for ev in events:
            payload = dict(ev.get("payload", ()))
            if worker is not None:
                payload.setdefault("worker", worker)
            self.bus.emit(
                ev["kind"], move=ev.get("move"), cycle=ev.get("cycle"), **payload
            )

    # -- spans ---------------------------------------------------------
    def span(self, name: str):
        """A timing context manager; no-op unless profiling or tracing."""
        if self.profiling or self.bus.enabled:
            return self.spans.span(name)
        return NULL_SPAN

    def profile_table(self, k: Optional[int] = None) -> str:
        return render_profile(self.spans, k)

    # -- lifecycle -----------------------------------------------------
    def metrics_summary(self) -> str:
        return self.metrics.render()

    def close(self) -> None:
        """Flush/close every sink (JSONL files, stderr summaries)."""
        self.bus.close()


#: Shared disabled instance used when callers pass ``obs=None``.
NULL = Instrumentation()
NULL.is_null = True


def ensure_obs(obs: Optional[Instrumentation]) -> Instrumentation:
    """``obs`` itself, or the shared :data:`NULL` instance for ``None``."""
    return NULL if obs is None else obs
