"""Run ledger: a content-addressed manifest for every run.

Every ``optimize`` / ``solve`` / ``simulate`` / campaign invocation can
record what it ran and what came out as a small JSON manifest under
``.repro/runs/<run_id>/manifest.json``.  The manifest answers, months
later, "which exact configuration produced this design?" and feeds the
roadmap's placement-as-a-service design cache: the ``run_id`` doubles
as the cache key.

Identity vs. outcome
--------------------
The ``run_id`` is a digest of the run's *identity* -- kind, problem
parameters, the result-shaping execution knobs and the seed -- so it is
computable **before** the run (it stamps the trace context via
``obs.set_context(run_id=...)``) and identical runs overwrite the same
manifest (idempotent, cache-friendly).  Wall-clock knobs (``jobs``,
``chains``) and observability knobs (``trace_out``, ``profile``,
``metrics_every``, ``ledger``) are excluded from the identity because
the engines guarantee they cannot change results.

The *outcome* is recorded separately: a ``result_digest`` over the
canonical result bytes (placement bytes + ``float.hex`` energies, or
the simulator summary fields), the human-readable results summary, the
deterministic metrics slice
(:meth:`~repro.obs.metrics.MetricsRegistry.deterministic_summary`) and
the full metrics snapshot.  Re-running an identity and getting a
different ``result_digest`` is a determinism bug by definition --
``repro runs diff`` makes that a one-command check.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import time
from dataclasses import asdict, dataclass, field, is_dataclass
from typing import Any, Dict, List, Optional

from repro.util.errors import ConfigurationError

#: Default ledger root, relative to the working directory.
LEDGER_ROOT = os.path.join(".repro", "runs")

#: SearchConfig/SimConfig fields excluded from the run identity: pure
#: wall-clock knobs (results are bit-identical for every value) and
#: observability settings (never touch any RNG stream).  ``impl`` is
#: here because the kernel tiers are bit-identical by the cross-impl
#: parity gates -- the same search yields the same run_id whether it
#: was priced by the NumPy, reference, or native kernels.
NON_IDENTITY_FIELDS = frozenset({
    "jobs", "chains", "trace_out", "metrics_every", "profile", "ledger",
    "impl",
})


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, stable floats."""
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), default=str
    )


def config_identity(config: Any) -> Dict:
    """A config's result-shaping fields as a plain dict.

    Accepts a dataclass (``SearchConfig`` / ``SimConfig``), a dict, or
    ``None``; drops :data:`NON_IDENTITY_FIELDS` either way.
    """
    if config is None:
        return {}
    data = asdict(config) if is_dataclass(config) else dict(config)
    return {k: v for k, v in data.items() if k not in NON_IDENTITY_FIELDS}


def compute_run_id(
    kind: str, params: Dict, config: Any = None, seed: Optional[int] = None
) -> str:
    """The content-addressed identity digest -- computable pre-run."""
    identity = {
        "kind": kind,
        "params": params,
        "config": config_identity(config),
        "seed": seed,
    }
    digest = hashlib.sha256(canonical_json(identity).encode("utf-8"))
    return digest.hexdigest()[:16]


def digest_parts(*parts: Any) -> str:
    """A digest over heterogeneous result parts (bytes or stringable).

    Callers pass exact representations -- ``RowPlacement.canonical_bytes``
    for placements, ``float.hex()`` for energies -- so the digest is a
    bit-level fingerprint, not a rounded summary.
    """
    h = hashlib.sha256()
    for part in parts:
        h.update(part if isinstance(part, bytes) else str(part).encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()[:16]


def optimize_params(
    n: int, method: str, effort: str, space: str = "row"
) -> Dict:
    """The identity params of an ``optimize`` run.

    The single definition shared by the CLI's ``--ledger`` recording
    and the serving layer's design store, so a served ``/place``
    request and ``repro optimize`` compute the *same* ``run_id`` for
    the same work -- the property the cache-hit byte-identity check in
    CI rests on.  ``space`` is recorded only for the mesh spaces: row
    identities keep their pre-space digests.
    """
    params = {"n": n, "method": method, "effort": effort}
    if space != "row":
        params["space"] = space
    return params


def solve_params(
    n: int, c: int, method: str, effort: str, space: str = "row"
) -> Dict:
    """The identity params of a single-``C`` ``solve`` run."""
    params = {"n": n, "c": c, "method": method, "effort": effort}
    if space != "row":
        params["space"] = space
    return params


def pareto_params(
    n: int,
    c: int,
    method: str,
    effort: str,
    driver: str,
    objectives,
    traffic: str = "uniform",
) -> Dict:
    """The identity params of a ``pareto`` front search.

    ``objectives`` is the ordered axis tuple and ``traffic`` names the
    gamma source (``"uniform"`` or a PARSEC workload), both part of the
    identity: the same ``(n, C, seed)`` under different axes or traffic
    is different work.
    """
    return {
        "n": n,
        "c": c,
        "method": method,
        "effort": effort,
        "driver": driver,
        "objectives": ",".join(objectives),
        "traffic": traffic,
    }


def sweep_digest(sweep) -> str:
    """Bit-level fingerprint of a sweep's placements and energies."""
    parts = []
    for c in sorted(sweep.solutions):
        sol = sweep.solutions[c]
        parts.append(sol.placement.canonical_bytes())
        parts.append(float(sol.energy).hex())
    return digest_parts(*parts)


def solution_digest(sol) -> str:
    """Fingerprint of one solution (any object with placement + energy)."""
    return digest_parts(
        sol.placement.canonical_bytes(), float(sol.energy).hex()
    )


def git_sha() -> Optional[str]:
    """The current commit, or ``None`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def environment_snapshot() -> Dict:
    """Interpreter + numpy versions and the commit, for the manifest."""
    try:
        import numpy as np

        numpy_version: Optional[str] = np.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = None
    return {
        "python": platform.python_version(),
        "numpy": numpy_version,
        "platform": platform.platform(),
        "git_sha": git_sha(),
    }


@dataclass(frozen=True)
class RunRecord:
    """One run's manifest: identity, environment, outcome."""

    run_id: str
    kind: str
    params: Dict
    config: Dict
    seed: Optional[int]
    created_at: str
    environment: Dict
    wall_time_s: float
    result_digest: str
    results: Dict
    metrics_summary: Dict = field(default_factory=dict)
    metrics: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return asdict(self)


class RunLedger:
    """Reads and writes run manifests under one root directory."""

    def __init__(self, root: str = LEDGER_ROOT) -> None:
        self.root = root

    # -- identity ------------------------------------------------------
    def run_id_for(
        self, kind: str, params: Dict, config: Any = None,
        seed: Optional[int] = None,
    ) -> str:
        return compute_run_id(kind, params, config, seed)

    def manifest_path(self, run_id: str) -> str:
        return os.path.join(self.root, run_id, "manifest.json")

    # -- write ---------------------------------------------------------
    def record(
        self,
        kind: str,
        params: Dict,
        config: Any = None,
        seed: Optional[int] = None,
        wall_time_s: float = 0.0,
        results: Optional[Dict] = None,
        result_digest: str = "",
        metrics_summary: Optional[Dict] = None,
        metrics: Optional[Dict] = None,
        run_id: Optional[str] = None,
    ) -> RunRecord:
        """Write (or idempotently overwrite) one run's manifest."""
        run_id = run_id or self.run_id_for(kind, params, config, seed)
        record = RunRecord(
            run_id=run_id,
            kind=kind,
            params=params,
            config=(
                asdict(config) if is_dataclass(config) else dict(config or {})
            ),
            seed=seed,
            created_at=time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            environment=environment_snapshot(),
            wall_time_s=round(float(wall_time_s), 6),
            result_digest=result_digest,
            results=results or {},
            metrics_summary=metrics_summary or {},
            metrics=metrics or {},
        )
        path = self.manifest_path(run_id)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(record.to_dict(), fh, indent=2, sort_keys=True,
                      default=str)
            fh.write("\n")
        os.replace(tmp, path)  # atomic: readers never see a torn manifest
        return record

    # -- read ----------------------------------------------------------
    def list(self) -> List[Dict]:
        """Every manifest under the root, most recent first."""
        if not os.path.isdir(self.root):
            return []
        manifests = []
        for entry in sorted(os.listdir(self.root)):
            path = self.manifest_path(entry)
            if os.path.isfile(path):
                with open(path, "r", encoding="utf-8") as fh:
                    manifests.append(json.load(fh))
        manifests.sort(key=lambda m: m.get("created_at", ""), reverse=True)
        return manifests

    def load(self, run_id: str) -> Dict:
        """Load one manifest; unique prefixes resolve like git hashes."""
        path = self.manifest_path(run_id)
        if not os.path.isfile(path):
            matches = [
                entry for entry in (
                    os.listdir(self.root) if os.path.isdir(self.root) else []
                )
                if entry.startswith(run_id)
                and os.path.isfile(self.manifest_path(entry))
            ]
            if len(matches) == 1:
                path = self.manifest_path(matches[0])
            elif len(matches) > 1:
                raise ConfigurationError(
                    f"run id prefix {run_id!r} is ambiguous: "
                    f"{sorted(matches)}"
                )
            else:
                raise ConfigurationError(
                    f"no run {run_id!r} under {self.root}"
                )
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)


def diff_manifests(a: Dict, b: Dict) -> List[str]:
    """Human-readable field-level differences between two manifests.

    Nested dicts (params, config, results, the deterministic metrics
    summary) are compared key by key; environment and timing fields are
    reported informationally since they legitimately vary between
    machines and reruns.
    """
    lines: List[str] = []

    def compare(label: str, va: Any, vb: Any) -> None:
        if isinstance(va, dict) and isinstance(vb, dict):
            for key in sorted(set(va) | set(vb)):
                compare(f"{label}.{key}", va.get(key), vb.get(key))
        elif va != vb:
            lines.append(f"  {label}: {va!r} != {vb!r}")

    for key in ("kind", "seed", "params", "config", "result_digest",
                "results", "metrics_summary"):
        compare(key, a.get(key), b.get(key))
    return lines


def render_runs_table(manifests: List[Dict]) -> str:
    """The ``repro runs list`` table."""
    if not manifests:
        return "no runs recorded"
    lines = [
        f"{'run_id':<18} {'kind':<10} {'created':<25} {'wall s':>8}  "
        f"{'digest':<18} params",
    ]
    for m in manifests:
        params = canonical_json(m.get("params", {}))
        if len(params) > 40:
            params = params[:37] + "..."
        lines.append(
            f"{m.get('run_id', '?'):<18} {m.get('kind', '?'):<10} "
            f"{m.get('created_at', '?'):<25} "
            f"{m.get('wall_time_s', 0.0):>8.2f}  "
            f"{m.get('result_digest', '-'):<18} {params}"
        )
    return "\n".join(lines)
