"""Metrics registry: counters, gauges, histograms, quantiles, meters.

No third-party dependencies -- these are the minimal primitives needed
to watch an SA run converge or a simulator saturate:

* :class:`Counter` -- monotone event totals (moves, accepted, hits),
* :class:`Gauge` -- last-written instantaneous values (flits in
  flight, temperature),
* :class:`Histogram` -- fixed upper-bound buckets with *less-or-equal*
  semantics: an observation lands in the first bucket whose bound is
  ``>= value`` (so a value exactly on a bound belongs to that bucket),
  and anything above the last bound lands in the overflow bucket,
* :class:`Quantile` -- streaming quantile estimates (P^2 algorithm, no
  sample retention) for long-tailed distributions like packet latency,
* :class:`RateMeter` -- a count over an elapsed wall-clock window
  (moves/sec, cycles/sec); wall-derived and therefore excluded from
  the replay-stable summary.

The :class:`MetricsRegistry` hands out get-or-create instruments by
name and renders plain-text, JSON, and Prometheus summaries.

Merge semantics (pinned, property-tested)
-----------------------------------------
:meth:`MetricsRegistry.merge` folds worker snapshots into a parent and
must not depend on worker completion order:

* counters and histogram bucket counts add in exact integer
  arithmetic (commutative),
* float accumulations (histogram/quantile/meter totals) are kept as
  per-merge *parts* and summed with :func:`math.fsum`, whose exactly
  rounded result is permutation-invariant,
* quantile estimates combine as a count-weighted mean of the incoming
  digests (again via ``fsum``),
* gauges resolve by the **largest merge key**, not arrival order: pass
  ``key=<task coordinate>`` and the gauge keeps the value of the
  greatest coordinate, deterministically.  Without keys the legacy
  incoming-wins behavior applies (only safe when merges already happen
  in a deterministic order).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from math import fsum
from typing import Dict, List, Optional, Sequence, Tuple


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """An instantaneous value; remembers the extremes it has seen.

    ``merge_rank`` tracks the largest key seen by keyed merges so the
    merged value is a deterministic function of the contributing
    snapshots, not of their arrival order.
    """

    __slots__ = ("name", "value", "min", "max", "updates", "merge_rank")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.updates = 0
        self.merge_rank = None

    def set(self, value: float) -> None:
        self.value = value
        self.updates += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value


class Histogram:
    """Fixed-bucket histogram with <=-bound bucketing.

    ``bounds`` are strictly increasing upper bounds; ``counts`` has
    ``len(bounds) + 1`` entries, the last being the overflow bucket.
    The running ``total`` keeps locally observed mass separate from
    merged-in worker totals so the combined sum (:func:`math.fsum`) is
    invariant under merge order.
    """

    __slots__ = ("name", "bounds", "counts", "count", "_self_total",
                 "_merge_totals")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        bounds = tuple(bounds)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket bound")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name} bounds must strictly increase")
        self.name = name
        self.bounds: Tuple[float, ...] = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self._self_total = 0.0
        self._merge_totals: List[float] = []

    def observe(self, value: float) -> None:
        # bisect_left puts value == bound into that bound's bucket.
        self.counts[bisect_left(self.bounds, value)] += 1
        self._self_total += value
        self.count += 1

    @property
    def total(self) -> float:
        if not self._merge_totals:
            return self._self_total
        return fsum([self._self_total, *self._merge_totals])

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def bucket_for(self, value: float) -> int:
        """Index of the bucket an observation of ``value`` would hit."""
        return bisect_left(self.bounds, value)


class P2Estimator:
    """One streaming quantile via the P^2 algorithm (Jain & Chlamtac).

    Five markers track (min, q/2, q, (1+q)/2, max); marker heights
    adjust with a piecewise-parabolic update as observations stream in.
    Memory is O(1) -- no samples are retained -- and the estimate is a
    deterministic function of the observation sequence.
    """

    __slots__ = ("q", "count", "heights", "positions", "_dn")

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self.count = 0
        self.heights: List[float] = []
        self.positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._dn = (0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0)

    def observe(self, x: float) -> None:
        self.count += 1
        if self.count <= 5:
            insort(self.heights, x)
            return
        h, n = self.heights, self.positions
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            while x >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1.0
        for i in (1, 2, 3):
            desired = 1.0 + (self.count - 1) * self._dn[i]
            delta = desired - n[i]
            if (delta >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                delta <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                d = 1.0 if delta > 0 else -1.0
                candidate = self._parabolic(i, d)
                if not h[i - 1] < candidate < h[i + 1]:
                    candidate = self._linear(i, d)
                h[i] = candidate
                n[i] += d

    def _parabolic(self, i: int, d: float) -> float:
        h, n = self.heights, self.positions
        return h[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        h, n = self.heights, self.positions
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (n[j] - n[i])

    def estimate(self) -> float:
        if not self.heights:
            return 0.0
        if self.count <= 5:
            # Exact while the sample fits in the marker array.
            rank = self.q * (len(self.heights) - 1)
            lo = int(rank)
            hi = min(lo + 1, len(self.heights) - 1)
            frac = rank - lo
            return self.heights[lo] * (1.0 - frac) + self.heights[hi] * frac
        return self.heights[2]


class Quantile:
    """A named set of streaming quantile estimates (no sample retention).

    Local observations feed one :class:`P2Estimator` per requested
    quantile; worker digests merged in are kept as ``(count, estimate)``
    parts and combined as a count-weighted mean via :func:`math.fsum`,
    so the merged summary is invariant under merge order.
    """

    DEFAULT_QS = (0.5, 0.9, 0.99)

    __slots__ = ("name", "qs", "count", "min", "max", "_estimators",
                 "_self_total", "_merge_parts")

    def __init__(self, name: str, qs: Sequence[float] = ()) -> None:
        self.name = name
        self.qs: Tuple[float, ...] = tuple(qs) or self.DEFAULT_QS
        if len(set(self.qs)) != len(self.qs):
            raise ValueError(f"quantile {name} has duplicate quantiles {self.qs}")
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")
        self._estimators = {q: P2Estimator(q) for q in self.qs}
        self._self_total = 0.0
        #: Merged worker digests: (count, {q: estimate}, total).
        self._merge_parts: List[Tuple[int, Dict[float, float], float]] = []

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self._self_total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for est in self._estimators.values():
            est.observe(value)

    @property
    def total(self) -> float:
        if not self._merge_parts:
            return self._self_total
        return fsum([self._self_total] + [p[2] for p in self._merge_parts])

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def estimates(self) -> Dict[float, float]:
        """Current estimate per quantile (count-weighted across merges)."""
        local_count = self.count - sum(p[0] for p in self._merge_parts)
        out: Dict[float, float] = {}
        for q in self.qs:
            parts = []
            if local_count > 0:
                parts.append((local_count, self._estimators[q].estimate()))
            for count, ests, _total in self._merge_parts:
                if count > 0 and q in ests:
                    parts.append((count, ests[q]))
            weight = sum(c for c, _ in parts)
            out[q] = (
                fsum(c * e for c, e in parts) / weight if weight else 0.0
            )
        return out


class RateMeter:
    """A count over an elapsed wall-clock window (events per second).

    Producers call :meth:`add` with the work done and the wall seconds
    it took; the meter reports the aggregate rate.  Elapsed times are
    wall-derived, so meters are excluded from
    :meth:`MetricsRegistry.deterministic_summary`.
    """

    __slots__ = ("name", "count", "_self_elapsed", "_merge_elapsed")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self._self_elapsed = 0.0
        self._merge_elapsed: List[float] = []

    def add(self, count: int, elapsed_s: float) -> None:
        if count < 0 or elapsed_s < 0:
            raise ValueError(f"meter {self.name} cannot run backwards")
        self.count += count
        self._self_elapsed += elapsed_s

    @property
    def elapsed_s(self) -> float:
        if not self._merge_elapsed:
            return self._self_elapsed
        return fsum([self._self_elapsed, *self._merge_elapsed])

    @property
    def rate(self) -> float:
        elapsed = self.elapsed_s
        return self.count / elapsed if elapsed > 0 else 0.0


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.quantiles: Dict[str, Quantile] = {}
        self.meters: Dict[str, RateMeter] = {}

    # -- get-or-create -------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, bounds: Sequence[float] = ()) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name, bounds)
        return h

    def quantile(self, name: str, qs: Sequence[float] = ()) -> Quantile:
        q = self.quantiles.get(name)
        if q is None:
            q = self.quantiles[name] = Quantile(name, qs)
        return q

    def meter(self, name: str) -> RateMeter:
        m = self.meters.get(name)
        if m is None:
            m = self.meters[name] = RateMeter(name)
        return m

    # -- merge ---------------------------------------------------------
    def merge(self, snapshot: Dict, key=None) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The parallel engines run each worker with its own registry and
        merge the snapshots back so ``--profile`` / ``--trace-out``
        totals cover the whole fleet.  Semantics (pinned by the
        order-invariance property suite):

        * counters add (exact integers),
        * histograms add bucket counts (bounds must match exactly);
          their float totals accumulate as parts summed by
          :func:`math.fsum`, whose exactly rounded result does not
          depend on merge order,
        * quantile digests combine as count-weighted means (``fsum``),
        * meters add counts and ``fsum`` their elapsed windows,
        * gauges: with a ``key`` the merged value belongs to the
          snapshot with the **largest key** (e.g. the task grid
          coordinate) -- a deterministic resolution no matter the
          completion or merge order; without a key the incoming value
          wins (legacy, order-sensitive).  ``min`` / ``max`` /
          ``updates`` accumulate commutatively either way.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, data in snapshot.get("gauges", {}).items():
            g = self.gauge(name)
            if key is None or g.merge_rank is None or key >= g.merge_rank:
                g.value = data["value"]
                if key is not None:
                    g.merge_rank = key
            g.min = min(g.min, data["min"])
            g.max = max(g.max, data["max"])
            g.updates += data["updates"]
        for name, data in snapshot.get("histograms", {}).items():
            bounds = tuple(data["bounds"])
            h = self.histograms.get(name)
            if h is None:
                h = self.histogram(name, bounds)
            if h.bounds != bounds:
                raise ValueError(
                    f"histogram {name} bounds mismatch: {h.bounds} != {bounds}"
                )
            for i, c in enumerate(data["counts"]):
                h.counts[i] += c
            h.count += data["count"]
            h._merge_totals.append(
                data["total"] if "total" in data else data["mean"] * data["count"]
            )
        for name, data in snapshot.get("quantiles", {}).items():
            q = self.quantile(name, tuple(float(x) for x in data["qs"]))
            count = data["count"]
            q.count += count
            q.min = min(q.min, data["min"])
            q.max = max(q.max, data["max"])
            q._merge_parts.append((
                count,
                {float(k): v for k, v in data["estimates"].items()},
                data["total"],
            ))
        for name, data in snapshot.get("meters", {}).items():
            m = self.meter(name)
            m.count += data["count"]
            m._merge_elapsed.append(data["elapsed_s"])

    # -- export --------------------------------------------------------
    def snapshot(self) -> Dict:
        """JSON-ready dump of every instrument."""
        out = {
            "counters": {n: c.value for n, c in self.counters.items()},
            "gauges": {
                n: {"value": g.value, "min": g.min, "max": g.max,
                    "updates": g.updates}
                for n, g in self.gauges.items() if g.updates
            },
            "histograms": {
                n: {"bounds": list(h.bounds), "counts": list(h.counts),
                    "count": h.count, "total": h.total, "mean": h.mean}
                for n, h in self.histograms.items()
            },
        }
        if self.quantiles:
            out["quantiles"] = {
                n: {"qs": list(q.qs),
                    "estimates": {repr(k): v for k, v in q.estimates().items()},
                    "count": q.count, "min": q.min, "max": q.max,
                    "total": q.total}
                for n, q in self.quantiles.items() if q.count
            }
        if self.meters:
            out["meters"] = {
                n: {"count": m.count, "elapsed_s": m.elapsed_s, "rate": m.rate}
                for n, m in self.meters.items() if m.count
            }
        return out

    def deterministic_summary(self) -> Dict:
        """The replay-stable slice of the snapshot.

        Counters, histograms and quantile digests are pure functions of
        the (deterministic) observation sequences, so for a fixed seed
        they are identical across ``--jobs`` values and across reruns.
        Gauges (execution-shape values like ``parallel.jobs``) and rate
        meters (wall-derived) are excluded.  The run ledger records
        this slice so manifests can be diffed across machines.
        """
        snap = self.snapshot()
        return {
            "counters": dict(sorted(snap["counters"].items())),
            "histograms": dict(sorted(snap["histograms"].items())),
            "quantiles": dict(sorted(snap.get("quantiles", {}).items())),
        }

    def render(self) -> str:
        """Plain-text summary, one instrument per line."""
        lines = ["metrics:"]
        for name in sorted(self.counters):
            lines.append(f"  counter   {name:<28} {self.counters[name].value}")
        for name in sorted(self.gauges):
            g = self.gauges[name]
            if g.updates:
                lines.append(
                    f"  gauge     {name:<28} {g.value:g} "
                    f"(min {g.min:g}, max {g.max:g}, {g.updates} updates)"
                )
        for name in sorted(self.histograms):
            h = self.histograms[name]
            lines.append(
                f"  histogram {name:<28} n={h.count} mean={h.mean:.3f} "
                f"buckets={list(zip(list(h.bounds) + ['inf'], h.counts))}"
            )
        for name in sorted(self.quantiles):
            q = self.quantiles[name]
            if q.count:
                ests = " ".join(
                    f"p{int(k * 100)}={v:.3f}" for k, v in q.estimates().items()
                )
                lines.append(
                    f"  quantile  {name:<28} n={q.count} {ests} "
                    f"(min {q.min:g}, max {q.max:g})"
                )
        for name in sorted(self.meters):
            m = self.meters[name]
            if m.count:
                lines.append(
                    f"  meter     {name:<28} {m.rate:,.1f}/s "
                    f"({m.count} over {m.elapsed_s:.3f}s)"
                )
        if len(lines) == 1:
            lines.append("  (empty)")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def _prom_name(name: str, prefix: str) -> str:
    clean = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"{prefix}_{clean}" if prefix else clean


def _prom_labels(labels: Optional[Dict[str, str]], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in (labels or {}).items()]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(
    snapshot: Dict,
    prefix: str = "repro",
    labels: Optional[Dict[str, str]] = None,
) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` in Prometheus text
    exposition format (the node-exporter textfile-collector dialect).

    Counters map to ``counter``, gauges to ``gauge``, fixed-bucket
    histograms to cumulative ``le``-labelled ``histogram`` series,
    quantile digests to ``summary`` series, and rate meters to a
    ``gauge`` rate plus a ``counter`` total.  ``labels`` (typically
    ``{"run_id": ...}``) attach to every sample.
    """
    lines: List[str] = []
    base = _prom_labels(labels)
    for name in sorted(snapshot.get("counters", {})):
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}{base} {snapshot['counters'][name]}")
    for name in sorted(snapshot.get("gauges", {})):
        metric = _prom_name(name, prefix)
        data = snapshot["gauges"][name]
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric}{base} {data['value']:g}")
    for name in sorted(snapshot.get("histograms", {})):
        metric = _prom_name(name, prefix)
        data = snapshot["histograms"][name]
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(data["bounds"], data["counts"]):
            cumulative += count
            le = 'le="%g"' % bound
            lines.append(f"{metric}_bucket{_prom_labels(labels, le)} {cumulative}")
        inf = 'le="+Inf"'
        lines.append(f"{metric}_bucket{_prom_labels(labels, inf)} {data['count']}")
        total = data.get("total", data.get("mean", 0.0) * data["count"])
        lines.append(f"{metric}_sum{base} {total:g}")
        lines.append(f"{metric}_count{base} {data['count']}")
    for name in sorted(snapshot.get("quantiles", {})):
        metric = _prom_name(name, prefix)
        data = snapshot["quantiles"][name]
        lines.append(f"# TYPE {metric} summary")
        for q, est in sorted(
            (float(k), v) for k, v in data["estimates"].items()
        ):
            ql = 'quantile="%g"' % q
            lines.append(f"{metric}{_prom_labels(labels, ql)} {est:g}")
        lines.append(f"{metric}_sum{base} {data['total']:g}")
        lines.append(f"{metric}_count{base} {data['count']}")
    for name in sorted(snapshot.get("meters", {})):
        metric = _prom_name(name, prefix)
        data = snapshot["meters"][name]
        lines.append(f"# TYPE {metric}_rate gauge")
        lines.append(f"{metric}_rate{base} {data['rate']:g}")
        lines.append(f"# TYPE {metric}_total counter")
        lines.append(f"{metric}_total{base} {data['count']}")
    return "\n".join(lines) + ("\n" if lines else "")
