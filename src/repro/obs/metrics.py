"""Metrics registry: counters, gauges and fixed-bucket histograms.

No third-party dependencies -- these are the minimal primitives needed
to watch an SA run converge or a simulator saturate:

* :class:`Counter` -- monotone event totals (moves, accepted, hits),
* :class:`Gauge` -- last-written instantaneous values (flits in
  flight, temperature),
* :class:`Histogram` -- fixed upper-bound buckets with *less-or-equal*
  semantics: an observation lands in the first bucket whose bound is
  ``>= value`` (so a value exactly on a bound belongs to that bucket),
  and anything above the last bound lands in the overflow bucket.

The :class:`MetricsRegistry` hands out get-or-create instruments by
name and renders a plain-text summary table.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Sequence, Tuple


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """An instantaneous value; remembers the extremes it has seen."""

    __slots__ = ("name", "value", "min", "max", "updates")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = value
        self.updates += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value


class Histogram:
    """Fixed-bucket histogram with <=-bound bucketing.

    ``bounds`` are strictly increasing upper bounds; ``counts`` has
    ``len(bounds) + 1`` entries, the last being the overflow bucket.
    """

    __slots__ = ("name", "bounds", "counts", "total", "count")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        bounds = tuple(bounds)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket bound")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name} bounds must strictly increase")
        self.name = name
        self.bounds: Tuple[float, ...] = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # bisect_left puts value == bound into that bound's bucket.
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def bucket_for(self, value: float) -> int:
        """Index of the bucket an observation of ``value`` would hit."""
        return bisect_left(self.bounds, value)


class MetricsRegistry:
    """Named instruments, created on first use."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- get-or-create -------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, bounds: Sequence[float] = ()) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name, bounds)
        return h

    # -- merge ---------------------------------------------------------
    def merge(self, snapshot: Dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The parallel search engine runs each worker with its own
        registry and merges the snapshots back so ``--profile`` /
        ``--trace-out`` totals cover the whole fleet:

        * counters add,
        * gauges keep the incoming last-written value but accumulate
          ``min`` / ``max`` / ``updates`` across both sides,
        * histograms add bucket counts (bounds must match exactly).

        Merging is associative and, applied in a deterministic worker
        order, reproducible run to run.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, data in snapshot.get("gauges", {}).items():
            g = self.gauge(name)
            g.value = data["value"]
            g.min = min(g.min, data["min"])
            g.max = max(g.max, data["max"])
            g.updates += data["updates"]
        for name, data in snapshot.get("histograms", {}).items():
            bounds = tuple(data["bounds"])
            h = self.histograms.get(name)
            if h is None:
                h = self.histogram(name, bounds)
            if h.bounds != bounds:
                raise ValueError(
                    f"histogram {name} bounds mismatch: {h.bounds} != {bounds}"
                )
            for i, c in enumerate(data["counts"]):
                h.counts[i] += c
            h.count += data["count"]
            h.total += data["mean"] * data["count"]

    # -- export --------------------------------------------------------
    def snapshot(self) -> Dict:
        """JSON-ready dump of every instrument."""
        return {
            "counters": {n: c.value for n, c in self.counters.items()},
            "gauges": {
                n: {"value": g.value, "min": g.min, "max": g.max,
                    "updates": g.updates}
                for n, g in self.gauges.items() if g.updates
            },
            "histograms": {
                n: {"bounds": list(h.bounds), "counts": list(h.counts),
                    "count": h.count, "mean": h.mean}
                for n, h in self.histograms.items()
            },
        }

    def render(self) -> str:
        """Plain-text summary, one instrument per line."""
        lines = ["metrics:"]
        for name in sorted(self.counters):
            lines.append(f"  counter   {name:<28} {self.counters[name].value}")
        for name in sorted(self.gauges):
            g = self.gauges[name]
            if g.updates:
                lines.append(
                    f"  gauge     {name:<28} {g.value:g} "
                    f"(min {g.min:g}, max {g.max:g}, {g.updates} updates)"
                )
        for name in sorted(self.histograms):
            h = self.histograms[name]
            lines.append(
                f"  histogram {name:<28} n={h.count} mean={h.mean:.3f} "
                f"buckets={list(zip(list(h.bounds) + ['inf'], h.counts))}"
            )
        if len(lines) == 1:
            lines.append("  (empty)")
        return "\n".join(lines)
