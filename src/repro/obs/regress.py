"""Perf-regression telemetry: compare two sets of benchmark JSON twins.

Every benchmark leg publishes a machine-readable JSON twin next to its
text table (see ``benchmarks/conftest.py``): a flat object of numeric
measurements (``scalar_wall_s``, ``speedup``, ...) plus provenance
(``name``, ``git_sha``, ``timestamp``).  This module pairs the twins of
a *baseline* directory with those of a *candidate* directory by
benchmark name, compares every shared numeric leg, and classifies each
as improved / unchanged / regressed against a noise threshold --
``repro bench-report`` renders the table and exits non-zero on any
regression, which is what makes it a CI leg.

Direction is inferred from the key name:

* keys containing ``wall`` or ending in ``_s`` are time-like -- higher
  is worse,
* keys containing ``speedup``, ``per_sec`` or ``rate`` are throughput-
  like -- lower is worse,
* anything else (counts, sizes, problem parameters) is compared for
  information only and never fails the report.

The default threshold of 25% absorbs the run-to-run noise of paired
best-of-rounds wall times on shared CI machines; tighten it locally
with ``--threshold``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.util.errors import ConfigurationError

#: Provenance keys never compared as measurements.
PROVENANCE_KEYS = frozenset({"name", "git_sha", "timestamp", "effort"})


def _direction(key: str) -> Optional[str]:
    """``"lower"``/``"higher"`` = better, ``None`` = informational."""
    k = key.lower()
    if "speedup" in k or "per_sec" in k or "rate" in k:
        return "higher"
    if "wall" in k or k.endswith("_s") or "seconds" in k or "time" in k:
        return "lower"
    return None


@dataclass(frozen=True)
class Comparison:
    """One (benchmark, measurement) pair across baseline and candidate."""

    bench: str
    key: str
    baseline: float
    candidate: float
    direction: Optional[str]  # "lower" | "higher" | None (informational)
    ratio: float              # candidate / baseline (inf when baseline=0)
    verdict: str              # "ok" | "improved" | "REGRESSED" | "info"

    @property
    def regressed(self) -> bool:
        return self.verdict == "REGRESSED"


def load_results_dir(path: str) -> Dict[str, Dict]:
    """Every ``*.json`` twin in ``path``, keyed by benchmark name."""
    if not os.path.isdir(path):
        raise ConfigurationError(f"results directory not found: {path}")
    out: Dict[str, Dict] = {}
    for entry in sorted(os.listdir(path)):
        if not entry.endswith(".json"):
            continue
        full = os.path.join(path, entry)
        try:
            with open(full, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"cannot read {full}: {exc}") from exc
        if isinstance(data, dict):
            out[data.get("name", entry[:-5])] = data
    return out


def compare_records(
    name: str, baseline: Dict, candidate: Dict, threshold: float
) -> List[Comparison]:
    """Compare every shared numeric leg of one benchmark twin."""
    comps: List[Comparison] = []
    for key in sorted(set(baseline) & set(candidate)):
        if key in PROVENANCE_KEYS:
            continue
        va, vb = baseline[key], candidate[key]
        if isinstance(va, bool) or isinstance(vb, bool):
            continue
        if not isinstance(va, (int, float)) or not isinstance(vb, (int, float)):
            continue
        direction = _direction(key)
        ratio = (vb / va) if va else float("inf") if vb else 1.0
        if direction is None:
            verdict = "info" if va == vb else "CHANGED"
        elif direction == "lower":
            if ratio > 1.0 + threshold:
                verdict = "REGRESSED"
            elif ratio < 1.0 - threshold:
                verdict = "improved"
            else:
                verdict = "ok"
        else:  # higher is better
            if ratio < 1.0 / (1.0 + threshold):
                verdict = "REGRESSED"
            elif ratio > 1.0 + threshold:
                verdict = "improved"
            else:
                verdict = "ok"
        comps.append(Comparison(
            bench=name, key=key, baseline=float(va), candidate=float(vb),
            direction=direction, ratio=float(ratio), verdict=verdict,
        ))
    return comps


def compare_dirs(
    baseline_dir: str, candidate_dir: str, threshold: float = 0.25
) -> Tuple[List[Comparison], List[str]]:
    """Compare two results directories.

    Returns the comparisons for every benchmark present in both, plus
    the names present on only one side (reported, never failing --
    adding a benchmark must not break the report).
    """
    if threshold < 0:
        raise ConfigurationError(f"threshold must be >= 0, got {threshold}")
    baseline = load_results_dir(baseline_dir)
    candidate = load_results_dir(candidate_dir)
    comps: List[Comparison] = []
    for name in sorted(set(baseline) & set(candidate)):
        comps.extend(
            compare_records(name, baseline[name], candidate[name], threshold)
        )
    unpaired = sorted(set(baseline) ^ set(candidate))
    return comps, unpaired


def render_bench_report(
    comps: List[Comparison],
    unpaired: List[str],
    threshold: float,
    baseline_dir: str,
    candidate_dir: str,
) -> str:
    """The pass/fail table ``repro bench-report`` prints."""
    lines = [
        f"Benchmark comparison: {baseline_dir} (baseline) vs "
        f"{candidate_dir} (candidate), threshold {threshold * 100:.0f}%",
        "",
        f"  {'benchmark':<32} {'measurement':<22} {'baseline':>12} "
        f"{'candidate':>12} {'ratio':>7}  verdict",
    ]
    measured = [c for c in comps if c.direction is not None]
    info = [c for c in comps if c.direction is None]
    for c in measured + info:
        lines.append(
            f"  {c.bench:<32} {c.key:<22} {c.baseline:>12.6g} "
            f"{c.candidate:>12.6g} {c.ratio:>7.3f}  {c.verdict}"
        )
    if not comps:
        lines.append("  (no shared benchmarks)")
    for name in unpaired:
        lines.append(f"  {name:<32} {'-':<22} {'present on one side only':>34}")
    regressed = sum(c.regressed for c in comps)
    improved = sum(c.verdict == "improved" for c in comps)
    ok = sum(c.verdict == "ok" for c in comps)
    lines.append("")
    lines.append(
        f"{len(measured)} measurement(s): {ok} within threshold, "
        f"{improved} improved, {regressed} regressed"
    )
    return "\n".join(lines)


def report_to_dict(
    comps: List[Comparison], unpaired: List[str], threshold: float
) -> Dict:
    """JSON artifact form of the report (for CI upload)."""
    return {
        "threshold": threshold,
        "regressions": sum(c.regressed for c in comps),
        "comparisons": [
            {
                "bench": c.bench, "key": c.key, "baseline": c.baseline,
                "candidate": c.candidate, "direction": c.direction,
                "ratio": c.ratio, "verdict": c.verdict,
            }
            for c in comps
        ],
        "unpaired": list(unpaired),
    }
