"""Event sinks: where the bus delivers structured events.

Three built-ins cover the common cases:

* :class:`MemorySink` -- keeps events in a list (tests, notebooks),
* :class:`JsonlSink` -- one JSON object per line, the interchange
  format consumed by ``repro trace-report``,
* :class:`StderrSummarySink` -- counts events by kind and prints a
  one-screen digest on close (cheap progress visibility for CLI runs).

A sink is any object with ``handle(event)``; ``close()`` is optional.
"""

from __future__ import annotations

import json
import sys
from collections import Counter
from typing import IO, List, Optional

from repro.obs.events import Event


class MemorySink:
    """Keeps every event in order; the test/in-process sink."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def handle(self, event: Event) -> None:
        self.events.append(event)

    # -- query helpers -------------------------------------------------
    def of_kind(self, kind: str) -> List[Event]:
        return [e for e in self.events if e.kind == kind]

    def kinds(self) -> Counter:
        return Counter(e.kind for e in self.events)

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)


class JsonlSink:
    """Streams events to a file as JSON Lines.

    Accepts a path (opened lazily, closed by ``close()``) or an
    already-open text file object (left open on ``close()`` unless it
    was opened here).

    Also a context manager: ``with JsonlSink(path) as sink: ...``
    guarantees the file is flushed and closed even when the
    instrumented run raises, so a trace written up to a crash stays
    readable by ``repro trace-report``.  The exception propagates.
    """

    def __init__(self, path_or_file) -> None:
        if hasattr(path_or_file, "write"):
            self._file: Optional[IO[str]] = path_or_file
            self._owns = False
            self.path = getattr(path_or_file, "name", "<stream>")
        else:
            self.path = str(path_or_file)
            self._file = None
            self._owns = True
        self.events_written = 0

    def handle(self, event: Event) -> None:
        if self._file is None:
            self._file = open(self.path, "w", encoding="utf-8")
        self._file.write(json.dumps(event.to_dict(), separators=(",", ":")))
        self._file.write("\n")
        self.events_written += 1

    def close(self) -> None:
        if self._file is not None:
            self._file.flush()
            if self._owns:
                self._file.close()
                self._file = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


class StderrSummarySink:
    """Counts events by kind; prints a digest when closed."""

    def __init__(self, file: Optional[IO[str]] = None) -> None:
        self.counts: Counter = Counter()
        self.last_event: Optional[Event] = None
        self._file = file

    def handle(self, event: Event) -> None:
        self.counts[event.kind] += 1
        self.last_event = event

    def close(self) -> None:
        out = self._file or sys.stderr
        total = sum(self.counts.values())
        print(f"[obs] {total} events across {len(self.counts)} kinds", file=out)
        for kind, count in self.counts.most_common():
            print(f"[obs]   {kind:<24} {count}", file=out)
        if self.last_event is not None:
            print(f"[obs] last event at +{self.last_event.wall_time:.3f}s",
                  file=out)
