"""Timing spans: nested context-manager probes with per-run aggregation.

``with recorder.span("latency.floyd_warshall"):`` times a region.
Spans nest: each completed span adds its elapsed time to its parent's
child-time so the profile can report both *cumulative* time (including
children) and *self* time (excluding them).  Aggregation is by span
name into :class:`SpanStats`; :func:`render_profile` renders the
per-run profile table sorted by cumulative time.

When a bus is attached, every completed span also emits a ``span``
event (name, elapsed seconds, nesting depth) so offline traces can be
profiled by ``repro trace-report``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass
class SpanStats:
    """Aggregate for one span name."""

    name: str
    calls: int = 0
    total_s: float = 0.0
    self_s: float = 0.0
    max_s: float = 0.0


class _NullSpan:
    """Shared no-op context manager returned when spans are disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


NULL_SPAN = _NullSpan()


class Span:
    """One live timing region; created by :meth:`SpanRecorder.span`."""

    __slots__ = ("_recorder", "name", "_start", "_child_s", "span_id",
                 "parent_id")

    def __init__(self, recorder: "SpanRecorder", name: str) -> None:
        self._recorder = recorder
        self.name = name
        self._start = 0.0
        self._child_s = 0.0
        self.span_id = 0
        self.parent_id: "int | None" = None

    def __enter__(self) -> "Span":
        rec = self._recorder
        self.span_id = rec._next_id
        rec._next_id += 1
        self.parent_id = rec._stack[-1].span_id if rec._stack else None
        rec._stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        elapsed = time.perf_counter() - self._start
        rec = self._recorder
        rec._stack.pop()
        stats = rec.stats.get(self.name)
        if stats is None:
            stats = rec.stats[self.name] = SpanStats(self.name)
        stats.calls += 1
        stats.total_s += elapsed
        stats.self_s += elapsed - self._child_s
        if elapsed > stats.max_s:
            stats.max_s = elapsed
        depth = len(rec._stack)
        if rec._stack:
            rec._stack[-1]._child_s += elapsed
        bus = rec.bus
        if bus is not None and bus.enabled:
            # span_id / parent_span_id tie the completed-span events
            # back into a tree (span events fire at *exit*, so a parent
            # always appears after its children in the stream).  Ids
            # are recorder-local, monotone in entry order; merged
            # multi-worker traces disambiguate by the worker stamp.
            payload = {"name": self.name, "elapsed_s": round(elapsed, 9),
                       "depth": depth, "span_id": self.span_id}
            if self.parent_id is not None:
                payload["parent_span_id"] = self.parent_id
            bus.emit("span", **payload)
        return False


class SpanRecorder:
    """Collects span timings for one run."""

    def __init__(self, bus=None) -> None:
        self.stats: Dict[str, SpanStats] = {}
        self.bus = bus
        self._stack: List[Span] = []
        self._next_id = 0

    def span(self, name: str) -> Span:
        return Span(self, name)

    def top(self, k: Optional[int] = None) -> List[SpanStats]:
        """Span aggregates sorted by cumulative time, descending."""
        ranked = sorted(self.stats.values(), key=lambda s: -s.total_s)
        return ranked if k is None else ranked[:k]


def render_profile(recorder: SpanRecorder, k: Optional[int] = None) -> str:
    """The per-run profile table (cumulative-time order)."""
    rows = recorder.top(k)
    if not rows:
        return "profile: (no spans recorded)"
    lines = [
        "profile (by cumulative time):",
        f"  {'span':<32} {'calls':>8} {'total s':>10} {'self s':>10} {'max s':>10}",
    ]
    for s in rows:
        lines.append(
            f"  {s.name:<32} {s.calls:>8} {s.total_s:>10.4f} "
            f"{s.self_s:>10.4f} {s.max_s:>10.5f}"
        )
    return "\n".join(lines)
