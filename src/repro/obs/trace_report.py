"""Aggregate a JSONL trace into a human-readable summary.

Consumes the files written by :class:`repro.obs.sinks.JsonlSink` (one
event object per line) and renders the run-level digests the paper's
evaluation cares about:

* SA convergence: acceptance / uphill rates per cooling stage, the
  best energy at each stage boundary, the memo-cache hit ratio,
* hot spots: top spans by cumulative wall time,
* simulator health: heartbeat envelope (flits in flight, NI backlog)
  and the top-k most utilized links.

Merged multi-worker traces (``--jobs K``) additionally support the
correlation views -- replayed worker events carry a ``worker`` stamp
and their task grid coordinates (``task``), and span events carry
``span_id`` / ``parent_span_id`` links:

* ``--by-worker``: per-worker breakdown (events, spans, busy seconds,
  task coordinates) plus the critical path -- the chain of
  largest-elapsed spans through the slowest worker, i.e. the
  one-command answer to "where did the wall-clock go under
  ``--jobs 8``",
* ``--by-task``: the same partitioned by task coordinate, with each
  task's headline result (best energy / cycles run).

Every section degrades gracefully: traces from an optimizer-only run
simply omit the simulator sections and vice versa; single-worker
traces render the correlation views as a single row.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List

from repro.util.errors import ConfigurationError


def load_events(path: str) -> List[Dict]:
    """Parse a JSONL trace; raises on any malformed line."""
    events: List[Dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"{path}:{lineno}: not valid JSON ({exc})"
                ) from exc
            if not isinstance(record, dict) or "kind" not in record:
                raise ConfigurationError(
                    f"{path}:{lineno}: not an event object"
                )
            events.append(record)
    return events


def _payload(event: Dict) -> Dict:
    return event.get("payload") or {}


def summarize_sa_stages(events: List[Dict]) -> List[str]:
    stages = [e for e in events if e["kind"] == "sa.stage"]
    if not stages:
        return []
    lines = [
        "SA stages:",
        f"  {'stage':>5} {'temp':>10} {'moves':>7} {'accept%':>8} "
        f"{'uphill%':>8} {'best':>12} {'memo hit%':>10}",
    ]
    for e in stages:
        p = _payload(e)
        moves = p.get("moves", 0) or 0
        acc = 100.0 * p.get("accepted", 0) / moves if moves else 0.0
        up = 100.0 * p.get("uphill", 0) / moves if moves else 0.0
        hit = 100.0 * p.get("memo_hit_ratio", 0.0)
        lines.append(
            f"  {p.get('stage', '?'):>5} {p.get('temperature', 0.0):>10.4f} "
            f"{moves:>7} {acc:>8.1f} {up:>8.1f} "
            f"{p.get('best_energy', float('nan')):>12.4f} {hit:>10.1f}"
        )
    return lines


def summarize_spans(events: List[Dict], k: int = 5) -> List[str]:
    agg: Dict[str, List[float]] = {}
    for e in events:
        if e["kind"] != "span":
            continue
        p = _payload(e)
        name = p.get("name", "?")
        entry = agg.setdefault(name, [0, 0.0])
        entry[0] += 1
        entry[1] += p.get("elapsed_s", 0.0)
    if not agg:
        return []
    ranked = sorted(agg.items(), key=lambda kv: -kv[1][1])[:k]
    lines = [f"Top {min(k, len(agg))} spans by cumulative time:",
             f"  {'span':<32} {'calls':>8} {'total s':>10}"]
    for name, (calls, total) in ranked:
        lines.append(f"  {name:<32} {calls:>8} {total:>10.4f}")
    return lines


def summarize_link_utilization(events: List[Dict], k: int = 5) -> List[str]:
    links = [e for e in events if e["kind"] == "sim.link_util"]
    if not links:
        return []
    ranked = sorted(links, key=lambda e: -_payload(e).get("utilization", 0.0))[:k]
    lines = [f"Link utilization (top {min(k, len(links))} of {len(links)}):",
             f"  {'link':<12} {'flits':>8} {'flits/cycle':>12}"]
    for e in ranked:
        p = _payload(e)
        lines.append(
            f"  {p.get('link', '?'):<12} {p.get('flits', 0):>8} "
            f"{p.get('utilization', 0.0):>12.4f}"
        )
    return lines


def summarize_heartbeats(events: List[Dict]) -> List[str]:
    beats = [e for e in events if e["kind"] == "sim.heartbeat"]
    if not beats:
        return []
    cycles = [e.get("cycle", 0) for e in beats]
    in_flight = [_payload(e).get("flits_in_flight", 0) for e in beats]
    backlog = [_payload(e).get("ni_backlog", 0) for e in beats]
    return [
        "Simulator heartbeats:",
        f"  {len(beats)} beats over cycles {min(cycles)}..{max(cycles)}",
        f"  flits in flight: max {max(in_flight)}, "
        f"mean {sum(in_flight) / len(in_flight):.1f}",
        f"  NI backlog:      max {max(backlog)}, "
        f"mean {sum(backlog) / len(backlog):.1f}",
    ]


def _worker_of(event: Dict):
    """The worker a (possibly replayed) event belongs to.

    Replay stamps worker indices onto payloads; events the parent
    emitted itself carry no stamp and group under ``"main"``.
    """
    return _payload(event).get("worker", "main")


def _task_of(event: Dict):
    """The task grid coordinate stamped by the worker, as a tuple."""
    task = _payload(event).get("task")
    if task is None:
        return None
    return tuple(task) if isinstance(task, (list, tuple)) else (task,)


def _task_label(task) -> str:
    if task is None:
        return "-"
    return "(" + ", ".join(str(t) for t in task) + ")"


def _span_groups(events: List[Dict]) -> Dict:
    """Correlatable span payloads (those with ids), keyed by worker."""
    groups: Dict = {}
    for e in events:
        if e["kind"] == "span" and "span_id" in _payload(e):
            groups.setdefault(_worker_of(e), []).append(_payload(e))
    return groups


def _worker_sort_key(worker):
    # Ints (worker indices) first in numeric order, then names.
    return (isinstance(worker, str), worker)


def summarize_by_worker(events: List[Dict]) -> List[str]:
    """Per-worker timeline: who did what, and for how long.

    Busy seconds are the cumulative elapsed time of each worker's
    *root* spans (spans with no parent), so nested spans are not
    double-counted.  Wall-clock stamps on replayed events reflect the
    parent-side merge instant, not worker execution, so span durations
    are the only honest per-worker time source.
    """
    groups: Dict = {}
    for e in events:
        groups.setdefault(_worker_of(e), []).append(e)
    if not groups:
        return []
    lines = [
        "Per-worker timeline:",
        f"  {'worker':<8} {'events':>7} {'spans':>6} {'busy s':>9}  tasks",
    ]
    for worker in sorted(groups, key=_worker_sort_key):
        evs = groups[worker]
        spans = [_payload(e) for e in evs if e["kind"] == "span"]
        busy = sum(
            s.get("elapsed_s", 0.0)
            for s in spans
            if "parent_span_id" not in s
        )
        tasks = sorted(
            {t for t in (_task_of(e) for e in evs) if t is not None}
        )
        label = ", ".join(_task_label(t) for t in tasks) or "-"
        if len(label) > 48:
            label = label[:45] + "..."
        lines.append(
            f"  {str(worker):<8} {len(evs):>7} {len(spans):>6} "
            f"{busy:>9.4f}  {label}"
        )
    return lines


def summarize_by_task(events: List[Dict]) -> List[str]:
    """Per-task breakdown keyed by the stamped grid coordinates."""
    groups: Dict = {}
    for e in events:
        task = _task_of(e)
        if task is not None:
            groups.setdefault(task, []).append(e)
    if not groups:
        return []
    lines = [
        "Per-task breakdown:",
        f"  {'task':<28} {'events':>7} {'busy s':>9}  result",
    ]
    for task in sorted(groups, key=lambda t: tuple(map(str, t))):
        evs = groups[task]
        spans = [_payload(e) for e in evs if e["kind"] == "span"]
        busy = sum(
            s.get("elapsed_s", 0.0)
            for s in spans
            if "parent_span_id" not in s
        )
        result = "-"
        for e in evs:
            p = _payload(e)
            if e["kind"] in ("sa.end", "solve.end") and "best_energy" in p:
                result = f"best_energy={p['best_energy']:.4f}"
            elif e["kind"] == "sim.end":
                result = (
                    f"cycles={p.get('cycles_run', '?')} "
                    f"drained={p.get('drained', '?')}"
                )
        lines.append(
            f"  {_task_label(task):<28} {len(evs):>7} {busy:>9.4f}  {result}"
        )
    return lines


def summarize_critical_path(events: List[Dict]) -> List[str]:
    """The largest-elapsed span chain through the slowest worker.

    Span events fire at *exit* with recorder-local ``span_id`` /
    ``parent_span_id`` links, so each worker's spans rebuild into a
    tree; the critical path starts at the globally largest root span
    and repeatedly descends into the largest-elapsed child.  ``self``
    is the elapsed time not covered by any child.
    """
    groups = _span_groups(events)
    best = None
    for worker, spans in groups.items():
        roots = [s for s in spans if "parent_span_id" not in s]
        if not roots:
            continue
        root = max(roots, key=lambda s: s.get("elapsed_s", 0.0))
        if best is None or root.get("elapsed_s", 0.0) > best[1].get(
            "elapsed_s", 0.0
        ):
            best = (worker, root, spans)
    if best is None:
        return []
    worker, root, spans = best
    children: Dict = {}
    for s in spans:
        if "parent_span_id" in s:
            children.setdefault(s["parent_span_id"], []).append(s)
    lines = [f"Critical path (worker {worker}):"]
    node, depth = root, 0
    while node is not None:
        kids = children.get(node["span_id"], [])
        elapsed = node.get("elapsed_s", 0.0)
        self_s = max(0.0, elapsed - sum(k.get("elapsed_s", 0.0) for k in kids))
        lines.append(
            f"  {'  ' * depth}{node.get('name', '?'):<30} "
            f"{elapsed:>9.4f}s (self {self_s:.4f}s)"
        )
        node = (
            max(kids, key=lambda s: s.get("elapsed_s", 0.0)) if kids else None
        )
        depth += 1
    return lines


def render_report(
    events: List[Dict],
    source: str = "trace",
    k: int = 5,
    by_worker: bool = False,
    by_task: bool = False,
) -> str:
    """The full multi-section report for one trace."""
    kinds = Counter(e["kind"] for e in events)
    wall = max((e.get("wall_time", 0.0) for e in events), default=0.0)
    lines = [
        f"Trace report: {source}",
        f"  {len(events)} events, {len(kinds)} kinds, "
        f"{wall:.3f}s of wall time",
        "  " + ", ".join(f"{kind}={n}" for kind, n in kinds.most_common()),
    ]
    run_ids = sorted(
        {p["run_id"] for p in map(_payload, events) if "run_id" in p}
    )
    if run_ids:
        lines.append("  run_id: " + ", ".join(run_ids))
    sections = [
        summarize_sa_stages(events),
        summarize_spans(events, k),
        summarize_link_utilization(events, k),
        summarize_heartbeats(events),
    ]
    if by_worker:
        sections.append(summarize_by_worker(events))
        sections.append(summarize_critical_path(events))
    if by_task:
        sections.append(summarize_by_task(events))
    for section in sections:
        if section:
            lines.append("")
            lines.extend(section)
    return "\n".join(lines)


def report_file(
    path: str,
    k: int = 5,
    by_worker: bool = False,
    by_task: bool = False,
) -> str:
    """Load ``path`` and render its report."""
    return render_report(
        load_events(path), source=path, k=k,
        by_worker=by_worker, by_task=by_task,
    )
