"""Aggregate a JSONL trace into a human-readable summary.

Consumes the files written by :class:`repro.obs.sinks.JsonlSink` (one
event object per line) and renders the run-level digests the paper's
evaluation cares about:

* SA convergence: acceptance / uphill rates per cooling stage, the
  best energy at each stage boundary, the memo-cache hit ratio,
* hot spots: top spans by cumulative wall time,
* simulator health: heartbeat envelope (flits in flight, NI backlog)
  and the top-k most utilized links.

Every section degrades gracefully: traces from an optimizer-only run
simply omit the simulator sections and vice versa.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List

from repro.util.errors import ConfigurationError


def load_events(path: str) -> List[Dict]:
    """Parse a JSONL trace; raises on any malformed line."""
    events: List[Dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"{path}:{lineno}: not valid JSON ({exc})"
                ) from exc
            if not isinstance(record, dict) or "kind" not in record:
                raise ConfigurationError(
                    f"{path}:{lineno}: not an event object"
                )
            events.append(record)
    return events


def _payload(event: Dict) -> Dict:
    return event.get("payload") or {}


def summarize_sa_stages(events: List[Dict]) -> List[str]:
    stages = [e for e in events if e["kind"] == "sa.stage"]
    if not stages:
        return []
    lines = [
        "SA stages:",
        f"  {'stage':>5} {'temp':>10} {'moves':>7} {'accept%':>8} "
        f"{'uphill%':>8} {'best':>12} {'memo hit%':>10}",
    ]
    for e in stages:
        p = _payload(e)
        moves = p.get("moves", 0) or 0
        acc = 100.0 * p.get("accepted", 0) / moves if moves else 0.0
        up = 100.0 * p.get("uphill", 0) / moves if moves else 0.0
        hit = 100.0 * p.get("memo_hit_ratio", 0.0)
        lines.append(
            f"  {p.get('stage', '?'):>5} {p.get('temperature', 0.0):>10.4f} "
            f"{moves:>7} {acc:>8.1f} {up:>8.1f} "
            f"{p.get('best_energy', float('nan')):>12.4f} {hit:>10.1f}"
        )
    return lines


def summarize_spans(events: List[Dict], k: int = 5) -> List[str]:
    agg: Dict[str, List[float]] = {}
    for e in events:
        if e["kind"] != "span":
            continue
        p = _payload(e)
        name = p.get("name", "?")
        entry = agg.setdefault(name, [0, 0.0])
        entry[0] += 1
        entry[1] += p.get("elapsed_s", 0.0)
    if not agg:
        return []
    ranked = sorted(agg.items(), key=lambda kv: -kv[1][1])[:k]
    lines = [f"Top {min(k, len(agg))} spans by cumulative time:",
             f"  {'span':<32} {'calls':>8} {'total s':>10}"]
    for name, (calls, total) in ranked:
        lines.append(f"  {name:<32} {calls:>8} {total:>10.4f}")
    return lines


def summarize_link_utilization(events: List[Dict], k: int = 5) -> List[str]:
    links = [e for e in events if e["kind"] == "sim.link_util"]
    if not links:
        return []
    ranked = sorted(links, key=lambda e: -_payload(e).get("utilization", 0.0))[:k]
    lines = [f"Link utilization (top {min(k, len(links))} of {len(links)}):",
             f"  {'link':<12} {'flits':>8} {'flits/cycle':>12}"]
    for e in ranked:
        p = _payload(e)
        lines.append(
            f"  {p.get('link', '?'):<12} {p.get('flits', 0):>8} "
            f"{p.get('utilization', 0.0):>12.4f}"
        )
    return lines


def summarize_heartbeats(events: List[Dict]) -> List[str]:
    beats = [e for e in events if e["kind"] == "sim.heartbeat"]
    if not beats:
        return []
    cycles = [e.get("cycle", 0) for e in beats]
    in_flight = [_payload(e).get("flits_in_flight", 0) for e in beats]
    backlog = [_payload(e).get("ni_backlog", 0) for e in beats]
    return [
        "Simulator heartbeats:",
        f"  {len(beats)} beats over cycles {min(cycles)}..{max(cycles)}",
        f"  flits in flight: max {max(in_flight)}, "
        f"mean {sum(in_flight) / len(in_flight):.1f}",
        f"  NI backlog:      max {max(backlog)}, "
        f"mean {sum(backlog) / len(backlog):.1f}",
    ]


def render_report(events: List[Dict], source: str = "trace", k: int = 5) -> str:
    """The full multi-section report for one trace."""
    kinds = Counter(e["kind"] for e in events)
    wall = max((e.get("wall_time", 0.0) for e in events), default=0.0)
    lines = [
        f"Trace report: {source}",
        f"  {len(events)} events, {len(kinds)} kinds, "
        f"{wall:.3f}s of wall time",
        "  " + ", ".join(f"{kind}={n}" for kind, n in kinds.most_common()),
    ]
    for section in (
        summarize_sa_stages(events),
        summarize_spans(events, k),
        summarize_link_utilization(events, k),
        summarize_heartbeats(events),
    ):
        if section:
            lines.append("")
            lines.extend(section)
    return "\n".join(lines)


def report_file(path: str, k: int = 5) -> str:
    """Load ``path`` and render its report."""
    return render_report(load_events(path), source=path, k=k)
