"""Power and area models (the DSENT substitute)."""

from repro.power.params import TechParams
from repro.power.model import (
    PowerReport,
    RouterStaticBreakdown,
    dynamic_power,
    power_report,
    router_static_power,
    routing_table_bits,
)
from repro.power.area import AreaBreakdown, max_table_overhead, router_area

__all__ = [
    "TechParams",
    "PowerReport",
    "RouterStaticBreakdown",
    "dynamic_power",
    "power_report",
    "router_static_power",
    "routing_table_bits",
    "AreaBreakdown",
    "max_table_overhead",
    "router_area",
]
