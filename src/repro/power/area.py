"""Router area model and the routing-table overhead check (Sec. 4.5.2).

The paper reports, via DSENT's 32 nm area model, that the per-router
routing tables cost less than 0.5 % of router area.  This module
reproduces that estimate: router area is buffers + crossbar + control,
and the table is a tiny SRAM of ``2 (n - 1)`` byte-wide entries.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.params import TechParams
from repro.power.model import routing_table_bits
from repro.sim.config import SimConfig
from repro.topology.mesh import MeshTopology


@dataclass(frozen=True)
class AreaBreakdown:
    """Per-router area split in um^2."""

    buffer_um2: float
    crossbar_um2: float
    control_um2: float
    table_um2: float

    @property
    def total_um2(self) -> float:
        return self.buffer_um2 + self.crossbar_um2 + self.control_um2 + self.table_um2

    @property
    def table_fraction(self) -> float:
        """Routing-table share of router area (the paper's < 0.5 %).

        A degenerate all-zero breakdown (e.g. a zeroed TechParams in a
        what-if sweep) has no area to take a share of: the fraction is
        0.0, not a division error.
        """
        total = self.total_um2
        if total <= 0:
            return 0.0
        return self.table_um2 / total


def router_area(
    topology: MeshTopology,
    node: int,
    config: SimConfig,
    tech: TechParams | None = None,
) -> AreaBreakdown:
    """Area of one router, including its routing tables."""
    tech = tech or TechParams()
    radix = topology.radix(node)
    ports = radix + 1
    depth = config.vc_depth_for_radix(radix)
    buffer_bits = ports * config.vcs_per_port * depth * config.flit_bits
    return AreaBreakdown(
        buffer_um2=tech.buffer_area_per_bit * buffer_bits,
        crossbar_um2=tech.crossbar_area_coeff * config.flit_bits * ports * ports,
        control_um2=tech.control_area_fixed,
        table_um2=tech.table_area_per_bit * routing_table_bits(topology.n, topology.height),
    )


def max_table_overhead(
    topology: MeshTopology,
    config: SimConfig,
    tech: TechParams | None = None,
) -> float:
    """Worst routing-table area fraction over all routers."""
    return max(
        router_area(topology, v, config, tech).table_fraction
        for v in range(topology.num_nodes)
    )
