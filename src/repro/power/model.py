"""Router and link power model (Sections 4.6 and 5.5).

Static power per router:

* **buffers** -- proportional to total buffer bits.  The evaluation
  normalizes total buffer bits across schemes (equal-buffer rule), so
  this component is nearly identical for Mesh, HFB and D&C_SA.
* **crossbar** -- proportional to ``b * k^2`` with ``b`` the datapath
  (flit) width and ``k`` the number of input ports.  Express schemes
  raise ``k`` but shrink ``b`` by the same factor ``C``, and good
  placements keep ``k`` well below ``C * k_mesh`` (sub-linear port
  growth, Section 4.6), so crossbar static power stays flat.
* **others** -- allocator/control logic plus the routing table.

Dynamic power integrates per-event energies (buffer write/read,
crossbar traversal, per-unit link traversal) over the activity
counters the simulator collects; fewer hops per packet means
proportionally fewer router events, which is where the express
topologies save power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.power.params import TechParams
from repro.sim.config import SimConfig
from repro.topology.mesh import MeshTopology
from repro.util.errors import ConfigurationError

#: Activity counters dynamic_power integrates, as produced by
#: :meth:`repro.sim.network.Network.activity_counters`.
ACTIVITY_KEYS = (
    "buffer_writes", "buffer_reads", "crossbar_traversals", "link_flit_hops",
)


@dataclass(frozen=True)
class RouterStaticBreakdown:
    """Per-network static power split (Figure 10's bars)."""

    buffer_w: float
    crossbar_w: float
    other_w: float

    @property
    def total_w(self) -> float:
        return self.buffer_w + self.crossbar_w + self.other_w


@dataclass(frozen=True)
class PowerReport:
    """Static + dynamic network power for one simulated run (Figure 9)."""

    static: RouterStaticBreakdown
    dynamic_w: float
    dynamic_breakdown: Dict[str, float]

    @property
    def total_w(self) -> float:
        return self.static.total_w + self.dynamic_w


def router_static_power(
    topology: MeshTopology,
    config: SimConfig,
    tech: TechParams | None = None,
) -> RouterStaticBreakdown:
    """Aggregate static power of all routers in the network."""
    tech = tech or TechParams()
    buffer_w = crossbar_w = other_w = 0.0
    table_bits_per_router = routing_table_bits(topology.n, topology.height)
    for node in range(topology.num_nodes):
        radix = topology.radix(node)
        ports = radix + 1  # + local injection port
        depth = config.vc_depth_for_radix(radix)
        buffer_bits = ports * config.vcs_per_port * depth * config.flit_bits
        buffer_w += tech.buffer_static_per_bit * buffer_bits
        crossbar_w += tech.crossbar_static_coeff * config.flit_bits * ports * ports
        other_w += (
            tech.control_static_fixed
            + tech.control_static_per_port * ports
            + tech.table_static_per_bit * table_bits_per_router
        )
    return RouterStaticBreakdown(buffer_w=buffer_w, crossbar_w=crossbar_w, other_w=other_w)


def dynamic_power(
    activity: Dict[str, int],
    cycles: int,
    flit_bits: int,
    tech: TechParams | None = None,
) -> Dict[str, float]:
    """Dynamic power components from simulator activity counters.

    ``activity`` uses the keys produced by
    :meth:`repro.sim.network.Network.activity_counters`; ``cycles`` is
    the simulated span the counters were accumulated over.
    """
    tech = tech or TechParams()
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    missing = [key for key in ACTIVITY_KEYS if key not in activity]
    if missing:
        raise ConfigurationError(
            f"activity counters missing {missing}; expected keys "
            f"{list(ACTIVITY_KEYS)}"
        )
    # Power = (events / cycles) * frequency * (energy per event).
    rate = tech.frequency_hz / cycles
    return {
        "buffer_write_w": activity["buffer_writes"]
        * tech.buffer_write_energy_per_bit
        * flit_bits
        * rate,
        "buffer_read_w": activity["buffer_reads"]
        * tech.buffer_read_energy_per_bit
        * flit_bits
        * rate,
        "crossbar_w": activity["crossbar_traversals"]
        * tech.crossbar_energy_per_bit
        * flit_bits
        * rate,
        "link_w": activity["link_flit_hops"]
        * tech.link_energy_per_bit_per_unit
        * flit_bits
        * rate,
    }


def power_report(
    topology: MeshTopology,
    config: SimConfig,
    activity: Dict[str, int],
    cycles: int,
    tech: TechParams | None = None,
) -> PowerReport:
    """Full static + dynamic report for one simulation run."""
    tech = tech or TechParams()
    static = router_static_power(topology, config, tech)
    dyn = dynamic_power(activity, cycles, config.flit_bits, tech)
    return PowerReport(
        static=static,
        dynamic_w=sum(dyn.values()),
        dynamic_breakdown=dyn,
    )


def routing_table_bits(n: int, height: int | None = None) -> int:
    """Bits in one router's two next-hop tables (Section 4.5.2).

    Each dimension's table has up to ``dim - 1`` destination entries;
    an entry stores an output-port number.  A router has at most
    ``dim - 1`` same-dimension ports, so an entry needs
    ``ceil(log2(dim - 1)) + 1`` bits (one spare for the eject
    encoding) -- a few dozen bits total, which is what keeps the
    overhead under 0.5 % of router area.  ``height`` defaults to ``n``
    (the paper's square networks).
    """
    height = height if height is not None else n
    entries = (n - 1) + (height - 1)
    entry_bits = max((max(n, height) - 2).bit_length(), 1) + 1
    return entries * entry_bits
