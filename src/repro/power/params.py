"""Technology coefficients for the analytical power/area model.

The numbers are shaped after DSENT's 32 nm bulk-CMOS router models at
1 GHz (the paper's configuration): router static power is dominated by
input buffers and the crossbar, the crossbar scales as
``b * k^2`` (datapath width times port count squared), and dynamic
energy is charged per flit event proportionally to the bits moved.
Absolute values are representative, not calibrated silicon data -- the
paper's power results are used comparatively (Mesh vs HFB vs D&C_SA),
and all of those comparisons depend only on the functional forms.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TechParams:
    """Coefficients of the power/area model (per-bit / per-event)."""

    #: Static power per buffer bit [W/bit].
    buffer_static_per_bit: float = 0.55e-6
    #: Static power per crossbar bit-port^2 [W/(bit*port^2)].
    crossbar_static_coeff: float = 0.85e-6
    #: Fixed static power of control logic per router [W].
    control_static_fixed: float = 1.8e-3
    #: Static power per router port (allocators, port logic) [W].
    control_static_per_port: float = 0.25e-3
    #: Static power per routing-table bit [W/bit].
    table_static_per_bit: float = 0.30e-6

    #: Dynamic energy per buffer write, per bit [J/bit].
    buffer_write_energy_per_bit: float = 0.045e-12
    #: Dynamic energy per buffer read, per bit [J/bit].
    buffer_read_energy_per_bit: float = 0.035e-12
    #: Dynamic energy per crossbar traversal, per bit [J/bit].
    crossbar_energy_per_bit: float = 0.06e-12
    #: Dynamic energy per unit-length link traversal, per bit [J/bit/unit].
    link_energy_per_bit_per_unit: float = 0.18e-12

    #: Clock frequency [Hz]; the paper runs the NoC at 1.0 GHz.
    frequency_hz: float = 1.0e9

    # ----- area (for the routing-table overhead estimate) -------------
    #: Router area per buffer bit [um^2/bit].
    buffer_area_per_bit: float = 0.55
    #: Crossbar area coefficient [um^2/(bit*port^2)].
    crossbar_area_coeff: float = 0.9
    #: Fixed control-logic area per router [um^2].
    control_area_fixed: float = 2500.0
    #: Area per routing-table bit (SRAM cell + decode) [um^2/bit].
    table_area_per_bit: float = 0.4
