"""Routing substrate: directional shortest paths, tables, DOR, deadlock checks."""

from repro.routing.shortest_path import (
    HopCostModel,
    LEFT_TO_RIGHT,
    RIGHT_TO_LEFT,
    directional_distances,
    directional_hop_counts,
    directional_paths,
    floyd_warshall_distances,
    floyd_warshall,
    weight_matrix,
)
from repro.routing.incremental import IncrementalApspEngine
from repro.routing.tables import RoutingTables
from repro.routing.dor import (
    compute_route,
    route_head_latency,
    route_hops,
    turning_point,
)
from repro.routing.deadlock import (
    channel_dependency_graph,
    check_no_u_turns,
    find_dependency_cycle,
    is_deadlock_free,
)

__all__ = [
    "HopCostModel",
    "LEFT_TO_RIGHT",
    "RIGHT_TO_LEFT",
    "directional_distances",
    "directional_hop_counts",
    "directional_paths",
    "floyd_warshall_distances",
    "floyd_warshall",
    "weight_matrix",
    "IncrementalApspEngine",
    "RoutingTables",
    "compute_route",
    "route_head_latency",
    "route_hops",
    "turning_point",
    "channel_dependency_graph",
    "check_no_u_turns",
    "find_dependency_cycle",
    "is_deadlock_free",
]
