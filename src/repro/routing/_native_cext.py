"""C-extension fallback backend for the native kernel tier.

Used by :mod:`repro.routing.native` when numba is not installed: a
~60-line C translation of the three hot kernels, compiled on first use
with the system C compiler into a content-addressed cache directory
(``.repro/native/`` by default, override with ``REPRO_NATIVE_CACHE``)
and loaded through :mod:`ctypes`.  No third-party build dependency: the
shared object is plain C (no ``Python.h``), so only ``cc``/``gcc``/
``clang`` is needed, and only once per machine -- the cache key is a
hash of the C source, so edits recompile automatically.

Bit-identity contract
---------------------

The kernels assume the domain the weight-stack builders guarantee:
nonnegative weights, zero diagonals, ``inf`` for missing edges, never
NaN.  On that domain the in-place relaxation of iteration ``k`` cannot
change row ``k`` or column ``k`` (``d[k][k] == 0`` and improvements are
strict), so every candidate ``d[i][k] + d[k][j]`` reads exactly the
values the out-of-place NumPy form reads, the IEEE additions are the
same, ties resolve the same way, and the results are bitwise equal --
the property the cross-impl parity suites pin.  The build deliberately
avoids ``-ffast-math`` and forces ``-ffp-contract=off`` so the compiler
cannot re-associate or fuse those additions.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading

import numpy as np

#: Override for the compiled-kernel cache directory.
CACHE_ENV_VAR = "REPRO_NATIVE_CACHE"

C_SOURCE = r"""
#include <stdint.h>
#include <math.h>

/* Batched min-plus Floyd-Warshall, distances only, in place.
 * d is a C-contiguous (B, n, n) float64 stack.  Row k and column k are
 * invariant within iteration k (zero diagonal, strict improvement), so
 * the in-place form is bitwise equal to the out-of-place NumPy form.
 */
void repro_fw_dist_batch(double *d, int64_t B, int64_t n) {
    for (int64_t s = 0; s < B; s++) {
        double *m = d + s * n * n;
        for (int64_t k = 0; k < n; k++) {
            const double *rowk = m + k * n;
            for (int64_t i = 0; i < n; i++) {
                double dik = m[i * n + k];
                if (isinf(dik)) continue;  /* inf never improves */
                double *rowi = m + i * n;
                for (int64_t j = 0; j < n; j++) {
                    double via = dik + rowk[j];
                    rowi[j] = via < rowi[j] ? via : rowi[j];
                }
            }
        }
    }
}

/* As above, with next-hop emission: strict-< improvement routes i->j
 * through i's first hop toward k; ties keep the incumbent.  nh[i][k]
 * can only change at j == k, which needs dik + 0 < dik -- impossible --
 * so the pre-loop read matches NumPy's iteration-start snapshot.
 */
void repro_fw_batch(double *d, int64_t *nh, int64_t B, int64_t n) {
    for (int64_t s = 0; s < B; s++) {
        double *m = d + s * n * n;
        int64_t *h = nh + s * n * n;
        for (int64_t k = 0; k < n; k++) {
            const double *rowk = m + k * n;
            for (int64_t i = 0; i < n; i++) {
                double dik = m[i * n + k];
                if (isinf(dik)) continue;
                double *rowi = m + i * n;
                int64_t *hrow = h + i * n;
                int64_t hik = hrow[k];
                for (int64_t j = 0; j < n; j++) {
                    double via = dik + rowk[j];
                    if (via < rowi[j]) {
                        rowi[j] = via;
                        hrow[j] = hik;
                    }
                }
            }
        }
    }
}

/* Crossing-block rewrite of the incremental APSP engine: re-min the
 * block rows < `rows`, cols >= b of both directional layers over the K
 * crossing edges (us[e], vs[e]) with hop cost cs[e].  S is the
 * C-contiguous (2, n, n) layer stack.  Association order
 * (S[i][u] + c) + S[v][j], minimum accumulated in edge order -- the
 * bitwise contract shared with both NumPy paths.  Reads touch columns
 * us[e] < b and rows vs[e] >= b > rows-1 only, so writing the block in
 * place never feeds a stale value back in.
 */
void repro_inc_update(double *S, int64_t n, int64_t rows, int64_t b,
                      const int64_t *us, const int64_t *vs,
                      const double *cs, int64_t K) {
    for (int64_t layer = 0; layer < 2; layer++) {
        double *L = S + layer * n * n;
        for (int64_t i = 0; i < rows; i++) {
            double *rowi = L + i * n;
            for (int64_t j = b; j < n; j++) {
                double acc = (rowi[us[0]] + cs[0]) + L[vs[0] * n + j];
                for (int64_t e = 1; e < K; e++) {
                    double t = (rowi[us[e]] + cs[e]) + L[vs[e] * n + j];
                    if (t < acc) acc = t;
                }
                rowi[j] = acc;
            }
        }
    }
}
"""

_lock = threading.Lock()
_kernels = None


def _find_compiler():
    cc = os.environ.get("CC")
    if cc and shutil.which(cc):
        return shutil.which(cc)
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _cache_dir() -> str:
    override = os.environ.get(CACHE_ENV_VAR)
    if override:
        return override
    return os.path.join(".repro", "native")


def _so_name() -> str:
    digest = hashlib.sha256(C_SOURCE.encode()).hexdigest()[:12]
    return f"repro_native_{digest}.so"


def _so_path() -> str:
    return os.path.join(_cache_dir(), _so_name())


def plausible() -> bool:
    """Could :func:`load` succeed?  Checks cache and toolchain only."""
    try:
        if os.path.exists(_so_path()):
            return True
    except OSError:
        pass
    return _find_compiler() is not None


def _compile(so_path: str) -> None:
    cc = _find_compiler()
    if cc is None:
        raise RuntimeError("no C compiler found (tried $CC, cc, gcc, clang)")
    cache = os.path.dirname(so_path)
    os.makedirs(cache, exist_ok=True)
    # Build in a private temp dir, then atomically publish: concurrent
    # worker processes may race to compile and must not see a torn .so.
    build = tempfile.mkdtemp(prefix="build-", dir=cache)
    try:
        src = os.path.join(build, "repro_native.c")
        with open(src, "w") as fh:
            fh.write(C_SOURCE)
        out = os.path.join(build, _so_name())
        cmd = [
            cc, "-O3", "-fPIC", "-shared",
            # Bit-identity hardening: no re-association, no FMA fusing.
            "-fno-fast-math", "-ffp-contract=off",
            src, "-o", out, "-lm",
        ]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            raise RuntimeError(
                f"C compile failed ({' '.join(cmd)}): {proc.stderr.strip()}"
            )
        os.replace(out, so_path)
    finally:
        shutil.rmtree(build, ignore_errors=True)


class _Kernels:
    """ctypes wrappers enforcing the dtype/layout contract per call."""

    def __init__(self, lib: ctypes.CDLL) -> None:
        i64 = ctypes.c_int64
        ptr = ctypes.c_void_p
        lib.repro_fw_dist_batch.argtypes = [ptr, i64, i64]
        lib.repro_fw_dist_batch.restype = None
        lib.repro_fw_batch.argtypes = [ptr, ptr, i64, i64]
        lib.repro_fw_batch.restype = None
        lib.repro_inc_update.argtypes = [ptr, i64, i64, i64, ptr, ptr, ptr, i64]
        lib.repro_inc_update.restype = None
        self._lib = lib

    @staticmethod
    def _require(arr: np.ndarray, dtype) -> None:
        if arr.dtype != dtype or not arr.flags.c_contiguous:
            raise ValueError(
                f"native kernels need C-contiguous {np.dtype(dtype).name} "
                f"arrays, got {arr.dtype} with flags {arr.flags}"
            )

    def fw_dist_batch(self, d: np.ndarray) -> None:
        self._require(d, np.float64)
        self._lib.repro_fw_dist_batch(d.ctypes.data, d.shape[0], d.shape[1])

    def fw_batch(self, d: np.ndarray, nh: np.ndarray) -> None:
        self._require(d, np.float64)
        self._require(nh, np.int64)
        self._lib.repro_fw_batch(
            d.ctypes.data, nh.ctypes.data, d.shape[0], d.shape[1]
        )

    def inc_update(self, S, rows, b, us, vs, cs) -> None:
        self._require(S, np.float64)
        self._require(us, np.int64)
        self._require(vs, np.int64)
        self._require(cs, np.float64)
        self._lib.repro_inc_update(
            S.ctypes.data, S.shape[1], rows, b,
            us.ctypes.data, vs.ctypes.data, cs.ctypes.data, us.shape[0],
        )


def load() -> _Kernels:
    """The kernel namespace, compiling into the cache on first use."""
    global _kernels
    with _lock:
        if _kernels is None:
            so_path = _so_path()
            if not os.path.exists(so_path):
                _compile(so_path)
            _kernels = _Kernels(ctypes.CDLL(os.path.abspath(so_path)))
        return _kernels
