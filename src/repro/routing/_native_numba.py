"""Numba backend for the native kernel tier (``pip install repro[native]``).

Imported lazily by :mod:`repro.routing.native` only -- importing numba
here at module scope is fine because this module is never imported by
``import repro`` (a test pins that).  The three kernels mirror the C
translations in :mod:`repro.routing._native_cext` statement for
statement; see that module's docstring for the bit-identity argument
(row/column ``k`` invariance within iteration ``k``, identical IEEE
additions, strict-< ties).  ``cache=True`` persists the compiled
machine code next to this file so each machine pays the JIT cost once;
per-process warm-up (and the ``kernel.compile`` obs event) happens in
:func:`repro.routing.native.warmup`.

``prange`` is deliberately not used: the SA engine fans work out across
*processes* (``--jobs``), and numba's thread pools do not survive a
fork, while the slice loops here are already cache-resident at the
paper's row sizes.  Keeping the kernels single-threaded makes them
fork-safe and keeps bit-identity trivially independent of thread count.
"""

from __future__ import annotations

import sys

import numpy as np
from numba import njit  # heavyweight import; only via routing.native


@njit(cache=True)
def _fw_dist_batch(d):
    B, n = d.shape[0], d.shape[1]
    for s in range(B):
        for k in range(n):
            for i in range(n):
                dik = d[s, i, k]
                if dik == np.inf:
                    continue
                for j in range(n):
                    via = dik + d[s, k, j]
                    if via < d[s, i, j]:
                        d[s, i, j] = via


@njit(cache=True)
def _fw_batch(d, nh):
    B, n = d.shape[0], d.shape[1]
    for s in range(B):
        for k in range(n):
            for i in range(n):
                dik = d[s, i, k]
                if dik == np.inf:
                    continue
                hik = nh[s, i, k]
                for j in range(n):
                    via = dik + d[s, k, j]
                    if via < d[s, i, j]:
                        d[s, i, j] = via
                        nh[s, i, j] = hik


@njit(cache=True)
def _inc_update(S, rows, b, us, vs, cs):
    n = S.shape[1]
    K = us.shape[0]
    for layer in range(2):
        for i in range(rows):
            for j in range(b, n):
                acc = (S[layer, i, us[0]] + cs[0]) + S[layer, vs[0], j]
                for e in range(1, K):
                    t = (S[layer, i, us[e]] + cs[e]) + S[layer, vs[e], j]
                    if t < acc:
                        acc = t
                S[layer, i, j] = acc


def fw_dist_batch(d: np.ndarray) -> None:
    _fw_dist_batch(d)


def fw_batch(d: np.ndarray, nh: np.ndarray) -> None:
    _fw_batch(d, nh)


def inc_update(S, rows, b, us, vs, cs) -> None:
    _inc_update(S, rows, b, us, vs, cs)


def load():
    """The kernel namespace (this module doubles as it)."""
    return sys.modules[__name__]
