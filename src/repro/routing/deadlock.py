"""Channel-dependency-graph deadlock analysis (Section 4.5.1).

The paper's routing avoids deadlock by (a) forbidding U-turns, so every
hop inside a dimension moves monotonically toward the destination, and
(b) ordering the dimensions X before Y, so turn dependencies only flow
from row channels to column channels.  The classical Dally-Seitz
condition then applies: routing is deadlock-free iff the channel
dependency graph (CDG) is acyclic.

This module constructs the CDG *from the actual routes* the tables
produce (not just the rule) and checks acyclicity with networkx, which
both verifies the implementation and serves as a property test target
for arbitrary placements.
"""

from __future__ import annotations

from typing import Tuple

import networkx as nx

from repro.routing.dor import compute_route
from repro.routing.tables import RoutingTables

#: A directed channel: (upstream router, downstream router).
DirectedChannel = Tuple[int, int]


def channel_dependency_graph(tables: RoutingTables) -> nx.DiGraph:
    """Build the CDG induced by all source-destination routes.

    Nodes are directed channels; an edge ``c1 -> c2`` means some packet
    holds ``c1`` while requesting ``c2`` (consecutive hops of a route).
    """
    g = nx.DiGraph()
    num = tables.topology.num_nodes
    for src in range(num):
        for dst in range(num):
            if src == dst:
                continue
            path = compute_route(tables, src, dst)
            channels = list(zip(path, path[1:]))
            g.add_nodes_from(channels)
            for c1, c2 in zip(channels, channels[1:]):
                g.add_edge(c1, c2)
    return g


def is_deadlock_free(tables: RoutingTables) -> bool:
    """True iff the channel dependency graph is acyclic."""
    return nx.is_directed_acyclic_graph(channel_dependency_graph(tables))


def find_dependency_cycle(tables: RoutingTables):
    """Return one CDG cycle if any exists, else ``None`` (for debugging)."""
    g = channel_dependency_graph(tables)
    try:
        return nx.find_cycle(g)
    except nx.NetworkXNoCycle:
        return None


def check_no_u_turns(tables: RoutingTables) -> bool:
    """Verify the monotone-progress rule on every route.

    Inside a dimension, consecutive hops must keep moving in the same
    direction (coordinates strictly monotone); the only direction change
    allowed is the single X-to-Y turn.
    """
    topo = tables.topology
    for src in range(topo.num_nodes):
        for dst in range(topo.num_nodes):
            if src == dst:
                continue
            path = compute_route(tables, src, dst)
            coords = [topo.coords(v) for v in path]
            xs = [c[0] for c in coords]
            ys = [c[1] for c in coords]
            if tables.order == "yx":
                # YX routes are XY routes with the roles swapped.
                xs, ys = ys, xs
            # X phase: xs strictly monotone until it reaches dest column,
            # then constant; ys constant during X phase then monotone.
            turn = next((k for k, x in enumerate(xs) if x == xs[-1]), 0)
            x_phase, y_phase = xs[: turn + 1], ys[turn:]
            if not (_strictly_monotone(x_phase) and _strictly_monotone(y_phase)):
                return False
            if any(y != ys[0] for y in ys[: turn + 1]):
                return False
            if any(x != xs[-1] for x in xs[turn:]):
                return False
    return True


def _strictly_monotone(seq) -> bool:
    if len(seq) <= 1:
        return True
    diffs = [b - a for a, b in zip(seq, seq[1:])]
    return all(d > 0 for d in diffs) or all(d < 0 for d in diffs)
