"""Dimension-order routing over express topologies.

Routes are X-first then Y (XY routing), with the next hop inside each
dimension taken from the per-row/per-column tables of
:class:`~repro.routing.tables.RoutingTables`.  Section 4.2's lemma is
what makes this exact: the head latency of any XY route decomposes into
a row term and a column term, each determined solely by that
dimension's placement.
"""

from __future__ import annotations

from typing import List

from repro.routing.shortest_path import HopCostModel
from repro.routing.tables import RoutingTables
from repro.util.errors import SimulationError


def compute_route(tables: RoutingTables, src: int, dst: int) -> List[int]:
    """The full router path ``[src, ..., dst]`` under table-based XY routing."""
    topo = tables.topology
    path = [src]
    v = src
    limit = 4 * topo.n + 4  # generous: monotone progress bounds real paths by 2n
    while v != dst:
        nxt = tables.next_hop(v, dst)
        if nxt == v:
            raise SimulationError(f"routing stalled at {v} toward {dst}")
        path.append(nxt)
        v = nxt
        if len(path) > limit:
            raise SimulationError(f"route {src}->{dst} exceeded {limit} hops")
    return path


def route_hops(tables: RoutingTables, src: int, dst: int) -> int:
    """Hop count ``H`` of the XY route."""
    return len(compute_route(tables, src, dst)) - 1


def route_head_latency(
    tables: RoutingTables,
    src: int,
    dst: int,
    cost: HopCostModel | None = None,
) -> float:
    """Zero-load head latency of the XY route (Eq. 1 without ``L_S``).

    Equals ``row_dist + col_dist`` from the tables; computed from the
    path here as an independent cross-check used by tests.
    """
    cost = cost or HopCostModel()
    topo = tables.topology
    path = compute_route(tables, src, dst)
    total = 0.0
    for a, b in zip(path, path[1:]):
        total += cost.hop_cost(topo.channel_length(a, b))
    return total


def turning_point(tables: RoutingTables, src: int, dst: int) -> int:
    """The dimension-turn router ``v_ij`` of Section 4.2's proof.

    Under XY routing this is the router sharing the source's row and
    the destination's column; under YX routing the roles swap.
    """
    topo = tables.topology
    sx, sy = topo.coords(src)
    dx, dy = topo.coords(dst)
    if tables.order == "yx":
        return topo.node_id(sx, dy)
    return topo.node_id(dx, sy)
