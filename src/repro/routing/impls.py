"""Implementation-tier registry for the kernel seam (``impl=``).

Every hot kernel in the package is reachable through one seam: the
``impl=`` parameter threaded from :class:`repro.api.SearchConfig` and
the CLI ``--impl`` flag down to the directional Floyd-Warshall calls.
This module is the single authority on which tiers exist, which are
usable on the current machine, and how a request resolves:

``"vectorized"``
    The batched NumPy kernels (default, always available).
``"reference"``
    The pure-Python oracle in :mod:`repro.routing.shortest_path_ref`
    (always available; exists for verification, not speed).
``"native"``
    Compiled kernels (:mod:`repro.routing.native`): numba
    ``@njit(cache=True)`` when numba is installed (``pip install
    repro[native]``), otherwise a small C extension built on demand
    with the system C compiler.  Bit-identical to ``"vectorized"`` by
    the cross-impl parity suites -- distances, next-hop tables, and SA
    trajectories -- so the tier is a pure wall-clock knob, excluded
    from ledger run identities like ``--jobs``/``--chains``.

Resolution semantics (:func:`resolve_impl`):

* An unknown name raises :class:`UnknownImplementationError` (a
  ``ConfigurationError`` *and* a ``ValueError``) naming the known
  tiers and whether native is installed.
* An explicit ``"native"`` request on a machine without a working
  backend raises :class:`ConfigurationError` with the install hint.
* ``impl=None`` resolves from the :data:`IMPL_ENV_VAR` environment
  default (``REPRO_IMPL``) and falls back to ``"vectorized"`` with a
  warning when the environment asks for an unavailable ``"native"`` --
  an env default must degrade gracefully, an explicit argument must
  not.
"""

from __future__ import annotations

import importlib.util
import os
import warnings
from typing import Optional, Tuple

from repro.util.errors import ConfigurationError, UnknownImplementationError

#: Recognized implementations of the directional kernels.
IMPLEMENTATIONS = ("vectorized", "reference", "native")

#: The tier used when nothing (argument or environment) asks otherwise.
DEFAULT_IMPL = "vectorized"

#: Environment variable consulted when ``impl=None`` is resolved.
IMPL_ENV_VAR = "REPRO_IMPL"


def native_installed() -> bool:
    """Cheap static probe: could a native backend plausibly load?

    True when numba is importable, or when the C-extension fallback has
    a toolchain (or an already-built cache) to work with.  Never
    imports numba and never compiles anything -- this is safe to call
    on error paths; :func:`native_available` gives the real answer.
    """
    if importlib.util.find_spec("numba") is not None:
        return True
    from repro.routing import _native_cext

    return _native_cext.plausible()


def native_available() -> bool:
    """True when the native tier actually loads (compiles on first use)."""
    from repro.routing import native

    return native.available()


def native_backend() -> Optional[str]:
    """Name of the loaded native backend (``"numba"``/``"cext"``) or None."""
    from repro.routing import native

    return native.backend_name()


def available_impls(probe: bool = True) -> Tuple[str, ...]:
    """The tiers usable right now, in :data:`IMPLEMENTATIONS` order.

    ``probe=False`` skips the (one-time, cached) native load attempt
    and reports only the always-available tiers.
    """
    tiers = ["vectorized", "reference"]
    if probe and native_available():
        tiers.append("native")
    return tuple(tiers)


def check_impl(impl: str) -> None:
    """Reject names outside :data:`IMPLEMENTATIONS`.

    The error names the known tiers and whether the optional native
    tier is installed, so every seam reports the same actionable
    message.
    """
    if impl not in IMPLEMENTATIONS:
        native_note = (
            "native tier installed"
            if native_installed()
            else "native tier not installed: pip install repro[native]"
        )
        raise UnknownImplementationError(
            f"unknown impl {impl!r}; expected one of {IMPLEMENTATIONS} "
            f"({native_note})"
        )


def resolve_impl(impl: Optional[str] = None) -> str:
    """Resolve an ``impl`` request to a concrete, usable tier name.

    See the module docstring for the explicit-vs-environment
    semantics.  Returns one of :data:`IMPLEMENTATIONS`.
    """
    from_env = impl is None
    if impl is None:
        impl = os.environ.get(IMPL_ENV_VAR) or DEFAULT_IMPL
    check_impl(impl)
    if impl == "native" and not native_available():
        from repro.routing import native

        reason = native.unavailable_reason() or "no backend could load"
        if from_env:
            warnings.warn(
                f"{IMPL_ENV_VAR}=native requested but the native tier is "
                f"unavailable ({reason}); falling back to "
                f"{DEFAULT_IMPL!r}",
                RuntimeWarning,
                stacklevel=2,
            )
            return DEFAULT_IMPL
        raise ConfigurationError(
            f"impl='native' requested but no native backend could load "
            f"({reason}); install numba (pip install repro[native]) or "
            f"make a C compiler available, or use impl='vectorized'"
        )
    return impl
