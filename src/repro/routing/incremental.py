"""Dynamic directional APSP for row graphs: O(n^2) per express-link flip.

The SA inner loop flips one connection bit per move, but the full
objective re-prices the candidate with a from-scratch directional
Floyd-Warshall pass -- O(n^3) work for a single-edge change.  This
module maintains the two directional distance matrices *incrementally*:
adding or removing one express link costs one O(n^2) block rewrite, and
a rejected move is undone from a checkpoint without any recompute.

Why a single-edge change is an O(n^2) rewrite
---------------------------------------------

Row-graph routes are monotone: a left-to-right path from ``i`` to ``j``
only ever moves right, so it crosses the cut between routers ``b - 1``
and ``b`` exactly once, through one of the few edges that span the cut
(the local link ``(b - 1, b)`` plus every express link ``(u, v)`` with
``u < b <= v``).  Changing a link whose right endpoint is ``b`` can
therefore only affect pairs ``(i, j)`` with ``i < b <= j``, and for
those pairs the distance decomposes over the crossing edges::

    D'(i, j) = min over crossing (u, v) of  D(i, u) + w(u, v) + D(v, j)

where ``D(i, u)`` (``u < b``) and ``D(v, j)`` (``v >= b``) are existing
distances on the unchanged sides of the cut.  The same identity holds
for additions *and* removals -- the min is re-taken over the new
crossing set -- and, by symmetry, for the right-to-left direction with
identical indices once that matrix is stored transposed.  One numpy
broadcast evaluates the min for the whole affected block.

A connection-matrix bit flip maps to at most three link changes with at
most two distinct right endpoints; processing right endpoints in
increasing order keeps every input of each block rewrite current (any
cell an earlier group wrote stale is inside the later group's block).

Checkpoint / rollback
---------------------

``checkpoint()`` arms an undo slot; the next ``apply_link_changes``
snapshots the (small) block it is about to overwrite.  ``rollback()``
restores the block and the link set; ``commit()`` discards the slot.
Only one change set can be pending at a time -- exactly the SA
propose/accept/reject shape.

Drift self-check
----------------

All block updates compute the same mins as Floyd-Warshall, but may
associate floating-point additions differently, so bit-identity with
the full solver is guaranteed only when hop-cost sums are exact (e.g.
the integral default :class:`HopCostModel`).  ``self_check()`` compares
the maintained state -- distances *and* reconstructed next-hops --
against a from-scratch solve, and ``resync()`` repairs by rebuilding.
The annealer runs this periodically and emits an ``sa.resync`` event on
mismatch rather than corrupting the run.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.routing.impls import check_impl
from repro.routing.shortest_path import (
    HopCostModel,
    floyd_warshall_batch,
    floyd_warshall_distances_batch,
    weight_stack,
)
from repro.topology.row import RowPlacement
from repro.util.errors import ConfigurationError

#: One link edit: ``(a, b, is_add)`` with ``a < b``.
LinkChange = Tuple[int, int, bool]


class IncrementalApspEngine:
    """Maintains directional row-graph distances under link flips.

    State layout (all float64, shape ``(n, n)``):

    * ``_S[0][i, j]`` -- left-to-right distance ``i -> j`` (``i <= j``),
    * ``_S[1][j, i]`` -- right-to-left distance ``i -> j`` (``i >= j``),
      stored transposed so both directions update with the same indices,
    * ``_D`` -- the combined matrix :func:`directional_distances`
      returns (upper = l2r, lower = r2l, diagonal zero), synced lazily
      from ``_S`` because only :meth:`distances` needs it.

    ``impl`` selects the kernel tier for the rebuild pass and the
    block rewrites: ``"native"`` runs the compiled crossing-block
    kernel of :mod:`repro.routing.native` (same association order and
    edge-order min accumulation, hence bitwise-equal state);
    ``self_check()`` always re-solves with the NumPy kernels, so under
    ``"native"`` it doubles as a cross-impl gate on live SA state.
    """

    def __init__(
        self,
        placement: RowPlacement,
        cost: Optional[HopCostModel] = None,
        impl: str = "vectorized",
    ) -> None:
        check_impl(impl)
        self.n = placement.n
        self.cost = cost or HopCostModel()
        self.impl = impl
        # The oracle tier has no incremental form; it (like the
        # default) runs the NumPy block rewrites, which the parity
        # suite proves bit-identical anyway.  Only "native" swaps in
        # the compiled kernels.
        self._kernel_impl = "native" if impl == "native" else "vectorized"
        self.links = set(placement.express_links)
        self._hop = [self.cost.hop_cost(k) for k in range(max(self.n, 2))]
        self._upper = np.triu(np.ones((self.n, self.n), dtype=bool), k=1)
        self._armed = False
        self._undo = None
        self._rebuild()

    # -- construction / repair ------------------------------------------

    def _rebuild(self) -> None:
        stack = floyd_warshall_distances_batch(
            weight_stack(self.placement, self.cost), impl=self._kernel_impl
        )
        self._S = np.empty((2, self.n, self.n))
        self._S[0] = stack[0]
        self._S[1] = stack[1].T
        self._D = np.where(self._upper, stack[0], stack[1])
        np.fill_diagonal(self._D, 0.0)
        self._dirty = []  # (rows, b) boxes where _D lags _S
        self._d_touched = False

    @property
    def placement(self) -> RowPlacement:
        """The placement currently encoded in the engine's link set."""
        return RowPlacement(self.n, frozenset(self.links))

    # -- the O(n^2) update ----------------------------------------------

    def _update_boundary(self, amax: int, b: int) -> None:
        """Re-min the block ``rows <= amax``, ``cols >= b`` over the
        edges crossing the (b-1 | b) cut, in both directions at once."""
        S = self._S
        hop = self._hop
        us = [b - 1]
        vs = [b]
        cs = [hop[1]]
        for (u, v) in self.links:
            if u < b <= v:
                us.append(u)
                vs.append(v)
                cs.append(hop[v - u])
        rows = amax + 1
        if self._kernel_impl == "native":
            from repro.routing import native

            native.inc_update_boundary(
                S, rows, b,
                np.asarray(us, dtype=np.int64),
                np.asarray(vs, dtype=np.int64),
                np.asarray(cs, dtype=np.float64),
            )
            return
        if len(us) < 5:
            # Few crossing edges (the norm: the cross-section limit caps
            # them): scalar-indexed views beat the fancy-index gather's
            # dispatch overhead.  Same association order, so the sums
            # stay bitwise-equal to the batched form.
            acc = None
            for u, v, c in zip(us, vs, cs):
                t = (S[:, :rows, u, None] + c) + S[:, v, None, b:]
                if acc is None:
                    acc = t
                else:
                    np.minimum(acc, t, out=acc)
            S[:, :rows, b:] = acc
        else:
            A = S[:, :rows, us]  # (2, rows, K) gather -> safe to add in place
            A += np.array(cs)
            T = A[:, :, :, None] + S[:, vs, b:][:, None, :, :]
            np.min(T, axis=2, out=S[:, :rows, b:])

    def _sync(self) -> None:
        # Every box satisfies rows <= b (link left endpoints sit left of
        # the boundary), so each lies strictly in its layer's own
        # triangle and plain slice copies never leak an inf sentinel
        # from the other layer's dead half.
        if self._dirty:
            for rows, b in self._dirty:
                self._D[:rows, b:] = self._S[0, :rows, b:]
                self._D[b:, :rows] = self._S[1, :rows, b:].T
            self._dirty = []
            self._d_touched = True

    # -- edit API --------------------------------------------------------

    def checkpoint(self) -> None:
        """Arm the undo slot: the next change set becomes revertible."""
        if self._undo is not None:
            raise ConfigurationError(
                "a change set is already pending; commit() or rollback() first"
            )
        self._armed = True

    def apply_link_changes(self, changes: Sequence[LinkChange]) -> None:
        """Apply link additions/removals and update both distance layers.

        ``changes`` may arrive in any order; groups sharing a right
        endpoint are processed in increasing-``b`` order (required for
        correctness when a flip edits links at two boundaries).
        """
        if self._armed and self._undo is not None:
            raise ConfigurationError(
                "a change set is already pending; commit() or rollback() first"
            )
        links = self.links
        for a, b, is_add in changes:
            if is_add == ((a, b) in links):
                verb = "add existing" if is_add else "remove absent"
                raise ConfigurationError(f"cannot {verb} link ({a}, {b})")
        self._sync()
        self._d_touched = False
        if self._armed:
            # Snapshot each group's block just before overwriting it;
            # rollback replays the blocks in reverse so overlapping
            # groups unwind to the original state.
            self._undo = ([], tuple(changes))
        if len(changes) > 1:
            changes = sorted(changes, key=lambda c: c[1])
        i = 0
        nch = len(changes)
        while i < nch:
            b = changes[i][1]
            amax = 0
            while i < nch and changes[i][1] == b:
                a, _, is_add = changes[i]
                if is_add:
                    links.add((a, b))
                else:
                    links.discard((a, b))
                if a > amax:
                    amax = a
                i += 1
            rows = amax + 1
            if self._undo is not None:
                self._undo[0].append(
                    (rows, b, self._S[:, :rows, b:].copy())
                )
            self._dirty.append((rows, b))
            self._update_boundary(amax, b)

    def add_link(self, a: int, b: int) -> None:
        self.apply_link_changes([(a, b, True)])

    def remove_link(self, a: int, b: int) -> None:
        self.apply_link_changes([(a, b, False)])

    def rollback(self) -> None:
        """Restore the state from before the pending change set."""
        if self._undo is None:
            raise ConfigurationError("no pending change set to roll back")
        blocks, changes = self._undo
        touched = self._d_touched
        for rows, b, block in reversed(blocks):
            self._S[:, :rows, b:] = block
            if touched:
                self._D[:rows, b:] = block[0]
                self._D[b:, :rows] = block[1].T
        self._dirty = []
        self._d_touched = False
        for a, b, is_add in changes:
            if is_add:
                self.links.discard((a, b))
            else:
                self.links.add((a, b))
        self._undo = None
        self._armed = False

    def commit(self) -> None:
        """Accept the pending change set and drop its undo snapshot."""
        self._undo = None
        self._armed = False

    # -- read API --------------------------------------------------------

    def distances(self) -> np.ndarray:
        """Combined directional distance matrix (engine-owned buffer;
        treat as read-only, it is reused across updates)."""
        self._sync()
        return self._D

    def mean_distance(self) -> float:
        # np.sum(x) / x.size uses the same pairwise reduction as
        # x.mean(), so this is bitwise-equal to the full objective's
        # float(dist.mean()) -- just a little cheaper per move.
        self._sync()
        return float(np.sum(self._D) / self._D.size)

    def next_hops(self) -> np.ndarray:
        """Reconstruct the canonical next-hop table from distances.

        ``floyd_warshall_batch`` initializes every finite direct edge's
        next hop to the destination, improves only on strictly shorter
        paths, and scans pivots in ascending order -- so on a monotone
        row graph its table is exactly "first pivot achieving the final
        minimum, direct edge wins ties".  Replaying that rule against
        the maintained distances reproduces the table bit-for-bit
        whenever the distances match the full solver (cells that cannot
        be explained by any pivot are left at -1, which the drift
        self-check reports as a mismatch).
        """
        n = self.n
        w = weight_stack(self.placement, self.cost)
        self._sync()
        Dl = self._S[0]
        Tr = self._S[1]  # Tr[j, i] = r2l distance i -> j
        nh = np.full((n, n), -1, dtype=np.int64)
        np.fill_diagonal(nh, np.arange(n))
        # Left-to-right (upper triangle), columns ascending so nh[:j, k]
        # is final when chained through.
        for j in range(1, n):
            col = Dl[:j, j]
            direct = w[0, :j, j] == col
            # cand[i, k] = D(i, k) + w(k, j): pivot k's relaxation value.
            cand = Dl[:j, :j] + w[0, :j, j][None, :]
            eq = (cand == col[:, None]) & self._upper[:j, :j]
            kstar = np.argmax(eq, axis=1)
            rows_ = np.arange(j)
            chain = nh[rows_, kstar]
            hit = eq[rows_, kstar]
            nh[:j, j] = np.where(direct, j, np.where(hit, chain, -1))
        # Right-to-left (lower triangle).  At pivot k the source-side
        # distance is still the raw edge w(i, k), so the winning pivot
        # *is* the next hop -- no chaining needed.
        for i in range(1, n):
            tgt = Tr[:i, i]
            direct = w[1, i, :i] == tgt
            cand = Tr[:i, :i] + w[1, i, :i][None, :]
            eq = (cand == tgt[:, None]) & self._upper[:i, :i]
            kstar = np.argmax(eq, axis=1)
            rows_ = np.arange(i)
            hit = eq[rows_, kstar]
            nh[i, :i] = np.where(direct, rows_, np.where(hit, kstar, -1))
        return nh

    def paths(self) -> Tuple[np.ndarray, np.ndarray]:
        """(distances, next_hops) mirroring :func:`directional_paths`."""
        return self.distances().copy(), self.next_hops()

    # -- drift self-check ------------------------------------------------

    def self_check(self) -> bool:
        """True iff state is bit-identical to a from-scratch solve
        (both directional layers, the combined matrix, and next-hops)."""
        if self._undo is not None:
            raise ConfigurationError(
                "self_check() with a pending change set; "
                "commit() or rollback() first"
            )
        dist, nh = floyd_warshall_batch(weight_stack(self.placement, self.cost))
        if not np.array_equal(self._S[0], dist[0]):
            return False
        if not np.array_equal(self._S[1], dist[1].T):
            return False
        ref = np.where(self._upper, dist[0], dist[1])
        np.fill_diagonal(ref, 0.0)
        if not np.array_equal(self.distances(), ref):
            return False
        ref_nh = np.where(self._upper, nh[0], nh[1])
        np.fill_diagonal(ref_nh, np.arange(self.n))
        return np.array_equal(self.next_hops(), ref_nh)

    def resync(self) -> None:
        """Rebuild all state from scratch (drift repair)."""
        self._armed = False
        self._undo = None
        self._rebuild()


def placement_link_changes(
    before: Iterable[Tuple[int, int]], after: Iterable[Tuple[int, int]]
) -> List[LinkChange]:
    """Change list turning link set ``before`` into ``after``."""
    before = set(before)
    after = set(after)
    changes: List[LinkChange] = [
        (a, b, False) for (a, b) in sorted(before - after)
    ]
    changes.extend((a, b, True) for (a, b) in sorted(after - before))
    return changes
