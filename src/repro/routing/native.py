"""The ``impl="native"`` kernel tier: backend selection and dispatch.

This module is the only place that knows *how* the native tier is
provided.  Two interchangeable backends implement a three-kernel
contract, tried in order on first use:

``"numba"``
    :mod:`repro.routing._native_numba` -- ``@njit(cache=True)``
    translations, available when numba is installed
    (``pip install repro[native]``).
``"cext"``
    :mod:`repro.routing._native_cext` -- the same kernels as plain C,
    compiled once with the system compiler into ``.repro/native/`` and
    loaded via ctypes.  Keeps the tier usable on machines where numba
    has no wheels.

``REPRO_NATIVE_BACKEND`` pins one backend explicitly (values
``"numba"``/``"cext"``); anything importing this module stays cheap --
neither backend is touched until :func:`load` runs, so ``import repro``
never pays numba's import cost (a test pins that).

The kernel contract (all in place, C-contiguous float64/int64):

* ``fw_dist_batch(d)`` -- batched min-plus Floyd-Warshall over a
  ``(B, n, n)`` stack, distances only,
* ``fw_batch(d, nh)`` -- same, emitting next-hop tables,
* ``inc_update(S, rows, b, us, vs, cs)`` -- the crossing-block rewrite
  of :class:`repro.routing.incremental.IncrementalApspEngine`.

All three are bit-identical to their NumPy counterparts on the domain
the weight-stack builders produce (nonnegative weights, zero diagonal,
``inf`` sentinels, no NaN); see :mod:`repro.routing._native_cext` for
the invariance argument and the cross-impl parity suites for the pin.

:func:`warmup` front-loads backend load + JIT compilation (once per
process; the parallel engine's workers call it before their solve
spans open) and reports the cost through the ``kernel.compile`` obs
event and the ``kernel.compile_seconds`` gauge, so profiled runs never
attribute compile time to ``latency.floyd_warshall``.
"""

from __future__ import annotations

import os
import time
from typing import Optional

import numpy as np

from repro.util.errors import ConfigurationError

#: Backend preference order; first to load wins.
BACKENDS = ("numba", "cext")

#: Environment variable pinning one backend explicitly.
BACKEND_ENV_VAR = "REPRO_NATIVE_BACKEND"

_state = {
    "kernels": None,
    "backend": None,
    "error": None,
    "warm": False,
    "warmup_seconds": None,
}


def _load_backend():
    forced = os.environ.get(BACKEND_ENV_VAR)
    if forced is not None and forced not in BACKENDS:
        raise ConfigurationError(
            f"unknown {BACKEND_ENV_VAR}={forced!r}; expected one of {BACKENDS}"
        )
    failures = []
    for name in BACKENDS if forced is None else (forced,):
        try:
            if name == "numba":
                from repro.routing import _native_numba as mod
            else:
                from repro.routing import _native_cext as mod
            return name, mod.load()
        except Exception as exc:  # noqa: BLE001 -- report every backend
            failures.append(f"{name}: {exc}")
    raise RuntimeError("; ".join(failures))


def load():
    """The loaded kernel namespace, loading (and compiling) on first use.

    Raises :class:`ConfigurationError` when no backend works; the
    outcome (either way) is cached for the life of the process.
    """
    if _state["kernels"] is not None:
        return _state["kernels"]
    if _state["error"] is not None:
        raise ConfigurationError(f"native tier unavailable: {_state['error']}")
    try:
        backend, kernels = _load_backend()
    except ConfigurationError:
        raise
    except Exception as exc:  # noqa: BLE001
        _state["error"] = str(exc)
        raise ConfigurationError(f"native tier unavailable: {exc}") from exc
    _state["backend"] = backend
    _state["kernels"] = kernels
    return kernels


def available() -> bool:
    """True when the tier loads on this machine (result cached)."""
    try:
        load()
    except ConfigurationError:
        return False
    return True


def backend_name() -> Optional[str]:
    """``"numba"``/``"cext"`` once loaded, else None."""
    return _state["backend"]


def unavailable_reason() -> Optional[str]:
    """Why the last load attempt failed, or None."""
    return _state["error"]


def warmup(obs=None) -> str:
    """Load the backend and trigger JIT compilation, outside any span.

    Idempotent per process: the first call pays backend load plus a
    tiny-input run of all three kernels (which is what makes numba
    compile them); later calls return immediately.  With an
    :class:`~repro.obs.Instrumentation` attached, the first call emits
    a ``kernel.compile`` event and sets the ``kernel.compile_seconds``
    gauge so profiles and traces account for the cost explicitly
    instead of folding it into the first solve span.  Returns the
    backend name.
    """
    if _state["warm"]:
        return _state["backend"]
    start = time.perf_counter()
    kernels = load()
    d = np.array([[[0.0, 1.0], [np.inf, 0.0]]])
    kernels.fw_dist_batch(d)
    d2 = np.array([[[0.0, 1.0], [np.inf, 0.0]]])
    nh = np.array([[[0, 1], [-1, 1]]], dtype=np.int64)
    kernels.fw_batch(d2, nh)
    S = np.zeros((2, 2, 2))
    kernels.inc_update(
        S, 1, 1,
        np.array([0], dtype=np.int64),
        np.array([1], dtype=np.int64),
        np.array([1.0]),
    )
    seconds = time.perf_counter() - start
    _state["warm"] = True
    _state["warmup_seconds"] = seconds
    if obs is not None and not getattr(obs, "is_null", True):
        if obs.enabled:
            obs.emit(
                "kernel.compile",
                backend=_state["backend"],
                seconds=round(seconds, 6),
            )
        obs.metrics.gauge("kernel.compile_seconds").set(seconds)
    return _state["backend"]


def warmup_seconds() -> Optional[float]:
    """Wall time the in-process warm-up took, or None if not yet warm."""
    return _state["warmup_seconds"]


# -- dispatch surface used by the kernel call sites ---------------------

def fw_distances_batch_inplace(dist: np.ndarray) -> None:
    """In-place batched FW distances (``(B, n, n)`` float64 C-order)."""
    load().fw_dist_batch(dist)


def fw_batch_inplace(dist: np.ndarray, next_hop: np.ndarray) -> None:
    """In-place batched FW with next-hop emission."""
    load().fw_batch(dist, next_hop)


def inc_update_boundary(S, rows, b, us, vs, cs) -> None:
    """Crossing-block rewrite on the incremental engine's layer stack."""
    load().inc_update(S, rows, b, us, vs, cs)
