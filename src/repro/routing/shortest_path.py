"""Directional shortest paths on a row (Section 4.5.1).

The paper computes packet routes with two Floyd-Warshall passes per
dimension: one pass allows only left-to-right edges, the other only
right-to-left edges.  This enforces the no-U-turn rule that makes the
routing deadlock-free (every hop moves monotonically toward the
destination in the current dimension), and it is what the simulated
annealing evaluates on every candidate placement, so it must be fast.

The min-plus Floyd-Warshall here is vectorized with NumPy and
*batched*: both directional passes are stacked into one ``(2, n, n)``
tensor, so the ``k`` loop runs once (``n`` iterations) and each
relaxation is a single batched broadcast that still emits next-hop
tables.  For the paper's row sizes (``n <= 16``) an objective
evaluation runs in microseconds.

A pure-Python triple-loop implementation is retained in
:mod:`repro.routing.shortest_path_ref` as the reference; the parity
suite (``tests/routing/test_shortest_path_parity.py``) proves the
vectorized kernels bit-identical to it -- distances *and* next hops --
and the public entry points take
``impl="vectorized" | "reference" | "native"`` so any caller can be
flipped onto the oracle or onto the compiled tier
(:mod:`repro.routing.native`; optional, bit-identical, and selected
centrally through :func:`repro.routing.impls.resolve_impl`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.routing.impls import (  # noqa: F401  (IMPLEMENTATIONS re-exported)
    IMPLEMENTATIONS,
    check_impl as _check_impl,
)
from repro.topology.row import RowPlacement

#: Direction tags for the two passes.
LEFT_TO_RIGHT = "l2r"
RIGHT_TO_LEFT = "r2l"

INF = np.inf


@dataclass(frozen=True)
class HopCostModel:
    """Per-hop latency cost parameters of Eq. 1.

    ``router_delay`` is :math:`T_r` (cycles through one router pipeline,
    3 for the paper's canonical 3-stage router), ``unit_link_delay`` is
    :math:`T_l` (one cycle per unit-length, repeater-segmented link) and
    ``contention_delay`` is :math:`T_c`, the average per-hop contention
    the paper measures to be below one cycle at realistic loads.  The
    head latency of a path is ``sum over hops of (Tr + Tc + len * Tl)``.
    """

    router_delay: float = 3.0
    unit_link_delay: float = 1.0
    contention_delay: float = 0.0

    def hop_cost(self, length: int) -> float:
        """Head-latency cost of traversing one link of ``length`` units."""
        return self.router_delay + self.contention_delay + length * self.unit_link_delay


def weight_matrix(
    placement: RowPlacement,
    cost: HopCostModel,
    direction: str,
) -> np.ndarray:
    """Adjacency weight matrix restricted to one traversal direction.

    ``w[i, j]`` is the one-hop cost from router ``i`` to ``j`` if the
    placement has a link ``(i, j)`` usable in ``direction``, else
    ``inf``.  Diagonal entries are 0.
    """
    n = placement.n
    w = np.full((n, n), INF)
    np.fill_diagonal(w, 0.0)
    for i, j in placement.all_links():  # i < j by construction
        c = cost.hop_cost(j - i)
        if direction == LEFT_TO_RIGHT:
            w[i, j] = c
        elif direction == RIGHT_TO_LEFT:
            w[j, i] = c
        else:
            raise ValueError(f"unknown direction {direction!r}")
    return w


def weight_stack(placement: RowPlacement, cost: HopCostModel) -> np.ndarray:
    """Both directional weight matrices stacked as ``(2, n, n)``.

    Index 0 is the left-to-right pass, index 1 right-to-left; feeding
    the stack to the batched kernels relaxes both passes in one ``k``
    loop.
    """
    n = placement.n
    w = np.full((2, n, n), INF)
    w[0, np.arange(n), np.arange(n)] = 0.0
    w[1, np.arange(n), np.arange(n)] = 0.0
    for i, j in placement.all_links():  # i < j by construction
        c = cost.hop_cost(j - i)
        w[0, i, j] = c
        w[1, j, i] = c
    return w


def weight_stack_population(
    placements: Sequence[RowPlacement],
    cost: HopCostModel,
) -> np.ndarray:
    """Directional weight stacks for a whole population: ``(2B, n, n)``.

    Slices ``2b`` and ``2b + 1`` are placement ``b``'s left-to-right
    and right-to-left matrices, laid out exactly as
    :func:`weight_stack` lays out its ``(2, n, n)`` pair -- so running
    the batched Floyd-Warshall on the population stack relaxes every
    slice with elementwise operations and is bit-identical, per slice,
    to ``B`` separate two-slice passes.  All placements must share one
    row size ``n``.
    """
    placements = list(placements)
    if not placements:
        raise ValueError("population must contain at least one placement")
    n = placements[0].n
    for p in placements:
        if p.n != n:
            raise ValueError(
                f"population mixes row sizes: expected n={n}, got n={p.n}"
            )
    w = np.full((2 * len(placements), n, n), INF)
    idx = np.arange(n)
    w[:, idx, idx] = 0.0
    # hop_cost(length) is precomputed per length so every slice sees the
    # exact same float weight_stack would have written.
    cost_by_len = np.asarray(
        [0.0] + [cost.hop_cost(length) for length in range(1, n)]
    )
    # The n - 1 local links are common to every placement: write them
    # across all slices in two vectorized strokes.
    if n > 1:
        unit = cost_by_len[1]
        w[0::2, idx[:-1], idx[1:]] = unit  # left-to-right
        w[1::2, idx[1:], idx[:-1]] = unit  # right-to-left
    # Only express links differ per placement (i < j by construction).
    flat = [
        (2 * b, i, j)
        for b, placement in enumerate(placements)
        for i, j in placement.express_links
    ]
    if flat:
        s, r, c = np.asarray(flat, dtype=np.intp).T
        v = cost_by_len[c - r]
        w[s, r, c] = v  # left-to-right
        w[s + 1, c, r] = v  # right-to-left
    return w


def batched_mean_distances(
    placements: Sequence[RowPlacement],
    cost: HopCostModel | None = None,
    weights: np.ndarray | None = None,
    impl: str = "vectorized",
) -> np.ndarray:
    """Mean directional head latency of each placement, in one FW pass.

    The population version of ``mean_row_head_latency``: one
    ``(2B, n, n)`` min-plus Floyd-Warshall prices all ``B`` placements,
    then each mean is reduced per slice-pair with the exact operation
    order of the scalar path -- results are bit-identical to ``B``
    scalar evaluations.  ``weights`` (an ``n x n`` nonnegative matrix,
    validated as in the scalar path) switches to the traffic-weighted
    mean.  ``impl`` selects the Floyd-Warshall kernel: ``"native"``
    swaps in the compiled pass (stack building and the pinned-order
    mean reduction stay in NumPy -- they are O(B n^2) against the
    pass's O(B n^3), and the reduction's pairwise-summation order is
    part of the bit-identity contract); ``"reference"`` prices the
    population one placement at a time through the pure-Python oracle.
    Returns shape ``(B,)``.
    """
    from repro.util.errors import ConfigurationError

    cost = cost or HopCostModel()
    _check_impl(impl)
    placements = list(placements)
    if not placements:
        return np.empty(0, dtype=float)
    n = placements[0].n
    w = None if weights is None else np.asarray(weights, dtype=float)
    if w is not None:
        if w.shape != (n, n):
            raise ConfigurationError(f"weights shape {w.shape} != {(n, n)}")
        total = w.sum()
        if total <= 0:
            raise ConfigurationError("weights must have positive sum")
    if impl == "reference":
        out = []
        for placement in placements:
            dist = directional_distances(placement, cost, impl="reference")
            if w is None:
                out.append(dist.mean())
            else:
                out.append((dist * w).sum() / total)
        return np.asarray(out, dtype=float)
    stack = floyd_warshall_distances_batch(
        weight_stack_population(placements, cost), impl=impl
    )
    upper = np.triu(np.ones((n, n), dtype=bool), k=1)
    # Combine the directional pairs for all placements at once; each
    # combined[b] is then a C-contiguous (n, n) slice whose reduction
    # order matches the scalar path's freshly-allocated matrix exactly.
    combined = np.where(upper[None, :, :], stack[0::2], stack[1::2])
    idx = np.arange(n)
    combined[:, idx, idx] = 0.0
    # Reducing each C-contiguous slice over its flattened innermost
    # axis applies numpy's pairwise summation per row -- the identical
    # operation order to `.mean()` / `.sum()` on the scalar path's
    # freshly-allocated (n, n) matrix, hence bit-identical results (a
    # fused `mean(axis=(1, 2))` over the 3-D view would not make that
    # guarantee; the property suite pins this).
    if w is None:
        return combined.reshape(len(placements), -1).mean(axis=1)
    return (combined * w).reshape(len(placements), -1).sum(axis=1) / total


def floyd_warshall_batch(
    w: np.ndarray, impl: str = "vectorized"
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched min-plus Floyd-Warshall with next-hop reconstruction.

    ``w`` has shape ``(B, n, n)``; every batch slice is relaxed through
    the same ``k`` loop with one broadcast per iteration.  Returns
    ``(dist, next_hop)`` stacks of the same shape, with the per-slice
    semantics of :func:`floyd_warshall` (strict ``<`` improvement, ties
    keep the incumbent next hop, ``-1`` for unreachable pairs, ``j`` on
    the diagonal).  ``impl="native"`` runs the compiled in-place pass
    (:mod:`repro.routing.native`), which is bit-identical on the
    zero-diagonal nonnegative stacks the weight builders produce;
    other tiers use this NumPy loop (the batch kernels *are* the
    vectorized implementation -- the pure-Python oracle lives at the
    ``directional_*`` level).
    """
    if w.ndim != 3 or w.shape[1] != w.shape[2]:
        raise ValueError(f"expected a (B, n, n) stack, got shape {w.shape}")
    _check_impl(impl)
    n = w.shape[1]
    cols = np.arange(n)
    next_hop = np.where(np.isfinite(w), cols[None, None, :], -1).astype(np.int64)
    next_hop[:, cols, cols] = cols
    if impl == "native":
        from repro.routing import native

        dist = np.array(w, dtype=np.float64, order="C")
        native.fw_batch_inplace(dist, next_hop)
        return dist, next_hop
    dist = w.copy()
    for k in range(n):
        via = dist[:, :, k, None] + dist[:, None, k, :]
        better = via < dist
        if better.any():
            dist = np.where(better, via, dist)
            # First hop toward j via k is the first hop toward k.
            next_hop = np.where(better, next_hop[:, :, k, None], next_hop)
    return dist, next_hop


def floyd_warshall_distances_batch(
    w: np.ndarray, impl: str = "vectorized"
) -> np.ndarray:
    """Distance-only batched Floyd-Warshall (the annealing hot path).

    One ``k`` loop covers every slice of the ``(B, n, n)`` stack; used
    with :func:`weight_stack` it halves the Python-loop overhead of an
    objective evaluation versus two single-matrix passes.
    ``impl="native"`` dispatches to the compiled in-place pass (see
    :func:`floyd_warshall_batch` for the tier semantics).
    """
    if w.ndim != 3 or w.shape[1] != w.shape[2]:
        raise ValueError(f"expected a (B, n, n) stack, got shape {w.shape}")
    _check_impl(impl)
    if impl == "native":
        from repro.routing import native

        dist = np.array(w, dtype=np.float64, order="C")
        native.fw_distances_batch_inplace(dist)
        return dist
    dist = w.copy()
    for k in range(w.shape[1]):
        np.minimum(dist, dist[:, :, k, None] + dist[:, None, k, :], out=dist)
    return dist


def floyd_warshall(w: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Min-plus Floyd-Warshall with next-hop reconstruction.

    Parameters
    ----------
    w:
        Square weight matrix (``inf`` for missing edges, 0 diagonal).

    Returns
    -------
    dist:
        All-pairs shortest distances.
    next_hop:
        ``next_hop[i, j]`` is the first router after ``i`` on a
        shortest ``i -> j`` path, or ``-1`` when ``j`` is unreachable
        (and ``j`` itself when ``i == j``).  This is exactly the
        routing-table content of Figure 3(b).
    """
    n = w.shape[0]
    dist = w.copy()
    next_hop = np.full((n, n), -1, dtype=np.int64)
    reachable = np.isfinite(w)
    cols = np.arange(n)
    for i in range(n):
        next_hop[i, reachable[i]] = cols[reachable[i]]
        next_hop[i, i] = i
    for k in range(n):
        via = dist[:, k, None] + dist[None, k, :]
        better = via < dist
        if better.any():
            dist = np.where(better, via, dist)
            # First hop toward j via k is the first hop toward k.
            next_hop = np.where(better, next_hop[:, k, None], next_hop)
    return dist, next_hop


def floyd_warshall_distances(w: np.ndarray) -> np.ndarray:
    """Distance-only min-plus Floyd-Warshall (the annealing hot path).

    Skipping next-hop bookkeeping roughly halves the cost of an
    objective evaluation; the simulated annealing calls this tens of
    thousands of times per solve, while the full
    :func:`floyd_warshall` is only needed once per final placement to
    populate routing tables.
    """
    dist = w.copy()
    for k in range(w.shape[0]):
        np.minimum(dist, dist[:, k, None] + dist[None, k, :], out=dist)
    return dist


def directional_distances(
    placement: RowPlacement,
    cost: HopCostModel | None = None,
    impl: str = "vectorized",
) -> np.ndarray:
    """All-pairs directional head latencies (no next hops; fast path).

    ``impl`` selects the batched NumPy kernel (default), the
    pure-Python reference in :mod:`repro.routing.shortest_path_ref`,
    or the compiled ``"native"`` tier; all are bit-identical by the
    cross-impl parity suite, so the switch exists for verification and
    speed, not for results.
    """
    cost = cost or HopCostModel()
    _check_impl(impl)
    if impl == "reference":
        from repro.routing import shortest_path_ref as ref

        return np.asarray(ref.directional_distances_py(placement, cost))
    n = placement.n
    stack = floyd_warshall_distances_batch(weight_stack(placement, cost), impl=impl)
    upper = np.triu(np.ones((n, n), dtype=bool), k=1)
    dist = np.where(upper, stack[0], stack[1])
    np.fill_diagonal(dist, 0.0)
    return dist


def directional_paths(
    placement: RowPlacement,
    cost: HopCostModel | None = None,
    impl: str = "vectorized",
) -> Tuple[np.ndarray, np.ndarray]:
    """All-pairs directional head latencies and next hops for one row.

    Combines the two Floyd-Warshall passes: entries with ``j > i`` come
    from the left-to-right pass, ``j < i`` from the right-to-left pass.
    Because every local link exists in both directions, all pairs are
    reachable and the result is finite.

    Returns ``(dist, next_hop)`` as in :func:`floyd_warshall`.
    ``impl`` is as in :func:`directional_distances`.
    """
    cost = cost or HopCostModel()
    _check_impl(impl)
    n = placement.n
    if impl == "reference":
        from repro.routing import shortest_path_ref as ref

        dist, next_hop = ref.directional_paths_py(placement, cost)
        return np.asarray(dist), np.asarray(next_hop, dtype=np.int64)
    d, nh = floyd_warshall_batch(weight_stack(placement, cost), impl=impl)
    upper = np.triu(np.ones((n, n), dtype=bool), k=1)
    dist = np.where(upper, d[0], d[1])
    next_hop = np.where(upper, nh[0], nh[1])
    np.fill_diagonal(dist, 0.0)
    np.fill_diagonal(next_hop, np.arange(n))
    return dist, next_hop


def directional_hop_counts(placement: RowPlacement, cost: HopCostModel | None = None) -> np.ndarray:
    """All-pairs hop counts ``H`` along the latency-optimal paths.

    Used by the power model (dynamic energy scales with hops) and by
    the simulator cross-checks.  Ties in latency are broken exactly as
    :func:`directional_paths` breaks them, by following ``next_hop``.
    """
    _, next_hop = directional_paths(placement, cost)
    n = placement.n
    hops = np.zeros((n, n), dtype=np.int64)
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            v, count = i, 0
            while v != j:
                v = int(next_hop[v, j])
                count += 1
                if count > n:
                    raise RuntimeError("next-hop table contains a loop")
            hops[i, j] = count
    return hops
