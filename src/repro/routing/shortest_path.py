"""Directional shortest paths on a row (Section 4.5.1).

The paper computes packet routes with two Floyd-Warshall passes per
dimension: one pass allows only left-to-right edges, the other only
right-to-left edges.  This enforces the no-U-turn rule that makes the
routing deadlock-free (every hop moves monotonically toward the
destination in the current dimension), and it is what the simulated
annealing evaluates on every candidate placement, so it must be fast.

The min-plus Floyd-Warshall here is vectorized with NumPy: the ``k``
loop stays in Python (``n`` iterations) but each relaxation is one
``n x n`` broadcast, which for the paper's row sizes (``n <= 16``)
runs in microseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.topology.row import RowPlacement

#: Direction tags for the two passes.
LEFT_TO_RIGHT = "l2r"
RIGHT_TO_LEFT = "r2l"

INF = np.inf


@dataclass(frozen=True)
class HopCostModel:
    """Per-hop latency cost parameters of Eq. 1.

    ``router_delay`` is :math:`T_r` (cycles through one router pipeline,
    3 for the paper's canonical 3-stage router), ``unit_link_delay`` is
    :math:`T_l` (one cycle per unit-length, repeater-segmented link) and
    ``contention_delay`` is :math:`T_c`, the average per-hop contention
    the paper measures to be below one cycle at realistic loads.  The
    head latency of a path is ``sum over hops of (Tr + Tc + len * Tl)``.
    """

    router_delay: float = 3.0
    unit_link_delay: float = 1.0
    contention_delay: float = 0.0

    def hop_cost(self, length: int) -> float:
        """Head-latency cost of traversing one link of ``length`` units."""
        return self.router_delay + self.contention_delay + length * self.unit_link_delay


def weight_matrix(
    placement: RowPlacement,
    cost: HopCostModel,
    direction: str,
) -> np.ndarray:
    """Adjacency weight matrix restricted to one traversal direction.

    ``w[i, j]`` is the one-hop cost from router ``i`` to ``j`` if the
    placement has a link ``(i, j)`` usable in ``direction``, else
    ``inf``.  Diagonal entries are 0.
    """
    n = placement.n
    w = np.full((n, n), INF)
    np.fill_diagonal(w, 0.0)
    for i, j in placement.all_links():  # i < j by construction
        c = cost.hop_cost(j - i)
        if direction == LEFT_TO_RIGHT:
            w[i, j] = c
        elif direction == RIGHT_TO_LEFT:
            w[j, i] = c
        else:
            raise ValueError(f"unknown direction {direction!r}")
    return w


def floyd_warshall(w: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Min-plus Floyd-Warshall with next-hop reconstruction.

    Parameters
    ----------
    w:
        Square weight matrix (``inf`` for missing edges, 0 diagonal).

    Returns
    -------
    dist:
        All-pairs shortest distances.
    next_hop:
        ``next_hop[i, j]`` is the first router after ``i`` on a
        shortest ``i -> j`` path, or ``-1`` when ``j`` is unreachable
        (and ``j`` itself when ``i == j``).  This is exactly the
        routing-table content of Figure 3(b).
    """
    n = w.shape[0]
    dist = w.copy()
    next_hop = np.full((n, n), -1, dtype=np.int64)
    reachable = np.isfinite(w)
    cols = np.arange(n)
    for i in range(n):
        next_hop[i, reachable[i]] = cols[reachable[i]]
        next_hop[i, i] = i
    for k in range(n):
        via = dist[:, k, None] + dist[None, k, :]
        better = via < dist
        if better.any():
            dist = np.where(better, via, dist)
            # First hop toward j via k is the first hop toward k.
            next_hop = np.where(better, next_hop[:, k, None], next_hop)
    return dist, next_hop


def floyd_warshall_distances(w: np.ndarray) -> np.ndarray:
    """Distance-only min-plus Floyd-Warshall (the annealing hot path).

    Skipping next-hop bookkeeping roughly halves the cost of an
    objective evaluation; the simulated annealing calls this tens of
    thousands of times per solve, while the full
    :func:`floyd_warshall` is only needed once per final placement to
    populate routing tables.
    """
    dist = w.copy()
    for k in range(w.shape[0]):
        np.minimum(dist, dist[:, k, None] + dist[None, k, :], out=dist)
    return dist


def directional_distances(
    placement: RowPlacement,
    cost: HopCostModel | None = None,
) -> np.ndarray:
    """All-pairs directional head latencies (no next hops; fast path)."""
    cost = cost or HopCostModel()
    n = placement.n
    d_lr = floyd_warshall_distances(weight_matrix(placement, cost, LEFT_TO_RIGHT))
    d_rl = floyd_warshall_distances(weight_matrix(placement, cost, RIGHT_TO_LEFT))
    upper = np.triu(np.ones((n, n), dtype=bool), k=1)
    dist = np.where(upper, d_lr, d_rl)
    np.fill_diagonal(dist, 0.0)
    return dist


def directional_paths(
    placement: RowPlacement,
    cost: HopCostModel | None = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """All-pairs directional head latencies and next hops for one row.

    Combines the two Floyd-Warshall passes: entries with ``j > i`` come
    from the left-to-right pass, ``j < i`` from the right-to-left pass.
    Because every local link exists in both directions, all pairs are
    reachable and the result is finite.

    Returns ``(dist, next_hop)`` as in :func:`floyd_warshall`.
    """
    cost = cost or HopCostModel()
    n = placement.n
    d_lr, nh_lr = floyd_warshall(weight_matrix(placement, cost, LEFT_TO_RIGHT))
    d_rl, nh_rl = floyd_warshall(weight_matrix(placement, cost, RIGHT_TO_LEFT))
    upper = np.triu(np.ones((n, n), dtype=bool), k=1)
    dist = np.where(upper, d_lr, d_rl)
    next_hop = np.where(upper, nh_lr, nh_rl)
    np.fill_diagonal(dist, 0.0)
    np.fill_diagonal(next_hop, np.arange(n))
    return dist, next_hop


def directional_hop_counts(placement: RowPlacement, cost: HopCostModel | None = None) -> np.ndarray:
    """All-pairs hop counts ``H`` along the latency-optimal paths.

    Used by the power model (dynamic energy scales with hops) and by
    the simulator cross-checks.  Ties in latency are broken exactly as
    :func:`directional_paths` breaks them, by following ``next_hop``.
    """
    _, next_hop = directional_paths(placement, cost)
    n = placement.n
    hops = np.zeros((n, n), dtype=np.int64)
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            v, count = i, 0
            while v != j:
                v = int(next_hop[v, j])
                count += 1
                if count > n:
                    raise RuntimeError("next-hop table contains a loop")
            hops[i, j] = count
    return hops
