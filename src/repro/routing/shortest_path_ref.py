"""Pure-Python reference Floyd-Warshall (the parity oracle).

This module re-implements the directional shortest-path computation of
:mod:`repro.routing.shortest_path` with nothing but Python lists and
floats.  It exists for one reason: the vectorized NumPy kernels on the
annealing hot path are *proven* against it by the parity suite in
``tests/routing/test_shortest_path_parity.py``, which demands
bit-identical distances **and** next-hop tables.

Bit-identity is achievable because both implementations

* relax intermediates ``k`` in the same ascending order,
* use the same strict ``<`` improvement test (ties keep the incumbent
  next hop), and
* perform the same IEEE-754 double additions -- row ``k`` and column
  ``k`` of the distance matrix cannot improve during iteration ``k``
  (``dist[k][k] == 0``), so in-place relaxation reads the same values
  the batched NumPy broadcast reads.

Keep this file boring and obviously correct; it is the specification.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.topology.row import RowPlacement

INF = float("inf")

Matrix = List[List[float]]
IntMatrix = List[List[int]]


def weight_matrix_py(placement: RowPlacement, cost, direction: str) -> Matrix:
    """Directional one-hop cost matrix as nested lists.

    Mirrors :func:`repro.routing.shortest_path.weight_matrix`:
    ``w[i][j]`` is the hop cost of a link usable from ``i`` to ``j`` in
    ``direction`` (``"l2r"`` or ``"r2l"``), ``inf`` otherwise, with a
    zero diagonal.
    """
    n = placement.n
    w = [[0.0 if i == j else INF for j in range(n)] for i in range(n)]
    for i, j in placement.all_links():  # i < j by construction
        c = cost.hop_cost(j - i)
        if direction == "l2r":
            w[i][j] = c
        elif direction == "r2l":
            w[j][i] = c
        else:
            raise ValueError(f"unknown direction {direction!r}")
    return w


def floyd_warshall_py(w: Matrix) -> Tuple[Matrix, IntMatrix]:
    """All-pairs shortest distances and next hops, triple loop.

    ``next_hop[i][j]`` is the first router after ``i`` on a shortest
    ``i -> j`` path (``-1`` when unreachable, ``j`` itself on the
    diagonal), exactly as the NumPy kernel defines it.
    """
    n = len(w)
    dist = [row[:] for row in w]
    next_hop = [[-1] * n for _ in range(n)]
    for i in range(n):
        for j in range(n):
            if dist[i][j] != INF:
                next_hop[i][j] = j
        next_hop[i][i] = i
    for k in range(n):
        dk = dist[k]
        for i in range(n):
            di = dist[i]
            dik = di[k]
            if dik == INF:
                continue
            nik = next_hop[i][k]
            ni = next_hop[i]
            for j in range(n):
                via = dik + dk[j]
                if via < di[j]:
                    di[j] = via
                    ni[j] = nik
    return dist, next_hop


def floyd_warshall_distances_py(w: Matrix) -> Matrix:
    """Distance-only variant of :func:`floyd_warshall_py`."""
    n = len(w)
    dist = [row[:] for row in w]
    for k in range(n):
        dk = dist[k]
        for i in range(n):
            di = dist[i]
            dik = di[k]
            if dik == INF:
                continue
            for j in range(n):
                via = dik + dk[j]
                if via < di[j]:
                    di[j] = via
    return dist


def directional_distances_py(placement: RowPlacement, cost) -> Matrix:
    """Reference for :func:`repro.routing.shortest_path.directional_distances`."""
    n = placement.n
    d_lr = floyd_warshall_distances_py(weight_matrix_py(placement, cost, "l2r"))
    d_rl = floyd_warshall_distances_py(weight_matrix_py(placement, cost, "r2l"))
    out = [[0.0] * n for _ in range(n)]
    for i in range(n):
        for j in range(n):
            if i < j:
                out[i][j] = d_lr[i][j]
            elif i > j:
                out[i][j] = d_rl[i][j]
    return out


def directional_paths_py(
    placement: RowPlacement, cost
) -> Tuple[Matrix, IntMatrix]:
    """Reference for :func:`repro.routing.shortest_path.directional_paths`."""
    n = placement.n
    d_lr, nh_lr = floyd_warshall_py(weight_matrix_py(placement, cost, "l2r"))
    d_rl, nh_rl = floyd_warshall_py(weight_matrix_py(placement, cost, "r2l"))
    dist = [[0.0] * n for _ in range(n)]
    next_hop = [[0] * n for _ in range(n)]
    for i in range(n):
        for j in range(n):
            if i < j:
                dist[i][j] = d_lr[i][j]
                next_hop[i][j] = nh_lr[i][j]
            elif i > j:
                dist[i][j] = d_rl[i][j]
                next_hop[i][j] = nh_rl[i][j]
            else:
                next_hop[i][j] = i
    return dist, next_hop
