"""Per-router routing tables (Section 4.5.2, Figure 3).

Each router holds two next-hop tables, one for the X dimension (its
row) and one for the Y dimension (its column).  A packet is routed with
dimension-order routing: it first consults the X table until it reaches
the destination's column (the "turning point" router), then the Y table
until it reaches the destination row.

Tables are populated offline by the two directional Floyd-Warshall
passes of :mod:`repro.routing.shortest_path`; each table has at most
``n - 1`` useful entries per direction, i.e. ``2 (n - 1)`` entries
total, which is what makes the hardware overhead negligible
(< 0.5 % of router area; see :mod:`repro.power.area`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.routing.shortest_path import HopCostModel, directional_paths
from repro.topology.mesh import MeshTopology


@dataclass(frozen=True)
class RoutingTables:
    """Next-hop tables for every row and column of a topology.

    Attributes
    ----------
    row_next:
        ``row_next[y][x, x']`` is the next column index after position
        ``x`` on the latency-optimal path to column ``x'`` within row
        ``y``.
    col_next:
        ``col_next[x][y, y']`` likewise for column ``x``.
    row_dist / col_dist:
        The matching directional head-latency matrices (zero-load).
    """

    topology: MeshTopology
    row_next: Tuple[np.ndarray, ...]
    col_next: Tuple[np.ndarray, ...]
    row_dist: Tuple[np.ndarray, ...]
    col_dist: Tuple[np.ndarray, ...]
    #: Dimension order: "xy" (the paper's default) or "yx".  The paper
    #: notes taped-out chips use either; both are deadlock-free and,
    #: for the symmetric general-purpose placements, equivalent.
    order: str = "xy"

    @classmethod
    def build(
        cls,
        topology: MeshTopology,
        cost: HopCostModel | None = None,
        order: str = "xy",
    ) -> "RoutingTables":
        """Compute all tables with the directional Floyd-Warshall."""
        if order not in ("xy", "yx"):
            raise ValueError(f"order must be 'xy' or 'yx', got {order!r}")
        cost = cost or HopCostModel()
        row_next, row_dist, col_next, col_dist = [], [], [], []
        cache: dict = {}
        for p in topology.row_placements:
            if p not in cache:
                cache[p] = directional_paths(p, cost)
            d, nh = cache[p]
            row_dist.append(d)
            row_next.append(nh)
        for p in topology.col_placements:
            if p not in cache:
                cache[p] = directional_paths(p, cost)
            d, nh = cache[p]
            col_dist.append(d)
            col_next.append(nh)
        return cls(
            topology=topology,
            row_next=tuple(row_next),
            col_next=tuple(col_next),
            row_dist=tuple(row_dist),
            col_dist=tuple(col_dist),
            order=order,
        )

    def next_hop(self, node: int, dest: int) -> int:
        """Next router id from ``node`` toward ``dest`` under DOR."""
        x, y = self.topology.coords(node)
        dx, dy = self.topology.coords(dest)
        if self.order == "yx":
            if y != dy:
                ny = int(self.col_next[x][y, dy])
                return self.topology.node_id(x, ny)
            if x != dx:
                nx = int(self.row_next[y][x, dx])
                return self.topology.node_id(nx, y)
            return node
        if x != dx:
            nx = int(self.row_next[y][x, dx])
            return self.topology.node_id(nx, y)
        if y != dy:
            ny = int(self.col_next[x][y, dy])
            return self.topology.node_id(x, ny)
        return node

    def table_entries(self, node: int) -> int:
        """Routing-table entry count at ``node`` (for the area model)."""
        return (self.topology.n - 1) + (self.topology.height - 1)
