"""Placement-as-a-service: async server, design cache, batching, sweeper.

The serving layer exposes the frozen public facade
(:class:`repro.SearchConfig` in, :class:`repro.PlacementResult` out)
over HTTP/JSON, backed by a content-addressed design cache keyed on
the run-ledger identity.  Stdlib-only: ``asyncio.start_server`` plus
``json``; no web framework.

>>> from repro.serve import ServeApp, DesignStore
>>> app = ServeApp(DesignStore("/tmp/designs"))
>>> # asyncio.run(app.handle("POST", "/place", b'{"n": 8}'))

See ``docs/serving.md`` for the endpoint reference and operational
semantics (cache classes, deadlines, backpressure, drain).
"""

from repro.serve.batcher import EvaluateBatcher
from repro.serve.server import HttpServer, ServeApp
from repro.serve.store import STORE_ROOT, DesignStore, StoreEntry
from repro.serve.sweeper import Sweeper, sweep_grid

__all__ = [
    "DesignStore",
    "EvaluateBatcher",
    "HttpServer",
    "STORE_ROOT",
    "ServeApp",
    "StoreEntry",
    "Sweeper",
    "sweep_grid",
]
