"""Request batching: coalesce concurrent ``/evaluate`` calls.

Evaluation requests that arrive within one short window are priced by a
single :meth:`~repro.core.latency.RowObjective.evaluate_many` call --
the population Floyd-Warshall kernel from PR 5 -- instead of one O(n^3)
solve each.  ``evaluate_many`` is bit-identical to the scalar path by
the batched-population parity contract, and each request is finished
through :func:`repro.api.eval_result_from_row` (the exact tail of
:func:`repro.api.evaluate_placement`), so a batched response is
byte-identical to an unbatched one.

The batcher is single-flush: the first request to arrive arms a timer
task; every request that lands within ``window_s`` joins the same
batch; the flush prices the whole batch in the worker pool and
resolves each request's future.  Requests are grouped by
``(n, weights)`` inside one flush since one kernel call prices one
population shape.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.api import EvalResult, eval_result_from_row
from repro.core.latency import RowObjective
from repro.topology.row import RowPlacement


@dataclass
class _Pending:
    placement: RowPlacement
    link_limit: Optional[int]
    weights: Optional[Tuple[Tuple[float, ...], ...]]
    future: "asyncio.Future[EvalResult]"


class EvaluateBatcher:
    """Coalesces concurrent evaluation requests into population calls."""

    def __init__(
        self,
        registry: Any = None,
        window_s: float = 0.002,
        executor: Any = None,
    ) -> None:
        self.registry = registry
        self.window_s = window_s
        self.executor = executor
        self._pending: List[_Pending] = []
        self._flush_task: Optional[asyncio.Task] = None

    async def evaluate(
        self,
        placement: RowPlacement,
        link_limit: Optional[int] = None,
        weights: Optional[Tuple[Tuple[float, ...], ...]] = None,
    ) -> EvalResult:
        """Price one placement; joins the current batch window."""
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[EvalResult]" = loop.create_future()
        self._pending.append(_Pending(placement, link_limit, weights, future))
        if self._flush_task is None or self._flush_task.done():
            self._flush_task = loop.create_task(self._flush_after_window())
        return await future

    async def drain(self) -> None:
        """Wait for the in-flight flush (graceful-shutdown support)."""
        while self._pending or (
            self._flush_task is not None and not self._flush_task.done()
        ):
            task = self._flush_task
            if task is not None:
                await asyncio.shield(task)
            else:  # pragma: no cover - pending with no armed task
                await asyncio.sleep(0)

    async def _flush_after_window(self) -> None:
        await asyncio.sleep(self.window_s)
        batch, self._pending = self._pending, []
        if not batch:
            return
        if self.registry is not None:
            self.registry.counter("serve.evaluate.batches").inc()
            self.registry.counter("serve.evaluate.requests").inc(len(batch))
            self.registry.histogram(
                "serve.evaluate.batch_size", (1, 2, 4, 8, 16, 32, 64)
            ).observe(len(batch))
        loop = asyncio.get_running_loop()
        try:
            results = await loop.run_in_executor(
                self.executor, _price_batch, batch
            )
        except Exception as exc:  # kernel-level failure: fail the batch
            for item in batch:
                if not item.future.done():
                    item.future.set_exception(exc)
            return
        for item, outcome in zip(batch, results):
            if item.future.done():  # request timed out mid-flight
                continue
            if isinstance(outcome, Exception):
                item.future.set_exception(outcome)
            else:
                item.future.set_result(outcome)


def _price_batch(batch: List[_Pending]) -> List[Any]:
    """Price a whole batch (worker thread; touches no asyncio state).

    One ``evaluate_many`` kernel call per ``(n, weights)`` group, then
    the per-request Eq. 2 tail.  Per-item errors (e.g. a placement that
    violates its requested limit) are returned in place so one bad
    request cannot fail its batch-mates.
    """
    results: List[Any] = [None] * len(batch)
    groups: dict = {}
    for idx, item in enumerate(batch):
        groups.setdefault((item.placement.n, item.weights), []).append(idx)
    for (_, weights), indexes in groups.items():
        objective = RowObjective(weights=weights)
        rows = objective.evaluate_many(
            [batch[i].placement for i in indexes]
        )
        for i, row in zip(indexes, rows.tolist()):
            try:
                results[i] = eval_result_from_row(
                    batch[i].placement, row, batch[i].link_limit
                )
            except Exception as exc:
                results[i] = exc
    return results
