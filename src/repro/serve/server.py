"""Placement-as-a-service: the async HTTP/JSON application.

:class:`ServeApp` is transport-independent: :meth:`ServeApp.handle`
maps ``(method, path, body)`` to ``(status, content type, payload,
headers)``, so tests drive it in-process while
:class:`HttpServer` speaks HTTP/1.1 over ``asyncio.start_server``
(stdlib only -- no framework dependency).

Endpoints
---------
``POST /place``
    Full design search (``repro.optimize``) through the design cache:
    exact identity hits return the stored result in O(1); concurrent
    identical requests compute once (single-flight); near misses
    warm-start from a cached neighbor
    (:meth:`~repro.serve.store.DesignStore.nearest`).
``POST /evaluate``
    Price one placement; concurrent requests coalesce into one
    population kernel call (:mod:`repro.serve.batcher`).
``POST /campaign``
    A simulation campaign grid (:mod:`repro.sim.campaign`).
``GET /runs/<id>``
    The run-ledger manifest recorded for a served computation.
``GET /metrics``
    Prometheus text (:func:`repro.obs.metrics.render_prometheus`).
``GET /healthz``
    Liveness + drain state, for boot scripts.

Robustness
----------
Per-request deadlines (``deadline_s`` in the body, capped by the
server) return 504 while the underlying computation continues and
still populates the cache; a bounded in-flight budget returns 429 with
``Retry-After``; shutdown drains in-flight work behind 503s.  Every
request increments ``serve.*`` counters and every computed design is
recorded in the run ledger, so the obs stack is the service telemetry.
"""

from __future__ import annotations

import asyncio
import functools
import json
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Tuple

from repro.api import SearchConfig
from repro.core.optimizer import optimize
from repro.obs.ledger import (
    RunLedger,
    digest_parts,
    optimize_params,
    sweep_digest,
)
from repro.obs.metrics import MetricsRegistry, render_prometheus
from repro.serve.batcher import EvaluateBatcher
from repro.serve.store import DesignStore, StoreEntry
from repro.topology.row import RowPlacement
from repro.util.errors import ConfigurationError, InvalidPlacementError

#: Body fields every POST endpoint understands.
_COMMON_FIELDS = {"deadline_s"}

JSON = "application/json"
TEXT = "text/plain; version=0.0.4; charset=utf-8"

Response = Tuple[int, str, bytes, Dict[str, str]]


class RequestError(Exception):
    """A malformed request (maps to HTTP 400)."""


def _json_bytes(obj: Any) -> bytes:
    return (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")


class ServeApp:
    """The placement service: cache-backed solvers behind five routes."""

    def __init__(
        self,
        store: Optional[DesignStore] = None,
        registry: Optional[MetricsRegistry] = None,
        ledger: Optional[RunLedger] = None,
        *,
        capacity: int = 4,
        queue_limit: int = 256,
        default_deadline_s: float = 60.0,
        max_deadline_s: float = 600.0,
        batch_window_s: float = 0.002,
        default_effort: str = "paper",
        default_seed: Optional[int] = 2019,
        workers: Optional[int] = None,
    ) -> None:
        # Explicit None check: DesignStore has __len__, so an *empty*
        # store is falsy and `store or DesignStore()` would discard it.
        self.store = store if store is not None else DesignStore()
        self.metrics = registry or MetricsRegistry()
        self.ledger = ledger
        self.capacity = capacity
        self.queue_limit = queue_limit
        self.default_deadline_s = default_deadline_s
        self.max_deadline_s = max_deadline_s
        self.default_effort = default_effort
        self.default_seed = default_seed
        self.executor = ThreadPoolExecutor(
            max_workers=workers or max(2, capacity),
            thread_name_prefix="repro-serve",
        )
        self.batcher = EvaluateBatcher(
            self.metrics, window_s=batch_window_s, executor=self.executor
        )
        self.draining = False
        self._active = 0
        self._inflight: Dict[str, asyncio.Task] = {}

    # -- lifecycle -----------------------------------------------------
    @property
    def idle(self) -> bool:
        """True when no search or evaluation work is in flight."""
        return (
            self._active == 0
            and not self._inflight
            and not self.batcher._pending
        )

    async def shutdown(self) -> None:
        """Drain in-flight work, then release the worker pool.

        New requests are refused with 503 the moment draining starts;
        everything already admitted runs to completion (and still
        lands in the cache/ledger) before the pool closes.
        """
        self.draining = True
        tasks = list(self._inflight.values())
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        await self.batcher.drain()
        self.executor.shutdown(wait=True)

    # -- routing -------------------------------------------------------
    async def handle(self, method: str, path: str, body: bytes = b"") -> Response:
        """Route one request; the transport-independent entry point."""
        self.metrics.counter("serve.requests").inc()
        try:
            if method == "POST" and path == "/place":
                self.metrics.counter("serve.request.place").inc()
                return await self._handle_place(self._parse_body(body))
            if method == "POST" and path == "/evaluate":
                self.metrics.counter("serve.request.evaluate").inc()
                return await self._handle_evaluate(self._parse_body(body))
            if method == "POST" and path == "/campaign":
                self.metrics.counter("serve.request.campaign").inc()
                return await self._handle_campaign(self._parse_body(body))
            if method == "GET" and path.startswith("/runs/"):
                self.metrics.counter("serve.request.runs").inc()
                return self._handle_runs(path[len("/runs/"):])
            if method == "GET" and path == "/metrics":
                self.metrics.counter("serve.request.metrics").inc()
                return self._handle_metrics()
            if method == "GET" and path == "/healthz":
                return (200, JSON, _json_bytes(
                    {"status": "draining" if self.draining else "ok",
                     "inflight": self._active,
                     "cached_designs": len(self.store)}
                ), {})
            return self._error(404, f"no route for {method} {path}")
        except RequestError as exc:
            self.metrics.counter("serve.errors.bad_request").inc()
            return self._error(400, str(exc))
        except (ConfigurationError, InvalidPlacementError) as exc:
            self.metrics.counter("serve.errors.bad_request").inc()
            return self._error(400, str(exc))
        except asyncio.TimeoutError:
            self.metrics.counter("serve.rejected.deadline").inc()
            return self._error(504, "deadline exceeded; the computation "
                               "continues and will populate the cache")
        except Exception as exc:  # noqa: BLE001 - service must not die
            self.metrics.counter("serve.errors.internal").inc()
            return self._error(500, f"{type(exc).__name__}: {exc}")

    def _error(self, status: int, message: str,
               headers: Optional[Dict[str, str]] = None) -> Response:
        return (status, JSON, _json_bytes({"error": message}), headers or {})

    @staticmethod
    def _parse_body(body: bytes) -> Dict:
        if not body:
            return {}
        try:
            data = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise RequestError(f"body is not valid JSON: {exc}") from None
        if not isinstance(data, dict):
            raise RequestError("request body must be a JSON object")
        return data

    def _deadline(self, body: Dict) -> float:
        deadline = body.get("deadline_s", self.default_deadline_s)
        try:
            deadline = float(deadline)
        except (TypeError, ValueError):
            raise RequestError(f"deadline_s must be a number, got "
                               f"{deadline!r}") from None
        if deadline <= 0:
            raise RequestError(f"deadline_s must be positive, got {deadline}")
        return min(deadline, self.max_deadline_s)

    # -- /place --------------------------------------------------------
    def _place_spec(self, body: Dict) -> Dict:
        known = {"n", "method", "effort", "config", "link_limits",
                 "warm"} | _COMMON_FIELDS
        unknown = sorted(set(body) - known)
        if unknown:
            raise RequestError(f"unknown /place field(s) {unknown}; "
                               f"known: {sorted(known)}")
        if "n" not in body:
            raise RequestError("/place requires 'n' (mesh size)")
        n = body["n"]
        if not isinstance(n, int) or n < 2:
            raise RequestError(f"n must be an integer >= 2, got {n!r}")
        from repro.harness.designs import EFFORTS

        method = body.get("method", "dc_sa")
        effort = body.get("effort", self.default_effort)
        if effort not in EFFORTS:
            raise RequestError(
                f"unknown effort {effort!r}; expected one of {sorted(EFFORTS)}"
            )
        config_body = dict(body.get("config") or {})
        config_body.setdefault("seed", self.default_seed)
        cfg = SearchConfig.from_json(config_body)
        link_limits = body.get("link_limits")
        if link_limits is not None:
            if (not isinstance(link_limits, list) or not link_limits
                    or not all(isinstance(c, int) and c >= 1
                               for c in link_limits)):
                raise RequestError("link_limits must be a non-empty list "
                                   "of integers >= 1")
            link_limits = tuple(link_limits)
        params = optimize_params(n, method, effort, cfg.space)
        if link_limits is not None:
            params["link_limits"] = list(link_limits)
        return {
            "n": n, "method": method, "effort": effort, "config": cfg,
            "link_limits": link_limits, "params": params,
            "warm": bool(body.get("warm", True)),
        }

    async def _handle_place(self, body: Dict) -> Response:
        deadline = self._deadline(body)
        spec = self._place_spec(body)
        cfg: SearchConfig = spec["config"]
        key = self.store.key_for("optimize", spec["params"], cfg, cfg.seed)
        cached = self.store.get(key)
        if cached is not None:
            self.metrics.counter("serve.cache.hit").inc()
            return self._place_response(cached, "hit")
        inflight = self._inflight.get(key)
        if inflight is not None:
            # Single-flight: identical concurrent requests share one
            # computation.  shield() keeps this waiter's deadline from
            # cancelling work other requests (and the cache) depend on.
            self.metrics.counter("serve.cache.coalesced").inc()
            entry = await asyncio.wait_for(
                asyncio.shield(inflight), deadline
            )
            return self._place_response(entry, "coalesced")
        if self.draining:
            self.metrics.counter("serve.rejected.draining").inc()
            return self._error(503, "server is draining",
                               {"Retry-After": "5"})
        if self._active >= self.capacity:
            self.metrics.counter("serve.rejected.backpressure").inc()
            return self._error(
                429,
                f"at capacity ({self.capacity} searches in flight)",
                {"Retry-After": "1"},
            )
        neighbor: Optional[StoreEntry] = None
        if spec["warm"] and cfg.space == "row":
            neighbor = self.store.nearest(spec["n"], "row", exclude=key)
        cache_class = "warm" if neighbor is not None else "miss"
        self.metrics.counter(f"serve.cache.{cache_class}").inc()
        task = asyncio.get_running_loop().create_task(
            self._compute_place(key, spec, neighbor)
        )
        self._inflight[key] = task
        entry = await asyncio.wait_for(asyncio.shield(task), deadline)
        return self._place_response(entry, cache_class)

    async def _compute_place(
        self, key: str, spec: Dict, neighbor: Optional[StoreEntry]
    ) -> StoreEntry:
        from repro.harness.designs import EFFORTS

        self._active += 1
        try:
            cfg: SearchConfig = spec["config"]
            warm_start = neighbor.result.placement if neighbor else None
            loop = asyncio.get_running_loop()
            start = time.perf_counter()
            result = await loop.run_in_executor(
                self.executor,
                functools.partial(
                    optimize,
                    spec["n"],
                    method=spec["method"],
                    params=EFFORTS[spec["effort"]],
                    link_limits=spec["link_limits"],
                    config=cfg,
                    warm_start=warm_start,
                ),
            )
            wall = time.perf_counter() - start
            self.metrics.quantile("serve.place.wall_s", (0.5, 0.9)).observe(wall)
            digest = sweep_digest(result.sweep)
            entry = self.store.put(
                "optimize", spec["params"], cfg, cfg.seed, result, digest,
                warm_from=neighbor.key if neighbor else None, key=key,
            )
            if self.ledger is not None:
                self.ledger.record(
                    kind="optimize", params=spec["params"], config=cfg,
                    seed=cfg.seed, wall_time_s=wall,
                    results={
                        "best_link_limit": result.link_limit,
                        "best_flit_bits": result.flit_bits,
                        "best_total_latency": result.total_latency,
                        "express_links": len(result.express_links),
                    },
                    result_digest=digest, run_id=key,
                )
            return entry
        finally:
            self._active -= 1
            self._inflight.pop(key, None)

    def _place_response(self, entry: StoreEntry, cache: str) -> Response:
        return (200, JSON, _json_bytes({
            "key": entry.key,
            "cache": cache,
            "result_digest": entry.result_digest,
            "warm_from": entry.warm_from,
            "wall_time_s": entry.wall_time_s,
            "result": entry.result.to_json(),
        }), {})

    # -- /evaluate -----------------------------------------------------
    def _evaluate_spec(self, body: Dict) -> Tuple[RowPlacement, Optional[int],
                                                  Optional[tuple]]:
        known = {"n", "express_links", "placement_row", "link_limit",
                 "weights"} | _COMMON_FIELDS
        unknown = sorted(set(body) - known)
        if unknown:
            raise RequestError(f"unknown /evaluate field(s) {unknown}; "
                               f"known: {sorted(known)}")
        if "placement_row" in body:
            placement = RowPlacement.from_canonical_bytes(
                bytes.fromhex(body["placement_row"])
            )
        elif "n" in body:
            links = body.get("express_links", [])
            if not isinstance(links, list):
                raise RequestError("express_links must be a list of [i, j] "
                                   "pairs")
            placement = RowPlacement(
                n=body["n"],
                express_links=frozenset(tuple(link) for link in links),
            )
        else:
            raise RequestError("/evaluate requires 'placement_row' (canonical "
                               "bytes hex) or 'n' + 'express_links'")
        link_limit = body.get("link_limit")
        if link_limit is not None and (
            not isinstance(link_limit, int) or link_limit < 1
        ):
            raise RequestError(f"link_limit must be an integer >= 1, got "
                               f"{link_limit!r}")
        weights = body.get("weights")
        if weights is not None:
            try:
                weights = tuple(
                    tuple(float(x) for x in row) for row in weights
                )
            except (TypeError, ValueError):
                raise RequestError("weights must be an n x n matrix of "
                                   "numbers") from None
            n = placement.n
            if len(weights) != n or any(len(row) != n for row in weights):
                raise RequestError(f"weights must be {n}x{n} for this "
                                   "placement")
            if sum(x for row in weights for x in row) <= 0:
                raise RequestError("weights must have positive sum")
        return placement, link_limit, weights

    async def _handle_evaluate(self, body: Dict) -> Response:
        deadline = self._deadline(body)
        placement, link_limit, weights = self._evaluate_spec(body)
        if self.draining:
            self.metrics.counter("serve.rejected.draining").inc()
            return self._error(503, "server is draining",
                               {"Retry-After": "5"})
        if len(self.batcher._pending) >= self.queue_limit:
            self.metrics.counter("serve.rejected.backpressure").inc()
            return self._error(
                429,
                f"evaluate queue full ({self.queue_limit} pending)",
                {"Retry-After": "1"},
            )
        result = await asyncio.wait_for(
            self.batcher.evaluate(placement, link_limit, weights), deadline
        )
        return (200, JSON, _json_bytes({
            "placement_row": placement.canonical_bytes().hex(),
            "result": result.to_json(),
        }), {})

    # -- /campaign -----------------------------------------------------
    async def _handle_campaign(self, body: Dict) -> Response:
        known = {"n", "schemes", "patterns", "rates", "seeds", "warmup",
                 "measure", "effort", "seed", "jobs"} | _COMMON_FIELDS
        unknown = sorted(set(body) - known)
        if unknown:
            raise RequestError(f"unknown /campaign field(s) {unknown}; "
                               f"known: {sorted(known)}")
        if "n" not in body:
            raise RequestError("/campaign requires 'n' (mesh size)")
        deadline = self._deadline(body)
        if self.draining:
            self.metrics.counter("serve.rejected.draining").inc()
            return self._error(503, "server is draining",
                               {"Retry-After": "5"})
        if self._active >= self.capacity:
            self.metrics.counter("serve.rejected.backpressure").inc()
            return self._error(
                429,
                f"at capacity ({self.capacity} searches in flight)",
                {"Retry-After": "1"},
            )
        task = asyncio.get_running_loop().create_task(
            self._compute_campaign(body)
        )
        payload = await asyncio.wait_for(asyncio.shield(task), deadline)
        return (200, JSON, _json_bytes(payload), {})

    async def _compute_campaign(self, body: Dict) -> Dict:
        self._active += 1
        try:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                self.executor, functools.partial(_run_campaign_grid, body,
                                                 self.default_effort)
            )
        finally:
            self._active -= 1

    # -- /runs, /metrics -----------------------------------------------
    def _handle_runs(self, run_id: str) -> Response:
        if self.ledger is None:
            return self._error(404, "no run ledger attached to this server")
        try:
            manifest = self.ledger.load(run_id)
        except ConfigurationError as exc:
            return self._error(404, str(exc))
        return (200, JSON, _json_bytes(manifest), {})

    def _handle_metrics(self) -> Response:
        text = render_prometheus(
            self.metrics.snapshot(), labels={"service": "repro-serve"}
        )
        return (200, TEXT, text.encode("utf-8"), {})


def _run_campaign_grid(body: Dict, default_effort: str) -> Dict:
    """Build and run one campaign grid (worker thread)."""
    from repro.cli import _design_for
    from repro.sim.campaign import campaign_grid, run_campaign

    n = body["n"]
    seed = body.get("seed", 2019)
    effort = body.get("effort", default_effort)
    designs = [
        _design_for(s, n, seed, effort)
        for s in (body.get("schemes") or ["mesh"])
    ]
    grid = campaign_grid(
        designs,
        body.get("patterns") or ["uniform_random"],
        [float(r) for r in (body.get("rates") or [1.0])],
        base_seed=seed,
        seeds_per_point=int(body.get("seeds", 1)),
        warmup=int(body.get("warmup", 300)),
        measure=int(body.get("measure", 1_000)),
    )
    campaign = run_campaign(grid, jobs=int(body.get("jobs", 1)))
    rows: List[Dict] = []
    digest_fields: List[Any] = []
    for job, res in zip(campaign.jobs, campaign.results):
        scheme, pattern, rate, seed_i = job.key
        summary = res.run.summary
        rows.append({
            "scheme": scheme, "pattern": pattern, "rate": rate,
            "seed": seed_i, "packets": summary.packets,
            "avg_network_latency": summary.avg_network_latency,
            "throughput_packets_per_cycle":
                summary.throughput_packets_per_cycle,
            "cycles": res.run.cycles_run,
            "drained": res.run.drained,
        })
        digest_fields.extend([
            res.run.cycles_run, summary.packets,
            float(summary.avg_network_latency).hex(),
        ])
    return {
        "runs": len(rows),
        "results": rows,
        "result_digest": digest_parts(*digest_fields),
    }


# ----------------------------------------------------------------------
# HTTP transport
# ----------------------------------------------------------------------

_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
    405: "Method Not Allowed", 413: "Payload Too Large",
}

#: Request body ceiling (weights matrices are the largest legit bodies).
MAX_BODY_BYTES = 4 * 1024 * 1024


class HttpServer:
    """A minimal HTTP/1.1 front end over ``asyncio.start_server``."""

    def __init__(self, app: ServeApp, host: str = "127.0.0.1",
                 port: int = 8787) -> None:
        self.app = app
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )

    @property
    def address(self) -> Tuple[str, int]:
        assert self._server is not None and self._server.sockets
        sock = self._server.sockets[0].getsockname()
        return sock[0], sock[1]

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        """Stop accepting, then drain the application."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.app.shutdown()

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, ctype, payload, headers = await self._dispatch(reader)
        except Exception:  # noqa: BLE001 - malformed wire input
            status, ctype, payload, headers = (
                400, JSON, _json_bytes({"error": "malformed request"}), {}
            )
        lines = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            f"Content-Type: {ctype}",
            f"Content-Length: {len(payload)}",
            "Connection: close",
        ]
        lines.extend(f"{k}: {v}" for k, v in headers.items())
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("ascii"))
        writer.write(payload)
        try:
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):  # client went away
            pass

    async def _dispatch(self, reader: asyncio.StreamReader) -> Response:
        request_line = await reader.readline()
        parts = request_line.decode("ascii", "replace").split()
        if len(parts) < 2:
            return (400, JSON, _json_bytes({"error": "bad request line"}), {})
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return (400, JSON,
                            _json_bytes({"error": "bad Content-Length"}), {})
        if content_length > MAX_BODY_BYTES:
            return (413, JSON, _json_bytes(
                {"error": f"body exceeds {MAX_BODY_BYTES} bytes"}
            ), {})
        body = await reader.readexactly(content_length) if content_length else b""
        return await self.app.handle(method, path, body)
