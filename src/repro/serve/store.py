"""Content-addressed design store: the serving layer's persistent cache.

Every completed placement search is written to disk as one JSON entry
under ``<root>/<key>/result.json``, keyed by the same identity digest
the run ledger uses (:func:`repro.obs.ledger.compute_run_id` over
``(kind, params, config, seed)``).  The layout mirrors ``.repro/runs/``
on purpose: a store key *is* a ledger ``run_id``, so a served request
and a ``repro optimize --ledger`` invocation of the same work agree on
one name for it.

Exact hits (:meth:`DesignStore.get`) deserialize the stored
:class:`~repro.api.PlacementResult` bit-exactly (float-hex energies,
canonical placement bytes -- see :meth:`~repro.api.PlacementResult
.from_json`).  Near misses (:meth:`DesignStore.nearest`) return a
cached neighbor design for the same ``(n, space)`` under a different
budget or config; the optimizer clips it to the requested limit and
injects it as a post-solve candidate
(:func:`repro.core.optimizer.inject_warm_candidate`), which can only
improve the answer.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.api import PlacementResult
from repro.obs.ledger import canonical_json, compute_run_id
from repro.util.errors import ConfigurationError

#: Default store root, a sibling of the run-ledger root.
STORE_ROOT = os.path.join(".repro", "designs")


@dataclass(frozen=True)
class StoreEntry:
    """One cached design: identity, provenance, and the result itself."""

    key: str
    kind: str
    params: Dict[str, Any]
    config: Dict[str, Any]
    seed: Optional[int]
    result_digest: str
    result: PlacementResult
    #: Store key of the neighbor that warm-started this entry, or
    #: ``None`` when it was computed cold.  Cold entries are the ones
    #: guaranteed byte-identical to the CLI's output for the same key.
    warm_from: Optional[str] = None
    wall_time_s: float = 0.0
    payload: Dict[str, Any] = field(repr=False, compare=False,
                                    default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "kind": self.kind,
            "params": self.params,
            "config": self.config,
            "seed": self.seed,
            "result_digest": self.result_digest,
            "warm_from": self.warm_from,
            "wall_time_s": round(float(self.wall_time_s), 6),
            "result": self.result.to_json(),
        }


class DesignStore:
    """Reads and writes cached :class:`~repro.api.PlacementResult` entries.

    Writes are atomic (temp file + ``os.replace``), so a concurrent
    reader never sees a torn entry; identical keys overwrite
    idempotently, which is safe because the key already pins the full
    result-shaping identity.
    """

    def __init__(self, root: str = STORE_ROOT) -> None:
        self.root = root

    # -- identity ------------------------------------------------------
    def key_for(
        self, kind: str, params: Dict, config: Any = None,
        seed: Optional[int] = None,
    ) -> str:
        """The content-addressed key (== the ledger ``run_id``)."""
        return compute_run_id(kind, params, config, seed)

    def entry_path(self, key: str) -> str:
        return os.path.join(self.root, key, "result.json")

    # -- read ----------------------------------------------------------
    def get(self, key: str) -> Optional[StoreEntry]:
        """Load one entry, or ``None`` on a cache miss."""
        path = self.entry_path(key)
        if not os.path.isfile(path):
            return None
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        return self._entry_from_payload(payload)

    def _entry_from_payload(self, payload: Dict) -> StoreEntry:
        return StoreEntry(
            key=payload["key"],
            kind=payload["kind"],
            params=payload["params"],
            config=payload["config"],
            seed=payload["seed"],
            result_digest=payload["result_digest"],
            result=PlacementResult.from_json(payload["result"]),
            warm_from=payload.get("warm_from"),
            wall_time_s=payload.get("wall_time_s", 0.0),
            payload=payload,
        )

    def keys(self) -> List[str]:
        """All stored keys, sorted (deterministic scan order)."""
        if not os.path.isdir(self.root):
            return []
        return sorted(
            entry for entry in os.listdir(self.root)
            if os.path.isfile(self.entry_path(entry))
        )

    def __len__(self) -> int:
        return len(self.keys())

    def __contains__(self, key: str) -> bool:
        return os.path.isfile(self.entry_path(key))

    # -- write ---------------------------------------------------------
    def put(
        self,
        kind: str,
        params: Dict,
        config: Any,
        seed: Optional[int],
        result: PlacementResult,
        result_digest: str,
        warm_from: Optional[str] = None,
        key: Optional[str] = None,
    ) -> StoreEntry:
        """Write one entry atomically and return it."""
        key = key or self.key_for(kind, params, config, seed)
        from dataclasses import asdict, is_dataclass

        entry = StoreEntry(
            key=key,
            kind=kind,
            params=dict(params),
            config=(
                asdict(config) if is_dataclass(config) else dict(config or {})
            ),
            seed=seed,
            result_digest=result_digest,
            result=result,
            warm_from=warm_from,
            wall_time_s=result.wall_time_s,
        )
        path = self.entry_path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(canonical_json(entry.to_dict()))
            fh.write("\n")
        os.replace(tmp, path)
        return entry

    # -- near-miss lookup ----------------------------------------------
    def nearest(
        self,
        n: int,
        space: str = "row",
        exclude: Optional[str] = None,
    ) -> Optional[StoreEntry]:
        """A cached neighbor design for ``(n, space)``, or ``None``.

        The warm-start source for near-miss requests: any entry of the
        same size and space, regardless of budget, weights or config,
        since the candidate is clipped to the requested limit and only
        kept if strictly better.  Row space only -- mesh placements
        have no clip rule yet.  Deterministic: entries are scanned in
        sorted-key order and the first match wins, so the same store
        contents always warm-start the same way.
        """
        if space != "row":
            return None
        for key in self.keys():
            if key == exclude:
                continue
            try:
                entry = self.get(key)
            except (ConfigurationError, KeyError, ValueError):
                continue  # skip corrupt/foreign entries, never fail a solve
            if entry is None or entry.result.space != "row":
                continue
            if entry.result.n == n:
                return entry
        return None
