"""Background sweeper: pre-populate the design cache during idle time.

A serving process spends most of its life waiting for requests.  The
sweeper turns that idle time into cache warmth: it walks a configured
``(n, C)`` grid in deterministic order and, whenever the app has no
request-driven work in flight, computes and stores the next missing
design through the exact same pipeline ``POST /place`` uses (same
identity key, same single-flight map, same ledger recording).  A later
request for any pre-populated point is then an exact cache hit.

The sweeper is strictly lower priority than real traffic: it checks
:attr:`~repro.serve.server.ServeApp.idle` before *every* grid point
and backs off while requests are active; it never counts against the
request capacity it yields to.  Cancelling the task (or app drain)
stops it between points; a point already being computed for a request
is awaited, not duplicated, via the single-flight map.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Sequence

from repro.api import SearchConfig
from repro.core.latency import BandwidthConfig
from repro.obs.ledger import optimize_params
from repro.serve.server import ServeApp


def sweep_grid(
    sizes: Sequence[int],
    method: str = "dc_sa",
    effort: str = "paper",
    seed: Optional[int] = 2019,
    per_limit: bool = True,
) -> List[Dict]:
    """The ordered pre-population plan: one spec dict per grid point.

    For each mesh size the full sweep comes first -- its identity key
    matches a plain ``repro optimize -n <n>`` run, the most likely
    request -- followed (when ``per_limit``) by each single-``C``
    sub-sweep, whose identity records the non-default ``link_limits``
    so it can never collide with the full sweep's key.
    """
    bandwidth = BandwidthConfig()
    specs: List[Dict] = []
    for n in sizes:
        specs.append({"n": n, "method": method, "effort": effort,
                      "seed": seed, "link_limits": None})
        if per_limit:
            for c in bandwidth.valid_link_limits(n):
                specs.append({"n": n, "method": method, "effort": effort,
                              "seed": seed, "link_limits": (c,)})
    return specs


class Sweeper:
    """Walks a grid plan through the app's compute pipeline when idle."""

    def __init__(
        self,
        app: ServeApp,
        specs: Sequence[Dict],
        *,
        idle_poll_s: float = 0.25,
    ) -> None:
        self.app = app
        self.specs = list(specs)
        self.idle_poll_s = idle_poll_s
        self.populated = 0
        self.skipped = 0

    def _key_and_spec(self, spec: Dict) -> Dict:
        cfg = SearchConfig(seed=spec["seed"])
        params = optimize_params(
            spec["n"], spec["method"], spec["effort"], cfg.space
        )
        if spec["link_limits"] is not None:
            params["link_limits"] = list(spec["link_limits"])
        key = self.app.store.key_for("optimize", params, cfg, cfg.seed)
        return {
            "key": key,
            "spec": {
                "n": spec["n"], "method": spec["method"],
                "effort": spec["effort"], "config": cfg,
                "link_limits": spec["link_limits"], "params": params,
                "warm": False,  # sweeper entries stay byte-identical to CLI
            },
        }

    async def run(self) -> int:
        """Fill the grid; returns the number of entries populated.

        Returns early if the app starts draining.  Safe to cancel at
        any point boundary.
        """
        for spec in self.specs:
            while not self.app.idle:
                if self.app.draining:
                    return self.populated
                await asyncio.sleep(self.idle_poll_s)
            if self.app.draining:
                return self.populated
            plan = self._key_and_spec(spec)
            key = plan["key"]
            if key in self.app.store:
                self.skipped += 1
                continue
            inflight = self.app._inflight.get(key)
            if inflight is not None:  # a request beat us to this point
                await asyncio.shield(inflight)
                self.skipped += 1
                continue
            task = asyncio.get_running_loop().create_task(
                self.app._compute_place(key, plan["spec"], None)
            )
            self.app._inflight[key] = task
            await asyncio.shield(task)
            self.populated += 1
            self.app.metrics.counter("serve.sweeper.populated").inc()
            # Yield the loop between points so queued requests run first.
            await asyncio.sleep(0)
        return self.populated
