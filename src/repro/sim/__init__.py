"""Cycle-accurate flit-level NoC simulator (the gem5/GARNET substitute)."""

from repro.sim.config import SimConfig
from repro.sim.flit import Flit, Packet, make_flits
from repro.sim.link import CreditPipeline, LinkPipeline
from repro.sim.buffers import InputPort, VirtualChannel
from repro.sim.router import EJECT, OutputChannel, Router
from repro.sim.interface import NetworkInterface
from repro.sim.network import Network
from repro.sim.stats import LatencySummary, StatsCollector
from repro.sim.engine import RunResult, Simulator
from repro.sim.campaign import (
    CampaignResult,
    JobResult,
    SimJob,
    TrafficSpec,
    campaign_grid,
    run_campaign,
    run_until,
)

__all__ = [
    "CampaignResult",
    "JobResult",
    "SimJob",
    "TrafficSpec",
    "campaign_grid",
    "run_campaign",
    "run_until",
    "SimConfig",
    "Flit",
    "Packet",
    "make_flits",
    "CreditPipeline",
    "LinkPipeline",
    "InputPort",
    "VirtualChannel",
    "EJECT",
    "OutputChannel",
    "Router",
    "NetworkInterface",
    "Network",
    "LatencySummary",
    "StatsCollector",
    "RunResult",
    "Simulator",
]
