"""Virtual-channel input buffers (credit-based wormhole flow control).

Each input port holds ``V`` virtual channels.  A VC buffer is a FIFO of
flits belonging to back-to-back worms (packets never interleave within
a VC because the upstream router sends each worm contiguously on the VC
it allocated).  The VC tracks the route state of the worm currently at
its head: the output channel chosen by route computation and the
downstream VC granted by VC allocation.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.sim.flit import Flit


class VirtualChannel:
    """One VC FIFO plus the route state of the worm at its head."""

    __slots__ = ("buffer", "out_channel", "out_vc")

    def __init__(self) -> None:
        self.buffer: Deque[Flit] = deque()
        # Output channel key chosen for the current head worm (None until
        # route computation runs for the head flit at the buffer front).
        self.out_channel: Optional[int] = None
        # Downstream VC index granted by VC allocation (None until VA).
        self.out_vc: Optional[int] = None

    def push(self, flit: Flit, cycle: int) -> None:
        flit.ready_at = cycle
        self.buffer.append(flit)

    @property
    def front(self) -> Optional[Flit]:
        return self.buffer[0] if self.buffer else None

    def pop(self) -> Flit:
        return self.buffer.popleft()

    def reset_route(self) -> None:
        self.out_channel = None
        self.out_vc = None

    def __len__(self) -> int:
        return len(self.buffer)


class InputPort:
    """A router input port: ``V`` virtual channels of equal depth.

    ``credit_home`` identifies where freed buffer slots are reported:
    the upstream router's output channel (via a credit pipeline) or the
    local network interface.
    """

    __slots__ = ("vcs", "depth")

    def __init__(self, num_vcs: int, depth: int):
        self.vcs = [VirtualChannel() for _ in range(num_vcs)]
        self.depth = depth

    def occupancy(self) -> int:
        return sum(len(vc) for vc in self.vcs)

    def has_flits(self) -> bool:
        return any(vc.buffer for vc in self.vcs)
