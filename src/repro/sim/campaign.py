"""Parallel simulation campaigns: a job grid fanned over processes.

A campaign is a list of :class:`SimJob` value objects -- (design,
traffic spec, sim config, seed) -- executed by the same order-preserving
process-pool machinery as the parallel search engine
(:func:`repro.core.parallel.parallel_map`).  The determinism rules are
identical and give the same headline guarantee, enforced by the parity
suite: for a fixed seed, a campaign returns bit-identical results for
every ``jobs`` value.

* **Jobs are pure functions of their fields.**  A job carries its own
  integer traffic seed (grid builders derive one per job from the base
  seed via ``SeedSequence`` spawn keys -- see
  :func:`repro.util.rngtools.derive_seed_sequence`), so it computes the
  same run whether it executes inline, first, last, or on any worker.
* **Deterministic ordering.**  Results come back in job order
  regardless of completion order.
* **Ordered observability merging.**  Each worker records events into
  its own ``MemorySink`` and metrics into its own registry; the parent
  replays events and merges metric snapshots in job order.

Adaptive sweeps (load-latency curves, saturation searches) that decide
whether to continue based on earlier results use
:func:`run_until` -- speculative waves of ``jobs`` runs with the stop
predicate applied in job order, so early-stopping sweeps parallelize
without changing which runs contribute to the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.parallel import _merge_observability, parallel_map
from repro.obs.instrument import Instrumentation, ensure_obs
from repro.obs.sinks import MemorySink
from repro.sim.config import SimConfig
from repro.sim.engine import RunResult, Simulator
from repro.traffic.injection import SyntheticTraffic, TraceTraffic
from repro.traffic.parsec import parsec_traffic
from repro.traffic.patterns import make_pattern
from repro.util.errors import ConfigurationError
from repro.util.rngtools import derive_seed_sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - annotation-only (avoids a
    # runtime cycle: harness drivers import this module).
    from repro.harness.designs import SchemeDesign


def derive_job_seed(base_seed: int, *key: int) -> int:
    """One 64-bit traffic seed, a pure function of ``(base_seed, key)``."""
    seq = derive_seed_sequence(int(base_seed), *key)
    return int(seq.generate_state(1, np.uint64)[0])


@dataclass(frozen=True)
class TrafficSpec:
    """A picklable description of one traffic generator.

    Jobs cannot carry live generators (RNG state is not a value), so
    they carry this spec and the worker builds the generator from
    ``(spec, seed)``.  ``rate`` is the *aggregate* offered load in
    packets/cycle network-wide for ``synthetic`` (the harness
    convention; divided by ``n**2`` per node) and the rate scale for
    ``parsec``.
    """

    kind: str = "synthetic"  # "synthetic" | "parsec" | "trace"
    pattern: str = "uniform_random"
    rate: float = 1.0
    pattern_args: Tuple[Tuple[str, object], ...] = ()
    workload: Optional[str] = None
    events: Optional[Tuple[Tuple[int, int, int, int], ...]] = None
    stop_cycle: Optional[int] = None

    @property
    def label(self) -> str:
        if self.kind == "parsec":
            return str(self.workload)
        if self.kind == "trace":
            return "trace"
        return self.pattern

    def build(self, n: int, seed: int):
        """Instantiate the generator for an ``n x n`` network."""
        if self.kind == "synthetic":
            per_node = self.rate / (n * n)
            if per_node > 1.0:
                raise ConfigurationError(
                    f"aggregate rate {self.rate} exceeds 1 packet/node/cycle"
                )
            pattern = make_pattern(self.pattern, n, **dict(self.pattern_args))
            return SyntheticTraffic(
                pattern, rate=per_node, rng=seed, stop_cycle=self.stop_cycle
            )
        if self.kind == "parsec":
            if not self.workload:
                raise ConfigurationError("parsec traffic spec needs a workload name")
            return parsec_traffic(
                self.workload, n, rng=seed,
                rate_scale=self.rate, stop_cycle=self.stop_cycle,
            )
        if self.kind == "trace":
            return TraceTraffic(self.events or ())
        raise ConfigurationError(f"unknown traffic kind {self.kind!r}")


@dataclass(frozen=True)
class SimJob:
    """One simulation: everything a worker needs, nothing it shares."""

    design: SchemeDesign
    traffic: TrafficSpec
    config: SimConfig
    seed: int
    #: Caller-chosen identity (e.g. ``(scheme, pattern, rate, seed_i)``)
    #: carried through to the result for keyed lookup.
    key: Tuple = ()
    engine: str = "active"
    capture_events: bool = False


@dataclass
class JobResult:
    """A worker's complete output: the run plus captured observability."""

    key: Tuple
    run: RunResult
    events: List[dict]
    metrics: dict

    @property
    def obs_key(self) -> Tuple:
        """Job coordinate used as the deterministic gauge-merge key."""
        return self.key


@dataclass
class CampaignResult:
    """All runs of one campaign, in job order."""

    jobs: Tuple[SimJob, ...]
    results: Tuple[JobResult, ...]
    parallel_jobs: int = 1
    by_key: Dict[Tuple, JobResult] = field(default_factory=dict)

    def __post_init__(self):
        if not self.by_key:
            self.by_key = {r.key: r for r in self.results if r.key}

    @property
    def runs(self) -> Tuple[RunResult, ...]:
        return tuple(r.run for r in self.results)

    def run_for(self, *key) -> RunResult:
        return self.by_key[tuple(key)].run


def _run_job(job: SimJob) -> JobResult:
    """Execute one job (module-level so it pickles for pool workers)."""
    sink = MemorySink() if job.capture_events else None
    obs = Instrumentation(sinks=[] if sink is None else [sink])
    if job.key:
        obs.set_context(task=list(job.key))
    topology = job.design.topology
    traffic = job.traffic.build(job.design.point.n, job.seed)
    sim = Simulator(
        topology, job.config, traffic,
        obs=None if obs.is_null else obs, engine=job.engine,
    )
    run = sim.run()
    return JobResult(
        key=job.key,
        run=run,
        events=[] if sink is None else [e.to_dict() for e in sink.events],
        metrics=obs.metrics.snapshot(),
    )


def run_campaign(
    grid: Sequence[SimJob],
    jobs: int = 1,
    obs: Optional[Instrumentation] = None,
) -> CampaignResult:
    """Run a job grid inline (``jobs <= 1``) or on a process pool.

    Results are in grid order; worker events/metrics fold into ``obs``
    in grid order, so traces and profiles are reproducible run to run.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    obs = ensure_obs(obs)
    grid = [replace(job, capture_events=obs.enabled) for job in grid]
    if obs.enabled:
        obs.emit("campaign.start", jobs=jobs, grid=len(grid))
    with obs.span("sim.campaign"):
        results = parallel_map(_run_job, grid, jobs)
    _merge_observability(obs, results)
    if not obs.is_null:
        obs.metrics.counter("campaign.runs").inc(len(results))
        obs.metrics.gauge("campaign.jobs").set(jobs)
    if obs.enabled:
        obs.emit("campaign.end", runs=len(results))
    return CampaignResult(
        jobs=tuple(grid), results=tuple(results), parallel_jobs=jobs
    )


def run_until(
    grid: Sequence[SimJob],
    stop: Callable[[JobResult], bool],
    jobs: int = 1,
    obs: Optional[Instrumentation] = None,
) -> CampaignResult:
    """Run ``grid`` in order until ``stop(result)`` is true, in waves.

    The parallel form of an early-stopping sweep: runs speculative
    waves of ``max(jobs, 1)`` consecutive jobs, applies ``stop`` to the
    results *in job order*, and truncates at the first hit -- so the
    retained prefix is exactly what a serial loop with the same
    predicate would have produced (later speculative runs are simply
    discarded).  The stopping job itself is included.
    """
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    obs = ensure_obs(obs)
    grid = list(grid)
    kept_jobs: List[SimJob] = []
    kept: List[JobResult] = []
    for start in range(0, len(grid), max(jobs, 1)):
        wave = grid[start:start + max(jobs, 1)]
        wave_result = run_campaign(wave, jobs=jobs, obs=obs)
        stopped = False
        for job, res in zip(wave_result.jobs, wave_result.results):
            kept_jobs.append(job)
            kept.append(res)
            if stop(res):
                stopped = True
                break
        if stopped:
            break
    return CampaignResult(
        jobs=tuple(kept_jobs), results=tuple(kept), parallel_jobs=jobs
    )


def campaign_grid(
    designs: Sequence[SchemeDesign],
    patterns: Sequence[str],
    rates: Sequence[float],
    base_seed: int,
    seeds_per_point: int = 1,
    warmup: int = 300,
    measure: int = 1_000,
    max_cycles: Optional[int] = None,
    routing_mode: str = "xy",
    engine: str = "active",
) -> List[SimJob]:
    """The standard design x pattern x rate x seed grid.

    Each job's traffic seed derives from ``(base_seed, design_i,
    pattern_i, rate_i, seed_i)`` via ``SeedSequence`` spawn keys -- a
    pure function of the grid coordinates, so adding rows to any axis
    never perturbs the others.  Keys are the human-readable coordinates
    ``(scheme, pattern, rate, seed_i)``.
    """
    grid: List[SimJob] = []
    for d_i, design in enumerate(designs):
        config = SimConfig(
            flit_bits=design.point.flit_bits,
            warmup_cycles=warmup,
            measure_cycles=measure,
            max_cycles=max_cycles or (warmup + measure + 6_000),
            routing_mode=routing_mode,
            seed=base_seed,
        )
        for p_i, pattern in enumerate(patterns):
            for r_i, rate in enumerate(rates):
                for s_i in range(seeds_per_point):
                    grid.append(SimJob(
                        design=design,
                        traffic=TrafficSpec(
                            kind="synthetic", pattern=pattern, rate=rate
                        ),
                        config=config,
                        seed=derive_job_seed(base_seed, d_i, p_i, r_i, s_i),
                        key=(design.name, pattern, rate, s_i),
                        engine=engine,
                    ))
    return grid
