"""Simulator configuration (Section 5.1 methodology).

The paper assumes a canonical 3-stage credit-based wormhole router: one
cycle for buffer write + route computation, one for virtual-channel and
switch allocation, one for switch traversal; link traversal then takes
one cycle per unit of Manhattan length (express links are repeater
segmented, pipelined at full rate).  A flit therefore spends
``Tr + len * Tl = 3 + len`` cycles per hop at zero load, matching the
analytical model of Eq. 1 exactly.

Buffer capacity is normalized across schemes (Section 4.6): every
scheme gets the same *total* buffer bits per router, so high-radix
express routers get shallower per-VC buffers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class SimConfig:
    """Knobs for one simulation run.

    Parameters
    ----------
    flit_bits:
        Link width ``b``; packets of ``S`` bits become
        ``ceil(S / b)`` flits.
    vcs_per_port:
        Virtual channels per input port (the paper cites multiple VCs
        per link as the reason contention stays low).
    vc_depth_flits:
        Buffer depth per VC in flits, before normalization.
    normalize_buffer_bits:
        If set (the default), per-VC depth is rescaled so every router
        holds the same total buffer bits as a 5-port mesh router with
        ``vc_depth_flits`` deep 256-bit VCs -- the paper's equal-buffer
        comparison rule.  Depth never drops below 2 flits (needed to
        cover the credit loop at reasonable rates).
    router_stages:
        Pipeline depth ``Tr`` in cycles.
    max_cycles:
        Hard stop for the cycle loop.
    warmup_cycles / measure_cycles:
        Packets created inside the measurement window are the only ones
        that contribute to statistics; the run continues (up to
        ``max_cycles``) until all of them drain.  ``max_cycles`` may cut
        the window short (budget-capped runs); statistics then normalize
        by the cycles actually overlapping the window, not the nominal
        ``measure_cycles``.
    watchdog_cycles:
        Abort with :class:`SimulationError` if no flit moves for this
        many consecutive cycles while the network is non-empty -- a
        deadlock or a simulator bug, never expected.
    """

    flit_bits: int = 256
    vcs_per_port: int = 4
    #: Dimension-order routing mode: "xy" (the paper's choice), "yx",
    #: or "o1turn" (each packet randomly picks XY or YX; the VCs are
    #: split into two classes, one per order, preserving deadlock
    #: freedom).  O1TURN quantifies the paper's Section 4.2 remark that
    #: routing-algorithm choice barely matters at realistic loads.
    routing_mode: str = "xy"
    vc_depth_flits: int = 4
    normalize_buffer_bits: bool = True
    reference_ports: int = 5
    reference_flit_bits: int = 256
    router_stages: int = 3
    max_cycles: int = 100_000
    warmup_cycles: int = 1_000
    measure_cycles: int = 5_000
    watchdog_cycles: int = 10_000
    seed: int = 1

    def __post_init__(self) -> None:
        if self.flit_bits <= 0:
            raise ConfigurationError("flit_bits must be positive")
        if self.vcs_per_port <= 0:
            raise ConfigurationError("vcs_per_port must be positive")
        if self.vc_depth_flits < 2:
            raise ConfigurationError("vc_depth_flits must be >= 2")
        if self.router_stages < 1:
            raise ConfigurationError("router_stages must be >= 1")
        if self.max_cycles <= self.warmup_cycles:
            raise ConfigurationError("max_cycles must exceed warmup_cycles")
        if self.routing_mode not in ("xy", "yx", "o1turn"):
            raise ConfigurationError(
                f"routing_mode must be xy/yx/o1turn, got {self.routing_mode!r}"
            )
        if self.routing_mode == "o1turn" and self.vcs_per_port < 2:
            raise ConfigurationError("o1turn needs at least 2 VCs per port")

    def total_buffer_bits(self) -> int:
        """The equal-buffer budget every router receives."""
        return (
            self.reference_ports
            * self.vcs_per_port
            * self.vc_depth_flits
            * self.reference_flit_bits
        )

    def vc_depth_for_radix(self, radix: int) -> int:
        """Per-VC depth (flits) for a router with ``radix`` network ports.

        ``radix`` excludes the local NI port, which is added here.
        Without normalization this is just ``vc_depth_flits``.
        """
        if not self.normalize_buffer_bits:
            return self.vc_depth_flits
        ports = radix + 1  # + local injection port
        depth = self.total_buffer_bits() // (ports * self.vcs_per_port * self.flit_bits)
        return max(2, int(depth))
