"""The cycle loop: traffic generation, delivery, allocation, draining.

One simulated cycle proceeds in fixed phases:

1. the traffic generator offers new packets to the NIs (source queues),
2. link and credit pipelines deliver everything due this cycle,
3. NIs stream at most one flit each into their injection channels,
4. every router runs one round of VC/switch allocation.

Phase effects only become visible to other phases on later cycles
(pipelines add at least one cycle), so intra-cycle phase order cannot
create causality artifacts.

Two step engines share this protocol.  ``engine="reference"`` polls
every wire, NI and router each cycle; ``engine="active"`` (the
default) sweeps only the network's incrementally maintained active
sets (see :mod:`repro.sim.network`) and, when the whole fabric is
quiescent between injections, jumps the cycle counter straight to the
next cycle at which the traffic generator can possibly emit a packet
(``next_packet_cycle``).  Both engines visit components in the same
ascending order, so per-run summaries are byte-identical; the parity
tests assert this across routing modes.

The run ends when every packet created inside the measurement window
has been ejected, or at ``max_cycles`` (whichever first); a watchdog
aborts if the network holds flits -- or NIs hold backlog that can
never inject -- but nothing moves: the simulator's deadlock-freedom
assertion.
"""

from __future__ import annotations

import time

import numpy as np
from dataclasses import dataclass
from typing import Optional, Protocol

from repro.obs.instrument import Instrumentation, ensure_obs
from repro.routing.shortest_path import HopCostModel
from repro.routing.tables import RoutingTables
from repro.sim.config import SimConfig
from repro.sim.flit import Packet
from repro.sim.network import Network
from repro.sim.stats import LatencySummary, StatsCollector
from repro.topology.mesh import MeshTopology
from repro.util.errors import SimulationError

#: Upper bounds for the per-router buffer-occupancy histogram (flits).
BUFFER_OCCUPANCY_BUCKETS = (0, 2, 4, 8, 16, 32, 64, 128)


class TrafficProtocol(Protocol):
    """What the engine needs from a traffic generator."""

    def packets_for_cycle(self, cycle: int):
        """Yield ``(src, dst, size_bits)`` triples to inject this cycle."""
        ...  # pragma: no cover


@dataclass
class RunResult:
    """Summary plus run-health metadata."""

    summary: LatencySummary
    cycles_run: int
    drained: bool
    packets_created: int
    packets_done: int
    activity: dict
    #: Quiescent cycles the active engine fast-forwarded over (the
    #: reference engine always reports 0).  ``cycles_run`` includes
    #: them -- skipping changes wall-clock cost, never simulated time.
    cycles_skipped: int = 0


class Simulator:
    """Drives one :class:`Network` under one traffic generator."""

    def __init__(
        self,
        topology: MeshTopology,
        config: SimConfig,
        traffic: TrafficProtocol,
        tables: Optional[RoutingTables] = None,
        cost: Optional[HopCostModel] = None,
        check_invariants: bool = False,
        obs: Optional[Instrumentation] = None,
        metrics_every: int = 0,
        engine: str = "active",
    ):
        if engine not in ("active", "reference"):
            raise SimulationError(f"unknown step engine {engine!r}")
        self.topology = topology
        self.config = config
        self.traffic = traffic
        self.engine = engine
        cost = cost or HopCostModel()
        mode = config.routing_mode
        if tables is not None:
            tables_by_order = {tables.order: tables}
        elif mode == "o1turn":
            tables_by_order = {
                "xy": RoutingTables.build(topology, cost, "xy"),
                "yx": RoutingTables.build(topology, cost, "yx"),
            }
        else:
            tables_by_order = {mode: RoutingTables.build(topology, cost, mode)}
        if mode == "o1turn" and set(tables_by_order) != {"xy", "yx"}:
            raise SimulationError("o1turn needs routing tables for both orders")
        self.tables_by_order = tables_by_order
        # Primary tables (analysis helpers, zero-load cross-checks).
        self.tables = tables_by_order.get("xy") or next(iter(tables_by_order.values()))
        # The order stamped on packets in single-order modes.
        self._default_order = mode if mode in tables_by_order else next(
            iter(tables_by_order)
        )
        self._order_rng = np.random.default_rng(config.seed ^ 0x5EED)
        self.stats = StatsCollector(config.warmup_cycles, config.measure_cycles)
        self.network = Network(topology, tables_by_order, config, self.stats)
        self._next_pid = 0
        #: When set, conservation laws are re-verified every 64 cycles
        #: (used by the property tests; costs ~10% runtime).
        self.check_invariants = check_invariants
        #: Instrumentation (heartbeats, link utilization, occupancy
        #: histograms); the shared NULL instance when not observing.
        self.obs = ensure_obs(obs)
        #: Heartbeat period in cycles; 0 disables periodic emission.
        self.metrics_every = max(0, int(metrics_every))

    # ------------------------------------------------------------------
    def _inject(self, cycle: int) -> None:
        # Background load keeps being offered during drain so measured
        # packets finish under realistic contention; the run loop exits
        # once everything measured has completed.
        o1turn = self.config.routing_mode == "o1turn"
        for src, dst, size_bits in self.traffic.packets_for_cycle(cycle):
            packet = Packet(
                self._next_pid, src, dst, size_bits, self.config.flit_bits, cycle
            )
            if o1turn:
                packet.order = "xy" if self._order_rng.random() < 0.5 else "yx"
            else:
                packet.order = self._default_order
            self._next_pid += 1
            self.network.nis[src].enqueue(packet)

    def step(self, cycle: int) -> int:
        """Advance one cycle; return the number of flit movements."""
        if self.engine == "active":
            return self._step_active(cycle)
        return self._step_reference(cycle)

    def _step_reference(self, cycle: int) -> int:
        """Poll-everything step: visit every wire, NI and router."""
        self._inject(cycle)
        moved = self.network.deliver(cycle)
        for ni in self.network.nis:
            if ni.has_backlog():
                moved += ni.tick(cycle)
        moved += self.network.allocate(cycle)
        return moved

    def _step_active(self, cycle: int) -> int:
        """Active-set step: visit only components that can have work."""
        self._inject(cycle)
        net = self.network
        moved = net.deliver_active(cycle)
        moved += net.tick_nis_active(cycle)
        moved += net.allocate_active(cycle)
        return moved

    def run(self) -> RunResult:
        """Run to drain (or ``max_cycles``) and summarize."""
        cfg = self.config
        obs = self.obs
        net = self.network
        window_end = cfg.warmup_cycles + cfg.measure_cycles
        heartbeat = self.metrics_every if obs.enabled else 0
        # Idle-skipping needs exact active sets (only the active engine
        # maintains them) and a traffic generator that can bound its
        # next emission; periodic invariant checks and heartbeats must
        # observe every cycle, so either disables it.
        can_skip = (
            self.engine == "active"
            and not self.check_invariants
            and heartbeat == 0
        )
        next_packet_cycle = getattr(self.traffic, "next_packet_cycle", None)
        wall_start = time.perf_counter()
        idle_streak = 0
        cycles_skipped = 0
        cycle = 0
        next_cycle = 0
        while next_cycle < cfg.max_cycles:
            cycle = next_cycle
            moved = self.step(cycle)
            if self.check_invariants and cycle % 64 == 0:
                self._verify_invariants(cycle)
            if moved == 0 and (
                net.flits_in_flight() > 0 or net.ni_backlog() > 0
            ):
                # Nothing moved while work remains -- either flits are
                # wedged in the fabric or NI backlog can never inject
                # (e.g. a credit leak on an injection channel).  Both
                # are deadlocks the watchdog must catch; the in-flight
                # check alone is blind to the stuck-NI case.
                idle_streak += 1
                if idle_streak >= cfg.watchdog_cycles:
                    if obs.enabled:
                        obs.emit("sim.watchdog", cycle=cycle,
                                 flits_in_flight=net.flits_in_flight(),
                                 ni_backlog=net.ni_backlog(),
                                 idle_streak=idle_streak, aborted=True)
                    raise SimulationError(
                        f"watchdog: {net.flits_in_flight()} flits in flight, "
                        f"{net.ni_backlog()} packets backlogged, stuck "
                        f"for {idle_streak} cycles at cycle {cycle}"
                    )
            else:
                idle_streak = 0
            if heartbeat and cycle % heartbeat == 0:
                self._heartbeat(cycle, moved, idle_streak)
            if cycle >= window_end and self.stats.drained:
                break
            next_cycle = cycle + 1
            if (
                can_skip
                and moved == 0
                and next_packet_cycle is not None
                and net.is_idle()
                and not net.active_nis
            ):
                # Fully quiescent: no flit buffered or in flight, no
                # credit outstanding, no NI backlog.  Nothing can
                # happen until the traffic generator next emits, so
                # jump there.  Cap at ``window_end`` (where the drain
                # check can break) and ``max_cycles - 1`` (so truncated
                # runs report the same ``cycles_run`` as the reference
                # engine, which idles through those cycles one by one).
                nxt = next_packet_cycle(next_cycle)
                target = window_end if nxt is None else min(nxt, window_end)
                target = min(target, cfg.max_cycles - 1)
                if target > next_cycle:
                    cycles_skipped += target - next_cycle
                    next_cycle = target
        if obs.enabled:
            cycles_run = cycle + 1
            for entry in net.link_utilization(cycles_run):
                obs.emit("sim.link_util", cycle=cycle, **entry)
            obs.emit("sim.end", cycle=cycle, cycles_run=cycles_run,
                     cycles_skipped=cycles_skipped,
                     drained=self.stats.drained,
                     packets_created=self.stats.created_total,
                     packets_done=self.stats.done_total)
        if not obs.is_null:
            m = obs.metrics
            m.counter("sim.cycles").inc(cycle + 1)
            m.counter("sim.cycles_skipped").inc(cycles_skipped)
            m.counter("sim.packets_created").inc(self.stats.created_total)
            m.counter("sim.packets_done").inc(self.stats.done_total)
            if self.stats.measured:
                # Packet latencies are deterministic cycle counts, so
                # the streaming quantile digest is replay-stable and
                # belongs in the ledger's deterministic summary.
                q = m.quantile("sim.packet_latency")
                for pkt in self.stats.measured:
                    q.observe(pkt.network_latency)
            # Wall-derived: excluded from the deterministic summary.
            m.meter("sim.cycle_rate").add(
                cycle + 1, time.perf_counter() - wall_start
            )
        return RunResult(
            summary=self.stats.summary(cycle + 1),
            cycles_run=cycle + 1,
            drained=self.stats.drained,
            packets_created=self.stats.created_total,
            packets_done=self.stats.done_total,
            activity=net.activity_counters(),
            cycles_skipped=cycles_skipped,
        )

    def _heartbeat(self, cycle: int, moved: int, idle_streak: int) -> None:
        """Emit one periodic health sample (the simulator's pulse).

        Carries the numbers needed to watch congestion build: flits in
        flight, NI source-queue backlog, flit movements this cycle and
        the watchdog's idle streak.  Buffer occupancies additionally
        feed a per-router histogram in the metrics registry.
        """
        obs = self.obs
        in_flight = self.network.flits_in_flight()
        backlog = self.network.ni_backlog()
        obs.emit("sim.heartbeat", cycle=cycle,
                 flits_in_flight=in_flight, ni_backlog=backlog,
                 moved=moved, idle_streak=idle_streak,
                 packets_done=self.stats.done_total)
        m = obs.metrics
        m.gauge("sim.flits_in_flight").set(in_flight)
        m.gauge("sim.ni_backlog").set(backlog)
        hist = m.histogram("sim.buffer_occupancy", BUFFER_OCCUPANCY_BUCKETS)
        for occupancy in self.network.buffer_occupancies():
            hist.observe(occupancy)

    def _verify_invariants(self, cycle: int) -> None:
        """Conservation laws that must hold at every instant.

        * credits never negative nor above the receiving buffer depth,
        * no input VC holds more flits than its depth.

        Violations are simulator bugs, surfaced as
        :class:`SimulationError` with the offending cycle.
        """
        if not self.network.credit_invariant_ok():
            raise SimulationError(f"credit bound violated at cycle {cycle}")
        for router in self.network.routers:
            for port in router.in_ports.values():
                for vc in port.vcs:
                    if len(vc) > port.depth:
                        raise SimulationError(
                            f"VC overflow at router {router.node}, cycle {cycle}: "
                            f"{len(vc)} flits in a depth-{port.depth} buffer"
                        )
