"""Packets and flits -- the units of the wormhole network.

A packet of ``S`` bits is serialized into ``ceil(S / b)`` flits at link
width ``b``.  The head flit carries the route; body flits follow the
worm; the tail flit releases the virtual-channel allocation.  Objects
use ``__slots__``: at saturation thousands of flits are live at once
and attribute-dict overhead would dominate the simulator's footprint.
"""

from __future__ import annotations

import math


class Packet:
    """One network packet and its lifetime timestamps (in cycles)."""

    __slots__ = (
        "pid",
        "src",
        "dst",
        "size_bits",
        "num_flits",
        "created",
        "injected",
        "head_ejected",
        "tail_ejected",
        "order",
    )

    def __init__(self, pid: int, src: int, dst: int, size_bits: int, flit_bits: int, created: int):
        self.pid = pid
        self.src = src
        self.dst = dst
        self.size_bits = size_bits
        self.num_flits = max(1, math.ceil(size_bits / flit_bits))
        self.created = created
        self.injected = -1
        self.head_ejected = -1
        self.tail_ejected = -1
        # Dimension order this packet routes with: "xy" or "yx".  Under
        # O1TURN each packet picks one at injection; the VC class it may
        # occupy is tied to this choice (deadlock freedom per class).
        self.order = "xy"

    # Latency views (valid once tail_ejected >= 0) -------------------
    @property
    def network_latency(self) -> int:
        """Head-enters-network to tail-ejected (the paper's metric)."""
        return self.tail_ejected - self.injected

    @property
    def total_latency(self) -> int:
        """Creation (incl. source queueing) to tail-ejected."""
        return self.tail_ejected - self.created

    @property
    def head_latency(self) -> int:
        """Head-enters-network to head-ejected (measured ``L_D``)."""
        return self.head_ejected - self.injected

    @property
    def serialization_latency(self) -> int:
        """Tail-after-head at the destination (measured ``L_S``)."""
        return self.tail_ejected - self.head_ejected

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Packet({self.pid}, {self.src}->{self.dst}, {self.num_flits}f)"


class Flit:
    """One flow-control unit of a packet."""

    __slots__ = ("packet", "index", "is_head", "is_tail", "ready_at")

    def __init__(self, packet: Packet, index: int):
        self.packet = packet
        self.index = index
        self.is_head = index == 0
        self.is_tail = index == packet.num_flits - 1
        # Cycle at which the flit became readable in its current buffer.
        self.ready_at = -1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "H" if self.is_head else ("T" if self.is_tail else "B")
        return f"Flit({self.packet.pid}.{self.index}{kind})"


def make_flits(packet: Packet) -> list:
    """All flits of ``packet`` in transmission order."""
    return [Flit(packet, i) for i in range(packet.num_flits)]
