"""Network interfaces: packetization, injection, and ejection endpoints.

The NI owns the injection channel into its router's local input port
(zero-length link, credit flow-controlled like any other channel) and
consumes ejected flits at link rate.  Source queueing happens here: a
packet waits in the NI queue until a free injection VC with credit is
available, then streams one flit per cycle -- so measured network
latency starts when the head flit actually enters the router
(``Packet.injected``), while ``Packet.created`` additionally captures
the source queue time.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.sim.flit import Flit, Packet, make_flits
from repro.sim.router import OutputChannel, Router


class NetworkInterface:
    """One per node: injects packets into and ejects flits from a router."""

    __slots__ = (
        "node",
        "router",
        "channel",
        "queue",
        "current_flits",
        "current_index",
        "current_vc",
        "stats",
        "vc_class",
        "packets_queued",
        "flits_injected",
        "wake",
    )

    def __init__(
        self,
        node: int,
        router: Router,
        channel: OutputChannel,
        stats,
        vc_class: "dict | None" = None,
    ) -> None:
        self.node = node
        self.router = router
        self.channel = channel  # NI -> router injection channel
        self.queue: Deque[Packet] = deque()
        self.current_flits: Optional[List[Flit]] = None
        self.current_index = 0
        self.current_vc: Optional[int] = None
        self.stats = stats
        # order -> (lo, hi) injection-VC range (the O1TURN class split).
        self.vc_class = vc_class or {}
        self.packets_queued = 0
        self.flits_injected = 0
        # Active-NI set (shared with the Network); enqueue adds this
        # node so the engine's injection sweep can skip idle NIs.
        self.wake: "set | None" = None
        router.eject_sink = self._on_eject

    # ------------------------------------------------------------------
    def enqueue(self, packet: Packet) -> None:
        """Accept a freshly generated packet into the source queue."""
        self.queue.append(packet)
        self.packets_queued += 1
        if self.wake is not None:
            self.wake.add(self.node)
        if self.stats is not None:
            self.stats.packet_created(packet)

    def has_backlog(self) -> bool:
        return bool(self.queue) or self.current_flits is not None

    # ------------------------------------------------------------------
    def tick(self, cycle: int) -> int:
        """Advance injection by up to one flit; return flits injected."""
        self.channel.drain_credits(cycle)
        if self.current_flits is None:
            if not self.queue:
                return 0
            lo, hi = self.vc_class.get(self.queue[0].order, (0, None))
            vc = self.channel.free_vc_with_credit(lo, hi)
            if vc is None:
                return 0
            packet = self.queue.popleft()
            packet.injected = cycle
            self.current_flits = make_flits(packet)
            self.current_index = 0
            self.current_vc = vc
            self.channel.vc_busy[vc] = packet.pid

        vc = self.current_vc
        assert vc is not None
        if self.channel.credits[vc] <= 0:
            return 0
        flit = self.current_flits[self.current_index]
        self.channel.credits[vc] -= 1
        self.channel.link.send(cycle, flit, vc)
        self.channel.flits_sent += 1
        self.flits_injected += 1
        self.current_index += 1
        if flit.is_tail:
            self.channel.vc_busy[vc] = None
            self.current_flits = None
            self.current_vc = None
        return 1

    # ------------------------------------------------------------------
    def _on_eject(self, flit: Flit, cycle: int) -> None:
        packet = flit.packet
        if flit.is_head:
            packet.head_ejected = cycle
        if flit.is_tail:
            packet.tail_ejected = cycle
            if self.stats is not None:
                self.stats.packet_done(packet)
