"""Pipelined links and credit return channels.

Express links are segmented by repeaters (Section 2.2 / [20]): a link
of Manhattan length ``L`` has ``L`` cycles of traversal latency but
sustains one flit per cycle -- it behaves as an ``L``-deep pipeline,
not a blocking resource.  Credits ride an identical reverse pipeline.

Both pipelines are modeled as deques of ``(ready_cycle, payload)``
pairs; entries are appended in increasing ``ready_cycle`` order (one
insertion per cycle at the upstream end), so delivery pops from the
left only.

Each pipeline optionally carries an ``on_activity`` callback, invoked
on every :meth:`send`.  The active-set engine
(:meth:`repro.sim.network.Network.deliver_active`) uses it to mark the
owning wire live the instant anything enters either direction, so the
hot delivery loop only ever visits wires that can possibly have work.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Tuple

from repro.sim.flit import Flit


class LinkPipeline:
    """A unidirectional flit pipeline of fixed latency."""

    __slots__ = ("latency", "_queue", "on_activity")

    def __init__(self, latency: int):
        if latency < 0:
            raise ValueError("link latency must be nonnegative")
        self.latency = latency
        self._queue: Deque[Tuple[int, Flit, int]] = deque()
        self.on_activity = None

    def send(self, cycle: int, flit: Flit, vc: int) -> None:
        """Launch ``flit`` toward downstream VC ``vc`` at ``cycle`` (ST time)."""
        self._queue.append((cycle + 1 + self.latency, flit, vc))
        if self.on_activity is not None:
            self.on_activity()

    def deliver(self, cycle: int) -> List[Tuple[Flit, int]]:
        """Pop every flit whose traversal completes by ``cycle``."""
        out: List[Tuple[Flit, int]] = []
        q = self._queue
        while q and q[0][0] <= cycle:
            _, flit, vc = q.popleft()
            out.append((flit, vc))
        return out

    def vc_occupancy(self, num_vcs: int) -> List[int]:
        """In-flight flit count per destination VC (conservation checks)."""
        counts = [0] * num_vcs
        for _, _, vc in self._queue:
            counts[vc] += 1
        return counts

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def occupancy(self) -> int:
        """Flits currently in flight on this link."""
        return len(self._queue)


class CreditPipeline:
    """The reverse channel carrying per-VC credits upstream."""

    __slots__ = ("latency", "_queue", "on_activity")

    def __init__(self, latency: int):
        self.latency = latency
        self._queue: Deque[Tuple[int, int]] = deque()
        self.on_activity = None

    def send(self, cycle: int, vc: int) -> None:
        self._queue.append((cycle + 1 + self.latency, vc))
        if self.on_activity is not None:
            self.on_activity()

    def deliver(self, cycle: int) -> List[int]:
        out: List[int] = []
        q = self._queue
        while q and q[0][0] <= cycle:
            out.append(q.popleft()[1])
        return out

    def vc_counts(self, num_vcs: int) -> List[int]:
        """Returning-credit count per VC (conservation checks)."""
        counts = [0] * num_vcs
        for _, vc in self._queue:
            counts[vc] += 1
        return counts

    def __len__(self) -> int:
        return len(self._queue)
