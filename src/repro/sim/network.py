"""Network assembly: topology + routing tables -> routers, links, NIs.

Builds one :class:`~repro.sim.router.Router` per node, one directed
channel pair per topology link (flit pipeline downstream, credit
pipeline upstream), a zero-length injection channel per node, and the
ejection path.  Route lookups are precomputed into flat per-router
``dst -> output`` dictionaries so the hot allocation loop never touches
the table machinery.

Active-set scheduling: alongside the poll-everything :meth:`deliver` /
:meth:`allocate` reference pair, the network maintains three incremental
active sets -- wires with a non-empty flit or credit pipeline, routers
holding buffered flits, NIs with injection backlog.  They are updated at
the moment state changes (pipeline ``send`` hooks, flit arrival, NI
enqueue) and self-clean when a component drains, so the active variants
:meth:`deliver_active` / :meth:`allocate_active` visit only components
that can possibly have work.  Both variants iterate their sets in
ascending index order -- the same order the reference loops visit
components -- so every stateful effect (including the float-summation
order of the stats) is byte-identical to the reference engine.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.routing.tables import RoutingTables
from repro.sim.buffers import InputPort
from repro.sim.config import SimConfig
from repro.sim.interface import NetworkInterface
from repro.sim.router import EJECT, OutputChannel, Router
from repro.sim.stats import StatsCollector
from repro.topology.mesh import MeshTopology


class Network:
    """All simulator state for one topology."""

    def __init__(
        self,
        topology: MeshTopology,
        tables: "RoutingTables | Dict[str, RoutingTables]",
        config: SimConfig,
        stats: StatsCollector,
    ):
        self.topology = topology
        self.config = config
        if isinstance(tables, RoutingTables):
            tables_by_order = {tables.order: tables}
        else:
            tables_by_order = dict(tables)
        self.tables_by_order = tables_by_order
        # VC classes: O1TURN splits the VCs between the two orders;
        # single-order modes use the full range.
        if config.routing_mode == "o1turn":
            half = config.vcs_per_port // 2
            vc_class = {"xy": (0, half), "yx": (half, config.vcs_per_port)}
        else:
            vc_class = {order: (0, config.vcs_per_port) for order in tables_by_order}
        self.routers: List[Router] = [Router(v) for v in range(topology.num_nodes)]
        # (output_channel, downstream_router, downstream_port_key)
        self._wires: List[Tuple[OutputChannel, Router, int]] = []
        self.nis: List[NetworkInterface] = []
        # Active sets for the incremental engine (see module docstring).
        self.active_wires: set = set()
        self.active_routers: set = set()
        self.active_nis: set = set()

        num_vcs = config.vcs_per_port
        depth_at = [
            config.vc_depth_for_radix(topology.radix(v)) for v in range(topology.num_nodes)
        ]

        for a, b, _dim in topology.channels():
            length = topology.channel_length(a, b)
            for up, down in ((a, b), (b, a)):
                out = OutputChannel(down, length, num_vcs, depth_at[down])
                port = InputPort(num_vcs, depth_at[down])
                self.routers[up].add_output(down, out)
                self.routers[down].add_input(up, port, out.credit_pipe)
                self._register_wire(out, self.routers[down], up)

        for v in range(topology.num_nodes):
            router = self.routers[v]
            router.vc_class = dict(vc_class)
            # Ejection pseudo-output (no channel object needed).
            router.output_order.append(EJECT)
            # Injection channel: NI -> router local port, zero length.
            inj = OutputChannel(v, 0, num_vcs, depth_at[v])
            port = InputPort(num_vcs, depth_at[v])
            router.add_input(v, port, inj.credit_pipe)
            self._register_wire(inj, router, v)
            ni = NetworkInterface(v, router, inj, stats, vc_class=vc_class)
            ni.wake = self.active_nis
            self.nis.append(ni)
            # Precompute route lookups, one table per dimension order.
            for order, order_tables in tables_by_order.items():
                table = {}
                for dst in range(topology.num_nodes):
                    table[dst] = EJECT if dst == v else order_tables.next_hop(v, dst)
                router.route_tables[order] = table

    def _register_wire(self, out: OutputChannel, down_router: Router, port_key: int) -> None:
        """Track one directed wire and hook its pipelines into the active set."""
        index = len(self._wires)
        self._wires.append((out, down_router, port_key))
        active = self.active_wires

        def wake(idx=index, active=active):
            active.add(idx)

        out.link.on_activity = wake
        out.credit_pipe.on_activity = wake

    # ------------------------------------------------------------------
    def deliver(self, cycle: int) -> int:
        """Move flits/credits whose pipeline latency expired; return count.

        The poll-everything reference path: visits every wire.  Still
        maintains the router active set so the two engine variants can
        be mixed within one run (tests do this when flushing).
        """
        moved = 0
        for out, down_router, port_key in self._wires:
            out.drain_credits(cycle)
            arrivals = out.link.deliver(cycle)
            if arrivals:
                port = down_router.in_ports[port_key]
                for flit, vc in arrivals:
                    port.vcs[vc].push(flit, cycle)
                    down_router.buffer_writes += 1
                moved += len(arrivals)
                self.active_routers.add(down_router.node)
        return moved

    def deliver_active(self, cycle: int) -> int:
        """:meth:`deliver`, visiting only wires with a non-empty pipeline.

        Wires enter the set via the pipeline ``send`` hooks and leave it
        here once both directions drained; routers receiving flits are
        marked active for the allocation phase.  Iteration is in
        ascending wire index -- the reference loop's order.
        """
        if not self.active_wires:
            return 0
        moved = 0
        for idx in sorted(self.active_wires):
            out, down_router, port_key = self._wires[idx]
            out.drain_credits(cycle)
            arrivals = out.link.deliver(cycle)
            if arrivals:
                port = down_router.in_ports[port_key]
                for flit, vc in arrivals:
                    port.vcs[vc].push(flit, cycle)
                    down_router.buffer_writes += 1
                moved += len(arrivals)
                self.active_routers.add(down_router.node)
            if not out.link._queue and not out.credit_pipe._queue:
                self.active_wires.discard(idx)
        return moved

    def allocate(self, cycle: int) -> int:
        """Run every router's allocator; return flits granted."""
        moved = 0
        for router in self.routers:
            if router.has_traffic():
                moved += router.allocate(cycle)
        return moved

    def allocate_active(self, cycle: int) -> int:
        """:meth:`allocate`, visiting only routers holding buffered flits.

        Routers are marked by flit arrivals (``deliver_active`` /
        ``deliver``) and self-deactivate once their input buffers empty.
        Ascending node order matches the reference loop, so packet
        completions -- and therefore the stats' float-summation order --
        are identical.
        """
        if not self.active_routers:
            return 0
        moved = 0
        for node in sorted(self.active_routers):
            router = self.routers[node]
            if router.has_traffic():
                moved += router.allocate(cycle)
            if not router.has_traffic():
                self.active_routers.discard(node)
        return moved

    def tick_nis_active(self, cycle: int) -> int:
        """Advance injection for every NI with backlog; return flits.

        NIs enter :attr:`active_nis` when a packet is enqueued (the
        ``wake`` hook) and leave once their source queue and in-progress
        packet are gone.  Ascending node order matches the reference
        engine's NI loop.
        """
        if not self.active_nis:
            return 0
        moved = 0
        for node in sorted(self.active_nis):
            ni = self.nis[node]
            moved += ni.tick(cycle)
            if not ni.has_backlog():
                self.active_nis.discard(node)
        return moved

    def is_idle(self) -> bool:
        """No flit buffered, in flight, or credit outstanding anywhere.

        Constant-time via the active sets: every wire with pipeline
        content and every router with buffered flits is in its set (the
        sets only over-approximate, and only until the next active
        sweep).  NI backlog is tracked separately via
        :attr:`active_nis`.
        """
        return not self.active_wires and not self.active_routers

    # ------------------------------------------------------------------
    def flits_in_flight(self) -> int:
        """Flits buffered or on links (conservation-law checks)."""
        count = 0
        for router in self.routers:
            for port in router.in_ports.values():
                count += port.occupancy()
        for out, _, _ in self._wires:
            count += out.link.occupancy
        return count

    def credit_invariant_ok(self) -> bool:
        """Per-VC credit conservation: the law, not just the bounds.

        For every directed wire and every VC, the buffer slots of the
        downstream VC are all accounted for at any inter-phase instant:

        ``credits at the sender + flits in flight on the link + flits
        buffered downstream + credits returning upstream == depth``

        (with each term also individually within ``[0, depth]``).  The
        earlier form of this check only verified ``0 <= credit <=
        depth``, which a lost or duplicated credit can satisfy for a
        long time while the worm scheduler silently degrades.
        """
        for out, down_router, port_key in self._wires:
            port = down_router.in_ports[port_key]
            num_vcs = len(out.credits)
            in_flight = out.link.vc_occupancy(num_vcs)
            returning = out.credit_pipe.vc_counts(num_vcs)
            for v, credit in enumerate(out.credits):
                if credit < 0 or credit > port.depth:
                    return False
                total = credit + in_flight[v] + len(port.vcs[v]) + returning[v]
                if total != port.depth:
                    return False
        return True

    def ni_backlog(self) -> int:
        """Packets queued or mid-injection at the NIs.

        Includes the packet currently streaming flits into the network
        (``current_flits``): a worm blocked half-injected with no credit
        return is exactly the stall the watchdog must see.
        """
        return sum(
            len(ni.queue) + (ni.current_flits is not None) for ni in self.nis
        )

    def buffer_occupancies(self) -> List[int]:
        """Per-router total input-buffer occupancy (histogram samples)."""
        return [
            sum(port.occupancy() for port in router.in_ports.values())
            for router in self.routers
        ]

    def link_utilization(self, cycles: int) -> List[Dict]:
        """Per-directed-link flit counts and utilization (flits/cycle).

        Covers router-to-router channels only (injection channels are
        reported through the NI counters); links that never carried a
        flit are omitted.
        """
        cycles = max(cycles, 1)
        out: List[Dict] = []
        for router in self.routers:
            for dest, channel in router.outputs.items():
                if channel.flits_sent:
                    out.append({
                        "link": f"{router.node}->{dest}",
                        "flits": channel.flits_sent,
                        "utilization": channel.flits_sent / cycles,
                    })
        return out

    def activity_counters(self) -> Dict[str, int]:
        """Aggregate activity for the power model."""
        return {
            "buffer_writes": sum(r.buffer_writes for r in self.routers),
            "buffer_reads": sum(r.buffer_reads for r in self.routers),
            "crossbar_traversals": sum(r.crossbar_traversals for r in self.routers),
            "link_flit_hops": sum(
                out.flits_sent * max(out.link.latency, 1)
                for r in self.routers
                for out in r.outputs.values()
            ),
        }
