"""Network assembly: topology + routing tables -> routers, links, NIs.

Builds one :class:`~repro.sim.router.Router` per node, one directed
channel pair per topology link (flit pipeline downstream, credit
pipeline upstream), a zero-length injection channel per node, and the
ejection path.  Route lookups are precomputed into flat per-router
``dst -> output`` dictionaries so the hot allocation loop never touches
the table machinery.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.routing.tables import RoutingTables
from repro.sim.buffers import InputPort
from repro.sim.config import SimConfig
from repro.sim.interface import NetworkInterface
from repro.sim.router import EJECT, OutputChannel, Router
from repro.sim.stats import StatsCollector
from repro.topology.mesh import MeshTopology


class Network:
    """All simulator state for one topology."""

    def __init__(
        self,
        topology: MeshTopology,
        tables: "RoutingTables | Dict[str, RoutingTables]",
        config: SimConfig,
        stats: StatsCollector,
    ):
        self.topology = topology
        self.config = config
        if isinstance(tables, RoutingTables):
            tables_by_order = {tables.order: tables}
        else:
            tables_by_order = dict(tables)
        self.tables_by_order = tables_by_order
        # VC classes: O1TURN splits the VCs between the two orders;
        # single-order modes use the full range.
        if config.routing_mode == "o1turn":
            half = config.vcs_per_port // 2
            vc_class = {"xy": (0, half), "yx": (half, config.vcs_per_port)}
        else:
            vc_class = {order: (0, config.vcs_per_port) for order in tables_by_order}
        self.routers: List[Router] = [Router(v) for v in range(topology.num_nodes)]
        # (output_channel, downstream_router, downstream_port_key)
        self._wires: List[Tuple[OutputChannel, Router, int]] = []
        self.nis: List[NetworkInterface] = []

        num_vcs = config.vcs_per_port
        depth_at = [
            config.vc_depth_for_radix(topology.radix(v)) for v in range(topology.num_nodes)
        ]

        for a, b, _dim in topology.channels():
            length = topology.channel_length(a, b)
            for up, down in ((a, b), (b, a)):
                out = OutputChannel(down, length, num_vcs, depth_at[down])
                port = InputPort(num_vcs, depth_at[down])
                self.routers[up].add_output(down, out)
                self.routers[down].add_input(up, port, out.credit_pipe)
                self._wires.append((out, self.routers[down], up))

        for v in range(topology.num_nodes):
            router = self.routers[v]
            router.vc_class = dict(vc_class)
            # Ejection pseudo-output (no channel object needed).
            router.output_order.append(EJECT)
            # Injection channel: NI -> router local port, zero length.
            inj = OutputChannel(v, 0, num_vcs, depth_at[v])
            port = InputPort(num_vcs, depth_at[v])
            router.add_input(v, port, inj.credit_pipe)
            self._wires.append((inj, router, v))
            self.nis.append(
                NetworkInterface(v, router, inj, stats, vc_class=vc_class)
            )
            # Precompute route lookups, one table per dimension order.
            for order, order_tables in tables_by_order.items():
                table = {}
                for dst in range(topology.num_nodes):
                    table[dst] = EJECT if dst == v else order_tables.next_hop(v, dst)
                router.route_tables[order] = table

    # ------------------------------------------------------------------
    def deliver(self, cycle: int) -> int:
        """Move flits/credits whose pipeline latency expired; return count."""
        moved = 0
        for out, down_router, port_key in self._wires:
            out.drain_credits(cycle)
            arrivals = out.link.deliver(cycle)
            if arrivals:
                port = down_router.in_ports[port_key]
                for flit, vc in arrivals:
                    port.vcs[vc].push(flit, cycle)
                    down_router.buffer_writes += 1
                moved += len(arrivals)
        return moved

    def allocate(self, cycle: int) -> int:
        """Run every router's allocator; return flits granted."""
        moved = 0
        for router in self.routers:
            if router.has_traffic():
                moved += router.allocate(cycle)
        return moved

    # ------------------------------------------------------------------
    def flits_in_flight(self) -> int:
        """Flits buffered or on links (conservation-law checks)."""
        count = 0
        for router in self.routers:
            for port in router.in_ports.values():
                count += port.occupancy()
        for out, _, _ in self._wires:
            count += out.link.occupancy
        return count

    def credit_invariant_ok(self) -> bool:
        """Credits + occupancy + in-flight must never exceed buffer depth."""
        for out, down_router, port_key in self._wires:
            port = down_router.in_ports[port_key]
            for v, credit in enumerate(out.credits):
                if credit < 0 or credit > port.depth:
                    return False
        return True

    def ni_backlog(self) -> int:
        """Packets waiting in source queues across all NIs."""
        return sum(len(ni.queue) for ni in self.nis)

    def buffer_occupancies(self) -> List[int]:
        """Per-router total input-buffer occupancy (histogram samples)."""
        return [
            sum(port.occupancy() for port in router.in_ports.values())
            for router in self.routers
        ]

    def link_utilization(self, cycles: int) -> List[Dict]:
        """Per-directed-link flit counts and utilization (flits/cycle).

        Covers router-to-router channels only (injection channels are
        reported through the NI counters); links that never carried a
        flit are omitted.
        """
        cycles = max(cycles, 1)
        out: List[Dict] = []
        for router in self.routers:
            for dest, channel in router.outputs.items():
                if channel.flits_sent:
                    out.append({
                        "link": f"{router.node}->{dest}",
                        "flits": channel.flits_sent,
                        "utilization": channel.flits_sent / cycles,
                    })
        return out

    def activity_counters(self) -> Dict[str, int]:
        """Aggregate activity for the power model."""
        return {
            "buffer_writes": sum(r.buffer_writes for r in self.routers),
            "buffer_reads": sum(r.buffer_reads for r in self.routers),
            "crossbar_traversals": sum(r.crossbar_traversals for r in self.routers),
            "link_flit_hops": sum(
                out.flits_sent * max(out.link.latency, 1)
                for r in self.routers
                for out in r.outputs.values()
            ),
        }
