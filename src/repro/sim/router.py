"""The 3-stage credit-based wormhole router (Section 4.5.2, Figure 3).

Pipeline timing (matching ``Tr = 3`` of the analytical model): a flit
readable in an input VC at cycle ``t`` undergoes buffer write + route
computation conceptually at ``t``, competes in VC/switch allocation
from ``t + 1``, and on a grant at cycle ``s`` traverses the switch at
``s + 1`` and then the link for ``len`` cycles -- arriving readable at
the next router at ``s + 2 + len``.  An uncontended hop therefore costs
``3 + len`` cycles, exactly ``Tr + len * Tl``.

Allocation is a separable two-constraint arbitration: at most one grant
per output channel and one per input port per cycle, with round-robin
priority per output.  Virtual-channel allocation is folded into switch
allocation: a head flit wins only if a free downstream VC with an
available credit exists (non-atomic VC reuse -- the VC is released when
the tail flit is sent, which is safe because worms on one VC stay
contiguous and drain in order).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.buffers import InputPort
from repro.sim.flit import Flit
from repro.sim.link import CreditPipeline, LinkPipeline

#: Output-channel key for local ejection.
EJECT = -1


class OutputChannel:
    """A router's view of one outgoing directed channel."""

    __slots__ = ("dest", "link", "credit_pipe", "credits", "vc_busy", "rr", "flits_sent")

    def __init__(self, dest: int, length: int, num_vcs: int, downstream_depth: int):
        self.dest = dest
        self.link = LinkPipeline(length)
        self.credit_pipe = CreditPipeline(length)
        self.credits = [downstream_depth] * num_vcs
        self.vc_busy: List[Optional[int]] = [None] * num_vcs
        self.rr = 0
        self.flits_sent = 0

    def free_vc_with_credit(self, lo: int = 0, hi: Optional[int] = None) -> Optional[int]:
        """Lowest-index downstream VC in ``[lo, hi)`` that is free with room.

        The range restricts allocation to one VC class; O1TURN packets
        may only occupy the class matching their dimension order.
        """
        hi = len(self.vc_busy) if hi is None else hi
        for v in range(lo, hi):
            if self.vc_busy[v] is None and self.credits[v] > 0:
                return v
        return None

    def drain_credits(self, cycle: int) -> None:
        for vc in self.credit_pipe.deliver(cycle):
            self.credits[vc] += 1


class Router:
    """One network router: input ports, output channels, allocator."""

    __slots__ = (
        "node",
        "in_ports",
        "in_port_order",
        "outputs",
        "output_order",
        "route_tables",
        "vc_class",
        "credit_sinks",
        "eject_sink",
        "eject_rr",
        "flits_routed",
        "buffer_writes",
        "buffer_reads",
        "crossbar_traversals",
    )

    def __init__(self, node: int):
        self.node = node
        # key: upstream node id, or the router's own id for injection.
        self.in_ports: Dict[int, InputPort] = {}
        self.in_port_order: List[int] = []
        # key: downstream node id, or EJECT.
        self.outputs: Dict[int, OutputChannel] = {}
        self.output_order: List[int] = []
        # order ("xy"/"yx") -> {dst node -> output key}, precomputed
        # from the routing tables.
        self.route_tables: Dict[str, Dict[int, int]] = {}
        # order -> (lo, hi) VC index range packets of that order may
        # occupy downstream (O1TURN splits the VCs into two classes).
        self.vc_class: Dict[str, Tuple[int, int]] = {}
        # input-port key -> credit pipeline (or NI adapter) to notify
        # when a flit leaves that port's buffer.
        self.credit_sinks: Dict[int, CreditPipeline] = {}
        # callback(flit, cycle) for ejected flits.
        self.eject_sink: Optional[Callable[[Flit, int], None]] = None
        # Round-robin pointer for the ejection pseudo-output.  EJECT has
        # no OutputChannel (hence no ``out.rr``); without its own
        # pointer the lowest-keyed input port would win every cycle and
        # starve the others under ejection contention.
        self.eject_rr = 0
        # Activity counters for the power model.
        self.flits_routed = 0
        self.buffer_writes = 0
        self.buffer_reads = 0
        self.crossbar_traversals = 0

    # ------------------------------------------------------------------
    def add_input(self, key: int, port: InputPort, credit_sink: CreditPipeline) -> None:
        self.in_ports[key] = port
        self.in_port_order.append(key)
        self.credit_sinks[key] = credit_sink

    def add_output(self, key: int, channel: OutputChannel) -> None:
        self.outputs[key] = channel
        self.output_order.append(key)

    @property
    def radix(self) -> int:
        """Network ports (inputs excluding injection)."""
        return len(self.in_port_order) - (1 if self.node in self.in_ports else 0)

    def has_traffic(self) -> bool:
        return any(p.has_flits() for p in self.in_ports.values())

    # ------------------------------------------------------------------
    def allocate(self, cycle: int) -> int:
        """Run one cycle of VC/switch allocation; return flits moved."""
        # Gather requests per output channel.
        requests: Dict[int, List[Tuple[int, int]]] = {}
        for pkey in self.in_port_order:
            port = self.in_ports[pkey]
            for vci, vc in enumerate(port.vcs):
                flit = vc.front
                if flit is None or cycle < flit.ready_at + 1:
                    continue
                if vc.out_channel is None:
                    if not flit.is_head:  # pragma: no cover - invariant
                        raise RuntimeError("body flit at VC front without route state")
                    vc.out_channel = self.route_tables[flit.packet.order][flit.packet.dst]
                requests.setdefault(vc.out_channel, []).append((pkey, vci))

        moved = 0
        granted_inports: set = set()
        for out_key in self.output_order:
            reqs = requests.get(out_key)
            if not reqs:
                continue
            out = self.outputs[out_key] if out_key != EJECT else None
            num = len(reqs)
            rr = out.rr if out is not None else self.eject_rr
            for offset in range(num):
                pkey, vci = reqs[(offset + rr) % num]
                if pkey in granted_inports:
                    continue
                port = self.in_ports[pkey]
                vc = port.vcs[vci]
                flit = vc.front
                if out_key == EJECT:
                    self._grant_eject(cycle, pkey, vci, vc, flit)
                    granted_inports.add(pkey)
                    moved += 1
                    self.eject_rr += 1
                    break
                ovc = self._output_vc(out, vc, flit)
                if ovc is None:
                    continue
                self._grant(cycle, out, ovc, pkey, vci, vc, flit)
                granted_inports.add(pkey)
                moved += 1
                out.rr += 1
                break
        return moved

    # ------------------------------------------------------------------
    def _output_vc(self, out: OutputChannel, vc, flit: Flit) -> Optional[int]:
        """Downstream VC for this flit, or None if it must stall."""
        if flit.is_head and vc.out_vc is None:
            lo, hi = self.vc_class.get(flit.packet.order, (0, None))
            return out.free_vc_with_credit(lo, hi)
        ovc = vc.out_vc
        if ovc is None:  # pragma: no cover - invariant
            raise RuntimeError("body flit without an allocated output VC")
        return ovc if out.credits[ovc] > 0 else None

    def _grant(self, cycle, out: OutputChannel, ovc: int, pkey, vci, vc, flit: Flit) -> None:
        vc.pop()
        self.buffer_reads += 1
        self.crossbar_traversals += 1
        self.flits_routed += 1
        self.credit_sinks[pkey].send(cycle, vci)
        if flit.is_head:
            out.vc_busy[ovc] = flit.packet.pid
            vc.out_vc = ovc
        out.credits[ovc] -= 1
        out.link.send(cycle + 1, flit, ovc)  # ST at cycle+1, then LT
        out.flits_sent += 1
        if flit.is_tail:
            out.vc_busy[ovc] = None
            vc.reset_route()

    def _grant_eject(self, cycle, pkey, vci, vc, flit: Flit) -> None:
        vc.pop()
        self.buffer_reads += 1
        self.crossbar_traversals += 1
        self.flits_routed += 1
        self.credit_sinks[pkey].send(cycle, vci)
        if self.eject_sink is not None:
            self.eject_sink(flit, cycle + 1)  # consumed after ST
        if flit.is_tail:
            vc.reset_route()
