"""Measurement collection for simulation runs.

Statistics follow the standard warmup / measurement / drain protocol:
only packets *created* inside the measurement window count, and a run
is complete when all of them have been ejected.  Latency is reported
three ways matching the paper's decomposition: head latency (measured
``L_D``), serialization latency (measured ``L_S``), and full network
latency (head-injection to tail-ejection).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.sim.flit import Packet


@dataclass
class LatencySummary:
    """Aggregate latency / throughput numbers for one run."""

    packets: int
    avg_network_latency: float
    avg_head_latency: float
    avg_serialization_latency: float
    avg_total_latency: float
    max_network_latency: int
    #: Packets whose tail ejected *during* the measurement window,
    #: divided by the window length -- the accepted throughput.  Unlike
    #: per-created-packet accounting this saturates at the network's
    #: real capacity instead of tracking offered load.
    throughput_packets_per_cycle: float
    throughput_flits_per_cycle: float
    avg_hops: float = 0.0
    measured_cycles: int = 0


class StatsCollector:
    """Per-run packet bookkeeping and summary computation."""

    def __init__(self, warmup: int, measure: int):
        self.warmup = warmup
        self.measure = measure
        self.created_total = 0
        self.done_total = 0
        self.measured: List[Packet] = []
        self.pending_measured = 0
        self.flits_done = 0
        self.ejected_in_window = 0
        self.flits_ejected_in_window = 0

    # ------------------------------------------------------------------
    def in_window(self, cycle: int) -> bool:
        return self.warmup <= cycle < self.warmup + self.measure

    def packet_created(self, packet: Packet) -> None:
        self.created_total += 1
        if self.in_window(packet.created):
            self.pending_measured += 1

    def packet_done(self, packet: Packet) -> None:
        self.done_total += 1
        self.flits_done += packet.num_flits
        if self.in_window(packet.tail_ejected):
            self.ejected_in_window += 1
            self.flits_ejected_in_window += packet.num_flits
        if self.in_window(packet.created):
            self.measured.append(packet)
            self.pending_measured -= 1

    @property
    def drained(self) -> bool:
        """All measured-window packets have completed."""
        return self.pending_measured == 0

    # ------------------------------------------------------------------
    def window_cycles_run(self, cycles_run: Optional[int]) -> int:
        """Cycles of the measurement window the run actually covered.

        A run can stop at ``max_cycles`` before the window completes
        (``max_cycles < warmup + measure``); throughput must then be
        normalized by the window/run overlap, not the configured window
        length, or a truncated run silently under-reports accepted
        throughput and over-reports ``measured_cycles``.  ``None`` (no
        run-length information) assumes the full window, preserving the
        behavior for offline summaries built from packet lists alone.
        """
        if cycles_run is None:
            return self.measure
        return max(0, min(int(cycles_run), self.warmup + self.measure) - self.warmup)

    def summary(self, cycles_run: Optional[int] = None) -> LatencySummary:
        window = self.window_cycles_run(cycles_run)
        pkts = self.measured
        if not pkts:
            return LatencySummary(
                packets=0,
                avg_network_latency=float("nan"),
                avg_head_latency=float("nan"),
                avg_serialization_latency=float("nan"),
                avg_total_latency=float("nan"),
                max_network_latency=0,
                throughput_packets_per_cycle=0.0,
                throughput_flits_per_cycle=0.0,
                measured_cycles=window,
            )
        n = len(pkts)
        net = [p.network_latency for p in pkts]
        # A measured packet implies a window cycle ran, but guard the
        # denominator anyway (offline collectors can mix calls).
        denom = max(window, 1)
        return LatencySummary(
            packets=n,
            avg_network_latency=sum(net) / n,
            avg_head_latency=sum(p.head_latency for p in pkts) / n,
            avg_serialization_latency=sum(p.serialization_latency for p in pkts) / n,
            avg_total_latency=sum(p.total_latency for p in pkts) / n,
            max_network_latency=max(net),
            throughput_packets_per_cycle=self.ejected_in_window / denom,
            throughput_flits_per_cycle=self.flits_ejected_in_window / denom,
            measured_cycles=window,
        )
