"""Topology substrate: 1D row placements and 2D express meshes."""

from repro.topology.row import Link, RowPlacement, normalize_link
from repro.topology.mesh import Channel, MeshTopology
from repro.topology.flattened_butterfly import (
    flattened_butterfly,
    flattened_butterfly_row,
    hybrid_flattened_butterfly,
    hybrid_flattened_butterfly_row,
    required_link_limit,
)
from repro.topology.express_cube import (
    best_express_cube_row,
    express_cube,
    express_cube_row,
    hierarchical_express_cube_row,
)
from repro.topology.validate import audit_mesh, audit_row, check_connected

__all__ = [
    "Link",
    "RowPlacement",
    "normalize_link",
    "Channel",
    "MeshTopology",
    "flattened_butterfly",
    "flattened_butterfly_row",
    "hybrid_flattened_butterfly",
    "hybrid_flattened_butterfly_row",
    "required_link_limit",
    "best_express_cube_row",
    "express_cube",
    "express_cube_row",
    "hierarchical_express_cube_row",
    "audit_mesh",
    "audit_row",
    "check_connected",
]
