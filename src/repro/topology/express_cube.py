"""Express-cube style fixed placements (Dally [9], cited as prior work).

The paper positions itself against *fixed* express-link schemes; the
classic one is Dally's express cube: designate every ``k``-th router an
interchange and connect consecutive interchanges with express links of
length ``k``.  A hierarchical variant adds a second level of longer
links between every ``k^2``-th interchange.

These constructions give the library a second fixed-placement baseline
(besides the HFB) and make the paper's core argument testable: a
searched placement beats any of the fixed patterns it generalizes.
"""

from __future__ import annotations

from typing import Set, Tuple

from repro.topology.mesh import MeshTopology
from repro.topology.row import RowPlacement
from repro.util.errors import ConfigurationError


def express_cube_row(n: int, interval: int) -> RowPlacement:
    """One-level express cube row: links between every ``interval``-th router.

    Interchanges sit at positions ``0, k, 2k, ...``; consecutive
    interchanges are joined by a length-``k`` express link.  ``interval
    >= 2`` (an interval of 1 is the plain mesh).
    """
    if interval < 2:
        raise ConfigurationError(f"express interval must be >= 2, got {interval}")
    links: Set[Tuple[int, int]] = set()
    pos = 0
    while pos + interval <= n - 1:
        links.add((pos, pos + interval))
        pos += interval
    return RowPlacement(n, frozenset(links))


def hierarchical_express_cube_row(n: int, interval: int) -> RowPlacement:
    """Two-level express cube: level-1 links every ``k``, level-2 every ``k^2``."""
    base = express_cube_row(n, interval)
    links = set(base.express_links)
    jump = interval * interval
    pos = 0
    while pos + jump <= n - 1:
        links.add((pos, pos + jump))
        pos += jump
    return RowPlacement(n, frozenset(links))


def express_cube(n: int, interval: int, hierarchical: bool = False) -> MeshTopology:
    """The 2D express-cube topology (same row replicated per dimension)."""
    row = (
        hierarchical_express_cube_row(n, interval)
        if hierarchical
        else express_cube_row(n, interval)
    )
    return MeshTopology.uniform(row)


def best_express_cube_row(n: int, link_limit: int) -> RowPlacement:
    """The best express-cube interval that fits the cross-section limit.

    Fixed schemes still have a knob (the interval); this picks the one
    with the lowest all-pairs mean head latency among those satisfying
    ``C`` -- the strongest fixed-cube competitor for a fair comparison.
    """
    from repro.core.latency import mean_row_head_latency

    best: RowPlacement = RowPlacement.mesh(n)
    best_energy = mean_row_head_latency(best)
    for interval in range(2, n):
        for hier in (False, True):
            row = (
                hierarchical_express_cube_row(n, interval)
                if hier
                else express_cube_row(n, interval)
            )
            if not row.satisfies_limit(link_limit):
                continue
            energy = mean_row_head_latency(row)
            if energy < best_energy:
                best, best_energy = row, energy
    return best
