"""Flattened butterfly and hybrid flattened butterfly (HFB) baselines.

The paper compares against the *hybrid flattened butterfly* of Kim et
al. [17], which Section 5.1 describes (Figure 4): the network is divided
into four quadrants, each quadrant is a fully-connected 2D flattened
butterfly (all-to-all links within every quadrant row and quadrant
column), and the quadrants are joined by ordinary local mesh links along
the seams.

Under dimension-order routing this is exactly a per-row construction:
every row of an ``n x n`` HFB consists of two fully-connected halves of
``n/2`` routers bridged by the single local seam link -- so both
baselines are expressible as :class:`RowPlacement` objects and flow
through the same evaluation pipeline as the optimizer's solutions.

For ``n <= 4`` the HFB degenerates to the plain flattened butterfly
(one fully-connected quadrant spans the whole row), matching the
paper's remark that HFB exists to scale the flattened butterfly
*beyond* 4x4.
"""

from __future__ import annotations

from repro.topology.mesh import MeshTopology
from repro.topology.row import RowPlacement
from repro.util.errors import ConfigurationError


def flattened_butterfly_row(n: int) -> RowPlacement:
    """Fully-connected row: the 1D slice of a flattened butterfly."""
    return RowPlacement.fully_connected(n)


def hybrid_flattened_butterfly_row(n: int) -> RowPlacement:
    """One row of the hybrid flattened butterfly (Figure 4).

    Two fully-connected halves of ``n // 2`` routers joined by the local
    seam link.  ``n`` must be even for the quadrant split; for
    ``n <= 4`` the full flattened butterfly row is returned instead.
    """
    if n <= 4:
        return flattened_butterfly_row(n)
    if n % 2 != 0:
        raise ConfigurationError(f"HFB requires an even mesh side, got n={n}")
    half = n // 2
    links = set()
    for i in range(half):
        for j in range(i + 2, half):
            links.add((i, j))
    for i in range(half, n):
        for j in range(i + 2, n):
            links.add((i, j))
    return RowPlacement(n, frozenset(links))


def flattened_butterfly(n: int) -> MeshTopology:
    """Full 2D flattened butterfly: all-to-all per row and per column."""
    return MeshTopology.uniform(flattened_butterfly_row(n))


def hybrid_flattened_butterfly(n: int) -> MeshTopology:
    """The HFB baseline topology of Figure 4 as a 2D mesh object."""
    return MeshTopology.uniform(hybrid_flattened_butterfly_row(n))


def required_link_limit(placement: RowPlacement) -> int:
    """The smallest cross-section limit ``C`` that admits ``placement``.

    Fixed topologies like the HFB do not get to choose ``C``; their link
    width is dictated by their own worst cross-section (Eq. 3), which is
    what makes wide-flit meshes competitive with them on serialization
    latency.
    """
    return placement.max_cross_section()
