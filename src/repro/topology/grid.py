"""Mesh-level express placements beyond the replicated row.

The paper's reduction (Section 4.2) replicates one optimal
:class:`~repro.topology.row.RowPlacement` across every row and column.
This module drops that symmetry assumption and represents whole-mesh
designs whose rows may differ:

* :class:`HeteroPlacement` -- one independent row placement per mesh
  row, each row holding the *same* cross-section budget ``C`` the
  replicated design would have (the wiring tracks of a row are private
  to that row).
* :class:`Grid2DPlacement` -- arbitrary same-row horizontal chords on
  the full 2D mesh, constrained only by the *pooled* vertical-cut
  budget: every vertical cut of the chip carries at most ``n * C``
  links in total (``n`` locals plus ``n * (C - 1)`` express), i.e. the
  express tracks of a cut are shared between rows instead of
  partitioned ``C - 1`` per row.

Feasible sets nest: replicated ``subset of`` hetero ``subset of``
grid2d, so the exhaustive optima satisfy
``E(grid2d) <= E(hetero) <= E(row)`` (pinned by the golden suite).

Both classes share one canonical byte encoding
(:meth:`MeshRowsPlacement.canonical_bytes`): a one-byte space tag, the
mesh size, then each row's index and packed link bytes in the
vertical-mirror-folded orientation.  Row keys
(:meth:`~repro.topology.row.RowPlacement.canonical_bytes`) are packed
uint16 pairs and therefore always an *even* number of bytes; the space
tag makes every mesh key an *odd* number of bytes, so a hetero or
grid2d key can never collide with a row key in a shared memo cache --
and the distinct tags keep the two mesh spaces apart (the property
suite pins all three claims).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import ClassVar, Tuple

from repro.topology.row import RowPlacement
from repro.util.errors import InvalidPlacementError

Chord = Tuple[int, int, int]  # (row, i, j) with j >= i + 2


@dataclass(frozen=True)
class MeshRowsPlacement:
    """Base of the mesh-level spaces: a tuple of per-row placements.

    ``rows[r]`` is the horizontal (X-dimension) placement of mesh row
    ``r``; all rows share the mesh size ``n`` and there are exactly
    ``n`` of them (square meshes, as in the paper).  Subclasses differ
    only in their feasibility rule (:meth:`satisfies_limit`) and their
    canonical space tag.
    """

    n: int
    rows: Tuple[RowPlacement, ...] = field(default_factory=tuple)

    #: One-byte space tag prefixed to :meth:`canonical_bytes`.
    SPACE_TAG: ClassVar[bytes] = b"?"

    def __post_init__(self) -> None:
        if self.n < 2:
            raise InvalidPlacementError(
                f"a mesh needs at least 2 routers per side, got n={self.n}"
            )
        rows = tuple(self.rows)
        if len(rows) != self.n:
            raise InvalidPlacementError(
                f"need {self.n} row placements for an {self.n}x{self.n} "
                f"mesh, got {len(rows)}"
            )
        for r, row in enumerate(rows):
            if row.n != self.n:
                raise InvalidPlacementError(
                    f"row {r} has size {row.n}, mesh width is {self.n}"
                )
        object.__setattr__(self, "rows", rows)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def replicate(cls, row: RowPlacement) -> "MeshRowsPlacement":
        """Embed one row solution as the all-rows-equal mesh design.

        The image of the paper's 1D reduction inside this space; the
        reduction-parity suite prices it bit-identically to the
        :class:`~repro.core.latency.RowObjective` result.
        """
        return cls(n=row.n, rows=(row,) * row.n)

    @classmethod
    def mesh(cls, n: int) -> "MeshRowsPlacement":
        """The plain mesh: no express chords anywhere."""
        return cls.replicate(RowPlacement.mesh(n))

    @classmethod
    def from_chords(cls, n: int, chords) -> "MeshRowsPlacement":
        """Build from ``(row, i, j)`` chord triples."""
        by_row: list = [set() for _ in range(n)]
        for r, i, j in chords:
            if not 0 <= r < n:
                raise InvalidPlacementError(f"chord row {r} out of range for n={n}")
            by_row[r].add((i, j))
        return cls(n=n, rows=tuple(
            RowPlacement(n, frozenset(links)) for links in by_row
        ))

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def all_rows_equal(self) -> bool:
        """True when this design is a replicated-row embedding."""
        return all(row == self.rows[0] for row in self.rows[1:])

    def express_chords(self) -> Tuple[Chord, ...]:
        """All express chords as sorted ``(row, i, j)`` triples."""
        return tuple(sorted(
            (r, i, j)
            for r, row in enumerate(self.rows)
            for i, j in row.express_links
        ))

    def num_express_chords(self) -> int:
        return sum(len(row.express_links) for row in self.rows)

    def cross_section_totals(self) -> Tuple[int, ...]:
        """Total links at each vertical cut, summed over all rows.

        Cut ``k`` sits between columns ``k`` and ``k + 1``; every row
        contributes its own :meth:`RowPlacement.cross_section_counts`
        entry (1 local plus its express chords crossing the cut).
        """
        totals = [0] * (self.n - 1)
        for row in self.rows:
            for k, c in enumerate(row.cross_section_counts()):
                totals[k] += c
        return tuple(totals)

    def vertical_mirror(self) -> "MeshRowsPlacement":
        """Flip the mesh top-to-bottom (row order reversed).

        A symmetry of every row-wise objective: the multiset of rows is
        unchanged, so energies are identical and
        :meth:`canonical_bytes` folds the pair to one key.
        """
        return type(self)(n=self.n, rows=self.rows[::-1])

    def mirror_fold_rows(self) -> Tuple[RowPlacement, ...]:
        """The vertical-mirror-folded row order.

        The lexicographically smaller (by per-row canonical bytes) of
        the row tuple and its reversal -- the representative both a
        design and its vertical mirror map to.  Applying the fold twice
        is the same as applying it once (an involution, pinned by the
        property suite).
        """
        fwd = tuple(row.canonical_bytes() for row in self.rows)
        if fwd[::-1] < fwd:
            return self.rows[::-1]
        return self.rows

    def canonical_bytes(self) -> bytes:
        """Space-tagged canonical byte key (memo-safe across spaces).

        Layout: 1-byte space tag, ``n`` as uint16, then for each row of
        the vertical-mirror-folded orientation its row index (uint16)
        followed by its :meth:`RowPlacement.canonical_bytes`.  The
        leading tag gives every mesh key odd length while row keys are
        always even, so the encodings of the three spaces are mutually
        injective (see module docstring).
        """
        parts = [self.SPACE_TAG, struct.pack("<H", self.n)]
        for r, row in enumerate(self.mirror_fold_rows()):
            parts.append(struct.pack("<H", r))
            parts.append(row.canonical_bytes())
        return b"".join(parts)

    # ------------------------------------------------------------------
    # Feasibility (subclass-specific)
    # ------------------------------------------------------------------
    def satisfies_limit(self, limit: int) -> bool:
        raise NotImplementedError

    def validate(self, limit: int) -> None:
        """Raise :class:`InvalidPlacementError` on a budget violation."""
        if not self.satisfies_limit(limit):
            raise InvalidPlacementError(
                f"{type(self).__name__} violates cross-section budget C={limit}"
            )

    # ------------------------------------------------------------------
    # Simulator bridge
    # ------------------------------------------------------------------
    def mesh_topology(self) -> "MeshTopology":
        """The full 2D topology for the simulator / routing layer.

        Under dimension-order routing the X and Y dimensions are
        independent, and the Y-dimension instance of either mesh-level
        search problem is the same problem by symmetry -- so the bridge
        reuses the row solution per dimension: ``rows[y]`` fills mesh
        row ``y`` and ``rows[x]`` fills mesh column ``x``.  The 2D
        average head latency is then exactly twice the objective value,
        the same ``2x`` rule the replicated design enjoys (Eq. 5).
        """
        from repro.topology.mesh import MeshTopology

        return MeshTopology(
            n=self.n,
            row_placements=self.rows,
            col_placements=self.rows,
        )

    def __str__(self) -> str:
        chords = ", ".join(f"{r}:{i}-{j}" for r, i, j in self.express_chords())
        return f"{type(self).__name__}(n={self.n}, chords=[{chords}])"


@dataclass(frozen=True)
class HeteroPlacement(MeshRowsPlacement):
    """Independent per-row placements, each under the row budget ``C``.

    Every row keeps the full private cross-section budget of the
    replicated design: row ``r`` is feasible iff
    ``rows[r].satisfies_limit(C)``.  The replicated designs are the
    all-rows-equal members, so the feasible set contains the row
    space's image exactly.
    """

    SPACE_TAG: ClassVar[bytes] = b"H"

    def satisfies_limit(self, limit: int) -> bool:
        return all(row.satisfies_limit(limit) for row in self.rows)


@dataclass(frozen=True)
class Grid2DPlacement(MeshRowsPlacement):
    """Arbitrary same-row chords under the pooled vertical-cut budget.

    The wiring tracks of a vertical cut are shared chip-wide: cut ``k``
    may carry at most ``n * C`` links in total across all rows (``n``
    locals plus ``n * (C - 1)`` pooled express tracks), the same total
    the replicated design uses when every row's cut ``k`` is full.  A
    single row may therefore exceed ``C`` locally as long as other rows
    compensate -- every :class:`HeteroPlacement` feasible at ``C`` is
    feasible here (summing ``n`` per-row counts ``<= C`` gives a total
    ``<= n * C``), which is what nests the feasible sets.
    """

    SPACE_TAG: ClassVar[bytes] = b"G"

    def satisfies_limit(self, limit: int) -> bool:
        cap = self.n * limit
        return all(total <= cap for total in self.cross_section_totals())
