"""Two-dimensional mesh topologies with per-row/per-column express links.

A :class:`MeshTopology` is the full 2D object consumed by the routing
layer, the cycle-accurate simulator, and the power model.  It is built
from one :class:`~repro.topology.row.RowPlacement` per row and one per
column (Section 4.2: under dimension-order routing the two dimensions
are independent, and for the general-purpose objective every row and
column carries the same placement).

Node ids are ``id = y * n + x`` with ``x`` the column (position within a
row) and ``y`` the row index, matching the paper's Figure 3 numbering
modulo the 0-based shift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.topology.row import RowPlacement
from repro.util.errors import ConfigurationError

# A physical channel in the 2D network: (node_a, node_b, dimension)
# where dimension is "x" for row links and "y" for column links.
Channel = Tuple[int, int, str]


@dataclass(frozen=True)
class MeshTopology:
    """A ``width x height`` mesh augmented with express links.

    The paper's networks are square (``n x n``); rectangular meshes are
    supported as a library extension -- the 2D -> 1D reduction of
    Section 4.2 never uses squareness, only dimension-order routing.

    Parameters
    ----------
    n:
        Mesh *width* (row length).  Named ``n`` because the square case
        is the paper's and the API's default.
    row_placements:
        One :class:`RowPlacement` of size ``width`` per row ``y`` --
        ``height`` of them.
    col_placements:
        One :class:`RowPlacement` of size ``height`` per column ``x``
        -- ``width`` of them.  A column placement's router index is the
        ``y`` coordinate.
    height:
        Mesh height; defaults to ``n`` (square).
    """

    n: int
    row_placements: Tuple[RowPlacement, ...] = field(default_factory=tuple)
    col_placements: Tuple[RowPlacement, ...] = field(default_factory=tuple)
    height: int = 0

    def __post_init__(self) -> None:
        if self.height == 0:
            object.__setattr__(self, "height", self.n)
        rows = tuple(self.row_placements)
        cols = tuple(self.col_placements)
        if len(rows) != self.height or len(cols) != self.n:
            raise ConfigurationError(
                f"need {self.height} row and {self.n} column placements, "
                f"got {len(rows)} / {len(cols)}"
            )
        for p in rows:
            if p.n != self.n:
                raise ConfigurationError(
                    f"row placement size {p.n} does not match mesh width {self.n}"
                )
        for p in cols:
            if p.n != self.height:
                raise ConfigurationError(
                    f"column placement size {p.n} does not match mesh height {self.height}"
                )
        object.__setattr__(self, "row_placements", rows)
        object.__setattr__(self, "col_placements", cols)

    @property
    def width(self) -> int:
        """Row length; alias of ``n``."""
        return self.n

    @property
    def is_square(self) -> bool:
        return self.n == self.height

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, placement: RowPlacement) -> "MeshTopology":
        """Replicate one row solution across all rows and columns.

        This is the paper's general-purpose construction: solve
        ``P~(n, C)`` once, duplicate ``n`` times for rows and ``n``
        times for columns (Section 4.2).
        """
        n = placement.n
        return cls(n=n, row_placements=(placement,) * n, col_placements=(placement,) * n)

    @classmethod
    def mesh(cls, n: int) -> "MeshTopology":
        """The plain square mesh baseline (no express links)."""
        return cls.uniform(RowPlacement.mesh(n))

    @classmethod
    def rectangular(
        cls, row: RowPlacement, col: RowPlacement
    ) -> "MeshTopology":
        """A ``row.n x col.n`` mesh replicating one placement per dimension.

        Library extension beyond the paper's square networks: ``row``
        fills every row (width ``row.n``), ``col`` every column (height
        ``col.n``).
        """
        return cls(
            n=row.n,
            row_placements=(row,) * col.n,
            col_placements=(col,) * row.n,
            height=col.n,
        )

    @classmethod
    def rect_mesh(cls, width: int, height: int) -> "MeshTopology":
        """The plain rectangular mesh baseline."""
        return cls.rectangular(RowPlacement.mesh(width), RowPlacement.mesh(height))

    @classmethod
    def per_dimension(
        cls,
        rows: Sequence[RowPlacement],
        cols: Sequence[RowPlacement],
    ) -> "MeshTopology":
        """Distinct placements per row/column (application-aware mode)."""
        if not rows or not cols:
            raise ConfigurationError("need at least one row and column placement")
        return cls(
            n=rows[0].n,
            row_placements=tuple(rows),
            col_placements=tuple(cols),
            height=cols[0].n,
        )

    # ------------------------------------------------------------------
    # Coordinates
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.n * self.height

    def node_id(self, x: int, y: int) -> int:
        """Node id for column ``x``, row ``y``."""
        return y * self.n + x

    def coords(self, node: int) -> Tuple[int, int]:
        """``(x, y)`` coordinates of ``node``."""
        return node % self.n, node // self.n

    # ------------------------------------------------------------------
    # Channels
    # ------------------------------------------------------------------
    def channels(self) -> List[Channel]:
        """All bidirectional physical channels as ``(a, b, dim)`` triples.

        ``a < b`` in node-id order.  Row links have ``dim == "x"``,
        column links ``dim == "y"``.
        """
        chans: List[Channel] = []
        for y, placement in enumerate(self.row_placements):
            for i, j in placement.all_links():
                chans.append((self.node_id(i, y), self.node_id(j, y), "x"))
        for x, placement in enumerate(self.col_placements):
            for i, j in placement.all_links():
                chans.append((self.node_id(x, i), self.node_id(x, j), "y"))
        return chans

    def channel_length(self, a: int, b: int) -> int:
        """Manhattan length of the (same-row or same-column) channel."""
        ax, ay = self.coords(a)
        bx, by = self.coords(b)
        if ax != bx and ay != by:
            raise ConfigurationError(f"nodes {a} and {b} are not on one dimension")
        return abs(ax - bx) + abs(ay - by)

    def row_neighbors(self, node: int) -> Tuple[int, ...]:
        """Nodes reachable from ``node`` by one row (X-dimension) link."""
        x, y = self.coords(node)
        return tuple(self.node_id(i, y) for i in self.row_placements[y].neighbors(x))

    def col_neighbors(self, node: int) -> Tuple[int, ...]:
        """Nodes reachable from ``node`` by one column (Y-dimension) link."""
        x, y = self.coords(node)
        return tuple(self.node_id(x, i) for i in self.col_placements[x].neighbors(y))

    def neighbors(self, node: int) -> Tuple[int, ...]:
        """All one-hop neighbors of ``node`` (row then column)."""
        x, y = self.coords(node)
        row = tuple(self.node_id(i, y) for i in self.row_placements[y].neighbors(x))
        col = tuple(self.node_id(x, i) for i in self.col_placements[x].neighbors(y))
        return row + col

    def radix(self, node: int) -> int:
        """Number of network ports at ``node`` (excluding the local NI)."""
        x, y = self.coords(node)
        return self.row_placements[y].degree(x) + self.col_placements[x].degree(y)

    def max_cross_section(self) -> int:
        """Worst cross-section link count over all rows and columns."""
        return max(
            p.max_cross_section() for p in self.row_placements + self.col_placements
        )

    def bisection_links(self) -> int:
        """Links crossing the vertical mid-line of the chip.

        For an even ``n`` this is the sum over rows of the cross-section
        count at column position ``n/2 - 1`` -- the quantity bounded by
        the bisection bandwidth ``B / b`` in Eq. 3.
        """
        mid = self.n // 2 - 1
        if mid < 0:
            return 0
        return sum(p.cross_section_counts()[mid] for p in self.row_placements)

    def degree_histogram(self) -> Dict[int, int]:
        """Map radix -> number of routers with that radix."""
        hist: Dict[int, int] = {}
        for node in range(self.num_nodes):
            r = self.radix(node)
            hist[r] = hist.get(r, 0) + 1
        return hist

    def average_radix(self) -> float:
        """Mean router radix; the ``k_e`` of Section 4.6."""
        return sum(self.radix(v) for v in range(self.num_nodes)) / self.num_nodes
