"""One-dimensional express-link placements (the reduced problem P~(n, C)).

The paper's Section 4.2 reduces express-link placement on an ``n x n``
mesh under dimension-order routing to a single one-dimensional problem:
place express links on a row of ``n`` routers so that the average head
latency between row routers is minimized, subject to the cross-section
link limit ``C``.  The same row solution is replicated across every row
and column of the mesh.

:class:`RowPlacement` is the canonical representation of one such row
solution.  Routers are 0-indexed ``0 .. n-1`` (the paper uses 1-based
labels; Figure 2's routers ``1..8`` are our ``0..7``).  Local links
``(i, i+1)`` are always implicitly present; ``express_links`` holds only
the extra links ``(i, j)`` with ``j >= i + 2``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Tuple

from repro.util.errors import InvalidPlacementError

Link = Tuple[int, int]


def normalize_link(link: Iterable[int]) -> Link:
    """Return ``(min, max)`` for a link given in either endpoint order."""
    a, b = link
    a, b = int(a), int(b)
    if a == b:
        raise InvalidPlacementError(f"self-link at router {a}")
    return (a, b) if a < b else (b, a)


def pack_links(n: int, links: Iterable[Link]) -> bytes:
    """Encode ``n`` followed by link endpoints as little-endian uint16s.

    The shared byte encoding behind :meth:`RowPlacement.canonical_bytes`
    and :meth:`RowPlacement.mirror_fold_bytes`; ``links`` must already
    be in the desired (sorted) order.
    """
    flat = [n]
    for i, j in links:
        flat.append(i)
        flat.append(j)
    return struct.pack(f"<{len(flat)}H", *flat)


def unpack_links(data: bytes) -> Tuple[int, Tuple[Link, ...]]:
    """Decode :func:`pack_links` bytes back into ``(n, links)``.

    The inverse of the canonical encoding; rejects byte strings whose
    length is not an odd number of uint16 words (``n`` plus endpoint
    pairs).
    """
    if len(data) < 2 or len(data) % 2:
        raise InvalidPlacementError(
            f"placement bytes have invalid length {len(data)}"
        )
    words = struct.unpack(f"<{len(data) // 2}H", data)
    if len(words) % 2 == 0:
        raise InvalidPlacementError(
            "placement bytes truncated: expected n followed by endpoint pairs"
        )
    links = tuple(
        (words[k], words[k + 1]) for k in range(1, len(words), 2)
    )
    return words[0], links


@dataclass(frozen=True)
class RowPlacement:
    """An express-link placement on a row of ``n`` routers.

    Parameters
    ----------
    n:
        Number of routers in the row (``n >= 2``).
    express_links:
        Express links as ``(i, j)`` pairs with ``0 <= i``,
        ``j <= n - 1`` and ``j >= i + 2``.  Links are bidirectional and
        stored normalized (``i < j``), deduplicated.  Local links are
        *not* listed here; they always exist.

    Notes
    -----
    The placement is immutable and hashable so it can serve as a cache
    key during annealing and branch-and-bound searches.
    """

    n: int
    express_links: frozenset = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.n < 2:
            raise InvalidPlacementError(f"a row needs at least 2 routers, got n={self.n}")
        links = frozenset(normalize_link(link) for link in self.express_links)
        object.__setattr__(self, "express_links", links)
        for i, j in links:
            if i < 0 or j >= self.n:
                raise InvalidPlacementError(f"link ({i}, {j}) out of range for n={self.n}")
            if j - i < 2:
                raise InvalidPlacementError(
                    f"link ({i}, {j}) spans adjacent routers; local links are implicit"
                )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def mesh(cls, n: int) -> "RowPlacement":
        """The plain mesh row: local links only, no express links."""
        return cls(n=n, express_links=frozenset())

    @classmethod
    def from_normalized(cls, n: int, links: frozenset) -> "RowPlacement":
        """Construct without re-validating ``links``.

        For hot paths (bulk enumeration, the D&C combine loop) whose
        links are normalized and in range *by construction*:
        ``links`` must be a frozenset of ``(i, j)`` with
        ``0 <= i``, ``j <= n - 1`` and ``j >= i + 2``.  Equality,
        hashing and every query behave exactly as for a validated
        instance.
        """
        self = object.__new__(cls)
        object.__setattr__(self, "n", n)
        object.__setattr__(self, "express_links", links)
        return self

    @classmethod
    def from_canonical_bytes(cls, data: bytes) -> "RowPlacement":
        """Decode :meth:`canonical_bytes` back into a placement.

        Round-trips exactly: ``RowPlacement.from_canonical_bytes(
        p.canonical_bytes()) == p``.  Links are re-validated, so
        corrupted byte strings raise :class:`InvalidPlacementError`
        rather than producing an out-of-range placement.
        """
        n, links = unpack_links(data)
        return cls(n=n, express_links=frozenset(links))

    @classmethod
    def fully_connected(cls, n: int) -> "RowPlacement":
        """All-to-all row (one dimension of a flattened butterfly)."""
        links = frozenset((i, j) for i in range(n) for j in range(i + 2, n))
        return cls(n=n, express_links=links)

    def with_link(self, i: int, j: int) -> "RowPlacement":
        """Return a copy with express link ``(i, j)`` added."""
        return RowPlacement(self.n, self.express_links | {normalize_link((i, j))})

    def without_link(self, i: int, j: int) -> "RowPlacement":
        """Return a copy with express link ``(i, j)`` removed (if present)."""
        return RowPlacement(self.n, self.express_links - {normalize_link((i, j))})

    def shifted(self, offset: int, n: int) -> "RowPlacement":
        """Embed this placement into a longer row of ``n`` routers.

        Used by the divide-and-conquer combiner: a sub-row solution for
        routers ``offset .. offset + self.n - 1`` of the full row.
        """
        if offset < 0 or offset + self.n > n:
            raise InvalidPlacementError(
                f"cannot shift placement of {self.n} routers by {offset} into row of {n}"
            )
        links = frozenset((i + offset, j + offset) for i, j in self.express_links)
        return RowPlacement(n, links)

    def reversed(self) -> "RowPlacement":
        """Mirror the row left-to-right (a symmetry of the problem)."""
        links = frozenset(
            normalize_link((self.n - 1 - j, self.n - 1 - i)) for i, j in self.express_links
        )
        return RowPlacement(self.n, links)

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------
    @property
    def local_links(self) -> Tuple[Link, ...]:
        """The ``n - 1`` implicit local links ``(i, i+1)``."""
        return tuple((i, i + 1) for i in range(self.n - 1))

    def all_links(self) -> Tuple[Link, ...]:
        """Local plus express links, sorted."""
        return tuple(sorted(set(self.local_links) | self.express_links))

    def cross_section_counts(self) -> Tuple[int, ...]:
        """Link count at each of the ``n - 1`` cross-sections.

        Cross-section ``k`` sits between routers ``k`` and ``k + 1``; a
        link ``(i, j)`` crosses it iff ``i <= k < j``.  The local link
        always contributes 1.
        """
        counts = [1] * (self.n - 1)
        for i, j in self.express_links:
            for k in range(i, j):
                counts[k] += 1
        return tuple(counts)

    def max_cross_section(self) -> int:
        """The maximum cross-section link count (the ``c`` of Eq. 3)."""
        return max(self.cross_section_counts())

    def satisfies_limit(self, limit: int) -> bool:
        """True iff every cross-section count is ``<= limit``."""
        return self.max_cross_section() <= limit

    def validate(self, limit: int) -> None:
        """Raise :class:`InvalidPlacementError` if the limit is exceeded."""
        counts = self.cross_section_counts()
        for k, c in enumerate(counts):
            if c > limit:
                raise InvalidPlacementError(
                    f"cross-section {k} carries {c} links, limit is {limit}"
                )

    def clipped_to_limit(self, limit: int) -> "RowPlacement":
        """A nearby placement satisfying ``limit``, derived deterministically.

        The warm-start projection used by the design cache: when a
        cached neighbor was solved under a different cross-section
        budget, its links are clipped down to the requested one.  While
        any cross-section is over budget, among the links crossing the
        most-loaded section the longest one is dropped (ties broken by
        the lexicographically largest endpoint pair), longest-first
        because long links load the most sections per unit of latency
        benefit.  The rule uses no RNG, so the same neighbor always
        projects to the same candidate.
        """
        if limit < 1:
            raise InvalidPlacementError(f"link limit must be >= 1, got {limit}")
        links = set(self.express_links)
        counts = list(self.cross_section_counts())
        while counts and max(counts) > limit:
            worst = counts.index(max(counts))
            crossing = [l for l in links if l[0] <= worst < l[1]]
            victim = max(crossing, key=lambda l: (l[1] - l[0], l))
            links.remove(victim)
            for k in range(victim[0], victim[1]):
                counts[k] -= 1
        return RowPlacement.from_normalized(self.n, frozenset(links))

    def degree(self, i: int) -> int:
        """Number of row links incident to router ``i`` (ports used)."""
        deg = (1 if i > 0 else 0) + (1 if i < self.n - 1 else 0)
        for a, b in self.express_links:
            if a == i or b == i:
                deg += 1
        return deg

    def degrees(self) -> Tuple[int, ...]:
        """Per-router link degree within the row."""
        return tuple(self.degree(i) for i in range(self.n))

    def neighbors(self, i: int) -> Tuple[int, ...]:
        """Routers directly reachable from ``i`` via one row link."""
        out = set()
        if i > 0:
            out.add(i - 1)
        if i < self.n - 1:
            out.add(i + 1)
        for a, b in self.express_links:
            if a == i:
                out.add(b)
            elif b == i:
                out.add(a)
        return tuple(sorted(out))

    def link_lengths(self) -> Tuple[int, ...]:
        """Lengths (in unit hops) of all links, local first."""
        return tuple(j - i for i, j in self.all_links())

    def total_wire_length(self) -> int:
        """Sum of link lengths: the row's wiring cost in unit segments."""
        return sum(self.link_lengths())

    def __iter__(self) -> Iterator[Link]:
        return iter(sorted(self.express_links))

    def __len__(self) -> int:
        return len(self.express_links)

    def __str__(self) -> str:
        links = ", ".join(f"{i}-{j}" for i, j in sorted(self.express_links))
        return f"RowPlacement(n={self.n}, express=[{links}])"

    def canonical_bytes(self) -> bytes:
        """A canonical byte encoding of this exact placement.

        ``n`` followed by the sorted link endpoints, little-endian
        uint16 each (see :func:`pack_links`).  Two placements map to
        the same bytes iff they are equal, so the encoding is a safe
        dictionary key for evaluation caches shared across search
        restarts -- unlike :meth:`canonical_key` /
        :meth:`mirror_fold_bytes`, it does NOT identify a placement
        with its mirror image (mirror energies differ under
        traffic-weighted objectives).
        """
        return pack_links(self.n, sorted(self.express_links))

    def mirror_min_links(self) -> Tuple[Link, ...]:
        """The mirror-fold representative of this placement's link set.

        The lexicographically smaller of the sorted link list and its
        mirror image's -- the single folding rule shared by
        :meth:`canonical_key`, :meth:`mirror_fold_bytes` and the exact
        searches' per-class dedup, so every consumer agrees on which
        member represents a mirror pair.  The mirror's links are
        derived arithmetically (link ``(i, j)`` reflects to
        ``(n-1-j, n-1-i)``, already normalized) rather than through
        :meth:`reversed`, keeping this hot dedup key allocation-light.
        """
        last = self.n - 1
        fwd = tuple(sorted(self.express_links))
        rev = tuple(sorted((last - j, last - i) for i, j in fwd))
        return min(fwd, rev)

    def mirror_fold_bytes(self) -> bytes:
        """Byte key identical for a placement and its mirror image.

        :meth:`canonical_bytes` of the :meth:`mirror_min_links`
        representative.  Safe as a dedup key only for objectives that
        are reversal-invariant (the unweighted mean); traffic-weighted
        caches must key on :meth:`canonical_bytes`.
        """
        return pack_links(self.n, self.mirror_min_links())

    def canonical_key(self) -> Tuple[int, Tuple[Link, ...]]:
        """A key identical for a placement and its mirror image.

        The latency objective is invariant under row reversal, so
        search procedures can deduplicate on this key and halve their
        work.
        """
        return (self.n, self.mirror_min_links())
