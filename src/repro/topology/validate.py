"""Structural audits for placements and topologies.

These checks encode the constraints of Section 3 (Eq. 3) plus sanity
invariants the rest of the library relies on: local links always
present, connectivity, and the bisection-bandwidth accounting that ties
the link limit ``C`` to the flit width ``b``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.topology.mesh import MeshTopology
from repro.topology.row import RowPlacement
from repro.util.errors import InvalidPlacementError


def audit_row(placement: RowPlacement, limit: int) -> Dict[str, object]:
    """Validate a row placement against ``limit`` and report structure.

    Returns a report dict with cross-section counts, worst section,
    utilization (fraction of allowed bisection wires actually used) and
    total wire length.  Raises :class:`InvalidPlacementError` on any
    violation.
    """
    placement.validate(limit)
    counts = placement.cross_section_counts()
    return {
        "n": placement.n,
        "limit": limit,
        "cross_section_counts": counts,
        "max_cross_section": max(counts),
        "utilization": sum(counts) / (limit * len(counts)),
        "num_express_links": len(placement.express_links),
        "total_wire_length": placement.total_wire_length(),
    }


def audit_mesh(topology: MeshTopology, limit: int) -> Dict[str, object]:
    """Validate every row and column of a 2D topology against ``limit``."""
    reports: List[Dict[str, object]] = []
    for kind, placements in (
        ("row", topology.row_placements),
        ("col", topology.col_placements),
    ):
        for idx, p in enumerate(placements):
            try:
                reports.append({"kind": kind, "index": idx, **audit_row(p, limit)})
            except InvalidPlacementError as exc:
                raise InvalidPlacementError(f"{kind} {idx}: {exc}") from exc
    return {
        "n": topology.n,
        "limit": limit,
        "max_cross_section": topology.max_cross_section(),
        "bisection_links": topology.bisection_links(),
        "average_radix": topology.average_radix(),
        "per_dimension": reports,
    }


def check_connected(placement: RowPlacement) -> bool:
    """A row placement is always connected via local links; verify it.

    This guards against future representation changes accidentally
    dropping the implicit local links.
    """
    seen = {0}
    frontier = [0]
    while frontier:
        v = frontier.pop()
        for w in placement.neighbors(v):
            if w not in seen:
                seen.add(w)
                frontier.append(w)
    return len(seen) == placement.n
