"""Traffic substrate: synthetic patterns, matrix traffic, PARSEC models."""

from repro.traffic.patterns import (
    PAPER_PATTERNS,
    PATTERNS,
    BitComplement,
    BitReverse,
    Hotspot,
    Neighbor,
    Pattern,
    Shuffle,
    Tornado,
    Transpose,
    UniformRandom,
    make_pattern,
    pattern_matrix,
)
from repro.traffic.packets import PacketSizeSampler
from repro.traffic.injection import (
    CombinedTraffic,
    MatrixTraffic,
    SyntheticTraffic,
    TraceTraffic,
)
from repro.traffic.parsec import (
    PARSEC_NAMES,
    PARSEC_WORKLOADS,
    WorkloadModel,
    memory_controller_nodes,
    parsec_traffic,
    workload_gamma,
)

__all__ = [
    "PAPER_PATTERNS",
    "PATTERNS",
    "BitComplement",
    "BitReverse",
    "Hotspot",
    "Neighbor",
    "Pattern",
    "Shuffle",
    "Tornado",
    "Transpose",
    "UniformRandom",
    "make_pattern",
    "pattern_matrix",
    "PacketSizeSampler",
    "CombinedTraffic",
    "MatrixTraffic",
    "SyntheticTraffic",
    "TraceTraffic",
    "PARSEC_NAMES",
    "PARSEC_WORKLOADS",
    "WorkloadModel",
    "memory_controller_nodes",
    "parsec_traffic",
    "workload_gamma",
]
