"""Traffic generators implementing the simulator's injection protocol.

A generator's ``packets_for_cycle(cycle)`` yields ``(src, dst,
size_bits)`` triples.  Injection processes are per-node Bernoulli
(geometric inter-arrival) at a configurable packets/node/cycle rate,
the standard open-loop model for NoC evaluation.

Generators additionally implement ``next_packet_cycle(cycle)``: the
earliest cycle ``>= cycle`` at which the generator could possibly emit
a packet, or ``None`` if it never will again.  The active engine uses
it to fast-forward over quiescent stretches.  The contract is
conservative and RNG-preserving: for any cycle ``c`` with
``next_packet_cycle(c) > c`` (or ``None``), calling
``packets_for_cycle`` on the skipped cycles would have yielded nothing
*and* consumed no RNG draws -- so skipping them leaves every stream
byte-identical.  Bernoulli generators draw RNG every active cycle and
therefore report ``cycle`` itself until ``stop_cycle``, after which
their early-return path (which precedes any draw) makes skipping safe.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.latency import PacketMix
from repro.traffic.packets import PacketSizeSampler
from repro.traffic.patterns import Pattern
from repro.util.errors import ConfigurationError
from repro.util.rngtools import ensure_rng

Injection = Tuple[int, int, int]


class SyntheticTraffic:
    """Bernoulli injection with a synthetic destination pattern."""

    def __init__(
        self,
        pattern: Pattern,
        rate: float,
        mix: PacketMix | None = None,
        rng=None,
        stop_cycle: Optional[int] = None,
    ):
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"rate must be in [0, 1], got {rate}")
        self.pattern = pattern
        self.rate = rate
        self.sampler = PacketSizeSampler(mix)
        self.rng = ensure_rng(rng)
        self.stop_cycle = stop_cycle
        self.num_nodes = pattern.num_nodes

    def packets_for_cycle(self, cycle: int) -> Iterator[Injection]:
        if self.stop_cycle is not None and cycle >= self.stop_cycle:
            return
        fires = np.flatnonzero(self.rng.random(self.num_nodes) < self.rate)
        for src in fires:
            dst = self.pattern(int(src), self.rng)
            if dst is None:
                continue
            yield int(src), int(dst), self.sampler.sample(self.rng)

    def next_packet_cycle(self, cycle: int) -> Optional[int]:
        """Bernoulli draws every active cycle, so no skipping before
        ``stop_cycle``; afterwards the generator is silent forever."""
        if self.stop_cycle is not None and cycle >= self.stop_cycle:
            return None
        return cycle


class MatrixTraffic:
    """Injection driven by an explicit traffic-rate matrix ``gamma``.

    ``gamma[i, j]`` is proportional to the packet rate from ``i`` to
    ``j``; ``aggregate_rate`` rescales the whole matrix so that the
    network-wide injection rate is ``aggregate_rate`` packets/cycle.
    This is the generator behind the PARSEC workload models and the
    application-aware experiments (Section 5.6.4).
    """

    def __init__(
        self,
        gamma: np.ndarray,
        aggregate_rate: float,
        mix: PacketMix | None = None,
        rng=None,
        stop_cycle: Optional[int] = None,
    ):
        g = np.asarray(gamma, dtype=float)
        if g.ndim != 2 or g.shape[0] != g.shape[1]:
            raise ConfigurationError("gamma must be square")
        if (g < 0).any():
            raise ConfigurationError("gamma must be nonnegative")
        g = g.copy()
        np.fill_diagonal(g, 0.0)
        if g.sum() <= 0:
            raise ConfigurationError("gamma must contain off-diagonal traffic")
        self.gamma = g / g.sum()
        self.num_nodes = g.shape[0]
        row = self.gamma.sum(axis=1)
        self.node_rates = aggregate_rate * row
        if (self.node_rates > 1.0).any():
            raise ConfigurationError("per-node injection rate exceeds 1 packet/cycle")
        # Conditional destination CDF per source (uniform rows for
        # sources with no traffic never fire, CDF content irrelevant).
        cond = np.where(row[:, None] > 0, self.gamma / np.maximum(row[:, None], 1e-300), 0)
        self._cdf = np.cumsum(cond, axis=1)
        self.sampler = PacketSizeSampler(mix)
        self.rng = ensure_rng(rng)
        self.stop_cycle = stop_cycle

    def packets_for_cycle(self, cycle: int) -> Iterator[Injection]:
        if self.stop_cycle is not None and cycle >= self.stop_cycle:
            return
        fires = np.flatnonzero(self.rng.random(self.num_nodes) < self.node_rates)
        for src in fires:
            dst = int(np.searchsorted(self._cdf[src], self.rng.random(), side="right"))
            dst = min(dst, self.num_nodes - 1)
            if dst == src:
                continue
            yield int(src), dst, self.sampler.sample(self.rng)

    def next_packet_cycle(self, cycle: int) -> Optional[int]:
        if self.stop_cycle is not None and cycle >= self.stop_cycle:
            return None
        return cycle


class TraceTraffic:
    """Replay an explicit list of ``(cycle, src, dst, size_bits)`` events.

    Deterministic; used by unit tests and for record/replay studies.
    """

    def __init__(self, events: Iterable[Tuple[int, int, int, int]]):
        self._by_cycle: dict = {}
        count = 0
        for cycle, src, dst, size in events:
            self._by_cycle.setdefault(int(cycle), []).append((int(src), int(dst), int(size)))
            count += 1
        self.num_events = count
        self._cycles = sorted(self._by_cycle)

    def packets_for_cycle(self, cycle: int) -> List[Injection]:
        return self._by_cycle.get(cycle, [])

    def next_packet_cycle(self, cycle: int) -> Optional[int]:
        """First trace cycle ``>= cycle`` -- traces skip maximally."""
        i = bisect.bisect_left(self._cycles, cycle)
        return self._cycles[i] if i < len(self._cycles) else None


class CombinedTraffic:
    """Superpose several generators (e.g. base load + hotspot bursts)."""

    def __init__(self, generators: Sequence):
        self.generators = list(generators)

    def packets_for_cycle(self, cycle: int) -> Iterator[Injection]:
        for gen in self.generators:
            yield from gen.packets_for_cycle(cycle)

    def next_packet_cycle(self, cycle: int) -> Optional[int]:
        """Earliest next cycle across members (None only if all done).

        Members without ``next_packet_cycle`` are assumed live every
        cycle -- the conservative answer.
        """
        best: Optional[int] = None
        for gen in self.generators:
            probe = getattr(gen, "next_packet_cycle", None)
            if probe is None:
                return cycle
            nxt = probe(cycle)
            if nxt is None:
                continue
            if best is None or nxt < best:
                best = nxt
        return best
