"""Packet-size sampling from a :class:`~repro.core.latency.PacketMix`.

The analytical model only needs the mix's expected serialization; the
simulator needs concrete sizes per packet, drawn here.
"""

from __future__ import annotations

import numpy as np

from repro.core.latency import PacketMix
from repro.util.rngtools import ensure_rng


class PacketSizeSampler:
    """Draws packet sizes i.i.d. according to the mix fractions."""

    def __init__(self, mix: PacketMix | None = None):
        self.mix = mix or PacketMix.paper_default()
        self._sizes = np.array(self.mix.sizes())
        self._cdf = np.cumsum(self.mix.fractions())

    def sample(self, rng) -> int:
        """One packet size in bits."""
        gen = ensure_rng(rng)
        idx = int(np.searchsorted(self._cdf, gen.random(), side="right"))
        idx = min(idx, len(self._sizes) - 1)
        return int(self._sizes[idx])

    def sample_many(self, count: int, rng) -> np.ndarray:
        """``count`` packet sizes at once (vectorized)."""
        gen = ensure_rng(rng)
        idx = np.searchsorted(self._cdf, gen.random(count), side="right")
        idx = np.minimum(idx, len(self._sizes) - 1)
        return self._sizes[idx]

    def expected_flits(self, flit_bits: int) -> float:
        """Mean flits per packet at the given width."""
        return self.mix.serialization_cycles(flit_bits)
