"""Synthetic PARSEC 2.0 workload models (the full-system substitute).

The paper evaluates on ten multi-threaded PARSEC benchmarks running
under gem5 full-system simulation.  Running PARSEC is not possible
here, so each benchmark is modeled as a *traffic generator* with the
characteristics that actually matter to the NoC study:

* a low average injection rate (the paper stresses that real
  applications keep NoCs far from saturation, with per-hop contention
  under one cycle),
* a spatial structure blending uniform sharing, distance-local
  communication (neighbor data exchange), and directory/memory
  controller hotspots at the chip corners,
* the ~1:4 long:short packet ratio of coherence traffic [19], with
  mild per-benchmark variation in the read/write balance.

The per-benchmark parameters are *synthetic but differentiated*:
cache-hostile workloads (canneal, dedup) get higher rates and more
hotspot traffic; compute-bound ones (swaptions, blackscholes) barely
use the network; stencil-style ones (fluidanimate, bodytrack) lean on
neighbor locality.  Substitution documented in DESIGN.md section 2.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.core.latency import PacketMix
from repro.traffic.injection import MatrixTraffic
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class WorkloadModel:
    """Traffic model parameters for one benchmark.

    Parameters
    ----------
    rate_per_node:
        Mean packets injected per node per cycle.
    locality:
        Fraction of traffic following the distance-decay component.
    locality_scale:
        Decay constant (in hops) of the local component.
    hotspot:
        Fraction of traffic directed at the memory-controller corners.
    long_fraction:
        Fraction of long (512-bit) packets; short packets are 128-bit.
    """

    name: str
    rate_per_node: float
    locality: float
    locality_scale: float
    hotspot: float
    long_fraction: float = 0.2
    #: Fraction of traffic on stage-to-stage flows (pipeline-parallel
    #: benchmarks: dedup, ferret, x264 stream data between thread
    #: groups).
    pipeline: float = 0.0
    #: Number of pipeline stage groups when ``pipeline > 0``.
    pipeline_stages: int = 4
    #: Fraction of traffic on a sparse set of heavy producer-consumer
    #: pairs (data-sharing cliques), drawn deterministically per
    #: benchmark.
    pairwise: float = 0.0

    def __post_init__(self) -> None:
        fracs = (self.locality, self.hotspot, self.pipeline, self.pairwise)
        if any(not 0 <= f <= 1 for f in fracs):
            raise ConfigurationError("traffic fractions must be in [0,1]")
        if sum(fracs) > 1:
            raise ConfigurationError("traffic fractions must not exceed 1 in total")

    def packet_mix(self) -> PacketMix:
        return PacketMix(((512, self.long_fraction), (128, 1.0 - self.long_fraction)))


#: The ten PARSEC 2.0 benchmarks of Figure 6, with synthetic parameters.
#: Pipeline-parallel benchmarks (dedup, ferret, x264, vips) stream data
#: between stage groups; data-parallel ones share via sparse
#: producer-consumer pairs and the directory hotspots.
PARSEC_WORKLOADS: Dict[str, WorkloadModel] = {
    w.name: w
    for w in (
        WorkloadModel("blackscholes", 0.006, 0.15, 2.0, 0.10, pairwise=0.40),
        WorkloadModel("bodytrack", 0.015, 0.25, 2.0, 0.15, pairwise=0.40),
        WorkloadModel("canneal", 0.028, 0.10, 3.0, 0.20, long_fraction=0.25, pairwise=0.40),
        WorkloadModel("dedup", 0.022, 0.10, 2.5, 0.15, long_fraction=0.25, pipeline=0.30, pairwise=0.25),
        WorkloadModel("ferret", 0.020, 0.10, 2.0, 0.10, pipeline=0.35, pipeline_stages=6, pairwise=0.25),
        WorkloadModel("fluidanimate", 0.016, 0.40, 1.5, 0.10, pairwise=0.30),
        WorkloadModel("raytrace", 0.010, 0.20, 2.5, 0.15, pairwise=0.40),
        WorkloadModel("swaptions", 0.005, 0.15, 2.0, 0.10, long_fraction=0.15, pairwise=0.50),
        WorkloadModel("vips", 0.018, 0.15, 2.0, 0.10, pipeline=0.25, pairwise=0.30),
        WorkloadModel("x264", 0.024, 0.25, 1.5, 0.10, long_fraction=0.25, pipeline=0.20, pipeline_stages=3, pairwise=0.30),
    )
}

PARSEC_NAMES: Tuple[str, ...] = tuple(PARSEC_WORKLOADS)


def memory_controller_nodes(n: int) -> Tuple[int, ...]:
    """Directory/MC placement: the four corners (a common CMP layout)."""
    return (0, n - 1, n * (n - 1), n * n - 1)


def workload_gamma(model: WorkloadModel, n: int) -> np.ndarray:
    """The benchmark's traffic-rate matrix on an ``n x n`` mesh.

    A normalized blend of five components: uniform sharing, distance
    -local exchange, directory/memory-controller hotspots, pipeline
    stage-to-stage streams, and sparse heavy producer-consumer pairs.
    The last two give real workloads their skew -- and are what the
    application-aware optimizer of Section 5.6.4 exploits.
    """
    num = n * n
    xs, ys = np.arange(num) % n, np.arange(num) // n
    dist = np.abs(xs[:, None] - xs[None, :]) + np.abs(ys[:, None] - ys[None, :])
    eye = np.eye(num, dtype=bool)

    def normalized(m: np.ndarray) -> np.ndarray:
        m = m.copy()
        m[eye] = 0
        total = m.sum()
        return m / total if total > 0 else m

    uniform = normalized(np.ones((num, num)))
    local = normalized(np.exp(-dist / model.locality_scale))

    hot = np.zeros((num, num))
    for mc in memory_controller_nodes(n):
        hot[:, mc] = 1.0
        hot[mc, :] += 1.0  # replies flow back from the MC
    hot = normalized(hot)

    pipe = np.zeros((num, num))
    if model.pipeline > 0:
        # Threads are mapped row-major; consecutive id blocks form the
        # stage groups, each streaming to the next stage's group.
        stages = np.array_split(np.arange(num), model.pipeline_stages)
        for a, b in zip(stages, stages[1:]):
            pipe[np.ix_(a, b)] = 1.0
        pipe = normalized(pipe)

    pairs = np.zeros((num, num))
    if model.pairwise > 0:
        # Deterministic per-benchmark sparse producer-consumer pairs
        # (crc32, not hash(): the latter is salted per process).
        # Pairs are biased toward long Manhattan distances: the data a
        # thread shares is rarely resident on an adjacent tile, and it
        # is these long flows that the application-aware optimizer of
        # Section 5.6.4 can exploit.
        rng = np.random.default_rng(zlib.crc32(model.name.encode()))
        min_dist = max((3 * n) // 4, 2)
        wanted = max(num // 4, 4)
        count = 0
        while count < wanted:
            a, b = (int(v) for v in rng.integers(num, size=2))
            if a == b or dist[a, b] < min_dist:
                continue
            weight = 1.0 + 3.0 * rng.random()  # heavy, unequal pairs
            pairs[a, b] += weight
            pairs[b, a] += 0.5 * weight  # asymmetric producer/consumer
            count += 1
        pairs = normalized(pairs)

    base = 1.0 - model.locality - model.hotspot - model.pipeline - model.pairwise
    gamma = (
        base * uniform
        + model.locality * local
        + model.hotspot * hot
        + model.pipeline * pipe
        + model.pairwise * pairs
    )
    return gamma / gamma.sum()


def parsec_traffic(
    name: str,
    n: int,
    rng=None,
    rate_scale: float = 1.0,
    stop_cycle=None,
) -> MatrixTraffic:
    """Build the injection generator for one benchmark on an ``n x n`` mesh.

    ``rate_scale`` uniformly scales the injection rate (used by
    sensitivity sweeps); the aggregate network rate is
    ``rate_per_node * n^2 * rate_scale`` packets/cycle.
    """
    try:
        model = PARSEC_WORKLOADS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown PARSEC workload {name!r}; known: {PARSEC_NAMES}"
        ) from None
    gamma = workload_gamma(model, n)
    aggregate = model.rate_per_node * n * n * rate_scale
    return MatrixTraffic(
        gamma, aggregate, mix=model.packet_mix(), rng=rng, stop_cycle=stop_cycle
    )
