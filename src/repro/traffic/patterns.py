"""Synthetic traffic patterns (Section 5.4 and the classics).

Each pattern maps a source node to a destination on an ``n x n`` mesh.
The paper evaluates uniform random (UR), transpose (TP) and bit-reverse
(BR); the usual companions (bit-complement, shuffle, tornado, neighbor,
hotspot) are included for the extended benchmark sweeps.

Patterns are small callable objects: ``pattern(src, rng) -> dst or
None`` (``None`` means the source generates no traffic under this
pattern, e.g. transpose's diagonal).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.util.errors import ConfigurationError
from repro.util.rngtools import ensure_rng


class Pattern:
    """Base class: deterministic or stochastic destination choice."""

    name = "abstract"

    def __init__(self, n: int):
        if n < 2:
            raise ConfigurationError("patterns need n >= 2")
        self.n = n
        self.num_nodes = n * n

    def __call__(self, src: int, rng) -> Optional[int]:
        raise NotImplementedError

    def _coords(self, node: int):
        return node % self.n, node // self.n

    def _node(self, x: int, y: int) -> int:
        return y * self.n + x


class UniformRandom(Pattern):
    """UR: every other node equally likely."""

    name = "uniform_random"

    def __call__(self, src: int, rng) -> Optional[int]:
        dst = int(rng.integers(self.num_nodes - 1))
        return dst if dst < src else dst + 1


class Transpose(Pattern):
    """TP: ``(x, y) -> (y, x)``; diagonal nodes stay silent."""

    name = "transpose"

    def __call__(self, src: int, rng) -> Optional[int]:
        x, y = self._coords(src)
        dst = self._node(y, x)
        return None if dst == src else dst


class BitReverse(Pattern):
    """BR: reverse the bits of the node id (requires power-of-two N)."""

    name = "bit_reverse"

    def __init__(self, n: int):
        super().__init__(n)
        bits = (self.num_nodes - 1).bit_length()
        if 1 << bits != self.num_nodes:
            raise ConfigurationError("bit_reverse requires a power-of-two node count")
        self.bits = bits

    def __call__(self, src: int, rng) -> Optional[int]:
        r = 0
        v = src
        for _ in range(self.bits):
            r = (r << 1) | (v & 1)
            v >>= 1
        return None if r == src else r


class BitComplement(Pattern):
    """BC: destination is the bitwise complement of the source id."""

    name = "bit_complement"

    def __call__(self, src: int, rng) -> Optional[int]:
        dst = (~src) & (self.num_nodes - 1)
        return None if dst == src else dst


class Shuffle(Pattern):
    """Perfect shuffle: rotate the id's bits left by one."""

    name = "shuffle"

    def __init__(self, n: int):
        super().__init__(n)
        bits = (self.num_nodes - 1).bit_length()
        if 1 << bits != self.num_nodes:
            raise ConfigurationError("shuffle requires a power-of-two node count")
        self.bits = bits

    def __call__(self, src: int, rng) -> Optional[int]:
        top = (src >> (self.bits - 1)) & 1
        dst = ((src << 1) | top) & (self.num_nodes - 1)
        return None if dst == src else dst


class Tornado(Pattern):
    """Tornado: half-way around each dimension."""

    name = "tornado"

    def __call__(self, src: int, rng) -> Optional[int]:
        x, y = self._coords(src)
        shift = max(self.n // 2 - 1, 1)
        dst = self._node((x + shift) % self.n, y)
        return None if dst == src else dst


class Neighbor(Pattern):
    """Nearest neighbor: ``(x + 1 mod n, y)``."""

    name = "neighbor"

    def __call__(self, src: int, rng) -> Optional[int]:
        x, y = self._coords(src)
        dst = self._node((x + 1) % self.n, y)
        return None if dst == src else dst


class Hotspot(Pattern):
    """A fraction of traffic targets fixed hotspot nodes, rest uniform."""

    name = "hotspot"

    def __init__(self, n: int, hotspots: Sequence[int] | None = None, fraction: float = 0.2):
        super().__init__(n)
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError("hotspot fraction must be in [0, 1]")
        self.hotspots = tuple(hotspots) if hotspots else (0, self.num_nodes - 1)
        for h in self.hotspots:
            if not 0 <= h < self.num_nodes:
                raise ConfigurationError(f"hotspot {h} out of range")
        self.fraction = fraction
        self._uniform = UniformRandom(n)

    def __call__(self, src: int, rng) -> Optional[int]:
        if rng.random() < self.fraction:
            # A hotspot node cannot send to itself; redraw among the
            # *other* hotspots so hotspot sources still emit their full
            # hotspot fraction.  (Falling back to uniform here -- the
            # old behavior -- silently diluted the fraction whenever a
            # hotspot node was itself a source.)
            choices = [h for h in self.hotspots if h != src]
            if choices:
                return choices[int(rng.integers(len(choices)))]
        return self._uniform(src, rng)


#: Registry used by the harness and examples; the paper's three are
#: ``uniform_random``, ``transpose`` and ``bit_reverse``.
PATTERNS: Dict[str, Callable[[int], Pattern]] = {
    "uniform_random": UniformRandom,
    "transpose": Transpose,
    "bit_reverse": BitReverse,
    "bit_complement": BitComplement,
    "shuffle": Shuffle,
    "tornado": Tornado,
    "neighbor": Neighbor,
    "hotspot": Hotspot,
}

PAPER_PATTERNS = ("uniform_random", "transpose", "bit_reverse")


def make_pattern(name: str, n: int, **kwargs) -> Pattern:
    """Instantiate a registered pattern by name."""
    try:
        factory = PATTERNS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown pattern {name!r}; known: {sorted(PATTERNS)}"
        ) from None
    return factory(n, **kwargs) if kwargs else factory(n)


def pattern_matrix(pattern: Pattern, samples_per_node: int = 256, rng=None) -> np.ndarray:
    """Empirical ``gamma`` matrix of a pattern (for the app-aware optimizer)."""
    gen = ensure_rng(rng)
    num = pattern.num_nodes
    gamma = np.zeros((num, num))
    for src in range(num):
        for _ in range(samples_per_node):
            dst = pattern(src, gen)
            if dst is not None:
                gamma[src, dst] += 1.0
    total = gamma.sum()
    return gamma / total if total > 0 else gamma
