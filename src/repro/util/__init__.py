"""Shared utilities: error types, RNG helpers, small numeric tools."""

from repro.util.errors import (
    ReproError,
    InvalidPlacementError,
    ConfigurationError,
    SimulationError,
)
from repro.util.rngtools import ensure_rng

__all__ = [
    "ReproError",
    "InvalidPlacementError",
    "ConfigurationError",
    "SimulationError",
    "ensure_rng",
]
