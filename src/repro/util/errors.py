"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError` so callers can catch library failures without also
swallowing programming errors (``TypeError`` etc.).
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidPlacementError(ReproError):
    """An express-link placement violates a structural constraint.

    Raised when a placement is missing local links, contains an
    out-of-range or self link, or exceeds the cross-section link limit
    ``C`` (Eq. 3 of the paper).
    """


class ConfigurationError(ReproError):
    """A configuration value is out of range or inconsistent.

    Examples: a link limit that is not a positive divisor of the base
    flit width, a non power-of-two flit size, or a simulator config with
    zero virtual channels.
    """


class UnknownImplementationError(ConfigurationError, ValueError):
    """An ``impl=`` kernel-tier name is not recognized.

    Derives from both :class:`ConfigurationError` (the library-wide
    contract) and :class:`ValueError` (the type the kernel seam raised
    historically), so callers that catch either keep working after the
    validation moved into :mod:`repro.routing.impls`.
    """


class SimulationError(ReproError):
    """The cycle-accurate simulator detected an internal inconsistency.

    This signals a conservation-law violation (lost flit, negative
    credit) or a deadlock watchdog trip -- always a bug, never a normal
    outcome.
    """
