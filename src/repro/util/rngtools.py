"""Random-number-generator helpers.

All stochastic components of the library (simulated annealing, traffic
injection) accept either a seed or a ``numpy.random.Generator`` so that
experiments are reproducible end to end.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | None | np.random.Generator"


def ensure_rng(rng: "int | None | np.random.Generator") -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` (fresh nondeterministic generator), an integer seed, or
        an existing generator (returned unchanged so callers can share
        one stream across components).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"expected seed, Generator, or None; got {type(rng).__name__}")
