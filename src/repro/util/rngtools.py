"""Random-number-generator helpers.

All stochastic components of the library (simulated annealing, traffic
injection) accept either a seed or a ``numpy.random.Generator`` so that
experiments are reproducible end to end.

The multi-restart search engine additionally needs *derived* streams:
every ``(C, restart)`` task must get a generator that is a pure
function of the base seed and the task key, independent of execution
order, so that serial and parallel schedules visit identical states.
:func:`derived_rng` builds those from a ``numpy.random.SeedSequence``
spawn key.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

RngLike = "int | None | np.random.Generator"


def ensure_rng(rng: "int | None | np.random.Generator") -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        ``None`` (fresh nondeterministic generator), an integer seed, or
        an existing generator (returned unchanged so callers can share
        one stream across components).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"expected seed, Generator, or None; got {type(rng).__name__}")


def fresh_entropy() -> int:
    """A nondeterministic base seed (used when the caller passes none).

    Returned as a plain int so it can be logged and replayed: feeding
    it back as the base seed reproduces every derived stream exactly.
    """
    return int(np.random.SeedSequence().entropy)


def derive_seed_sequence(base_seed: int, *key: int) -> np.random.SeedSequence:
    """The seed sequence for one derived task stream.

    ``key`` is the task's identity (e.g. ``(link_limit, restart)``).
    Derivation uses the ``spawn_key`` mechanism of
    :class:`numpy.random.SeedSequence`, so distinct keys yield
    statistically independent streams and the mapping depends only on
    ``(base_seed, key)`` -- never on how many other tasks exist or the
    order they run in.
    """
    return np.random.SeedSequence(int(base_seed), spawn_key=tuple(int(k) for k in key))


def derived_rng(base_seed: int, *key: int) -> np.random.Generator:
    """A generator for the derived stream ``(base_seed, *key)``."""
    return np.random.default_rng(derive_seed_sequence(base_seed, *key))


def derive_seeds(base_seed: int, count: int, *prefix: int) -> Tuple[int, ...]:
    """``count`` 64-bit integer seeds derived from ``(base_seed, prefix, i)``.

    Convenience for components that persist seeds (experiment logs,
    worker handoff) rather than generators.
    """
    return tuple(
        int(derive_seed_sequence(base_seed, *prefix, i).generate_state(1, np.uint64)[0])
        for i in range(count)
    )
