"""ASCII visualization of placements and topologies.

Text renderings in the spirit of the paper's figures: the express-link
arc diagram of Figure 2(b), the connection-matrix dot diagram of
Figure 2(a) (via :class:`~repro.core.connection_matrix.
ConnectionMatrix.__str__`), a 2D radix map of the mesh, and per-pair
latency tables.  Everything renders to plain strings so it works in
logs, terminals, and doctests alike.
"""

from __future__ import annotations

from typing import List

from repro.core.latency import row_head_latency_matrix
from repro.routing.shortest_path import HopCostModel
from repro.topology.mesh import MeshTopology
from repro.topology.row import RowPlacement


def render_row(placement: RowPlacement) -> str:
    """Arc diagram of one row (Figure 2(b) style).

    Express links are drawn as horizontal spans above the router line,
    longest on top; local links are implicit in the router line.
    """
    n = placement.n
    cell = 4
    width = cell * (n - 1) + 3
    lines: List[str] = []
    for i, j in sorted(placement.express_links, key=lambda l: (l[1] - l[0], l)):
        row = [" "] * width
        a, b = cell * i + 1, cell * j + 1
        row[a] = row[b] = "+"
        for k in range(a + 1, b):
            row[k] = "-"
        lines.append("".join(row).rstrip())
    routers = "".join(f"[{i}]" + " " * (cell - 3) for i in range(n)).rstrip()
    return "\n".join(list(reversed(lines)) + [routers])


def render_cross_sections(placement: RowPlacement, limit: int | None = None) -> str:
    """Bar chart of cross-section link counts (the Eq. 3 constraint)."""
    counts = placement.cross_section_counts()
    peak = max(counts)
    lines = []
    for k, c in enumerate(counts):
        bar = "#" * c
        cap = f" / {limit}" if limit is not None else ""
        lines.append(f"  {k}-{k + 1}: {bar} ({c}{cap})")
    header = f"cross-section link counts (max {peak}):"
    return "\n".join([header, *lines])


def render_mesh_radix(topology: MeshTopology) -> str:
    """2D grid of router radixes (port counts without the NI)."""
    lines = []
    for y in range(topology.height):
        cells = []
        for x in range(topology.n):
            cells.append(f"{topology.radix(topology.node_id(x, y)):2d}")
        lines.append(" ".join(cells))
    return "\n".join(lines)


def render_latency_matrix(
    placement: RowPlacement,
    cost: HopCostModel | None = None,
) -> str:
    """All-pairs row head latencies as an aligned integer table."""
    dist = row_head_latency_matrix(placement, cost)
    n = placement.n
    width = max(len(f"{dist.max():.0f}"), 2) + 1
    header = "      " + "".join(f"{j:>{width}}" for j in range(n))
    lines = [header]
    for i in range(n):
        cells = "".join(f"{dist[i, j]:>{width}.0f}" for j in range(n))
        lines.append(f"  {i:>2} |{cells}")
    return "\n".join(lines)


def render_degree_histogram(topology: MeshTopology) -> str:
    """Histogram of router radixes (the Section 4.6 port-count story)."""
    hist = topology.degree_histogram()
    lines = ["radix  routers"]
    for radix in sorted(hist):
        lines.append(f"{radix:>5}  {'#' * hist[radix]} ({hist[radix]})")
    lines.append(f"average radix: {topology.average_radix():.2f}")
    return "\n".join(lines)


def to_dot(topology: MeshTopology, include_locals: bool = True) -> str:
    """Graphviz DOT rendering of a topology.

    Routers become grid-positioned nodes; local links are thin edges,
    express links thick colored ones with their length as the label.
    Render with ``dot -Kneato -n -Tpng``.
    """
    lines = [
        "graph noc {",
        "  node [shape=box, fontsize=10, width=0.35, height=0.25];",
    ]
    for v in range(topology.num_nodes):
        x, y = topology.coords(v)
        lines.append(f'  n{v} [label="{v}", pos="{x},{-y}!"];')
    for a, b, _dim in topology.channels():
        length = topology.channel_length(a, b)
        if length <= 1:
            if include_locals:
                lines.append(f"  n{a} -- n{b} [color=gray];")
        else:
            lines.append(
                f'  n{a} -- n{b} [color=blue, penwidth=2, label="{length}"];'
            )
    lines.append("}")
    return "\n".join(lines)


def summarize_topology(topology: MeshTopology) -> str:
    """One-paragraph structural summary of a topology."""
    chans = topology.channels()
    express = [c for c in chans if topology.channel_length(c[0], c[1]) > 1]
    return (
        f"{topology.n}x{topology.height} mesh: {topology.num_nodes} routers, "
        f"{len(chans)} bidirectional channels ({len(express)} express), "
        f"max cross-section {topology.max_cross_section()}, "
        f"bisection {topology.bisection_links()} links, "
        f"average radix {topology.average_radix():.2f}"
    )
