"""Channel-load analysis tests: mesh closed forms + HFB seam bottleneck."""

import numpy as np
import pytest

from repro.analysis.channel_load import (
    bisection_loads,
    channel_loads,
    load_balance_stats,
    uniform_gamma,
)
from repro.core.latency import PacketMix
from repro.routing.tables import RoutingTables
from repro.topology.flattened_butterfly import hybrid_flattened_butterfly
from repro.topology.mesh import MeshTopology
from repro.topology.row import RowPlacement


def tables_for(topology):
    return RoutingTables.build(topology)


class TestBasics:
    def test_loads_conserve_total_traffic(self):
        # Sum of loads == expected flits * expected hops per packet.
        tables = tables_for(MeshTopology.mesh(4))
        mix = PacketMix.single(256)
        report = channel_loads(tables, mix=mix, flit_bits=256)
        total = sum(report.loads.values())
        # Uniform 4x4 mesh: mean hop count over distinct pairs.
        g = uniform_gamma(16)
        from repro.routing.dor import route_hops

        expected = sum(
            g[s, d] * route_hops(tables, s, d)
            for s in range(16)
            for d in range(16)
            if s != d
        )
        assert total == pytest.approx(expected)

    def test_flit_scaling(self):
        tables = tables_for(MeshTopology.mesh(4))
        wide = channel_loads(tables, mix=PacketMix.single(512), flit_bits=256)
        narrow = channel_loads(tables, mix=PacketMix.single(512), flit_bits=128)
        assert narrow.max_load_per_packet == pytest.approx(
            2 * wide.max_load_per_packet
        )

    def test_symmetric_mesh_loads_symmetric(self):
        tables = tables_for(MeshTopology.mesh(4))
        report = channel_loads(tables)
        # Mirror symmetry: load(0->1) == load(3->2) on row 0.
        assert report.load_of(0, 1) == pytest.approx(report.load_of(3, 2))

    def test_gamma_shape_checked(self):
        tables = tables_for(MeshTopology.mesh(4))
        with pytest.raises(Exception):
            channel_loads(tables, gamma=np.ones((4, 4)))

    def test_single_flow_loads_route_only(self):
        tables = tables_for(MeshTopology.mesh(4))
        g = np.zeros((16, 16))
        g[0, 3] = 1.0
        report = channel_loads(tables, gamma=g, mix=PacketMix.single(256), flit_bits=256)
        assert report.load_of(0, 1) == pytest.approx(1.0)
        assert report.load_of(1, 2) == pytest.approx(1.0)
        assert report.load_of(4, 5) == 0.0


class TestPaperClaims:
    def test_hfb_seam_is_the_bottleneck(self):
        tables = tables_for(hybrid_flattened_butterfly(8))
        report = channel_loads(tables, flit_bits=64)
        seam = bisection_loads(report, tables)
        # The busiest channel is one of the seam links.
        assert report.bottleneck in seam

    def test_hfb_throughput_bound_below_half_mesh(self):
        mesh_tables = tables_for(MeshTopology.mesh(8))
        hfb_tables = tables_for(hybrid_flattened_butterfly(8))
        mesh_bound = channel_loads(mesh_tables, flit_bits=256).saturation_packets_per_cycle
        hfb_bound = channel_loads(hfb_tables, flit_bits=64).saturation_packets_per_cycle
        # Paper Figure 8(b): HFB throughput below half of the mesh.
        assert hfb_bound < 0.55 * mesh_bound

    def test_dc_sa_recovers_bandwidth(self):
        # The paper's D&C_SA recovers much of the HFB's lost throughput.
        p = RowPlacement(
            8, frozenset({(0, 2), (0, 4), (1, 4), (2, 4), (4, 6), (4, 7), (5, 7)})
        )
        dc_tables = tables_for(MeshTopology.uniform(p))
        hfb_tables = tables_for(hybrid_flattened_butterfly(8))
        dc_bound = channel_loads(dc_tables, flit_bits=64).saturation_packets_per_cycle
        hfb_bound = channel_loads(hfb_tables, flit_bits=64).saturation_packets_per_cycle
        assert dc_bound > 1.2 * hfb_bound

    def test_mesh_bound_matches_theory(self):
        # Uniform n x n mesh under XY: the center cross-section channel
        # carries gamma_total * flits * n/4 per direction... verify the
        # known closed form via the generic machinery instead: the
        # bound must equal 1 / max-load and be finite.
        tables = tables_for(MeshTopology.mesh(8))
        report = channel_loads(tables, mix=PacketMix.single(256), flit_bits=256)
        stats = load_balance_stats(report)
        assert stats["max"] >= stats["mean"]
        assert report.saturation_packets_per_cycle == pytest.approx(
            1.0 / report.max_load_per_packet
        )


@pytest.mark.slow
class TestSimulatorAgreement:
    def test_simulated_saturation_below_analytical_bound(self):
        # The cycle-accurate simulator can never beat the ideal bound,
        # and should come reasonably close on a small mesh.
        from repro.sim.config import SimConfig
        from repro.sim.engine import Simulator
        from repro.traffic.injection import SyntheticTraffic
        from repro.traffic.patterns import make_pattern

        topo = MeshTopology.mesh(4)
        tables = tables_for(topo)
        mix = PacketMix.paper_default()
        bound = channel_loads(tables, mix=mix, flit_bits=128).saturation_packets_per_cycle

        best_accepted = 0.0
        for aggregate in (bound * 0.5, bound * 0.9, bound * 1.5):
            cfg = SimConfig(
                flit_bits=128,
                warmup_cycles=500,
                measure_cycles=1_000,
                max_cycles=4_000,
                seed=7,
            )
            traffic = SyntheticTraffic(
                make_pattern("uniform_random", 4),
                rate=min(aggregate / 16, 1.0),
                rng=7,
            )
            summary = Simulator(topo, cfg, traffic).run().summary
            best_accepted = max(best_accepted, summary.throughput_packets_per_cycle)
        assert best_accepted <= bound * 1.05
        assert best_accepted >= bound * 0.5


class TestDegenerateInputs:
    def test_empty_report_bottleneck_is_none(self):
        # Self-traffic only: every route is zero-length, no channel is
        # ever touched, and the report must degrade gracefully.
        topo = MeshTopology.mesh(3)
        gamma = np.eye(9)
        report = channel_loads(tables_for(topo), gamma)
        assert report.loads == {}
        assert report.bottleneck is None
        assert report.max_load_per_packet == 0.0

    def test_empty_report_stats_are_zero(self):
        topo = MeshTopology.mesh(3)
        report = channel_loads(tables_for(topo), np.eye(9))
        stats = load_balance_stats(report)
        assert stats == {
            "channels": 0.0, "mean": 0.0, "max": 0.0, "p95": 0.0,
            "imbalance": 0.0,
        }

    def test_uniform_gamma_single_node_all_zero(self):
        g = uniform_gamma(1)
        assert g.shape == (1, 1)
        assert g.sum() == 0.0

    def test_all_zero_loads_are_balanced_not_an_error(self):
        topo = MeshTopology.mesh(3)
        report = channel_loads(tables_for(topo))
        zeroed = type(report)(
            loads={k: 0.0 for k in report.loads},
            flits_per_packet=report.flits_per_packet,
            max_load_per_packet=0.0,
        )
        stats = load_balance_stats(zeroed)
        assert stats["mean"] == 0.0
        assert stats["imbalance"] == 0.0

    def test_zero_mean_with_positive_max_is_infinite_imbalance(self):
        # Unreachable from nonnegative loads, but the contract is a
        # defined value, never ZeroDivisionError: a zero mean with any
        # positive peak reports infinite imbalance.
        topo = MeshTopology.mesh(3)
        report = channel_loads(tables_for(topo))
        loads = {k: 0.0 for k in report.loads}
        # The smallest subnormal: a positive peak whose mean over the
        # channel count underflows to exactly zero.
        loads[next(iter(loads))] = 5e-324
        degenerate = type(report)(
            loads=loads,
            flits_per_packet=report.flits_per_packet,
            max_load_per_packet=0.0,
        )
        assert np.array(list(loads.values())).mean() == 0.0
        stats = load_balance_stats(degenerate)
        assert stats["imbalance"] == float("inf")
