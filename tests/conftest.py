"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.core.annealing import AnnealingParams
from repro.topology.row import RowPlacement


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------

@st.composite
def row_placements(draw, min_n: int = 3, max_n: int = 10, max_links: int = 8):
    """Arbitrary valid RowPlacements (no cross-section limit applied)."""
    n = draw(st.integers(min_n, max_n))
    num_links = draw(st.integers(0, max_links))
    links = set()
    for _ in range(num_links):
        i = draw(st.integers(0, n - 3))
        j = draw(st.integers(i + 2, n - 1))
        links.add((i, j))
    return RowPlacement(n, frozenset(links))


@st.composite
def limited_row_placements(draw, min_n: int = 3, max_n: int = 10, max_limit: int = 5):
    """(placement, limit) pairs where the placement satisfies the limit."""
    n = draw(st.integers(min_n, max_n))
    limit = draw(st.integers(2, max_limit))
    placement = RowPlacement.mesh(n)
    for _ in range(draw(st.integers(0, 10))):
        i = draw(st.integers(0, n - 3))
        j = draw(st.integers(i + 2, n - 1))
        candidate = placement.with_link(i, j)
        if candidate.satisfies_limit(limit):
            placement = candidate
    return placement, limit


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------

@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def quick_sa():
    """A fast annealing schedule for tests."""
    return AnnealingParams(total_moves=300, moves_per_cooldown=100)
