"""Simulated annealing engine tests (Section 4.4, Table 1)."""

import math

import pytest

from repro.core.annealing import (
    AnnealingParams,
    MemoizedObjective,
    anneal,
)
from repro.core.connection_matrix import ConnectionMatrix
from repro.core.latency import RowObjective, mean_row_head_latency
from repro.topology.row import RowPlacement


class TestParams:
    def test_paper_defaults(self):
        p = AnnealingParams()
        assert p.initial_temperature == 10.0
        assert p.total_moves == 10_000
        assert p.cooldown_scale == 2.0
        assert p.moves_per_cooldown == 1_000

    def test_temperature_schedule(self):
        p = AnnealingParams()
        assert p.temperature(0) == 10.0
        assert p.temperature(999) == 10.0
        assert p.temperature(1_000) == 5.0
        assert p.temperature(3_500) == pytest.approx(10.0 / 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            AnnealingParams(initial_temperature=0)
        with pytest.raises(ValueError):
            AnnealingParams(cooldown_scale=1.0)
        with pytest.raises(ValueError):
            AnnealingParams(moves_per_cooldown=0)
        with pytest.raises(ValueError):
            AnnealingParams(total_moves=-1)


class TestMemoizedObjective:
    def test_counts_unique_evaluations(self):
        memo = MemoizedObjective(RowObjective())
        p = RowPlacement.mesh(6)
        memo(p)
        memo(p)
        assert memo.evaluations == 1
        assert memo.calls == 2

    def test_cache_correctness(self):
        memo = MemoizedObjective(RowObjective())
        p = RowPlacement(6, frozenset({(0, 3)}))
        assert memo(p) == pytest.approx(RowObjective()(p))


class TestAnneal:
    def test_degenerate_space_returns_mesh(self, quick_sa, rng):
        result = anneal(ConnectionMatrix.zeros(8, 1), RowObjective(), quick_sa, rng)
        assert result.best_placement == RowPlacement.mesh(8)
        assert result.accepted_moves == 0

    def test_improves_from_mesh(self, quick_sa, rng):
        result = anneal(ConnectionMatrix.zeros(8, 4), RowObjective(), quick_sa, rng)
        mesh_energy = mean_row_head_latency(RowPlacement.mesh(8))
        assert result.best_energy < mesh_energy

    def test_best_energy_matches_best_placement(self, quick_sa, rng):
        result = anneal(ConnectionMatrix.zeros(8, 4), RowObjective(), quick_sa, rng)
        assert result.best_energy == pytest.approx(
            mean_row_head_latency(result.best_placement)
        )

    def test_best_placement_is_valid(self, quick_sa, rng):
        result = anneal(ConnectionMatrix.random(8, 4, rng), RowObjective(), quick_sa, rng)
        result.best_placement.validate(4)

    def test_trace_is_monotone_nonincreasing(self, quick_sa, rng):
        result = anneal(ConnectionMatrix.zeros(8, 4), RowObjective(), quick_sa, rng)
        energies = [e for _, e in result.trace]
        assert all(a >= b for a, b in zip(energies, energies[1:]))

    def test_evaluation_budget_respected(self, rng):
        params = AnnealingParams(total_moves=5_000, moves_per_cooldown=1_000)
        result = anneal(
            ConnectionMatrix.zeros(8, 4),
            RowObjective(),
            params,
            rng,
            max_evaluations=25,
        )
        assert result.evaluations <= 26  # initial + budget boundary

    def test_initial_matrix_not_mutated(self, quick_sa, rng):
        m = ConnectionMatrix.zeros(8, 4)
        anneal(m, RowObjective(), quick_sa, rng)
        assert m == ConnectionMatrix.zeros(8, 4)

    def test_small_instance_reaches_optimum(self, rng):
        # P~(4, 2) has 4 matrices; SA must find the best quickly.
        params = AnnealingParams(total_moves=100, moves_per_cooldown=50)
        result = anneal(ConnectionMatrix.zeros(4, 2), RowObjective(), params, rng)
        from repro.core.branch_bound import exhaustive_matrix_search

        exact = exhaustive_matrix_search(4, 2, RowObjective())
        assert result.best_energy == pytest.approx(exact.energy)

    def test_deterministic_given_seed(self, quick_sa):
        import numpy as np

        r1 = anneal(ConnectionMatrix.zeros(8, 4), RowObjective(), quick_sa, np.random.default_rng(5))
        r2 = anneal(ConnectionMatrix.zeros(8, 4), RowObjective(), quick_sa, np.random.default_rng(5))
        assert r1.best_energy == r2.best_energy
        assert r1.best_placement == r2.best_placement

    def test_improvement_property(self, quick_sa, rng):
        result = anneal(ConnectionMatrix.zeros(8, 4), RowObjective(), quick_sa, rng)
        assert 0 <= result.improvement < 1
