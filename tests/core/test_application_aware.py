"""Application-aware optimization tests (Section 5.6.4)."""

import numpy as np
import pytest

from repro.core.annealing import AnnealingParams
from repro.core.application_aware import (
    col_weights,
    optimize_application_aware,
    row_weights,
    weighted_average_head_latency,
)
from repro.core.latency import mean_row_head_latency
from repro.routing.shortest_path import HopCostModel, directional_paths
from repro.topology.mesh import MeshTopology
from repro.topology.row import RowPlacement
from repro.util.errors import ConfigurationError

QUICK = AnnealingParams(total_moves=300, moves_per_cooldown=100)


def brute_force_weighted_head_latency(topology: MeshTopology, gamma: np.ndarray) -> float:
    """Ground truth: sum gamma[s,d] * (row leg + column leg) directly."""
    n = topology.n
    cost = HopCostModel()
    row_d = [directional_paths(p, cost)[0] for p in topology.row_placements]
    col_d = [directional_paths(p, cost)[0] for p in topology.col_placements]
    total = 0.0
    for s in range(n * n):
        sx, sy = topology.coords(s)
        for d in range(n * n):
            if gamma[s, d] == 0:
                continue
            dx, dy = topology.coords(d)
            total += gamma[s, d] * (row_d[sy][sx, dx] + col_d[dx][sy, dy])
    return total / gamma.sum()


class TestWeights:
    def test_gamma_shape_checked(self):
        with pytest.raises(ConfigurationError):
            row_weights(np.ones((4, 4)), 4)

    def test_negative_rejected(self):
        g = np.ones((16, 16))
        g[0, 1] = -1
        with pytest.raises(ConfigurationError):
            row_weights(g, 4)

    def test_single_flow_row_weight(self):
        n = 4
        g = np.zeros((16, 16))
        src = 1  # (x=1, y=0)
        dst = 14  # (x=2, y=3)
        g[src, dst] = 5.0
        rw = row_weights(g, n)
        assert rw[0][1, 2] == 5.0  # row 0 carries x 1 -> 2
        assert sum(w.sum() for w in rw) == 5.0

    def test_single_flow_col_weight(self):
        n = 4
        g = np.zeros((16, 16))
        g[1, 14] = 5.0  # turns at (2, 0), rides column 2 from y0 to y3
        cw = col_weights(g, n)
        assert cw[2][0, 3] == 5.0
        assert sum(w.sum() for w in cw) == 5.0

    def test_uniform_gamma_recovers_unweighted(self):
        n = 4
        g = np.ones((16, 16))
        np.fill_diagonal(g, 0)
        topo = MeshTopology.mesh(n)
        weighted = weighted_average_head_latency(topo, g)
        brute = brute_force_weighted_head_latency(topo, g)
        assert weighted == pytest.approx(brute)


class TestWeightedLatency:
    def test_matches_brute_force_random_gamma(self, rng):
        n = 4
        g = rng.random((16, 16))
        np.fill_diagonal(g, 0)
        p = RowPlacement(4, frozenset({(0, 2)}))
        topo = MeshTopology.uniform(p)
        assert weighted_average_head_latency(topo, g) == pytest.approx(
            brute_force_weighted_head_latency(topo, g)
        )

    def test_matches_brute_force_per_dimension(self, rng):
        n = 4
        g = rng.random((16, 16))
        np.fill_diagonal(g, 0)
        rows = [RowPlacement.mesh(4), RowPlacement(4, frozenset({(0, 2)}))] * 2
        cols = [RowPlacement(4, frozenset({(1, 3)}))] * 4
        topo = MeshTopology.per_dimension(rows, cols)
        assert weighted_average_head_latency(topo, g) == pytest.approx(
            brute_force_weighted_head_latency(topo, g)
        )


class TestObjectiveSlicing:
    def test_slice_restricts_weights(self):
        import numpy as np

        from repro.core.latency import RowObjective

        w = np.zeros((8, 8))
        w[0, 7] = 1.0  # only the full-row flow has weight
        obj = RowObjective(weights=tuple(map(tuple, w.tolist())))
        left = obj.for_slice(0, 4)
        # The sliced weights contain no traffic: evaluation falls back
        # to the unweighted mean so the sub-search stays well defined.
        from repro.core.latency import mean_row_head_latency
        from repro.topology.row import RowPlacement as RP

        assert left(RP.mesh(4)) == pytest.approx(mean_row_head_latency(RP.mesh(4)))

    def test_unweighted_slice_is_identity(self):
        from repro.core.latency import RowObjective

        obj = RowObjective()
        assert obj.for_slice(0, 4) is obj

    def test_weighted_slice_keeps_block(self):
        import numpy as np

        from repro.core.latency import RowObjective

        w = np.zeros((8, 8))
        w[1, 3] = 2.0
        obj = RowObjective(weights=tuple(map(tuple, w.tolist())))
        left = obj.for_slice(0, 4)
        # Pair (1, 3) inside the slice keeps its weight: the objective
        # equals the latency of that single pair.
        assert left(RowPlacement.mesh(4)) == pytest.approx(8.0)  # 2 hops * 4


class TestOptimizeApplicationAware:
    def test_improves_on_skewed_traffic(self, rng):
        n = 4
        g = np.zeros((16, 16))
        # All traffic goes row-wise 0 -> 3 on row 0.
        g[0, 3] = 1.0
        result = optimize_application_aware(g, n, 2, params=QUICK, rng=1)
        # Row 0 should get the (0,3) express link: one-hop path.
        d, _ = directional_paths(result.topology.row_placements[0])
        assert d[0, 3] == 6.0  # Tr + 3 units
        assert result.weighted_head_latency == pytest.approx(6.0)

    def test_result_valid_everywhere(self, rng):
        n = 4
        g = rng.random((16, 16))
        np.fill_diagonal(g, 0)
        result = optimize_application_aware(g, n, 2, params=QUICK, rng=1)
        for p in result.topology.row_placements + result.topology.col_placements:
            p.validate(2)

    def test_no_worse_than_general_purpose(self, rng):
        n = 4
        g = rng.random((16, 16)) ** 3  # skewed
        np.fill_diagonal(g, 0)
        from repro.core.optimizer import solve_row_problem

        from repro.api import SearchConfig

        general = solve_row_problem(n, 2, params=QUICK, config=SearchConfig(seed=2))
        general_topo = MeshTopology.uniform(general.placement)
        general_head = weighted_average_head_latency(general_topo, g)
        aware = optimize_application_aware(g, n, 2, params=QUICK, rng=2)
        assert aware.weighted_head_latency <= general_head + 1e-6

    def test_large_gain_on_strongly_skewed_traffic(self):
        # Referenced by bench_sec564: on traffic concentrated on a few
        # long-distance flows the app-aware optimizer recovers a large
        # fraction of the head latency (>20% vs the general-purpose
        # placement) -- the regime behind the paper's 18.1% claim.
        import numpy as np

        from repro.core.optimizer import solve_row_problem

        n = 8
        gen = np.random.default_rng(3)
        g = np.zeros((64, 64))
        count = 0
        while count < 10:
            a, b = (int(v) for v in gen.integers(64, size=2))
            ax, ay, bx, by = a % 8, a // 8, b % 8, b // 8
            if a != b and abs(ax - bx) + abs(ay - by) >= 7:
                g[a, b] = 1.0
                count += 1
        params = AnnealingParams(total_moves=1_500, moves_per_cooldown=300)
        from repro.api import SearchConfig

        general = solve_row_problem(n, 4, params=params, config=SearchConfig(seed=1))
        general_topo = MeshTopology.uniform(general.placement)
        general_head = weighted_average_head_latency(general_topo, g)
        aware = optimize_application_aware(g, n, 4, params=params, rng=1)
        gain = (general_head - aware.weighted_head_latency) / general_head
        assert gain > 0.15

    def test_total_includes_serialization(self, rng):
        n = 4
        g = np.ones((16, 16))
        np.fill_diagonal(g, 0)
        result = optimize_application_aware(g, n, 2, params=QUICK, rng=1)
        assert result.total_latency == pytest.approx(
            result.weighted_head_latency + result.serialization
        )


class TestSelfTrafficHandling:
    def test_diagonal_stripped_from_weighted_average(self):
        # Self-traffic never enters the network; adding it must not
        # dilute the weighted average.
        n = 4
        rng = np.random.default_rng(3)
        gamma = rng.random((n * n, n * n))
        np.fill_diagonal(gamma, 0.0)
        topo = MeshTopology.uniform(RowPlacement.mesh(n))
        clean = weighted_average_head_latency(topo, gamma)
        diluted = gamma.copy()
        np.fill_diagonal(diluted, 10.0)
        assert weighted_average_head_latency(topo, diluted) == pytest.approx(clean)

    def test_diagonal_only_gamma_rejected(self):
        with pytest.raises(ConfigurationError):
            weighted_average_head_latency(
                MeshTopology.mesh(3), np.eye(9)
            )

    def test_pinned_corrected_average(self):
        # One unit flow (0,0) -> (2,0) on a 3x3 mesh plus self-traffic:
        # the row leg is 2 mesh hops at router_delay 3 + link 1 each,
        # no column leg, so the weighted average is exactly 8.0
        # regardless of the diagonal (which previously diluted it).
        n = 3
        gamma = np.zeros((9, 9))
        gamma[0, 2] = 1.0
        np.fill_diagonal(gamma, 5.0)
        got = weighted_average_head_latency(MeshTopology.mesh(n), gamma)
        assert got == pytest.approx(8.0)

    def test_weights_unchanged_by_diagonal(self):
        n = 3
        rng = np.random.default_rng(9)
        gamma = rng.random((9, 9))
        np.fill_diagonal(gamma, 0.0)
        noisy = gamma.copy()
        np.fill_diagonal(noisy, 7.0)
        for clean_w, noisy_w in zip(row_weights(gamma, n), row_weights(noisy, n)):
            assert np.allclose(clean_w, noisy_w)
        for clean_w, noisy_w in zip(col_weights(gamma, n), col_weights(noisy, n)):
            assert np.allclose(clean_w, noisy_w)


class TestSingleValidation:
    def test_optimize_validates_gamma_once(self, monkeypatch):
        import repro.core.application_aware as mod

        calls = []
        real = mod._check_gamma

        def counting(gamma, n):
            calls.append(n)
            return real(gamma, n)

        monkeypatch.setattr(mod, "_check_gamma", counting)
        n = 3
        rng = np.random.default_rng(1)
        gamma = rng.random((9, 9))
        np.fill_diagonal(gamma, 0.0)
        mod.optimize_application_aware(gamma, n, 2, params=QUICK, rng=7)
        assert len(calls) == 1

    def test_results_identical_with_or_without_diagonal(self):
        n = 3
        rng = np.random.default_rng(4)
        gamma = rng.random((9, 9))
        np.fill_diagonal(gamma, 0.0)
        noisy = gamma.copy()
        np.fill_diagonal(noisy, 3.0)
        a = optimize_application_aware(gamma, n, 2, params=QUICK, rng=11)
        b = optimize_application_aware(noisy, n, 2, params=QUICK, rng=11)
        assert a.weighted_head_latency == b.weighted_head_latency
        for sa, sb in zip(a.row_solutions, b.row_solutions):
            assert sa.placement == sb.placement
        for sa, sb in zip(a.col_solutions, b.col_solutions):
            assert sa.placement == sb.placement
