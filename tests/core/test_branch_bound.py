"""Exact-solver tests: exhaustive enumeration vs branch and bound."""

import pytest

from repro.core.branch_bound import (
    branch_and_bound,
    effective_link_limit,
    exhaustive_matrix_search,
)
from repro.core.latency import RowObjective, mean_row_head_latency
from repro.topology.row import RowPlacement


class TestEffectiveLimit:
    def test_clamps_to_full_connectivity(self):
        assert effective_link_limit(4, 64) == 4
        assert effective_link_limit(8, 64) == 16
        assert effective_link_limit(8, 2) == 2


class TestExhaustive:
    def test_beats_or_equals_mesh(self):
        result = exhaustive_matrix_search(6, 2, RowObjective())
        assert result.energy <= mean_row_head_latency(RowPlacement.mesh(6))

    def test_valid_result(self):
        result = exhaustive_matrix_search(6, 3, RowObjective())
        result.placement.validate(3)

    def test_c1_trivial(self):
        result = exhaustive_matrix_search(6, 1, RowObjective())
        assert result.placement == RowPlacement.mesh(6)

    def test_known_optimum_p42(self):
        # P~(4, 2): the single express link (0,2) or (1,3) is optimal:
        # dist matrix mean drops from 4*avg|i-j| accordingly.
        result = exhaustive_matrix_search(4, 2, RowObjective())
        assert result.placement.express_links in (
            frozenset({(0, 2)}),
            frozenset({(1, 3)}),
            frozenset({(0, 3)}),
        )

    def test_dedup_reduces_evaluations(self):
        result = exhaustive_matrix_search(8, 3, RowObjective())
        assert result.evaluations < result.states_visited

    @pytest.mark.parametrize("n,c", [(8, 2), (8, 3), (6, 4)])
    def test_batched_identical_to_scalar(self, n, c):
        # Population batching is a kernel-launch optimization only:
        # placement, energy, evaluation count and state count must all
        # match the scalar loop, for any batch size.
        scalar = exhaustive_matrix_search(n, c, RowObjective(), batch_size=1)
        for batch_size in (7, 128):
            batched = exhaustive_matrix_search(
                n, c, RowObjective(), batch_size=batch_size
            )
            assert batched.placement == scalar.placement
            assert batched.energy == scalar.energy
            assert batched.evaluations == scalar.evaluations
            assert batched.states_visited == scalar.states_visited


class TestBranchAndBound:
    @pytest.mark.parametrize("n,c", [(4, 2), (5, 2), (6, 2), (6, 3), (8, 2)])
    def test_agrees_with_exhaustive(self, n, c):
        obj = RowObjective()
        exact = exhaustive_matrix_search(n, c, obj)
        bb = branch_and_bound(n, c, obj)
        assert bb.energy == pytest.approx(exact.energy)

    def test_valid_result(self):
        result = branch_and_bound(8, 3, RowObjective())
        result.placement.validate(3)

    def test_max_states_aborts_gracefully(self):
        result = branch_and_bound(8, 4, RowObjective(), max_states=10)
        # Still returns *a* valid placement, possibly suboptimal.
        result.placement.validate(4)


class TestFigure12Instances:
    """The paper's exact-comparison instances (small ones in unit tests;
    P(8,4)/P(16,2) run in the benchmark suite)."""

    def test_p42_dc_sa_matches_optimal(self):
        from repro.core.optimizer import solve_row_problem

        obj = RowObjective()
        exact = exhaustive_matrix_search(4, 2, obj)
        from repro.api import SearchConfig

        dc = solve_row_problem(
            4, 2, method="dc_sa", objective=obj, config=SearchConfig(seed=3)
        )
        assert dc.energy == pytest.approx(exact.energy)

    def test_p82_dc_sa_matches_optimal(self):
        from repro.core.annealing import AnnealingParams
        from repro.core.optimizer import solve_row_problem

        obj = RowObjective()
        exact = exhaustive_matrix_search(8, 2, obj)
        from repro.api import SearchConfig

        dc = solve_row_problem(
            8,
            2,
            method="dc_sa",
            objective=obj,
            params=AnnealingParams(total_moves=2_000, moves_per_cooldown=500),
            config=SearchConfig(seed=3),
        )
        assert dc.energy == pytest.approx(exact.energy)
