"""Connection-matrix codec tests (Section 4.4.2, Figure 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.connection_matrix import ConnectionMatrix, enumerate_matrices
from repro.topology.row import RowPlacement
from repro.util.errors import ConfigurationError, InvalidPlacementError

from tests.conftest import limited_row_placements


@st.composite
def matrices(draw, min_n=3, max_n=10, max_limit=5):
    n = draw(st.integers(min_n, max_n))
    limit = draw(st.integers(1, max_limit))
    shape = ConnectionMatrix.shape(n, limit)
    bits = np.array(
        draw(st.lists(st.booleans(), min_size=shape[0] * shape[1], max_size=shape[0] * shape[1]))
    ).reshape(shape)
    return ConnectionMatrix(n, limit, bits)


class TestShape:
    def test_shape_formula(self):
        assert ConnectionMatrix.shape(8, 4) == (6, 3)
        assert ConnectionMatrix.shape(2, 4) == (0, 3)
        assert ConnectionMatrix.shape(8, 1) == (6, 0)

    def test_zeros_decodes_to_mesh(self):
        m = ConnectionMatrix.zeros(8, 4)
        assert m.decode() == RowPlacement.mesh(8)

    def test_bad_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            ConnectionMatrix(8, 4, np.zeros((5, 3), dtype=bool))


class TestDecode:
    def test_paper_figure2_layer(self):
        # Figure 2 layer: connected at routers 3,5,6,7 (1-based interior
        # routers 2..7 are our bit rows 0..5) -> links 2-4 and 4-8
        # (1-based) = (1,3) and (3,7) 0-based; the 1-2 run is dropped.
        bits = np.zeros((6, 1), dtype=bool)
        for router_1based in (3, 5, 6, 7):
            bits[router_1based - 2, 0] = True
        m = ConnectionMatrix(8, 2, bits)
        assert m.decode().express_links == frozenset({(1, 3), (3, 7)})

    def test_all_connected_layer_is_one_long_link(self):
        bits = np.ones((6, 1), dtype=bool)
        m = ConnectionMatrix(8, 2, bits)
        assert m.decode().express_links == frozenset({(0, 7)})

    def test_unit_segments_dropped(self):
        # No connected interior points: every segment has length 1.
        m = ConnectionMatrix.zeros(8, 4)
        assert len(m.decode().express_links) == 0

    def test_layer_links_view(self):
        bits = np.zeros((6, 2), dtype=bool)
        bits[0, 0] = True  # router 1 connected on layer 0 -> link (0, 2)
        m = ConnectionMatrix(8, 3, bits)
        assert m.layer_links(0) == ((0, 2),)
        assert m.layer_links(1) == ()

    def test_tiny_rows(self):
        assert ConnectionMatrix.zeros(2, 4).decode() == RowPlacement.mesh(2)
        bits = np.ones((1, 1), dtype=bool)
        assert ConnectionMatrix(3, 2, bits).decode().express_links == frozenset({(0, 2)})


class TestEncode:
    def test_round_trip_simple(self):
        p = RowPlacement(8, frozenset({(1, 3), (3, 7)}))
        m = ConnectionMatrix.from_placement(p, 2)
        assert m.decode() == p

    def test_touching_links_share_layer(self):
        p = RowPlacement(8, frozenset({(0, 3), (3, 6)}))
        m = ConnectionMatrix.from_placement(p, 2)  # needs only 1 layer
        assert m.decode() == p

    def test_overlapping_links_need_layers(self):
        p = RowPlacement(8, frozenset({(0, 4), (2, 6)}))
        with pytest.raises(InvalidPlacementError):
            ConnectionMatrix.from_placement(p, 2)  # 1 layer insufficient
        m = ConnectionMatrix.from_placement(p, 3)
        assert m.decode() == p

    def test_limit_violation_rejected(self):
        p = RowPlacement.fully_connected(8)
        with pytest.raises(InvalidPlacementError):
            ConnectionMatrix.from_placement(p, 4)


class TestMoves:
    def test_flip_is_involution(self):
        m = ConnectionMatrix.zeros(8, 4)
        m.flip(2, 1)
        assert m.bits[2, 1]
        m.flip(2, 1)
        assert not m.bits[2, 1]

    def test_random_move_in_range(self, rng):
        m = ConnectionMatrix.zeros(8, 4)
        for _ in range(50):
            r, l = m.random_move(rng)
            assert 0 <= r < 6 and 0 <= l < 3

    def test_no_moves_when_degenerate(self, rng):
        with pytest.raises(ConfigurationError):
            ConnectionMatrix.zeros(8, 1).random_move(rng)

    def test_copy_is_independent(self):
        m = ConnectionMatrix.zeros(8, 4)
        c = m.copy()
        c.flip(0, 0)
        assert not m.bits[0, 0]

    def test_equality(self):
        assert ConnectionMatrix.zeros(8, 4) == ConnectionMatrix.zeros(8, 4)
        other = ConnectionMatrix.zeros(8, 4)
        other.flip(0, 0)
        assert ConnectionMatrix.zeros(8, 4) != other


class TestEnumerate:
    def test_counts(self):
        # P~(4, 2): (n-2)(C-1) = 2 bits -> 4 matrices.
        assert len(list(enumerate_matrices(4, 2))) == 4

    def test_refuses_huge_spaces(self):
        with pytest.raises(ConfigurationError):
            list(enumerate_matrices(16, 4))

    def test_covers_all_single_layer_placements(self):
        placements = {m.decode() for m in enumerate_matrices(6, 2)}
        # Every placement representable with one express layer appears.
        assert RowPlacement.mesh(6) in placements
        assert RowPlacement(6, frozenset({(0, 5)})) in placements
        assert RowPlacement(6, frozenset({(0, 2), (2, 4)})) in placements


@settings(max_examples=80, deadline=None)
@given(matrices())
def test_decode_always_valid(m):
    """The key search-space property: every matrix decodes validly."""
    p = m.decode()
    assert p.n == m.n
    p.validate(m.link_limit)  # never raises


@settings(max_examples=60, deadline=None)
@given(limited_row_placements())
def test_encode_decode_round_trip(pl):
    placement, limit = pl
    m = ConnectionMatrix.from_placement(placement, limit)
    assert m.decode() == placement


@settings(max_examples=40, deadline=None)
@given(matrices(max_n=8, max_limit=4))
def test_single_flip_stays_valid(m):
    if m.num_connection_points == 0:
        return
    rng = np.random.default_rng(7)
    r, l = m.random_move(rng)
    m.flip(r, l)
    m.decode().validate(m.link_limit)
