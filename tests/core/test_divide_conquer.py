"""Tests for the divide-and-conquer initial solution I(n, C)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.branch_bound import exhaustive_matrix_search
from repro.core.divide_conquer import initial_solution
from repro.core.latency import RowObjective, mean_row_head_latency
from repro.topology.row import RowPlacement


class TestBaseCases:
    def test_c1_is_mesh(self):
        sol = initial_solution(8, 1, RowObjective())
        assert sol.placement == RowPlacement.mesh(8)

    def test_tiny_row_is_mesh(self):
        sol = initial_solution(2, 4, RowObjective())
        assert sol.placement == RowPlacement.mesh(2)

    def test_base_case_is_optimal(self):
        # n <= 4 goes through exact enumeration.
        sol = initial_solution(4, 2, RowObjective())
        exact = exhaustive_matrix_search(4, 2, RowObjective())
        assert sol.energy == pytest.approx(exact.energy)


class TestRecursive:
    @pytest.mark.parametrize("n,c", [(8, 2), (8, 3), (8, 4), (16, 2), (16, 4)])
    def test_valid_and_beats_mesh(self, n, c):
        sol = initial_solution(n, c, RowObjective())
        sol.placement.validate(c)
        assert sol.energy < mean_row_head_latency(RowPlacement.mesh(n))

    def test_energy_consistent(self):
        sol = initial_solution(8, 4, RowObjective())
        assert sol.energy == pytest.approx(mean_row_head_latency(sol.placement))

    def test_close_to_optimal_8_4(self):
        sol = initial_solution(8, 4, RowObjective())
        exact = exhaustive_matrix_search(8, 4, RowObjective())
        # The seed alone should land within 15% of optimal.
        assert sol.energy <= exact.energy * 1.15

    def test_counts_evaluations(self):
        sol = initial_solution(8, 4, RowObjective())
        assert sol.evaluations > 0

    def test_larger_budget_no_worse(self):
        # More layers can only help (weak monotonicity in C).
        e2 = initial_solution(8, 2, RowObjective()).energy
        e4 = initial_solution(8, 4, RowObjective()).energy
        assert e4 <= e2 + 1e-9

    def test_big_limit_clamped(self):
        # C beyond full connectivity must not blow up the base case.
        sol = initial_solution(8, 64, RowObjective())
        sol.placement.validate(16)  # C_full(8) = 16

    @pytest.mark.parametrize("n,c", [(8, 4), (13, 3), (16, 4)])
    def test_batched_combine_identical_to_scalar(self, n, c):
        # The combine step prices the base + all bridging candidates in
        # one Floyd-Warshall stack; results must match the scalar loop
        # exactly, including the evaluation count.
        scalar = initial_solution(n, c, RowObjective(), batch_size=1)
        for batch_size in (2, 128):
            batched = initial_solution(n, c, RowObjective(), batch_size=batch_size)
            assert batched.placement == scalar.placement
            assert batched.energy == scalar.energy
            assert batched.evaluations == scalar.evaluations


@settings(max_examples=10, deadline=None)
@given(st.integers(5, 12), st.integers(2, 4))
def test_arbitrary_sizes_valid(n, c):
    sol = initial_solution(n, c, RowObjective())
    sol.placement.validate(c)
    assert sol.energy <= mean_row_head_latency(RowPlacement.mesh(n)) + 1e-9
