"""Golden regression anchors: known-optimal energies for small instances.

Values computed by exhaustive enumeration (and cross-checked by branch
and bound); any change to the latency model, the matrix decoding, or
the Floyd-Warshall evaluator that shifts these is a regression.
Energies are mean row head latencies over all ordered pairs including
the zero diagonal (Eq. 2 normalization), with Tr = 3, Tl = 1.
"""

import pytest

from repro.core.branch_bound import exhaustive_matrix_search
from repro.core.latency import (
    RowObjective,
    mean_row_head_latency,
    network_average_latency,
)
from repro.core.search_space import (
    exhaustive_grid2d_search,
    exhaustive_hetero_search,
)
from repro.topology.flattened_butterfly import hybrid_flattened_butterfly_row
from repro.topology.row import RowPlacement

#: (n, C) -> optimal mean row head latency.
GOLDEN_OPTIMA = {
    (4, 2): 4.25,
    (4, 4): 3.5,
    (5, 2): 4.96,
    (6, 2): 6.111111111111111,
    (6, 3): 5.611111111111111,
    (8, 2): 7.6875,
    (8, 3): 7.03125,
    (8, 4): 6.5625,
}

#: (n, C) -> (replicated-row optimum, grid2d optimum).  The hetero
#: optimum is omitted because with shared (uniform) weights the hetero
#: objective separates across rows: it equals the row optimum *bit for
#: bit* (asserted below).  The single strict grid2d improvement in this
#: table is (6, 3): pooling the per-cut budget admits designs no
#: replicated row can express, and 49/9 < 101/18.
GOLDEN_SPACE_OPTIMA = {
    (4, 2): (4.25, 4.25),
    (4, 3): (3.875, 3.875),
    (4, 4): (3.5, 3.5),
    (5, 2): (4.96, 4.96),
    (5, 3): (4.72, 4.72),
    (5, 4): (4.48, 4.48),
    (6, 2): (6.111111111111111, 6.111111111111111),
    (6, 3): (5.611111111111111, 5.444444444444445),
    (6, 4): (5.277777777777778, 5.277777777777778),
}


@pytest.mark.parametrize("instance,energy", sorted(GOLDEN_OPTIMA.items()))
def test_optimal_energies(instance, energy):
    n, c = instance
    result = exhaustive_matrix_search(n, c, RowObjective())
    assert result.energy == pytest.approx(energy)


@pytest.mark.parametrize(
    "instance,energies", sorted(GOLDEN_SPACE_OPTIMA.items())
)
def test_space_optima_ordering_and_values(instance, energies):
    n, c = instance
    row_energy, grid2d_energy = energies
    row = exhaustive_matrix_search(n, c, RowObjective())
    het = exhaustive_hetero_search(n, c)
    g2 = exhaustive_grid2d_search(n, c)
    # Feasible-set nesting row <= hetero <= grid2d gives the ordering;
    # separability makes the first inequality a bitwise equality.
    assert het.energy == row.energy
    assert g2.energy <= het.energy <= row.energy
    assert row.energy == row_energy
    assert g2.energy == grid2d_energy
    assert het.placement.all_rows_equal
    het.placement.validate(c)
    g2.placement.validate(c)


def test_first_strict_grid2d_improvement_is_6_3():
    # Scanning the exhaustive table in (n, C) order, (6, 3) is the
    # first instance where the pooled 2D budget strictly beats every
    # replicated row design -- and the optimum is exactly 49/9.
    strict = [
        inst
        for inst, (row_e, g2_e) in sorted(GOLDEN_SPACE_OPTIMA.items())
        if g2_e < row_e
    ]
    assert strict == [(6, 3)]
    assert GOLDEN_SPACE_OPTIMA[(6, 3)][1] == 49.0 / 9.0
    result = exhaustive_grid2d_search(6, 3)
    assert result.energy == 49.0 / 9.0
    # The winner needs the pool: some row's private cross section
    # exceeds C, so no hetero (per-row-budget) design matches it.
    assert not all(r.satisfies_limit(3) for r in result.placement.rows)


class TestClosedForms:
    def test_mesh_row_means(self):
        # Mesh row mean = 4 * (n^2 - 1) / (3n).
        for n in (4, 8, 16):
            expected = 4.0 * (n * n - 1) / (3.0 * n)
            assert mean_row_head_latency(RowPlacement.mesh(n)) == pytest.approx(expected)

    def test_mesh_8x8_paper_baseline(self):
        b = network_average_latency(RowPlacement.mesh(8), 1)
        assert b.head == pytest.approx(21.0)
        assert b.serialization == pytest.approx(1.2)

    def test_hfb_8x8_design_point(self):
        row = hybrid_flattened_butterfly_row(8)
        b = network_average_latency(row, 4)
        assert b.head == pytest.approx(15.0)
        assert b.serialization == pytest.approx(0.2 * 8 + 0.8 * 2)

    def test_fully_connected_row_mean(self):
        # All pairs one hop: mean = sum over pairs of (3 + |i-j|) / n^2.
        n = 4
        total = sum(3 + abs(i - j) for i in range(n) for j in range(n) if i != j)
        assert mean_row_head_latency(RowPlacement.fully_connected(n)) == pytest.approx(
            total / (n * n)
        )

    def test_figure2_optimum_value(self):
        # The paper's worked example P~(8,4): optimal 2D head latency
        # 2 * 6.5625 = 13.125 cycles in our model.
        assert GOLDEN_OPTIMA[(8, 4)] * 2 == pytest.approx(13.125)
