"""Incremental-mode annealing: byte-identical trajectories to full FW.

The incremental engine replaces how each SA candidate is priced, not
what the search does -- so every observable of the run (placements,
energies, evaluation counts, traces, accept statistics) must be
bit-identical to the full Floyd-Warshall path for the same seed.
"""

import numpy as np
import pytest

from repro.api import SearchConfig
from repro.core.annealing import AnnealingParams, anneal
from repro.core.connection_matrix import ConnectionMatrix
from repro.core.latency import RowObjective
from repro.core.optimizer import optimize, solve_row_problem
from repro.core.parallel import parallel_sweep
from repro.obs import Instrumentation, MemorySink
from repro.util.errors import ConfigurationError

SMOKE = AnnealingParams(total_moves=600, moves_per_cooldown=150)


def run_pair(n, limit, seed, objective=None, max_evaluations=None,
             resync_every=100):
    """One anneal under each mode from identical starting points."""
    obj = objective or RowObjective()
    rng = np.random.default_rng(seed)
    start = ConnectionMatrix.random(n, limit, rng=rng)
    full = anneal(
        start.copy(), obj, SMOKE, rng=np.random.default_rng(seed + 1),
        max_evaluations=max_evaluations,
    )
    incr = anneal(
        start.copy(), obj, SMOKE, rng=np.random.default_rng(seed + 1),
        max_evaluations=max_evaluations, incremental=True,
        resync_every=resync_every,
    )
    return full, incr


def assert_trajectory_identical(full, incr):
    assert incr.best_placement == full.best_placement
    assert incr.best_energy == full.best_energy
    assert incr.initial_energy == full.initial_energy
    assert incr.evaluations == full.evaluations
    assert incr.accepted_moves == full.accepted_moves
    assert incr.uphill_accepted == full.uphill_accepted
    assert incr.trace == full.trace


class TestAnnealParity:
    @pytest.mark.parametrize("n,limit", [(6, 2), (8, 3), (8, 4), (16, 3)])
    def test_byte_identical_trajectory(self, n, limit):
        assert_trajectory_identical(*run_pair(n, limit, seed=17 * n + limit))

    def test_parity_under_evaluation_cap(self):
        full, incr = run_pair(8, 3, seed=23, max_evaluations=150)
        assert_trajectory_identical(full, incr)
        assert full.evaluations <= 150

    def test_parity_with_weighted_objective(self):
        rng = np.random.default_rng(1)
        w = tuple(map(tuple, rng.random((8, 8)).tolist()))
        full, incr = run_pair(8, 3, seed=29, objective=RowObjective(weights=w))
        assert_trajectory_identical(full, incr)

    def test_parity_with_frequent_selfchecks(self):
        # resync_every=1 forces a full-FW comparison after every accepted
        # move: the strongest drift probe the annealer can run.
        full, incr = run_pair(6, 3, seed=31, resync_every=1)
        assert_trajectory_identical(full, incr)

    def test_incremental_requires_capable_objective(self):
        start = ConnectionMatrix.random(6, 2, rng=np.random.default_rng(0))
        with pytest.raises(ConfigurationError, match="incremental"):
            anneal(start, lambda p: 0.0, SMOKE, rng=1, incremental=True)


class TestObservability:
    def test_incremental_metrics_reported(self):
        obs = Instrumentation(sinks=[MemorySink()])
        start = ConnectionMatrix.random(8, 3, rng=np.random.default_rng(2))
        anneal(
            start, RowObjective(), SMOKE, rng=3, incremental=True,
            resync_every=50, obs=obs,
        )
        counters = obs.metrics.snapshot()["counters"]
        assert counters["sa.eval.incremental"] > 0
        assert counters["sa.eval.full"] >= 1  # the initial pricing
        assert counters["sa.selfcheck"] >= 1
        assert counters.get("sa.resync", 0) == 0  # integral costs: no drift
        total = counters["sa.eval.incremental"] + counters["sa.eval.full"]
        assert total > counters["sa.eval.full"]

    def test_full_mode_reports_no_incremental_counters(self):
        obs = Instrumentation(sinks=[MemorySink()])
        start = ConnectionMatrix.random(6, 2, rng=np.random.default_rng(4))
        anneal(start, RowObjective(), SMOKE, rng=5, obs=obs)
        counters = obs.metrics.snapshot()["counters"]
        assert "sa.eval.incremental" not in counters


class TestEndToEnd:
    def test_optimize_sweep_parity(self):
        base = optimize(8, params=SMOKE, config=SearchConfig(seed=41)).sweep
        incr = optimize(
            8, params=SMOKE,
            config=SearchConfig(seed=41, incremental=True, resync_every=50),
        ).sweep
        assert base.best.link_limit == incr.best.link_limit
        for c, sol in base.solutions.items():
            assert incr.solutions[c].placement == sol.placement
            assert incr.solutions[c].energy == sol.energy
            assert incr.solutions[c].evaluations == sol.evaluations

    def test_solve_row_problem_parity(self):
        base = solve_row_problem(8, 4, params=SMOKE, config=SearchConfig(seed=43))
        incr = solve_row_problem(
            8, 4, params=SMOKE, config=SearchConfig(seed=43, incremental=True)
        )
        assert incr.placement == base.placement
        assert incr.energy == base.energy

    def test_parallel_restarts_parity(self):
        base = parallel_sweep(6, params=SMOKE, base_seed=47, restarts=2, jobs=2)
        incr = parallel_sweep(
            6, params=SMOKE, base_seed=47, restarts=2, jobs=2,
            incremental=True, resync_every=50,
        )
        for c, sol in base.solutions.items():
            assert incr.solutions[c].placement == sol.placement
        assert base.restart_energies == incr.restart_energies
