"""Tests for the analytical latency model (Eqs. 1, 2, 5)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.latency import (
    BandwidthConfig,
    PacketMix,
    RowObjective,
    full_connectivity_limit,
    mean_row_head_latency,
    mesh_average_head_latency_2d,
    network_average_latency,
    network_worst_case_latency,
    row_head_latency_matrix,
    worst_case_head_latency_2d,
)
from repro.routing.shortest_path import HopCostModel
from repro.topology.row import RowPlacement
from repro.util.errors import ConfigurationError

from tests.conftest import row_placements


class TestPacketMix:
    def test_paper_default(self):
        mix = PacketMix.paper_default()
        assert mix.types == ((512, 0.2), (128, 0.8))

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            PacketMix(((512, 0.5), (128, 0.4)))

    def test_serialization_at_256(self):
        # Figure 1's example: 512b packet at 256b flits = 2 cycles.
        mix = PacketMix.paper_default()
        assert mix.serialization_cycles(256) == pytest.approx(0.2 * 2 + 0.8 * 1)

    def test_serialization_at_128(self):
        # Figure 1: halving the width doubles the long packet's flits.
        mix = PacketMix.paper_default()
        assert mix.serialization_cycles(128) == pytest.approx(0.2 * 4 + 0.8 * 1)

    def test_serialization_rounds_up(self):
        mix = PacketMix.single(100)
        assert mix.serialization_cycles(64) == 2

    def test_average_size(self):
        assert PacketMix.paper_default().average_size_bits() == pytest.approx(204.8)

    def test_flits_per_packet(self):
        assert PacketMix.paper_default().flits_per_packet(64) == {512: 8, 128: 2}

    def test_invalid_flit_width(self):
        with pytest.raises(ConfigurationError):
            PacketMix.paper_default().serialization_cycles(0)


class TestBandwidthConfig:
    def test_flit_width_scaling(self):
        bw = BandwidthConfig(base_flit_bits=256)
        assert bw.flit_bits(1) == 256
        assert bw.flit_bits(4) == 64
        assert bw.flit_bits(16) == 16

    def test_non_divisor_rejected(self):
        with pytest.raises(ConfigurationError):
            BandwidthConfig(base_flit_bits=256).flit_bits(3)

    def test_base_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            BandwidthConfig(base_flit_bits=200)

    def test_from_bisection_matches_paper(self):
        # 8x8 at 2 KGb/s (bits/cycle at 1 GHz) -> 128-bit baseline flit.
        assert BandwidthConfig.from_bisection(2048, 8).base_flit_bits == 128
        assert BandwidthConfig.from_bisection(8192, 8).base_flit_bits == 512

    def test_valid_limits_4x4(self):
        # Section 4.1: C in {1, 2, 4} for 4x4.
        assert BandwidthConfig().valid_link_limits(4) == (1, 2, 4)

    def test_valid_limits_8x8(self):
        assert BandwidthConfig().valid_link_limits(8) == (1, 2, 4, 8, 16)

    def test_valid_limits_16x16(self):
        assert BandwidthConfig().valid_link_limits(16) == (1, 2, 4, 8, 16, 32, 64)


class TestFullConnectivityLimit:
    def test_eq4_values(self):
        assert full_connectivity_limit(4) == 4
        assert full_connectivity_limit(8) == 16
        assert full_connectivity_limit(16) == 64

    def test_odd(self):
        assert full_connectivity_limit(5) == 6


class TestRowHeadLatency:
    def test_mesh_closed_form(self):
        # Mesh row: dist(i,j) = 4|i-j|; mean over all n^2 ordered pairs.
        for n in (4, 8):
            d = np.abs(np.subtract.outer(np.arange(n), np.arange(n)))
            expected = 4.0 * d.mean()
            assert mean_row_head_latency(RowPlacement.mesh(n)) == pytest.approx(expected)

    def test_2d_is_twice_1d(self):
        p = RowPlacement(8, frozenset({(0, 4), (3, 7)}))
        assert mesh_average_head_latency_2d(p) == pytest.approx(
            2 * mean_row_head_latency(p)
        )

    def test_weighted_mean(self):
        p = RowPlacement.mesh(4)
        w = np.zeros((4, 4))
        w[0, 3] = 1.0
        assert mean_row_head_latency(p, weights=w) == pytest.approx(12.0)

    def test_weighted_mean_rejects_bad_shape(self):
        with pytest.raises(ConfigurationError):
            mean_row_head_latency(RowPlacement.mesh(4), weights=np.ones((3, 3)))

    def test_weighted_mean_rejects_zero_weights(self):
        with pytest.raises(ConfigurationError):
            mean_row_head_latency(RowPlacement.mesh(4), weights=np.zeros((4, 4)))

    def test_worst_case_mesh(self):
        # Worst pair: corner to corner = 2 * (n-1) hops * 4 cycles.
        assert worst_case_head_latency_2d(RowPlacement.mesh(8)) == pytest.approx(
            2 * 7 * 4
        )


class TestNetworkLatency:
    def test_mesh_baseline_breakdown(self):
        b = network_average_latency(RowPlacement.mesh(8), 1)
        assert b.head == pytest.approx(21.0)
        assert b.serialization == pytest.approx(1.2)
        assert b.total == pytest.approx(22.2)

    def test_limit_enforced(self):
        p = RowPlacement.fully_connected(8)
        from repro.util.errors import InvalidPlacementError

        with pytest.raises(InvalidPlacementError):
            network_average_latency(p, 2)

    def test_worst_case_includes_long_packet(self):
        v = network_worst_case_latency(RowPlacement.mesh(8), 1)
        assert v == pytest.approx(56.0 + 2.0)

    def test_row_objective_callable(self):
        obj = RowObjective()
        assert obj(RowPlacement.mesh(4)) == pytest.approx(
            mean_row_head_latency(RowPlacement.mesh(4))
        )


@settings(max_examples=40, deadline=None)
@given(row_placements(max_n=8))
def test_express_never_increases_mean_latency(p):
    mesh = mean_row_head_latency(RowPlacement.mesh(p.n))
    assert mean_row_head_latency(p) <= mesh + 1e-9


@settings(max_examples=40, deadline=None)
@given(row_placements(max_n=8))
def test_mean_latency_mirror_invariant(p):
    assert mean_row_head_latency(p) == pytest.approx(
        mean_row_head_latency(p.reversed())
    )


@settings(max_examples=30, deadline=None)
@given(row_placements(max_n=8))
def test_latency_matrix_positive_off_diagonal(p):
    dist = row_head_latency_matrix(p)
    off = dist[~np.eye(p.n, dtype=bool)]
    assert (off >= 4.0).all()  # at least one minimal hop
