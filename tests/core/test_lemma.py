"""Empirical verification of the paper's Section 4.2 lemma (Eq. 5).

The lemma: under dimension-order routing with one row placement
replicated across all rows and columns, the 2D all-pairs average head
latency equals twice the 1D row average.  We verify it the expensive
way -- enumerating every 2D route through the actual routing tables --
against the cheap formula the optimizer uses, for arbitrary placements.
"""

import pytest
from hypothesis import given, settings

from repro.core.latency import (
    mean_row_head_latency,
    mesh_average_head_latency_2d,
    worst_case_head_latency_2d,
)
from repro.routing.dor import route_head_latency
from repro.routing.tables import RoutingTables
from repro.topology.mesh import MeshTopology
from repro.topology.row import RowPlacement

from tests.conftest import row_placements


def brute_force_2d_average(placement: RowPlacement) -> float:
    """All-pairs mean head latency by walking every actual 2D route."""
    topo = MeshTopology.uniform(placement)
    tables = RoutingTables.build(topo)
    num = topo.num_nodes
    total = 0.0
    for src in range(num):
        for dst in range(num):
            if src != dst:
                total += route_head_latency(tables, src, dst)
    return total / (num * num)  # Eq. 2 normalization (self pairs = 0)


def brute_force_2d_worst(placement: RowPlacement) -> float:
    topo = MeshTopology.uniform(placement)
    tables = RoutingTables.build(topo)
    num = topo.num_nodes
    return max(
        route_head_latency(tables, s, d)
        for s in range(num)
        for d in range(num)
        if s != d
    )


class TestLemmaKnownCases:
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_mesh(self, n):
        p = RowPlacement.mesh(n)
        assert brute_force_2d_average(p) == pytest.approx(
            2 * mean_row_head_latency(p)
        )

    def test_express_placement(self):
        p = RowPlacement(6, frozenset({(0, 3), (2, 5)}))
        assert brute_force_2d_average(p) == pytest.approx(
            mesh_average_head_latency_2d(p)
        )

    def test_worst_case_decomposes(self):
        p = RowPlacement(5, frozenset({(0, 4)}))
        assert brute_force_2d_worst(p) == pytest.approx(
            worst_case_head_latency_2d(p)
        )


@settings(max_examples=12, deadline=None)
@given(row_placements(min_n=3, max_n=5, max_links=4))
def test_lemma_holds_for_arbitrary_placements(p):
    assert brute_force_2d_average(p) == pytest.approx(
        2 * mean_row_head_latency(p)
    )
