"""Tests for the naive-move SA baseline (the Section 4.4.2 strawman)."""

import pytest

from repro.core.annealing import AnnealingParams, anneal
from repro.core.connection_matrix import ConnectionMatrix
from repro.core.latency import RowObjective, mean_row_head_latency
from repro.core.naive_annealing import _propose, naive_anneal
from repro.topology.row import RowPlacement
from repro.util.rngtools import ensure_rng

QUICK = AnnealingParams(total_moves=600, moves_per_cooldown=200)


class TestPropose:
    def test_never_returns_invalid(self):
        rng = ensure_rng(0)
        placement = RowPlacement.mesh(8)
        for _ in range(500):
            candidate = _propose(placement, 3, rng)
            if candidate is not None:
                candidate.validate(3)
                placement = candidate

    def test_rejects_at_tight_limit(self):
        # At C=1 no express link fits: every add proposal is invalid.
        rng = ensure_rng(1)
        rejections = sum(
            _propose(RowPlacement.mesh(8), 1, rng) is None for _ in range(200)
        )
        assert rejections == 200

    def test_can_delete(self):
        rng = ensure_rng(2)
        p = RowPlacement(8, frozenset({(0, 4)}))
        saw_delete = False
        for _ in range(300):
            candidate = _propose(p, 4, rng)
            if candidate is not None and len(candidate.express_links) == 0:
                saw_delete = True
                break
        assert saw_delete


class TestNaiveAnneal:
    def test_improves_from_mesh(self):
        result = naive_anneal(8, 4, RowObjective(), QUICK, rng=3)
        assert result.best_energy < mean_row_head_latency(RowPlacement.mesh(8))

    def test_result_valid(self):
        result = naive_anneal(8, 4, RowObjective(), QUICK, rng=3)
        result.best_placement.validate(4)

    def test_counts_invalid_moves(self):
        result = naive_anneal(8, 2, RowObjective(), QUICK, rng=3)
        assert result.invalid_moves > 0
        assert 0 < result.invalid_fraction < 1

    def test_wastes_more_moves_at_tighter_limits(self):
        loose = naive_anneal(8, 8, RowObjective(), QUICK, rng=3)
        tight = naive_anneal(8, 2, RowObjective(), QUICK, rng=3)
        assert tight.invalid_fraction > loose.invalid_fraction

    def test_matrix_sa_no_worse_at_equal_evaluations(self):
        # The paper's claim: the connection-matrix generator wastes no
        # moves, so at an equal *evaluation* budget it should be at
        # least as good as the naive generator (and typically reaches
        # the optimum here).
        objective = RowObjective()
        budget = 150
        naive = naive_anneal(
            8, 4, objective, AnnealingParams(total_moves=10_000, moves_per_cooldown=1_000),
            rng=5, max_evaluations=budget,
        )
        matrix = anneal(
            ConnectionMatrix.zeros(8, 4), objective,
            AnnealingParams(total_moves=10_000, moves_per_cooldown=1_000),
            rng=5, max_evaluations=budget,
        )
        assert matrix.best_energy <= naive.best_energy + 0.15
