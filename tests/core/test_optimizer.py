"""Top-level optimizer tests (the C sweep of Section 4)."""

import pytest

from repro.api import PlacementResult, SearchConfig
from repro.core.annealing import AnnealingParams
from repro.core.latency import BandwidthConfig, PacketMix
from repro.core.optimizer import (
    METHODS,
    design_point,
    optimize,
    solve_row_problem,
)
from repro.topology.row import RowPlacement
from repro.util.errors import ConfigurationError

QUICK = AnnealingParams(total_moves=400, moves_per_cooldown=100)


class TestSolveRowProblem:
    def test_unknown_method(self):
        with pytest.raises(ConfigurationError):
            solve_row_problem(8, 4, method="magic")

    @pytest.mark.parametrize("method", ["dc_sa", "only_sa"])
    def test_heuristics_return_valid(self, method):
        sol = solve_row_problem(
            8, 4, method=method, params=QUICK, config=SearchConfig(seed=1)
        )
        assert isinstance(sol, PlacementResult)
        sol.placement.validate(4)
        assert sol.method == method
        assert sol.evaluations > 0

    def test_exact_method(self):
        sol = solve_row_problem(6, 2, method="exact")
        assert sol.solution is not None and sol.solution.exact is not None
        sol.placement.validate(2)

    def test_dc_sa_no_worse_than_seed(self):
        sol = solve_row_problem(
            8, 4, method="dc_sa", params=QUICK, config=SearchConfig(seed=1)
        )
        raw = sol.solution
        assert raw is not None and raw.seed_solution is not None
        assert sol.energy <= raw.seed_solution.energy + 1e-9

    def test_methods_registry(self):
        assert set(METHODS) == {"dc_sa", "only_sa", "exact"}


class TestDesignPoint:
    def test_mesh_point(self):
        p = design_point(RowPlacement.mesh(8), 1)
        assert p.flit_bits == 256
        assert p.total_latency == pytest.approx(22.2)

    def test_narrower_flits_at_higher_c(self):
        p = design_point(RowPlacement(8, frozenset({(0, 4)})), 2)
        assert p.flit_bits == 128
        assert p.latency.serialization == pytest.approx(0.2 * 4 + 0.8 * 1)


def _sweep(n, **kwargs):
    res = optimize(n, params=QUICK, config=SearchConfig(seed=1), **kwargs)
    assert isinstance(res, PlacementResult)
    return res.sweep


class TestOptimize:
    def test_sweep_covers_valid_limits(self):
        assert set(_sweep(4).points) == {1, 2, 4}

    def test_best_is_minimum(self):
        sweep = _sweep(4)
        assert sweep.best.total_latency == min(
            p.total_latency for p in sweep.points.values()
        )

    def test_c1_point_is_mesh(self):
        assert _sweep(4).points[1].placement == RowPlacement.mesh(4)

    def test_latency_curve_sorted(self):
        curve = _sweep(4).latency_curve()
        assert [c for c, _ in curve] == sorted(c for c, _ in curve)

    def test_restricted_limits(self):
        assert set(_sweep(8, link_limits=(1, 4)).points) == {1, 4}

    def test_custom_bandwidth(self):
        sweep = _sweep(4, bandwidth=BandwidthConfig(base_flit_bits=128))
        assert sweep.points[1].flit_bits == 128

    def test_beats_mesh_on_8x8(self):
        sweep = _sweep(8, link_limits=(1, 2, 4))
        assert sweep.best.total_latency < sweep.points[1].total_latency

    def test_single_size_packets(self):
        sweep = _sweep(4, mix=PacketMix.single(256))
        assert sweep.points[1].latency.serialization == 1.0

    def test_result_mirrors_sweep_best(self):
        res = optimize(4, params=QUICK, config=SearchConfig(seed=1))
        best = res.sweep.best
        assert res.link_limit == best.link_limit
        assert res.placement == best.placement
        assert res.flit_bits == best.flit_bits
        assert res.total_latency == best.total_latency
        assert res.latency_curve == res.sweep.latency_curve()
